"""E5 — Corollary 12: linear power is constant-competitive.

Paper claim: with linear power assignments, single-slot feasible sets
have measure O(1), and the protocol certifies a rate Omega(1/f(m)) with
f(m) independent of the geometry's size up to log factors absorbed in
the transformation — so the ratio (feasibility bound / certified rate)
grows like f(m), i.e. polylog, and the ratio *per f(m)* is flat.

Reproduced series: for growing networks, (a) the single-slot
feasibility upper bound — expected flat (the O(1) of Section 6.1) —
and (b) the certified-rate-normalised competitive ratio; its growth
exponent in log m should be small.
"""

import math

import numpy as np

from _harness import once, print_experiment, sinr_instance, transformed_decay

import repro
from repro.analysis.fitting import fit_power_law


def run_experiment():
    rows = []
    ms, bounds, ratios = [], [], []
    for num_nodes in (12, 18, 26, 36):
        net, model = sinr_instance(num_nodes, seed=num_nodes)
        m = net.size_m
        algorithm = transformed_decay(m)
        certified = repro.certified_rate(algorithm, m)
        upper = repro.feasible_measure_upper_bound(model, trials=32,
                                                   rng=num_nodes)
        ratio = upper / certified
        ms.append(m)
        bounds.append(upper)
        ratios.append(ratio)
        rows.append(
            [num_nodes, m, f"{upper:.2f}", f"{certified:.2e}",
             f"{ratio:.3g}"]
        )

    bound_fit = fit_power_law(ms, bounds)
    log_ms = [math.log(m) for m in ms]
    ratio_fit = fit_power_law(log_ms, ratios)
    rows.append(["growth", "", f"~m^{bound_fit.slope:.2f}", "",
                 f"~(log m)^{ratio_fit.slope:.2f}"])
    print_experiment(
        "E5",
        "Corollary 12: linear power — single-slot feasible measure is O(1) "
        "and the competitive ratio stays polylogarithmic",
        ["nodes", "m", "feasible-I bound", "certified rate", "ratio"],
        rows,
    )
    return bound_fit, ratio_fit, bounds


def test_e5_linear_power_constant_competitive(benchmark):
    bound_fit, ratio_fit, bounds = once(benchmark, run_experiment)
    # The single-slot feasible measure must not grow with m (O(1) claim):
    assert bound_fit.slope < 0.35
    assert max(bounds) <= 10.0
    # The ratio is dominated by f(m) = polylog(m): growth in log m should
    # be at most cubic-log (decay contributes log factors), far below any
    # polynomial-in-m trend.
    assert ratio_fit.slope < 4.0
