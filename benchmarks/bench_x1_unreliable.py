"""X1 — the Section-9 extension: unreliable links.

Paper (discussion): "one can consider the case that each transmission
is lost with some probability even if interference is small enough. It
suffices to consider the effect on the respective static schedule
length."

Reproduction of that sentence as an experiment: the same dynamic
pipeline on a packet-routing grid with iid per-transmission loss
p in {0, 0.2, 0.4}, run twice — with the original frame budgets and
with budgets scaled by the reliability factor ``slack/(1-p)``. The
original budgets develop phase-1 failures as p grows; the adjusted
budgets restore zero-failure stability, confirming the paper's
"only the static schedule length changes" claim.
"""

from _harness import once, print_experiment

import repro
from repro.core.frames import FrameParameters
from repro.interference.unreliable import (
    UnreliableModel,
    reliability_budget_factor,
)


def run_case(loss, adjusted, frames=160):
    net = repro.grid_network(3, 3)
    base = repro.PacketRoutingModel(net)
    model = UnreliableModel(base, loss, rng=11) if loss else base
    # A tight hand-built frame: phase 1 sized for the loss-free need, so
    # reliability losses bite unless the budget is adjusted.
    factor = reliability_budget_factor(loss, slack=2.0) if adjusted else 1.0
    params = FrameParameters(
        frame_length=400,
        phase1_budget=min(360, int(40 * factor)),
        cleanup_budget=30,
        measure_budget=20.0,
        epsilon=0.5,
        rate=0.05,
        f_m=1.0,
        m=net.size_m,
    )
    protocol = repro.DynamicProtocol(
        model, repro.SingleHopScheduler(), rate=0.05, params=params, rng=5
    )
    routing = repro.build_routing_table(net)
    injection = repro.uniform_pair_injection(
        routing, model, 0.05, num_generators=6, rng=7
    )
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(frames)
    metrics = simulation.metrics
    # Normalise drift by the *total* packet arrival rate: on identity-W
    # models the measure rate only counts the heaviest link.
    packets_per_frame = max(1.0, metrics.injected_total / max(1, frames))
    verdict = repro.assess_stability(
        metrics.queue_series, load_per_frame=packets_per_frame
    )
    return protocol, metrics, verdict


def run_experiment():
    rows, results = [], {}
    for loss in (0.0, 0.2, 0.4):
        for adjusted in (False, True):
            if loss == 0.0 and adjusted:
                continue
            protocol, metrics, verdict = run_case(loss, adjusted)
            key = (loss, adjusted)
            results[key] = (protocol, verdict)
            rows.append(
                [
                    f"p={loss:.1f}",
                    "adjusted" if adjusted else "original",
                    metrics.injected_total,
                    metrics.delivered_count(),
                    protocol.potential.total_failures,
                    f"{metrics.mean_queue():.1f}",
                    verdict.stable,
                ]
            )
    print_experiment(
        "X1",
        "Section-9 extension: iid transmission loss — budgets scaled by "
        "slack/(1-p) restore stability",
        ["loss", "budget", "injected", "delivered", "failures",
         "tail queue", "stable"],
        rows,
    )
    return results


def test_x1_unreliable_links(benchmark):
    results = once(benchmark, run_experiment)
    # Loss-free baseline: stable with the original budget.
    protocol, verdict = results[(0.0, False)]
    assert verdict.stable
    # With loss, the adjusted budget must be stable and strictly reduce
    # failures versus the unadjusted run.
    for loss in (0.2, 0.4):
        raw_protocol, raw_verdict = results[(loss, False)]
        adj_protocol, adj_verdict = results[(loss, True)]
        assert adj_verdict.stable
        assert (
            adj_protocol.potential.total_failures
            <= raw_protocol.potential.total_failures
        )