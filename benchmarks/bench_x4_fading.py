"""X4 — Rayleigh block fading on the SINR model (Section-9 direction).

Physical grounding for the paper's "each transmission is lost with some
probability": every channel gain carries a unit-mean exponential fade,
redrawn per slot. Two parts:

* **X4a** — the closed-form success probability (the classical Rayleigh
  product formula implemented by ``success_probability``) agrees with
  Monte-Carlo counts of the faded predicate, per noise level.
* **X4b** — the dynamic pipeline on a linear-power SINR network: the
  fade-free run is stable on tight budgets; with fading the same
  budgets accrue phase-1 failures; scaling the phase-1 budget by
  ``fading_budget_factor(worst_singleton_success)`` restores stability.
  Once again only the static schedule length changes — the paper's
  Section-9 recipe, now for a physically-derived loss process.
"""

import numpy as np

from _harness import once, print_experiment

import repro
from repro.core.frames import FrameParameters
from repro.sinr.fading import (
    RayleighFadingSinrModel,
    fading_budget_factor,
    worst_singleton_success,
)


ALPHA, BETA = 3.0, 1.0


def noise_for_target(net, p_target):
    """Noise level making the *worst* link's singleton success = p_target."""
    crisp = repro.linear_power_model(net, alpha=ALPHA, beta=BETA, noise=0.0)
    signals = crisp.signal_strengths()
    return float(-np.log(p_target) * signals.min() / BETA)


def build_models(net, p_target, seed):
    noise = noise_for_target(net, p_target)
    crisp = repro.linear_power_model(net, alpha=ALPHA, beta=BETA, noise=noise)
    faded = RayleighFadingSinrModel(
        net,
        alpha=ALPHA,
        beta=BETA,
        noise=noise,
        power=crisp.power_assignment,
        weight_matrix=np.array(crisp.weight_matrix()),
        rng=seed,
    )
    return crisp, faded


def run_case(net, model, budget_factor, frames=80):
    params = FrameParameters(
        frame_length=700,
        phase1_budget=min(620, int(210 * budget_factor)),
        cleanup_budget=70,
        measure_budget=9.0,
        epsilon=0.5,
        rate=0.01,
        f_m=1.0,
        m=net.size_m,
    )
    protocol = repro.DynamicProtocol(
        model, repro.DecayScheduler(), rate=0.01, params=params, rng=5
    )
    routing = repro.build_routing_table(net)
    injection = repro.uniform_pair_injection(
        routing, model, 0.01, num_generators=6, rng=7
    )
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(frames)
    metrics = simulation.metrics
    packets_per_frame = max(1.0, metrics.injected_total / max(1, frames))
    verdict = repro.assess_stability(
        metrics.queue_series, load_per_frame=packets_per_frame
    )
    return protocol, metrics, verdict


def run_experiment():
    net = repro.random_sinr_network(12, rng=31)

    # ---- X4a: closed form vs Monte Carlo --------------------------------
    audit_rows = []
    for p_target in (0.9, 0.7, 0.5):
        _, faded = build_models(net, p_target, seed=101)
        probe = [0, 1]
        analytic = faded.success_probability(probe)
        trials = 1500
        counts = np.zeros(len(probe))
        for _ in range(trials):
            winners = faded.successes(probe)
            for j, link in enumerate(sorted(set(probe))):
                if link in winners:
                    counts[j] += 1
        empirical = counts / trials
        audit_rows.append(
            [
                f"p_target={p_target:.1f}",
                f"{analytic[0]:.3f} / {analytic[1]:.3f}",
                f"{empirical[0]:.3f} / {empirical[1]:.3f}",
                f"{np.abs(empirical - analytic).max():.3f}",
            ]
        )
    print_experiment(
        "X4a",
        "Rayleigh fading: closed-form success probability vs Monte Carlo "
        "(links 0,1 transmitting together)",
        ["noise level", "analytic", "measured", "max |err|"],
        audit_rows,
    )

    # ---- X4b: protocol stability with/without the budget adjustment -----
    rows, results = [], {}
    for p_target in (0.7, 0.5):
        crisp, _ = build_models(net, p_target, seed=201)
        cases = [("crisp", crisp, 1.0)]
        for adjusted in (False, True):
            _, faded = build_models(net, p_target, seed=201)
            p_min = worst_singleton_success(faded)
            factor = (
                fading_budget_factor(p_min, slack=1.5) if adjusted else 1.0
            )
            label = "adjusted" if adjusted else "original"
            cases.append((label, faded, factor))
        for label, model, factor in cases:
            protocol, metrics, verdict = run_case(net, model, factor)
            results[(p_target, label)] = (protocol, verdict)
            rows.append(
                [
                    f"p_min={p_target:.1f}",
                    label,
                    metrics.injected_total,
                    metrics.delivered_count(),
                    protocol.potential.total_failures,
                    f"{metrics.mean_queue():.1f}",
                    verdict.stable,
                ]
            )
    print_experiment(
        "X4b",
        "Rayleigh fading: budgets scaled by slack/p_min restore stability "
        "(linear-power SINR, decay scheduler, tight frames)",
        ["fading", "budget", "injected", "delivered", "failures",
         "tail queue", "stable"],
        rows,
    )
    return results


def test_x4_rayleigh_fading(benchmark):
    results = once(benchmark, run_experiment)
    for p_target in (0.7, 0.5):
        crisp_protocol, crisp_verdict = results[(p_target, "crisp")]
        raw_protocol, raw_verdict = results[(p_target, "original")]
        adj_protocol, adj_verdict = results[(p_target, "adjusted")]
        assert crisp_verdict.stable
        assert adj_verdict.stable
        # Fading must cost something on the unadjusted budget, and the
        # adjustment must not make things worse.
        assert (
            raw_protocol.potential.total_failures
            >= crisp_protocol.potential.total_failures
        )
        assert (
            adj_protocol.potential.total_failures
            <= raw_protocol.potential.total_failures
        )
    # The heavy-fading case must actually bite under the original budget.
    heavy_raw, _ = results[(0.5, "original")]
    assert heavy_raw.potential.total_failures > 0
