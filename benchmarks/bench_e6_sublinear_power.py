"""E6 — Corollary 13: monotone sub-linear power, O(log^2 m)-competitive.

Paper claim: for monotone sub-linear assignments (here: square-root
power), building the protocol from the distributed contention-
resolution algorithm [33] gives stability at rates Omega(1/(f(m)))
where the end-to-end competitive gap is O(log^2 m).

Reproduced series: certified rate vs the single-slot feasibility bound
of the *matched* Corollary-13 weight matrix across growing networks,
plus a live stability check at 60% of the certified rate on the
largest instance. Expected: the ratio grows no faster than polylog
(fit exponent in log m bounded), and the stability run passes.
"""

import math

from _harness import once, print_experiment, stability_run

import repro
from repro.analysis.fitting import fit_power_law
from repro.sinr.weights import monotone_power_model
from repro.staticsched.kv import KvScheduler


def build(num_nodes, seed):
    net = repro.random_sinr_network(num_nodes, rng=seed)
    model = monotone_power_model(
        net, repro.SquareRootPower(), alpha=3.0, beta=1.0, noise=0.02
    )
    algorithm = repro.TransformedAlgorithm(
        KvScheduler(), m=net.size_m, chi_scale=0.05
    )
    return net, model, algorithm


def run_experiment():
    rows, ms, ratios = [], [], []
    last = None
    for num_nodes in (12, 18, 26, 36):
        net, model, algorithm = build(num_nodes, seed=num_nodes + 50)
        m = net.size_m
        certified = repro.certified_rate(algorithm, m)
        upper = repro.feasible_measure_upper_bound(model, trials=32,
                                                   rng=num_nodes)
        ratio = upper / certified
        ms.append(m)
        ratios.append(ratio)
        rows.append([num_nodes, m, f"{upper:.2f}", f"{certified:.2e}",
                     f"{ratio:.3g}"])
        last = (net, model, algorithm, certified)

    log_ms = [math.log(m) for m in ms]
    ratio_fit = fit_power_law(log_ms, ratios)
    rows.append(["growth", "", "", "", f"~(log m)^{ratio_fit.slope:.2f}"])

    net, model, algorithm, certified = last
    protocol, metrics, verdict = stability_run(
        model, algorithm, 0.6 * certified, frames=50, seed=8
    )
    rows.append(["stability @0.6x", net.size_m, "", f"{0.6 * certified:.2e}",
                 f"stable={verdict.stable}"])
    print_experiment(
        "E6",
        "Corollary 13: sqrt power (monotone sub-linear) — polylog "
        "competitive ratio, stable at certified load",
        ["nodes", "m", "feasible-I bound", "certified rate", "ratio"],
        rows,
    )
    return ratio_fit, verdict


def test_e6_sublinear_power(benchmark):
    ratio_fit, verdict = once(benchmark, run_experiment)
    assert verdict.stable
    # O(log^2 m) claim with algorithmic log slack: the exponent of the
    # (log m)-fit stays bounded well below polynomial growth.
    assert ratio_fit.slope < 5.0
