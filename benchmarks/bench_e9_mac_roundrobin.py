"""E9 — Lemma 17 / Corollary 18: Round-Robin-Withholding, n + m exactly.

Paper claims: with station ids and silence detection, n packets finish
in exactly n + m slots (Lemma 17), and the derived protocol is stable
for every injection rate lambda < 1 (Corollary 18).

Reproduced rows: exact slot counts across n (must equal n + m with zero
variance), plus protocol stability at rates 0.6 and 0.9 — both beyond
the symmetric protocols' 1/e wall.
"""

import numpy as np

from _harness import once, print_experiment

import repro


def run_experiment():
    stations = 8
    net = repro.mac_network(stations)
    model = repro.MultipleAccessChannel(net)
    algorithm = repro.RoundRobinScheduler()
    rng = np.random.default_rng(5)

    rows = []
    exact = True
    for n in (50, 200, 800):
        requests = [int(rng.integers(stations)) for _ in range(n)]
        result = algorithm.run(model, requests, 10 * (n + stations))
        expected = n + stations
        exact &= result.slots_used == expected and result.all_delivered
        rows.append([f"n={n}", result.slots_used, expected,
                     result.slots_used == expected])

    verdicts = {}
    routing = repro.build_routing_table(net)
    for rate in (0.6, 0.9):
        protocol = repro.DynamicProtocol(
            model, algorithm, rate, t_scale=0.02, rng=9
        )
        injection = repro.uniform_pair_injection(
            routing, model, rate, num_generators=stations, rng=10
        )
        simulation = repro.FrameSimulation(protocol, injection)
        simulation.run(60)
        verdict = repro.assess_stability(
            simulation.metrics.queue_series,
            load_per_frame=max(1.0, rate * protocol.frame_length),
        )
        verdicts[rate] = verdict
        rows.append([f"protocol @rate {rate}",
                     simulation.metrics.delivered_count(),
                     f"tail {simulation.metrics.mean_queue():.1f}",
                     verdict.stable])

    print_experiment(
        "E9",
        "Lemma 17/Cor. 18: Round-Robin-Withholding uses exactly n + m "
        "slots; stable for lambda < 1 (here 0.6 and 0.9)",
        ["series", "slots/delivered", "expected/tail", "ok"],
        rows,
    )
    return exact, verdicts


def test_e9_round_robin(benchmark):
    exact, verdicts = once(benchmark, run_experiment)
    assert exact
    assert verdicts[0.6].stable
    assert verdicts[0.9].stable
