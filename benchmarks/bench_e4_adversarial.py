"""E4 — Theorem 11: stability under (w, lambda)-bounded adversaries.

Paper claim: with the Section-5 random shift, the protocol is stable
for every ``(w, lambda)``-bounded adversary with
``lambda = (1 - eps)/f(m)`` — regardless of how adversarially the
budget is released inside windows.

Reproduced rows: the shifted protocol against all four built-in
adversary shapes (smooth, bursty, sawtooth, targeted) at rate 0.5 on a
grid packet-routing instance, each certified by the sliding-window
audit. The stability verdict is taken on the post-warm-up tail: the
random shift holds packets for up to ``delta_max`` frames, so the
in-system count *ramps* for ``delta_max + D`` frames before reaching
its stationary level — a start-up transient, not queue growth (phase-1
failure counts confirm: zero).

Expected: stable tail verdicts and zero failures for all four shapes.
"""

from _harness import once, print_experiment

import repro

ADVERSARIES = {
    "smooth": repro.SmoothAdversary,
    "bursty": repro.BurstyAdversary,
    "sawtooth": repro.SawtoothAdversary,
    "targeted": repro.TargetedAdversary,
}


def run_experiment():
    net = repro.grid_network(3, 3)
    model = repro.PacketRoutingModel(net)
    algorithm = repro.SingleHopScheduler()
    rate, window = 0.5, 40
    routing = repro.build_routing_table(net)
    # A focused pool (two sources) keeps the packed packet volume
    # proportional to the measure budget instead of the link count.
    pairs = [(s, d) for s, d in routing.pairs() if s in (0, 4)]
    paths = [routing.path(s, d) for s, d in pairs]

    rows, results = [], {}
    for name, adversary_cls in ADVERSARIES.items():
        protocol = repro.ShiftedDynamicProtocol(
            model, algorithm, rate, window=window, t_scale=0.01, rng=6
        )
        warmup = protocol.delta_max + net.max_path_length + 5
        adversary = adversary_cls(
            model, paths, window=window, rate=rate, rng=7
        )
        audit = repro.WindowAudit(model, window, rate)
        simulation = repro.FrameSimulation(protocol, adversary, audit=audit)
        simulation.run(warmup + 120)
        metrics = simulation.metrics
        tail = metrics.queue_series[warmup:]
        verdict = repro.assess_stability(
            tail,
            load_per_frame=max(1.0, rate * protocol.frame_length),
        )
        failures = protocol.inner.potential.total_failures
        results[name] = (verdict, failures)
        rows.append(
            [
                name,
                f"{audit.worst_window_measure:.1f}",
                metrics.injected_total,
                metrics.delivered_count(),
                failures,
                f"{float(sum(tail)) / max(1, len(tail)):.1f}",
                verdict.stable,
            ]
        )
    print_experiment(
        "E4",
        "Theorem 11: shifted protocol stable under every (w,lambda)-bounded "
        f"adversary (budget w*lambda = {window * rate:.1f}; verdict on the "
        "post-warm-up tail)",
        ["adversary", "worst window", "injected", "delivered",
         "failures", "tail queue", "stable"],
        rows,
    )
    return results


def test_e4_all_adversaries_stable(benchmark):
    results = once(benchmark, run_experiment)
    for name, (verdict, failures) in results.items():
        assert verdict.stable, f"{name} adversary destabilised the protocol"
        assert failures == 0, f"{name}: unexpected phase-1 failures"