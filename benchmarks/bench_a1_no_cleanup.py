"""A1 — ablation: the clean-up phase is what drains failed packets.

DESIGN.md calls out the two-phase frame as the protocol's load-bearing
design choice: failed packets leave the phase-1 population (keeping
Claim 5's overload probability applicable) and are drained by the
clean-up lottery at rate >= 1/(2em) (Lemma 6).

Reproduction: force failures with a deliberately starved phase-1
budget (zero slots — every active packet fails once), then compare the
potential trajectory with the clean-up enabled vs disabled. Expected:
with clean-up the potential plateaus and packets are delivered; without
it the potential only ever grows and nothing is delivered.
"""

from _harness import once, print_experiment

import repro
from repro.core.frames import FrameParameters
from repro.injection.packet import Packet


def run_case(cleanup_enabled, frames=300):
    net = repro.line_network(4)
    model = repro.PacketRoutingModel(net)
    params = FrameParameters(
        frame_length=10, phase1_budget=0, cleanup_budget=5,
        measure_budget=1.0, epsilon=0.5, rate=0.05, f_m=1.0, m=net.size_m,
    )
    protocol = repro.DynamicProtocol(
        model, repro.SingleHopScheduler(), rate=0.05, params=params,
        cleanup_enabled=cleanup_enabled, rng=0,
    )
    generator = repro.PathGenerator([((0, 1), 0.004)])
    injection = repro.StochasticInjection([generator], rng=1)
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(frames)
    return protocol, simulation.metrics


def run_experiment():
    with_cleanup, metrics_with = run_case(True)
    without_cleanup, metrics_without = run_case(False)
    rows = [
        [
            "clean-up enabled",
            metrics_with.injected_total,
            metrics_with.delivered_count(),
            with_cleanup.potential.value,
            with_cleanup.potential.total_cleanup_hops,
        ],
        [
            "clean-up disabled (A1)",
            metrics_without.injected_total,
            metrics_without.delivered_count(),
            without_cleanup.potential.value,
            without_cleanup.potential.total_cleanup_hops,
        ],
    ]
    print_experiment(
        "A1",
        "ablation: starved phase 1 (every packet fails once) — only the "
        "clean-up phase drains the potential",
        ["configuration", "injected", "delivered", "final potential",
         "clean-up hops"],
        rows,
    )
    return with_cleanup, without_cleanup, metrics_with, metrics_without


def test_a1_cleanup_matters(benchmark):
    with_cleanup, without_cleanup, metrics_with, metrics_without = once(
        benchmark, run_experiment
    )
    assert metrics_with.delivered_count() > 0
    assert metrics_without.delivered_count() == 0
    assert without_cleanup.potential.value > with_cleanup.potential.value
    assert without_cleanup.potential.total_cleanup_hops == 0
