"""X3 — the Section-9 extension: a bounded adversarial jammer.

Paper (discussion): "Unreliable communication has been an emerging
topic in related fields. For example, an adversarial jammer [7, 38]
... in the radio-network model ha[s] been considered. Our
transformation in principle also allows to be applied on unreliable
networks by adapting the respective static algorithm."

Reproduction of that direction as an experiment: the dynamic pipeline
on a packet-routing grid under a ``(window, sigma)``-bounded jammer
that spends its whole per-window budget as a front-loaded burst (the
worst shape the bound admits). Run twice — original frame budgets and
budgets scaled by ``slack/(1 - sigma)``. As with the X1 loss model,
the original budgets develop phase-1 failures once the jammer bites;
the scaled budgets restore zero-failure stability. Only the static
schedule length changes, exactly the paper's recipe.
"""

from _harness import once, print_experiment

import repro
from repro.core.frames import FrameParameters
from repro.interference.jamming import (
    FrontLoadedPattern,
    JammedModel,
    jamming_budget_factor,
    worst_window_fraction,
)


def run_case(sigma, adjusted, frames=160):
    net = repro.grid_network(3, 3)
    base = repro.PacketRoutingModel(net)
    if sigma:
        pattern = FrontLoadedPattern(window=100, sigma=sigma)
        model = JammedModel(base, pattern)
    else:
        model = base
    factor = jamming_budget_factor(sigma, slack=2.0) if adjusted else 1.0
    params = FrameParameters(
        frame_length=400,
        phase1_budget=min(360, int(40 * factor)),
        cleanup_budget=30,
        measure_budget=20.0,
        epsilon=0.5,
        rate=0.05,
        f_m=1.0,
        m=net.size_m,
    )
    protocol = repro.DynamicProtocol(
        model, repro.SingleHopScheduler(), rate=0.05, params=params, rng=5
    )
    routing = repro.build_routing_table(net)
    injection = repro.uniform_pair_injection(
        routing, model, 0.05, num_generators=6, rng=7
    )
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(frames)
    metrics = simulation.metrics
    packets_per_frame = max(1.0, metrics.injected_total / max(1, frames))
    verdict = repro.assess_stability(
        metrics.queue_series, load_per_frame=packets_per_frame
    )
    return protocol, metrics, verdict


def run_experiment():
    # Audit first: the front-loaded pattern really is (window, sigma)-
    # bounded — the analogue of certifying an adversary before using it.
    audit_rows = []
    for sigma in (0.2, 0.4):
        pattern = FrontLoadedPattern(window=100, sigma=sigma)
        worst = worst_window_fraction(pattern, 100, 2000)
        audit_rows.append([f"sigma={sigma:.1f}", f"{worst:.3f}",
                           worst <= sigma + 1e-9])
    print_experiment(
        "X3a",
        "jammer audit: worst window fraction vs declared sigma "
        "(front-loaded pattern, window=100)",
        ["jammer", "worst window fraction", "within bound"],
        audit_rows,
    )

    rows, results = [], {}
    for sigma in (0.0, 0.2, 0.4):
        for adjusted in (False, True):
            if sigma == 0.0 and adjusted:
                continue
            protocol, metrics, verdict = run_case(sigma, adjusted)
            results[(sigma, adjusted)] = (protocol, verdict)
            rows.append(
                [
                    f"sigma={sigma:.1f}",
                    "adjusted" if adjusted else "original",
                    metrics.injected_total,
                    metrics.delivered_count(),
                    protocol.potential.total_failures,
                    f"{metrics.mean_queue():.1f}",
                    verdict.stable,
                ]
            )
    print_experiment(
        "X3b",
        "Section-9 extension: bounded jammer — budgets scaled by "
        "slack/(1-sigma) restore stability",
        ["jammer", "budget", "injected", "delivered", "failures",
         "tail queue", "stable"],
        rows,
    )
    return results


def test_x3_bounded_jammer(benchmark):
    results = once(benchmark, run_experiment)
    # Jammer-free baseline: stable with the original budget.
    protocol, verdict = results[(0.0, False)]
    assert verdict.stable
    for sigma in (0.2, 0.4):
        raw_protocol, raw_verdict = results[(sigma, False)]
        adj_protocol, adj_verdict = results[(sigma, True)]
        assert adj_verdict.stable
        assert (
            adj_protocol.potential.total_failures
            <= raw_protocol.potential.total_failures
        )
    # The heavier jammer must actually bite under the original budget —
    # otherwise the adjustment is untested.
    heavy_protocol, _ = results[(0.4, False)]
    assert heavy_protocol.potential.total_failures > 0
