"""P2 — the struct-of-arrays packet layer vs the object-per-packet path.

The perf tentpole of the packet-store PR: with the slot kernel already
vectorized (P1), per-``Packet`` Python bookkeeping in the Section-4
frame protocol dominates large dynamic runs. The store path replaces
it with index arrays — the phase-1 request vector is one CSR gather,
hop advancement / delivery detection / potential updates are array
ops, injection emits whole frames with one flat allocation, and failed
buffers hold int indices.

Workload: a protocol-dominated stability run on a 20x20 grid (1520
links, multi-hop routed paths) under a gently-decaying affectance
matrix with the single-hop static algorithm — few, cheap slots per
frame, tens of thousands of packets in flight, clean-up lottery
engaged. The frame budget (`FrameParameters`) is identical in both
modes, so the two runs execute the exact same schedule; the benchmark
asserts outcome equality before reporting (and
``tests/test_store_parity.py`` pins the full ``FrameReport`` stream
bit-identical from one seed).

The baseline (``legacy``) materialises real ``Packet`` dataclass
objects from the same injection stream and drives the protocol's
object mode — a faithful copy of the pre-store data path, packet
construction included. The speedup is reported in frames/sec; the
acceptance floor is 2x.

Results go to ``BENCH_p2.json`` (see ``benchmarks/run_perf.py``).
"""

from __future__ import annotations

import json
import resource
import time
from pathlib import Path

import numpy as np

from _harness import once, print_experiment

import repro
from repro.core.frames import FrameParameters
from repro.injection.packet import Packet
from repro.interference.matrix_model import AffectanceThresholdModel
from repro.network.topology import grid_network

ROWS, COLS = 20, 20
FRAMES = 14
NUM_PAIRS = 800
NUM_GENERATORS = 96
TARGET_RATE = 1.2
FRAME = dict(
    frame_length=100,
    phase1_budget=44,
    cleanup_budget=12,
    measure_budget=30.0,
    epsilon=0.5,
    rate=TARGET_RATE,
    f_m=1.0,
)


def banded_affectance_matrix(m: int, reach: int, base: float, exponent: float):
    """Synthetic SINR-like impact matrix: geometric decay with link
    distance, unit diagonal (same construction as P1)."""
    idx = np.arange(m)
    distance = np.abs(idx[:, None] - idx[None, :]).astype(float)
    matrix = base / (1.0 + distance) ** exponent
    matrix[distance > reach] = 0.0
    np.fill_diagonal(matrix, 1.0)
    return matrix


class LegacyPacketizer:
    """The pre-store object stream: real ``Packet`` dataclass objects.

    Wraps the (shared) store-backed injection process and materialises
    each frame's batch as detached ``Packet`` objects — including the
    per-packet construction cost the object path always paid — so the
    baseline is a faithful copy of the pre-PR data path while sampling
    the identical stream.
    """

    def __init__(self, inner):
        self._inner = inner

    def packets_for_range(self, start_slot, end_slot):
        indices = self._inner.indices_for_range(start_slot, end_slot)
        store = self._inner.store
        offsets = store.offsets
        path_links = store.path_links
        injected_at = store.injected_at
        return [
            Packet(
                id=int(i),
                path=tuple(path_links[offsets[i] : offsets[i + 1]].tolist()),
                injected_at=int(injected_at[i]),
            )
            for i in indices.tolist()
        ]


class _Instance:
    """The network/model/routing triple, built once (BFS routing over
    400 nodes is expensive and identical across modes and repeats)."""

    def __init__(self):
        self.network = grid_network(ROWS, COLS)
        m = self.network.num_links
        self.model = AffectanceThresholdModel(
            self.network, banded_affectance_matrix(m, 40, 0.04, 0.6)
        )
        self.model.weight_matrix()  # build + validate W outside timing
        routing = repro.build_routing_table(self.network)
        pool_rng = np.random.default_rng(7)
        all_pairs = routing.pairs()
        pick = pool_rng.choice(len(all_pairs), size=NUM_PAIRS, replace=False)
        self.pairs = [all_pairs[int(k)] for k in pick]
        self.routing = routing
        self.params = FrameParameters(m=self.network.size_m, **FRAME)


def run_mode(instance: _Instance, mode: str, frames: int):
    """One seeded run; only the injection + frame loop is timed."""
    injection = repro.uniform_pair_injection(
        instance.routing,
        instance.model,
        TARGET_RATE,
        num_generators=NUM_GENERATORS,
        pairs=instance.pairs,
        rng=1017,
    )
    protocol = repro.DynamicProtocol(
        instance.model,
        repro.SingleHopScheduler(),
        TARGET_RATE,
        params=instance.params,
        rng=17,
        store=injection.store if mode == "store" else None,
    )
    if mode == "legacy":
        injection = LegacyPacketizer(injection)
    simulation = repro.FrameSimulation(protocol, injection)
    start = time.perf_counter()
    simulation.run(frames)
    seconds = time.perf_counter() - start
    outcome = {
        "injected": simulation.metrics.injected_total,
        "delivered": len(protocol.delivered),
        "in_system": protocol.packets_in_system,
        "failures": protocol.potential.total_failures,
        "queue_series_tail": simulation.metrics.queue_series[-5:],
    }
    return outcome, seconds


TIMING_REPEATS = 3


def run_experiment(frames: int = FRAMES, out_path=None, tags=None):
    instance = _Instance()
    store_value = legacy_value = None
    store_seconds = legacy_seconds = float("inf")
    # Interleaved min-of-3 per mode (same noise-robust estimator as
    # P1); outcomes must be identical across modes and repetitions.
    for _ in range(TIMING_REPEATS):
        value, seconds = run_mode(instance, "store", frames)
        assert store_value in (None, value), "store outcome diverged"
        store_value, store_seconds = value, min(store_seconds, seconds)
        value, seconds = run_mode(instance, "legacy", frames)
        assert legacy_value in (None, value), "legacy outcome diverged"
        legacy_value, legacy_seconds = value, min(legacy_seconds, seconds)
    assert store_value == legacy_value, (
        f"paths diverged — store {store_value}, legacy {legacy_value}"
    )
    speedup = legacy_seconds / store_seconds
    workload = {
        "name": "stability-grid20x20-singlehop",
        "links": instance.network.num_links,
        "frames": frames,
        "injected": store_value["injected"],
        "delivered": store_value["delivered"],
        "in_system": store_value["in_system"],
        "failures": store_value["failures"],
        "seconds_store": store_seconds,
        "seconds_legacy": legacy_seconds,
        "frames_per_sec_store": frames / store_seconds,
        "frames_per_sec_legacy": frames / legacy_seconds,
        "speedup": speedup,
    }
    payload = {
        "benchmark": "p2_packet_store",
        "created_unix": time.time(),
        "links": instance.network.num_links,
        "frames": frames,
        "workloads": [workload],
        "headline_speedup": speedup,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if tags:
        payload.update(tags)
    if out_path is None:
        out_path = Path(__file__).resolve().parents[1] / "BENCH_p2.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")

    print_experiment(
        "P2",
        "Struct-of-arrays packet layer: index-array protocol bookkeeping "
        "vs object-per-packet on a 20x20 grid stability run",
        ["workload", "frames", "legacy frames/s", "store frames/s",
         "speedup"],
        [[
            workload["name"],
            workload["frames"],
            f"{workload['frames_per_sec_legacy']:.1f}",
            f"{workload['frames_per_sec_store']:.1f}",
            f"{workload['speedup']:.1f}x",
        ]],
    )
    return payload


def test_p2_packet_store(benchmark):
    payload = once(benchmark, run_experiment)
    assert payload["headline_speedup"] >= 2.0, (
        "packet-store speedup below the 2x acceptance floor: "
        f"{payload['headline_speedup']:.2f}x"
    )
