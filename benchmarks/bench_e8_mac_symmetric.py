"""E8 — Lemma 15 / Corollary 16: the symmetric MAC protocol and the 1/e wall.

Paper claims:
(a) Algorithm 2 transmits n packets in (1+delta) e n + O(log^2 n) slots
    whp — asymptotic slope ~ (1+delta)e per packet;
(b) symmetric, ack-based protocols are stable exactly for rates below
    1/e (Corollary 16 for achievability; the matching impossibility is
    classic [Goldberg et al.]).

Reproduced series:
(a) static slot counts for growing n with the *differenced* slope
    (slots(2n) - slots(n)) / n, which cancels the additive O(log^2 n)
    term and should approach (1+delta)e;
(b) a slotted symmetric contention simulation (every backlogged packet
    transmits w.p. 1/backlog — the idealised symmetric protocol) at
    rates 0.8/e and 1.2/e: stable below, diverging above.
"""

import math

import numpy as np

from _harness import once, print_experiment

import repro


def static_slopes():
    net = repro.mac_network(8)
    model = repro.MultipleAccessChannel(net)
    algorithm = repro.MacBackoffScheduler(phi=1.0, delta=0.5)
    rng = np.random.default_rng(3)
    slots = {}
    ns = [400, 800, 1600]
    for n in ns:
        requests = [int(rng.integers(8)) for _ in range(n)]
        budget = 3 * algorithm.budget_for(n, n)
        runs = [
            algorithm.run(model, requests, budget, rng=seed).slots_used
            for seed in (1, 2)
        ]
        slots[n] = float(np.mean(runs))
    slopes = [
        (slots[b] - slots[a]) / (b - a)
        for a, b in zip(ns, ns[1:])
    ]
    return ns, slots, slopes


def symmetric_contention(rate, horizon=30_000, seed=0):
    """Idealised symmetric protocol: p = 1/backlog for every packet.

    Arrivals are Poisson(rate) — the aggregate-of-many-users regime the
    1/e bound lives in. (With at most one Bernoulli arrival per slot the
    backlog-1 state is always cleared instantly and the chain is stable
    for any rate < 1, hiding the wall.) Service succeeds when exactly
    one of the backlogged packets transmits: probability
    ``(1 - 1/n)^(n-1) -> 1/e``, so the queue drifts up iff
    ``rate > 1/e``.
    """
    rng = np.random.default_rng(seed)
    backlog = 0
    series = []
    for t in range(horizon):
        backlog += int(rng.poisson(rate))
        if backlog > 0:
            transmitters = rng.binomial(backlog, 1.0 / backlog)
            if transmitters == 1:
                backlog -= 1
        if t % 100 == 0:
            series.append(backlog)
    return series


def run_experiment():
    ns, slots, slopes = static_slopes()
    target = 1.5 * math.e  # (1 + delta) e with delta = 0.5
    rows = [
        [f"n={n}", f"{slots[n]:.0f}", f"{slots[n] / n:.2f}", ""]
        for n in ns
    ]
    for k, slope in enumerate(slopes):
        rows.append(
            [f"diff slope {ns[k]}->{ns[k + 1]}", "", f"{slope:.2f}",
             f"target (1+d)e = {target:.2f}"]
        )

    below = symmetric_contention(0.8 / math.e, seed=1)
    above = symmetric_contention(1.2 / math.e, seed=1)
    drift_below = (below[-1] - below[len(below) // 2]) / (len(below) // 2)
    drift_above = (above[-1] - above[len(above) // 2]) / (len(above) // 2)
    rows.append(["contention @0.8/e", f"final {below[-1]}",
                 f"drift {drift_below:+.3f}", "expect ~0"])
    rows.append(["contention @1.2/e", f"final {above[-1]}",
                 f"drift {drift_above:+.3f}", "expect > 0"])
    print_experiment(
        "E8",
        "Lemma 15/Cor. 16: Algorithm 2 slope ~ (1+delta)e per packet; "
        "symmetric protocols flip at rate 1/e",
        ["series", "value", "per-packet / drift", "note"],
        rows,
    )
    return slopes, target, drift_below, drift_above


def test_e8_mac_symmetric(benchmark):
    slopes, target, drift_below, drift_above = once(benchmark, run_experiment)
    # The differenced slope approaches (1+delta)e; generous band, since
    # stage-2 tails still leak into finite-n measurements.
    assert slopes[-1] <= 2.5 * target
    assert slopes[-1] >= 0.5
    # The 1/e boundary.
    assert abs(drift_below) < 0.1
    assert drift_above > 0.5
