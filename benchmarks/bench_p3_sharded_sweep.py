"""P3 — the sharded sweep executor vs the serial cell loop.

The scaling tentpole after P1/P2: a single (rate, seed) cell is now
fast, but every paper table is a *sweep* — dozens of cells — and the
serial path runs them one after another in one process. The sharded
executor (``repro.sim.sharding``) describes the same sweep as picklable
``CellSpec`` work units, maps them over a ``multiprocessing`` pool, and
folds the results through the identical aggregation code, so the only
thing that changes is wall-clock.

Workload: the CLI's packet-routing scenario (8x8 grid) swept across the
stability boundary — rate fractions from well below to well above the
certified rate, two seeds each. Cells above the boundary cost several
times more than cells below it (queues grow without bound), which is
exactly the imbalance the executor's dynamic ``chunksize=1`` scheduling
has to absorb.

The benchmark runs the same spec list serially and at 1, 2, and 4
process workers, asserts every configuration produces record-identical
sweeps, and reports cells/sec per configuration. The headline is the
4-worker speedup over serial; the acceptance floor is 2x, which needs
real CPUs — the pytest wrapper enforces it when >= 4 cores are
available and records ``cpu_count`` in the JSON either way, so a
1-core container documents overhead honestly instead of faking
scaling.

Results go to ``BENCH_p3.json`` (see ``benchmarks/run_perf.py``).
"""

from __future__ import annotations

import json
import math
import resource
import time
from pathlib import Path

import pytest

from _harness import once, print_experiment

import repro
from repro.cli.builders import build_scenario
from repro.sim.sharding import (
    ProcessExecutor,
    SerialExecutor,
    default_worker_count,
    sweep_specs,
)

SCENARIO = "packet-routing"
NODES = 64
FRAMES = 160
RATE_FRACTIONS = (0.5, 0.8, 1.1, 1.4)
SEEDS = (0, 1)
WORKER_COUNTS = (1, 2, 4)
HEADLINE_WORKERS = 4
TIMING_REPEATS = 2


def build_specs(frames: int, fractions=RATE_FRACTIONS, seeds=SEEDS):
    scenario = build_scenario(SCENARIO, NODES, 0)
    rates = [fraction * scenario.certified for fraction in fractions]
    return sweep_specs(
        rates,
        seeds,
        frames=frames,
        protocol="scenario-protocol",
        injection="scenario-injection",
        protocol_kwargs={"model": SCENARIO, "nodes": NODES},
        # Enough generators that the 1.4x-certified overload cell stays
        # injectable (per-generator probability must be <= 1).
        injection_kwargs={
            "model": SCENARIO, "nodes": NODES, "num_generators": 16,
        },
        requires=("repro.cli.registry",),
    )


def records_identical(left, right) -> bool:
    """Record-for-record equality, NaN-aware on the latency mean."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if (a.rate, a.seeds, a.stable_fraction, a.mean_tail_queue,
                a.mean_throughput) != (b.rate, b.seeds, b.stable_fraction,
                                       b.mean_tail_queue, b.mean_throughput):
            return False
        if not (
            a.mean_latency == b.mean_latency
            or (math.isnan(a.mean_latency) and math.isnan(b.mean_latency))
        ):
            return False
        if a.verdicts != b.verdicts:
            return False
    return True


def run_experiment(
    frames: int = FRAMES,
    fractions=RATE_FRACTIONS,
    seeds=SEEDS,
    worker_counts=WORKER_COUNTS,
    repeats: int = TIMING_REPEATS,
    out_path=None,
    tags=None,
):
    specs = build_specs(frames, fractions, seeds)
    cells = len(specs)
    executors = [("serial", SerialExecutor())] + [
        (f"process-{count}", ProcessExecutor(workers=count))
        for count in worker_counts
    ]
    seconds = {name: float("inf") for name, _ in executors}
    records = {}
    # Interleaved min-of-N (the P1/P2 noise-robust estimator); every
    # configuration must reproduce the identical sweep records.
    for _ in range(repeats):
        for name, executor in executors:
            start = time.perf_counter()
            result = repro.run_sharded_sweep(specs, executor)
            seconds[name] = min(seconds[name], time.perf_counter() - start)
            assert name not in records or records_identical(
                records[name], result
            ), f"{name} records diverged between repeats"
            records[name] = result
    baseline = records["serial"]
    for name, _ in executors:
        assert records_identical(baseline, records[name]), (
            f"sharded sweep '{name}' is not record-identical to serial"
        )

    worker_rows = []
    for count in worker_counts:
        name = f"process-{count}"
        worker_rows.append(
            {
                "workers": count,
                "seconds": seconds[name],
                "cells_per_sec": cells / seconds[name],
                "speedup": seconds["serial"] / seconds[name],
            }
        )
    headline = seconds["serial"] / seconds[f"process-{HEADLINE_WORKERS}"]
    payload = {
        "benchmark": "p3_sharded_sweep",
        "created_unix": time.time(),
        "cpu_count": default_worker_count(),
        "workload": {
            "name": f"sweep-{SCENARIO}-grid8x8",
            "scenario": SCENARIO,
            "nodes": NODES,
            "frames": frames,
            "rate_fractions": list(fractions),
            "seeds": list(seeds),
            "cells": cells,
        },
        "parity": "identical",
        "seconds_serial": seconds["serial"],
        "cells_per_sec_serial": cells / seconds["serial"],
        "workers": worker_rows,
        "headline_workers": HEADLINE_WORKERS,
        "headline_speedup": headline,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if tags:
        payload.update(tags)
    if out_path is None:
        out_path = Path(__file__).resolve().parents[1] / "BENCH_p3.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")

    rows = [["serial", 1, f"{seconds['serial']:.2f}",
             f"{cells / seconds['serial']:.2f}", "1.0x"]]
    for row in worker_rows:
        rows.append(
            [
                "process",
                row["workers"],
                f"{row['seconds']:.2f}",
                f"{row['cells_per_sec']:.2f}",
                f"{row['speedup']:.2f}x",
            ]
        )
    print_experiment(
        "P3",
        f"Sharded sweep executor: {cells} (rate, seed) cells on "
        f"{default_worker_count()} CPU(s), record-identical to serial",
        ["executor", "workers", "seconds", "cells/sec", "speedup"],
        rows,
    )
    return payload


def test_p3_sharded_sweep(benchmark):
    payload = once(benchmark, run_experiment)
    # Parity is unconditional: every executor configuration reproduced
    # the serial records (run_experiment asserts it cell for cell).
    assert payload["parity"] == "identical"
    cpus = payload["cpu_count"]
    if cpus >= HEADLINE_WORKERS:
        assert payload["headline_speedup"] >= 2.0, (
            f"sharded sweep speedup below the 2x acceptance floor at "
            f"{HEADLINE_WORKERS} workers: "
            f"{payload['headline_speedup']:.2f}x"
        )
    else:
        pytest.skip(
            f"scaling floor needs >= {HEADLINE_WORKERS} CPUs, have "
            f"{cpus}; parity was still enforced"
        )
