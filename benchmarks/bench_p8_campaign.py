"""P8 — frontier bisection vs a fixed rate grid at equal resolution.

The campaign engine's claim is an *economy* claim: locating a cell's
stable-rate boundary to a given resolution by bracket-and-bisect costs
``2 + ceil(log2(span/tolerance))`` rate points, where the fixed grid
the sweeps have used so far costs ``ceil(span/tolerance) + 1`` — and
every grid point far from the boundary is a simulation spent learning
nothing. This bench runs both instruments on the same cell and the
same seeds and checks two things:

1. **Agreement**: the bisection's frontier and the fixed grid's
   boundary (midpoint between the last majority-stable and the first
   majority-unstable grid rate) land within one tolerance of each
   other — fewer simulations, same answer.
2. **Economy**: the bisection spends fewer simulations; the headline
   is ``grid_simulations / campaign_simulations`` (>= 2x acceptance
   floor, enforced unconditionally — the counts are deterministic, no
   CPU condition needed).

Workload: the MAC round-robin cell (the repo's cheapest probe), seeds
0-1, search range [0.5, 2.0] x certified at tolerance 0.05 — 7
bisection rate points against a 31-point grid. Wall-clock for both
instruments is reported for context but carries no floor; the claim is
about simulation counts, which don't wobble with the machine.

Results go to ``BENCH_p8.json`` (see ``benchmarks/run_perf.py``).
"""

from __future__ import annotations

import json
import resource
import time
from pathlib import Path

from _harness import once, print_experiment

from repro.scenario.campaign import campaign_from_data, run_campaign
from repro.scenario.fleet import FleetUnit
from repro.sim.sharding import SerialExecutor

STATIONS = 8
FRAMES = 60
SEEDS = (0, 1)
RATE_LOW = 0.5
RATE_HIGH = 2.0
TOLERANCE = 0.05
TIMING_REPEATS = 2


def build_campaign(
    frames: int = FRAMES, seeds=SEEDS, tolerance: float = TOLERANCE
):
    return campaign_from_data({
        "name": "p8-frontier",
        "axes": {
            "topology": [{"name": "mac",
                          "kwargs": {"num_stations": STATIONS}}],
            "model": ["mac"],
            "scheduler": ["round-robin"],
            "injection": ["uniform-pairs"],
        },
        "seeds": list(seeds),
        "frames": frames,
        "search": {
            "rate_low": RATE_LOW,
            "rate_high": RATE_HIGH,
            "tolerance": tolerance,
        },
    })


def run_fixed_grid(spec):
    """The pre-campaign instrument: every grid rate, every seed."""
    (cell,) = spec.expand()
    search = spec.search
    points = search.grid_points()
    step = search.span / (points - 1)
    rates = [search.rate_low + k * step for k in range(points)]
    executor = SerialExecutor()
    units = [
        FleetUnit(spec=cell.probe_spec(rate, seed), index=cell.index)
        for rate in rates
        for seed in spec.seeds
    ]
    results = executor.map(units)
    grouped = [
        results[k * len(spec.seeds):(k + 1) * len(spec.seeds)]
        for k in range(points)
    ]
    majority = [
        sum(1 for r in group if r.verdict.stable) / len(group) >= 0.5
        for group in grouped
    ]
    # Boundary: midpoint between the last stable and the first
    # unstable grid rate (the best a grid at this step can localise).
    boundary = None
    for k in range(1, points):
        if majority[k - 1] and not majority[k]:
            boundary = 0.5 * (rates[k - 1] + rates[k])
            break
    return {
        "rates": rates,
        "majority_stable": majority,
        "boundary": boundary,
        "simulations": len(units),
    }


def run_experiment(
    frames: int = FRAMES,
    seeds=SEEDS,
    tolerance: float = TOLERANCE,
    repeats: int = TIMING_REPEATS,
    out_path=None,
    tags=None,
):
    spec = build_campaign(frames=frames, seeds=seeds, tolerance=tolerance)

    campaign_seconds = float("inf")
    grid_seconds = float("inf")
    result = None
    grid = None
    # Interleaved min-of-N (the P1..P7 noise-robust estimator); both
    # instruments must reproduce their answers across repeats.
    for _ in range(repeats):
        start = time.perf_counter()
        this_result = run_campaign(spec)
        campaign_seconds = min(
            campaign_seconds, time.perf_counter() - start
        )
        assert result is None or this_result.to_json() == result.to_json(), (
            "campaign document diverged between repeats"
        )
        result = this_result

        start = time.perf_counter()
        this_grid = run_fixed_grid(spec)
        grid_seconds = min(grid_seconds, time.perf_counter() - start)
        assert grid is None or this_grid["majority_stable"] == (
            grid["majority_stable"]
        ), "fixed-grid verdicts diverged between repeats"
        grid = this_grid

    (cell,) = result.cells
    assert cell.status == "bracketed", (
        f"P8 workload must bracket its boundary, got '{cell.status}' — "
        "retune the search range"
    )
    assert grid["boundary"] is not None, (
        "fixed grid found no stable->unstable crossing"
    )
    agreement = abs(cell.frontier - grid["boundary"])
    # Equal-resolution agreement: both instruments localise the same
    # boundary to within one tolerance of each other.
    assert agreement <= tolerance + 1e-12, (
        f"bisection frontier {cell.frontier:.4g} and grid boundary "
        f"{grid['boundary']:.4g} disagree by {agreement:.4g} "
        f"(> tolerance {tolerance})"
    )

    campaign_sims = result.total_simulations
    grid_sims = grid["simulations"]
    headline = grid_sims / campaign_sims
    payload = {
        "benchmark": "p8_campaign",
        "created_unix": time.time(),
        "workload": {
            "name": f"mac-roundrobin-{STATIONS}stations",
            "stations": STATIONS,
            "frames": frames,
            "seeds": list(seeds),
            "rate_low": RATE_LOW,
            "rate_high": RATE_HIGH,
            "tolerance": tolerance,
        },
        "frontier": cell.frontier,
        "frontier_bracket": [cell.lower, cell.upper],
        "grid_boundary": grid["boundary"],
        "boundary_agreement": agreement,
        "campaign_simulations": campaign_sims,
        "grid_simulations": grid_sims,
        "campaign_rate_points": len(cell.probes),
        "grid_rate_points": len(grid["rates"]),
        "seconds_campaign": campaign_seconds,
        "seconds_grid": grid_seconds,
        "headline_speedup": headline,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if tags:
        payload.update(tags)
    if out_path is None:
        out_path = Path(__file__).resolve().parents[1] / "BENCH_p8.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")

    print_experiment(
        "P8",
        f"Frontier bisection vs fixed grid at tolerance {tolerance}: "
        f"same boundary, {headline:.1f}x fewer simulations",
        ["instrument", "rate points", "simulations", "seconds",
         "boundary"],
        [
            ["bisection", len(cell.probes), campaign_sims,
             f"{campaign_seconds:.2f}", f"{cell.frontier:.4g}"],
            ["fixed grid", len(grid["rates"]), grid_sims,
             f"{grid_seconds:.2f}", f"{grid['boundary']:.4g}"],
        ],
    )
    return payload


def test_p8_campaign(benchmark):
    payload = once(benchmark, run_experiment)
    # The counts are deterministic functions of the search parameters,
    # so the floor holds on any machine — no CPU condition.
    assert payload["headline_speedup"] >= 2.0, (
        f"bisection economy below the 2x acceptance floor: "
        f"{payload['headline_speedup']:.2f}x "
        f"({payload['campaign_simulations']} vs "
        f"{payload['grid_simulations']} simulations)"
    )
    assert payload["boundary_agreement"] <= payload["workload"]["tolerance"]
