"""X2 — comparator: the protocol vs the Tassiulas-Ephremides optimum.

The paper's framing (Section 1.2): the max-weight policy of Tassiulas
and Ephremides is throughput-optimal but "neither distributed nor can
it be computed in polynomial time in general"; the paper's protocol is
a distributed approximation of it.

Reproduction: the same stochastic workload on a conflict-graph
instance served by (a) the paper's frame protocol (transformed decay)
and (b) a slot-level max-weight scheduler run as a clairvoyant
comparator. Both should be stable; max-weight holds smaller queues
(it pays no frame/clean-up overhead), quantifying the price of
distributedness the paper accepts for its competitive guarantee.
"""

from _harness import once, print_experiment, transformed_decay

import repro


def run_protocol(model, routing, rate, frames, seed):
    algorithm = transformed_decay(model.network.size_m)
    protocol = repro.DynamicProtocol(
        model, algorithm, rate, t_scale=0.001, rng=seed
    )
    injection = repro.uniform_pair_injection(
        routing, model, rate, num_generators=4, rng=seed + 1
    )
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(frames)
    return protocol, simulation.metrics


def run_max_weight_slotwise(model, routing, rate, horizon, seed):
    """Clairvoyant slot-level max-weight service of the same workload."""
    injection = repro.uniform_pair_injection(
        routing, model, rate, num_generators=4, rng=seed + 1
    )
    scheduler = repro.MaxWeightScheduler(exact_limit=10)
    from repro.staticsched.base import LinkQueues

    queues: dict = {}  # link -> list of (packet, hops_left)
    delivered = 0
    injected = 0
    backlog_series = []
    for slot in range(horizon):
        for packet in injection.packets_for_slot(slot):
            injected += 1
            queues.setdefault(packet.path[0], []).append(
                (packet, list(packet.path))
            )
        busy = [link for link, q in queues.items() if q]
        if busy:
            weights = LinkQueues(
                [link for link in queues for _ in queues[link]],
                model.num_links,
            )
            chosen = scheduler.best_feasible_set(model, weights)
            winners = model.successes(chosen)
            for link in winners:
                packet, path = queues[link].pop(0)
                path.pop(0)
                if path:
                    queues.setdefault(path[0], []).append((packet, path))
                else:
                    delivered += 1
        backlog_series.append(sum(len(q) for q in queues.values()))
    return injected, delivered, backlog_series


def run_experiment():
    net = repro.grid_network(3, 3)
    conflicts = repro.node_constraint_conflicts(net)
    ordering = repro.degree_ordering(conflicts)
    model = repro.ConflictGraphModel(net, conflicts, ordering=ordering)
    routing = repro.build_routing_table(net)
    algorithm = transformed_decay(net.size_m)
    rate = 0.6 * repro.certified_rate(algorithm, net.size_m)

    protocol, metrics = run_protocol(model, routing, rate, frames=50, seed=4)
    protocol_frames = 50
    horizon = 4000
    mw_injected, mw_delivered, mw_backlog = run_max_weight_slotwise(
        model, routing, rate, horizon, seed=4
    )

    protocol_verdict = repro.assess_stability(
        metrics.queue_series,
        load_per_frame=max(1.0, rate * protocol.frame_length),
    )
    mw_tail = sum(mw_backlog[horizon // 2:]) / (horizon - horizon // 2)
    rows = [
        [
            "paper protocol",
            metrics.injected_total,
            metrics.delivered_count(),
            f"{metrics.mean_queue():.1f}",
            protocol_verdict.stable,
        ],
        [
            "max-weight (clairvoyant)",
            mw_injected,
            mw_delivered,
            f"{mw_tail:.1f}",
            True,
        ],
    ]
    print_experiment(
        "X2",
        "comparator: the distributed frame protocol vs slot-level "
        "max-weight on a node-constraint conflict graph",
        ["policy", "injected", "delivered", "tail queue", "stable"],
        rows,
    )
    return protocol_verdict, metrics, mw_tail, mw_delivered, mw_injected


def test_x2_max_weight_comparator(benchmark):
    (protocol_verdict, metrics, mw_tail, mw_delivered,
     mw_injected) = once(benchmark, run_experiment)
    assert protocol_verdict.stable
    # The clairvoyant comparator drains essentially everything.
    assert mw_delivered >= 0.9 * mw_injected
    # And its standing backlog is no larger than the frame protocol's
    # (the price of distributedness goes the expected way).
    assert mw_tail <= max(1.0, metrics.mean_queue()) * 1.5