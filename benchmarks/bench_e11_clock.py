"""E11 — Theorem 20 / Figure 1: the global clock is unavoidable.

Paper claim: on the Figure-1 instance (m-1 interference-free short
links + one long link requiring global silence), a global-clock
protocol is stable for lambda < 1/2, while *no* acknowledgement-based
local-clock protocol is stable once lambda >= ln(m)/m — hence no such
protocol is m/(2 ln m)-competitive.

Reproduced series: long-link queue growth per slot for both protocols
at lambda = ln(m)/m across m in {16, 64, 256} (the figure's instance at
three sizes), plus the global protocol at lambda = 0.4 for the
"stable to 1/2" side.
"""

import math

from _harness import once, print_experiment

import repro


def run_experiment():
    rows = []
    separations = []
    for m in (16, 64, 256):
        rate = math.log(m) / m
        global_run = repro.simulate_figure1(
            m, rate, horizon=10_000, protocol="global", rng=m
        )
        local_run = repro.simulate_figure1(
            m, rate, horizon=10_000, protocol="local", rng=m
        )
        separations.append(
            (global_run.long_queue_slope(), local_run.long_queue_slope())
        )
        rows.append(
            [
                m,
                f"{rate:.4f}",
                f"{global_run.long_queue_slope():+.4f}",
                global_run.final_long_queue,
                f"{local_run.long_queue_slope():+.4f}",
                local_run.final_long_queue,
            ]
        )
    high = repro.simulate_figure1(64, 0.4, horizon=10_000,
                                  protocol="global", rng=1)
    rows.append([64, "0.4000 (global only)",
                 f"{high.long_queue_slope():+.4f}",
                 high.final_long_queue, "-", "-"])
    print_experiment(
        "E11",
        "Theorem 20 / Figure 1: global-clock stable at ln(m)/m (and up to "
        "1/2); local-clock long link diverges",
        ["m", "lambda", "global slope", "global queue",
         "local slope", "local queue"],
        rows,
    )
    return separations, high


def test_e11_clock_separation(benchmark):
    separations, high = once(benchmark, run_experiment)
    for global_slope, local_slope in separations:
        assert global_slope < 0.01
        assert local_slope > global_slope
    # Local-clock divergence must be decisive at the larger sizes.
    assert separations[-1][1] > 0.01
    # Global clock stays stable at 0.4 < 1/2.
    assert high.long_queue_slope() < 0.01
