"""Shared builders for the benchmark suite.

Each ``bench_*`` file reproduces one experiment from EXPERIMENTS.md /
DESIGN.md section 4. The helpers here keep instance construction
consistent across benches so ratios are comparable, and funnel all
printed output through :func:`repro.format_table`.

Conventions:

* every bench prints the rows it regenerates (run with ``-s`` or read
  the captured output in bench_output.txt);
* ``benchmark.pedantic(..., rounds=1, iterations=1)`` wraps the whole
  experiment — wall-clock is reported by pytest-benchmark, the
  scientific result goes to stdout;
* seeds are fixed: every number in EXPERIMENTS.md is replayable.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

import repro


def dense_requests(model, n: int, seed: int, links: int = 4) -> List[int]:
    """``n`` single-hop requests concentrated on ``links`` random links."""
    rng = np.random.default_rng(seed)
    pool = rng.choice(model.num_links, size=min(links, model.num_links),
                      replace=False)
    return [int(pool[i % len(pool)]) for i in range(n)]


def sinr_instance(num_nodes: int, seed: int, alpha: float = 3.0,
                  beta: float = 1.0, noise: float = 0.02):
    """A random geometric network with the linear-power model."""
    net = repro.random_sinr_network(num_nodes, rng=seed)
    model = repro.linear_power_model(net, alpha=alpha, beta=beta, noise=noise)
    return net, model


def transformed_decay(m: int, chi_scale: float = 0.05):
    return repro.TransformedAlgorithm(
        repro.DecayScheduler(), m=m, chi_scale=chi_scale
    )


def stability_run(
    model,
    algorithm,
    rate: float,
    frames: int,
    seed: int,
    t_scale: float = 0.001,
    num_generators: int = 6,
    routing=None,
):
    """One protocol + stochastic-injection run; returns (protocol, metrics, verdict)."""
    protocol = repro.DynamicProtocol(
        model, algorithm, rate, t_scale=t_scale, rng=seed
    )
    if routing is None:
        routing = repro.build_routing_table(model.network)
    injection = repro.uniform_pair_injection(
        routing, model, rate, num_generators=num_generators, rng=seed + 1000
    )
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(frames)
    verdict = repro.assess_stability(
        simulation.metrics.queue_series,
        load_per_frame=max(1.0, rate * protocol.frame_length),
    )
    return protocol, simulation.metrics, verdict


def print_experiment(experiment_id: str, claim: str, headers, rows) -> None:
    """Uniform experiment banner + table."""
    banner = f"[{experiment_id}] {claim}"
    print("\n" + "=" * len(banner))
    print(banner)
    print("=" * len(banner))
    print(repro.format_table(headers, rows))


def once(benchmark, func: Callable):
    """Run the experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
