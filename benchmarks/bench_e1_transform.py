"""E1 — Theorem 1: the transformation makes schedule length n-independent.

Paper claim: a base algorithm with schedule length ``O(I log n)``
degrades as the instance densifies (n grows at fixed structure), while
Algorithm 1 yields ``2 f(m chi) I + o(I)`` — slots per unit measure
flat in ``n``.

Reproduced series: actual slots / I for the base decay scheduler vs the
transformed one, as the same dense workload is scaled 40 -> 320
requests on a fixed network. Includes ablation A2 (the base algorithm
*is* the no-transformation ablation).

Expected shape: base slots/I grows with log n (positive trend);
transformed slots/I flat or shrinking; at the densest point the
transformed algorithm wins outright.
"""

import numpy as np

from _harness import dense_requests, once, print_experiment, sinr_instance

import repro
from repro.analysis.fitting import fit_affine


def run_experiment():
    net, model = sinr_instance(20, seed=5)
    base = repro.DecayScheduler()
    transformed = repro.TransformedAlgorithm(
        base, m=net.size_m, chi_scale=0.1
    )

    rows = []
    ns = [40, 80, 160, 320]
    base_perf, trans_perf = [], []
    for n in ns:
        requests = dense_requests(model, n, seed=n)
        measure = model.interference_measure(requests)
        generous = 20 * base.budget_for(measure, n)
        slots_base = np.mean([
            base.run(model, requests, generous, rng=seed).slots_used
            for seed in (1, 2, 3)
        ])
        slots_trans = np.mean([
            transformed.run(model, requests, generous, rng=seed).slots_used
            for seed in (1, 2, 3)
        ])
        base_perf.append(slots_base / measure)
        trans_perf.append(slots_trans / measure)
        rows.append(
            [n, f"{measure:.1f}", f"{slots_base:.0f}", f"{slots_trans:.0f}",
             f"{slots_base / measure:.2f}", f"{slots_trans / measure:.2f}"]
        )

    log_ns = np.log(ns)
    base_trend = fit_affine(log_ns, base_perf).slope
    trans_trend = fit_affine(log_ns, trans_perf).slope
    rows.append(["slope vs ln n", "", "", "",
                 f"{base_trend:+.2f}", f"{trans_trend:+.2f}"])
    print_experiment(
        "E1",
        "Theorem 1: slots/I flat in n after transformation "
        "(A2 ablation = base row)",
        ["n", "I", "base slots", "transf slots", "base slots/I",
         "transf slots/I"],
        rows,
    )
    return base_trend, trans_trend, base_perf, trans_perf


def test_e1_transform_scaling(benchmark):
    base_trend, trans_trend, base_perf, trans_perf = once(
        benchmark, run_experiment
    )
    # The base algorithm's per-measure cost grows with n; the
    # transformed one's does not (allow small noise).
    assert base_trend > 0.0
    assert trans_trend < base_trend
    # At the densest point the transformation must not be worse.
    assert trans_perf[-1] <= base_perf[-1] * 1.1
