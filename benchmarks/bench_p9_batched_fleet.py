"""P9 — the batched fleet kernel vs serial and process execution.

P5 measured the honest ceiling of process-per-network fleets: on the
1-CPU bench container a worker pool adds IPC and import cost on top of
a serial loop, and even with real cores each *small* network is too
cheap to ship out. The batched executor is the single-core answer:
every network in a compatible group becomes a step-generator over the
fused run loop, and one in-process wave engine advances all of their
static-algorithm sub-runs together — per-network chunked RNG streams,
per-task threshold scans against a shared tiled-limits matrix, events
peeled one at a time so every ``RunResult`` stays bit-identical to the
unbatched serial run.

Workload: 8 small ``sinr-linear`` networks (10–12 nodes, distinct
seeds) under the HM scheduler at ``chi = 0.002`` with an absolute
injection rate — the sparse-transmission regime the wave engine is
built for: long runs (~1.5k slots per frame run) whose slots are
almost all event-free, so whole windows of coins are cleared with one
vectorised scan per network instead of ~40 numpy calls per slot each.
Event-dense regimes (``chi`` at its 0.25 default, or transformed
schedulers with thousands of tiny sub-runs) stay near 1x — that
boundary is documented in PERFORMANCE.md and is why the fleet layer
only routes *small* networks into batches.

The benchmark runs the same fleet serially, through a 2-process pool,
and batched; asserts all three produce identical per-network records;
and reports fleet frames/sec. The headline is the batched speedup
over serial; the acceptance floor is 2x, enforced *unconditionally* —
batching needs no extra cores, so a 1-CPU container must deliver it.

Results go to ``BENCH_p9.json`` (see ``benchmarks/run_perf.py``).
"""

from __future__ import annotations

import json
import math
import resource
import time
from pathlib import Path

from _harness import once, print_experiment

from repro.scenario import ScenarioSpec, preset_spec, run_scenario_fleet
from repro.scenario.batched import BatchedExecutor
from repro.sim.sharding import (
    ProcessExecutor,
    SerialExecutor,
    default_worker_count,
)

PRESET = "sinr-linear"
NODES = (10, 11, 12)
FRAMES = 40
NETWORKS = 8
SCHEDULER = "hm"
CHI = 0.002
RATE = 0.2
PROCESS_WORKERS = 2
TIMING_REPEATS = 2
SPEEDUP_FLOOR = 2.0


def build_specs(
    frames: int = FRAMES, networks: int = NETWORKS, nodes=NODES
):
    specs = [
        preset_spec(
            PRESET,
            nodes=nodes[seed % len(nodes)],
            seed=seed,
            frames=frames,
            scheduler=SCHEDULER,
            scheduler_kwargs={"chi": CHI},
            transform=False,
            rate_mode="absolute",
            rate=RATE,
        )
        for seed in range(networks)
    ]
    # Round-trip through JSON: batching must group and replay exactly
    # the serialized form a spec file would carry.
    return [ScenarioSpec.from_json(spec.to_json()) for spec in specs]


def records_identical(left, right) -> bool:
    """Per-network CellResult equality, NaN-aware on latency."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if (a.rate_index, a.rate, a.seed, a.verdict, a.tail_queue,
                a.throughput, a.frame_length, a.injected, a.delivered,
                a.failures) != (b.rate_index, b.rate, b.seed, b.verdict,
                                b.tail_queue, b.throughput, b.frame_length,
                                b.injected, b.delivered, b.failures):
            return False
        if not (
            a.latency == b.latency
            or (math.isnan(a.latency) and math.isnan(b.latency))
        ):
            return False
    return True


def run_experiment(
    frames: int = FRAMES,
    networks: int = NETWORKS,
    repeats: int = TIMING_REPEATS,
    out_path=None,
    tags=None,
):
    specs = build_specs(frames, networks)
    executors = [
        ("serial", SerialExecutor()),
        (f"process-{PROCESS_WORKERS}",
         ProcessExecutor(workers=PROCESS_WORKERS)),
        ("batched", BatchedExecutor(strict=True)),
    ]
    seconds = {name: float("inf") for name, _ in executors}
    records = {}
    # Interleaved min-of-N (the P1..P8 noise-robust estimator); every
    # executor must reproduce the identical fleet records — parity is
    # asserted inside the benchmark, not delegated to the test suite.
    for _ in range(repeats):
        for name, executor in executors:
            start = time.perf_counter()
            result = run_scenario_fleet(specs, executor)
            seconds[name] = min(seconds[name], time.perf_counter() - start)
            assert name not in records or records_identical(
                records[name].records, result.records
            ), f"{name} records diverged between repeats"
            records[name] = result
    baseline = records["serial"]
    for name, _ in executors:
        assert records_identical(
            baseline.records, records[name].records
        ), f"fleet '{name}' is not record-identical to serial"
        assert records[name].summary == baseline.summary

    fleet_frames = networks * frames
    rows = {
        name: {
            "seconds": seconds[name],
            "fleet_frames_per_sec": fleet_frames / seconds[name],
            "speedup": seconds["serial"] / seconds[name],
        }
        for name, _ in executors
    }
    headline = rows["batched"]["speedup"]
    payload = {
        "benchmark": "p9_batched_fleet",
        "created_unix": time.time(),
        "cpu_count": default_worker_count(),
        "workload": {
            "name": f"batched-fleet-{PRESET}-{SCHEDULER}",
            "preset": PRESET,
            "scheduler": SCHEDULER,
            "chi": CHI,
            "rate": RATE,
            "rate_mode": "absolute",
            "nodes": list(NODES),
            "frames": frames,
            "networks": networks,
            "distinct_topologies": True,
        },
        "parity": "identical",
        "seconds_serial": seconds["serial"],
        "executors": rows,
        "headline_executor": "batched",
        "headline_speedup": headline,
        "speedup_floor": SPEEDUP_FLOOR,
        "stable_fraction": baseline.summary.stable_fraction,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if tags:
        payload.update(tags)
    if out_path is None:
        out_path = Path(__file__).resolve().parents[1] / "BENCH_p9.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")

    table = []
    for name, _ in executors:
        row = rows[name]
        table.append(
            [
                name,
                f"{row['seconds']:.2f}",
                f"{row['fleet_frames_per_sec']:.1f}",
                f"{row['speedup']:.2f}x",
            ]
        )
    print_experiment(
        "P9",
        f"Batched fleet kernel: {networks} small networks fused in one "
        f"wave loop on {default_worker_count()} CPU(s), bit-identical "
        "to serial",
        ["executor", "seconds", "fleet frames/sec", "speedup"],
        table,
    )
    return payload


def test_p9_batched_fleet(benchmark):
    payload = once(benchmark, run_experiment)
    # Parity is unconditional: every executor reproduced the serial
    # records network for network (asserted inside run_experiment).
    assert payload["parity"] == "identical"
    # So is the speedup floor: batching spends no extra cores, so the
    # 1-CPU container has no excuse.
    assert payload["headline_speedup"] >= SPEEDUP_FLOOR, (
        f"batched fleet speedup below the {SPEEDUP_FLOOR}x acceptance "
        f"floor: {payload['headline_speedup']:.2f}x"
    )
