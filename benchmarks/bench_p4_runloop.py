"""P4 — fused run-loop backends vs the P1 per-slot kernel path.

The perf tentpole of the run-loop backend PR: on the P1 headline
workload (a 500-link dynamic-protocol stability run under the
ack-feedback KV scheduler, store-mode bookkeeping) the fused
pure-numpy backend must clear at least **1.5×** the slots/sec of the
P1 kernel path it subsumes, and the numba-compiled backend at least
**3×** whenever numba is importable (enforced by the CI numba lane;
``numba_present`` is recorded honestly in the JSON either way, like
BENCH_p3 does for ``cpu_count``).

Workloads:

* ``stability-500link-kv`` — the headline: the same 500-link
  affectance instance and frame parameters as BENCH_p1, but with the
  struct-of-arrays packet store (P2) carrying the protocol side, so
  the slot loop dominates wall-clock and the backend comparison is
  undiluted. Timed per backend, interleaved min-of-3; the run outcome
  (delivered ids, packets in system, failure count) must be identical
  across backends and repetitions before any number is reported.
* ``static-singlehop-500link`` — the all-transmit fast path (row-sum
  evaluator) in isolation.
* ``history-500link-kv`` — a 500-link KV backlog drain on the fused
  backend with and without ``record_history``: the lazy array-backed
  history must keep recording overhead at or below **10%** (it used
  to build two Python-int tuples per slot).

Results go to ``BENCH_p4.json`` (see ``benchmarks/run_perf.py``).
"""

from __future__ import annotations

import json
import resource
import time
from pathlib import Path

import numpy as np

from _harness import once, print_experiment
from bench_p1_slot_kernel import FRAME, NUM_LINKS, build_model

import repro
from repro.staticsched import KvScheduler, SingleHopScheduler
from repro.staticsched.runloop import (
    available_backends,
    numba_available,
    use_backend,
)

FRAMES = 8
TIMING_REPEATS = 3

#: Floors enforced by the pytest wrapper (and run_perf for numpy).
NUMPY_FLOOR = 1.5
NUMBA_FLOOR = 3.0
HISTORY_OVERHEAD_CEILING = 0.10


def _stability_run(frames: int, backend: str):
    """One store-mode stability run; only the frame loop is timed."""
    model = build_model()
    routing = repro.build_routing_table(model.network)
    injection = repro.uniform_pair_injection(
        routing, model, FRAME.rate, num_generators=8, rng=1017
    )
    protocol = repro.DynamicProtocol(
        model, KvScheduler(), FRAME.rate, params=FRAME, rng=17,
        store=injection.store,
    )
    simulation = repro.FrameSimulation(protocol, injection)
    with use_backend(backend):
        start = time.perf_counter()
        simulation.run(frames)
        seconds = time.perf_counter() - start
    outcome = {
        "delivered": len(protocol.delivered),
        "in_system": protocol.packets_in_system,
        "failures": protocol.potential.total_failures,
    }
    return outcome, seconds


def _static_singlehop(backend: str):
    model = build_model(reach=40, base=0.5, exponent=1.5)
    model.weight_matrix()
    rng = np.random.default_rng(23)
    requests = list(rng.integers(0, NUM_LINKS, size=4000))
    with use_backend(backend):
        start = time.perf_counter()
        result = SingleHopScheduler().run(
            model, requests, 1200, rng=np.random.default_rng(29)
        )
        seconds = time.perf_counter() - start
    outcome = {
        "slots": result.slots_used,
        "delivered": len(result.delivered),
    }
    return outcome, seconds


def _history_drain(record_history: bool):
    model = build_model()
    model.weight_matrix()
    rng = np.random.default_rng(23)
    requests = list(rng.integers(0, NUM_LINKS, size=13000))
    with use_backend("numpy"):
        start = time.perf_counter()
        result = KvScheduler().run(
            model, requests, 900, rng=np.random.default_rng(29),
            record_history=record_history,
        )
        seconds = time.perf_counter() - start
    outcome = {
        "slots": result.slots_used,
        "delivered": len(result.delivered),
    }
    return outcome, seconds, result


def _interleaved_min(runners):
    """Time the named runners interleaved, min-of-N wall-clock each.

    Interleaving means a slow window in a shared container degrades
    every mode's samples instead of biasing one side of a ratio; the
    min is the standard noise-robust estimator. Outcomes must agree
    across modes and repetitions, which is asserted.
    """
    seconds = {name: float("inf") for name in runners}
    outcomes = {}
    for _ in range(TIMING_REPEATS):
        for name, runner in runners.items():
            outcome, elapsed = runner()
            reference = outcomes.setdefault(name, outcome)
            assert reference == outcome, (
                f"{name}: outcome diverged across repetitions"
            )
            seconds[name] = min(seconds[name], elapsed)
    first = next(iter(outcomes))
    for name, outcome in outcomes.items():
        assert outcome == outcomes[first], (
            f"backends diverged: {first} produced {outcomes[first]}, "
            f"{name} produced {outcome}"
        )
    return seconds, outcomes[first]


def run_experiment(frames: int = FRAMES, out_path=None, tags=None):
    backends = [
        name for name in available_backends() if name != "scalar"
    ]

    slots = frames * FRAME.frame_length
    headline_secs, headline_outcome = _interleaved_min({
        backend: (lambda b=backend: _stability_run(frames, b))
        for backend in backends
    })
    singlehop_secs, singlehop_outcome = _interleaved_min({
        backend: (lambda b=backend: _static_singlehop(b))
        for backend in backends
    })

    # History overhead on the fused backend. The effect being bounded
    # is small (~1 µs/slot), so it gets more interleaved repetitions
    # than the ratio workloads — container wall-clock jitter on a
    # ~0.5 s drain otherwise drowns a few-percent measurement.
    hist_secs = {"plain": float("inf"), "history": float("inf")}
    hist_result = None
    for _ in range(TIMING_REPEATS + 2):
        _, plain_s, _ = _history_drain(False)
        _, hist_s, hist_result = _history_drain(True)
        hist_secs["plain"] = min(hist_secs["plain"], plain_s)
        hist_secs["history"] = min(hist_secs["history"], hist_s)
    history_overhead = hist_secs["history"] / hist_secs["plain"] - 1.0
    # The lazy history must actually contain the run.
    assert len(hist_result.history) == hist_result.slots_used

    headline_speedup = (
        headline_secs["kernel"] / headline_secs["numpy"]
    )
    numba_speedup = (
        headline_secs["kernel"] / headline_secs["numba"]
        if "numba" in headline_secs else None
    )

    payload = {
        "benchmark": "p4_runloop",
        "created_unix": time.time(),
        "links": NUM_LINKS,
        "frames": frames,
        "numba_present": numba_available(),
        "backends": backends,
        "workloads": [
            {
                "name": "stability-500link-kv",
                "slots": slots,
                **headline_outcome,
                "seconds": headline_secs,
                "slots_per_sec": {
                    backend: slots / seconds
                    for backend, seconds in headline_secs.items()
                },
            },
            {
                "name": "static-singlehop-500link",
                **singlehop_outcome,
                "seconds": singlehop_secs,
                "slots_per_sec": {
                    backend: singlehop_outcome["slots"] / seconds
                    for backend, seconds in singlehop_secs.items()
                },
            },
            {
                "name": "history-500link-kv",
                "slots": hist_result.slots_used,
                "seconds": hist_secs,
                "history_overhead": history_overhead,
            },
        ],
        "headline_speedup": headline_speedup,
        "numba_speedup": numba_speedup,
        "history_overhead": history_overhead,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if tags:
        payload.update(tags)
    if out_path is None:
        out_path = Path(__file__).resolve().parents[1] / "BENCH_p4.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")

    rows = []
    for workload in payload["workloads"][:2]:
        per_backend = workload["slots_per_sec"]
        rows.append([
            workload["name"],
            workload["slots"],
            f"{per_backend['kernel']:,.0f}",
            f"{per_backend['numpy']:,.0f}",
            f"{per_backend['numpy'] / per_backend['kernel']:.2f}x",
            f"{per_backend['numba']:,.0f}" if "numba" in per_backend
            else "-",
        ])
    rows.append([
        "history-500link-kv",
        hist_result.slots_used,
        "-",
        "-",
        f"{history_overhead:+.1%} rec",
        "-",
    ])
    print_experiment(
        "P4",
        "Fused run-loop backends: chunked coins, sparse bookkeeping "
        "and lazy history vs the P1 per-slot kernel path",
        ["workload", "slots", "kernel slots/s", "numpy slots/s",
         "numpy/kernel", "numba slots/s"],
        rows,
    )
    return payload


def test_p4_runloop(benchmark):
    payload = once(benchmark, run_experiment)
    assert payload["headline_speedup"] >= NUMPY_FLOOR, (
        "fused numpy backend below the 1.5x acceptance floor: "
        f"{payload['headline_speedup']:.2f}x"
    )
    assert payload["history_overhead"] <= HISTORY_OVERHEAD_CEILING, (
        "history recording overhead above the 10% ceiling: "
        f"{payload['history_overhead']:.1%}"
    )
    if payload["numba_present"]:
        assert payload["numba_speedup"] >= NUMBA_FLOOR, (
            "numba backend below the 3x acceptance floor: "
            f"{payload['numba_speedup']:.2f}x"
        )
