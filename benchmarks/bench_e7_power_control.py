"""E7 — Corollary 14: free power control (centralized), O(log m) fading.

Paper claim: with powers chosen per transmission by the algorithm of
[32] against the Section-6.2 weight matrix, there is a stable
centralized protocol that is O(log m)-competitive in fading metrics
(alpha above the doubling dimension; our planar instances with
alpha = 3 qualify) and O(log^2 m) in general.

Reproduced series: static scheduling cost (slots per unit measure) of
the power-control scheduler across growing networks — expected to grow
at most logarithmically — plus the certified-rate ratio trend and a
stability run on the largest instance.
"""

import math

import numpy as np

from _harness import dense_requests, once, print_experiment, stability_run

import repro
from repro.analysis.fitting import fit_power_law


def build(num_nodes, seed):
    net = repro.random_sinr_network(num_nodes, rng=seed)
    model = repro.SinrModel(
        net, alpha=3.0, beta=1.0, noise=0.02,
        weight_matrix=repro.power_control_weights(net, 3.0),
    )
    return net, model


def run_experiment():
    scheduler = repro.PowerControlScheduler()
    rows, ms, costs = [], [], []
    last = None
    for num_nodes in (12, 18, 26, 36):
        net, model = build(num_nodes, seed=num_nodes + 90)
        requests = dense_requests(model, 4 * num_nodes, seed=num_nodes,
                                  links=8)
        measure = model.interference_measure(requests)
        budget = 50 * scheduler.budget_for(measure, len(requests))
        slots = np.mean([
            scheduler.run(model, requests, budget, rng=s).slots_used
            for s in (1, 2)
        ])
        cost = slots / max(measure, 1.0)
        ms.append(net.size_m)
        costs.append(cost)
        rows.append([num_nodes, net.size_m, len(requests),
                     f"{measure:.1f}", f"{slots:.0f}", f"{cost:.2f}"])
        last = (net, model)

    cost_fit = fit_power_law(ms, costs)
    rows.append(["growth", "", "", "", "", f"~m^{cost_fit.slope:.2f}"])

    net, model = last
    algorithm = repro.TransformedAlgorithm(
        repro.PowerControlScheduler(), m=net.size_m, chi_scale=0.05
    )
    certified = repro.certified_rate(algorithm, net.size_m)
    protocol, metrics, verdict = stability_run(
        model, algorithm, 0.6 * certified, frames=40, seed=12
    )
    rows.append(["stability @0.6x", net.size_m, "", "",
                 f"{0.6 * certified:.2e}", f"stable={verdict.stable}"])
    print_experiment(
        "E7",
        "Corollary 14: free power control — scheduling cost grows "
        "sub-polynomially in m; protocol stable at certified load",
        ["nodes", "m", "n", "I", "slots", "slots/I"],
        rows,
    )
    return cost_fit, verdict


def test_e7_power_control(benchmark):
    cost_fit, verdict = once(benchmark, run_experiment)
    assert verdict.stable
    # slots/I must grow far slower than linearly in m (log-like).
    assert cost_fit.slope < 0.5
