"""E3 — Theorem 8: expected latency is O(d * T), linear in path length.

Paper claim: a packet with path length ``d`` spends ``O(d)`` frames in
the system in expectation (unfailed packets exactly one hop per frame;
failed ones are recovered at the clean-up drain rate).

Reproduced series: mean latency (in frames) by path length ``d`` on a
forward chain where source 0 sends to every node 1..8 — the packet for
node ``d`` has exactly ``d`` hops. An affine fit's slope is the
"frames per hop"; the intercept should be small.

Expected shape: latency(d) ~ a*d + b with a in [1, ~2] frames/hop and
r^2 close to 1 (near-perfectly linear).
"""

from _harness import once, print_experiment

import repro
from repro.analysis.fitting import fit_affine


def run_experiment():
    depth = 9
    net = repro.line_network(depth)
    model = repro.PacketRoutingModel(net)
    algorithm = repro.SingleHopScheduler()
    rate = 0.5
    protocol = repro.DynamicProtocol(
        model, algorithm, rate, t_scale=0.01, rng=4
    )
    routing = repro.build_routing_table(net)
    pairs = [(0, d) for d in range(1, depth)]
    injection = repro.uniform_pair_injection(
        routing, model, rate, num_generators=4, pairs=pairs, rng=5
    )
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(200)

    groups = simulation.metrics.latency_by_path_length(protocol.delivered)
    rows, ds, latencies = [], [], []
    for d, summary in groups.items():
        frames = summary.mean / protocol.frame_length
        ds.append(d)
        latencies.append(frames)
        rows.append([d, summary.count, f"{frames:.2f}",
                     f"{summary.p95 / protocol.frame_length:.2f}"])

    fit = fit_affine(ds, latencies)
    rows.append(["fit", "", f"slope {fit.slope:.2f}/hop",
                 f"r2 {fit.r_squared:.3f}"])
    print_experiment(
        "E3",
        "Theorem 8: mean latency linear in path length d (frames)",
        ["d (hops)", "packets", "mean latency", "p95 latency"],
        rows,
    )
    return fit, groups


def test_e3_latency_linear_in_d(benchmark):
    fit, groups = once(benchmark, run_experiment)
    assert len(groups) >= 6  # all path lengths observed
    assert 0.8 <= fit.slope <= 2.5
    assert fit.r_squared > 0.9
