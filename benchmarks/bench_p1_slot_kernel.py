"""P1 — the vectorized slot kernel vs the scalar slot loop.

The perf tentpole of the kernel PR: on a 500-link instance the batched
slot loop (numpy per-link state, batched Bernoulli draws, cached
active-set submatrices in the models) must clear at least 3x the
slots/sec of the scalar path it replaced — per-link Python dict
iteration with one ``rng.random()`` per busy link and a fresh
``successes()`` evaluation per slot.

The scalar baselines below are faithful copies of the pre-kernel
scheduler loops (``LegacyKv``/``LegacyDecay``/``LegacySingleHop``).
They were engineered to consume the *same RNG stream* as the
vectorized schedulers (batched draws read the generator exactly like
repeated scalar draws), so both sides execute the identical schedule
and the comparison is pure implementation overhead — the benchmark
asserts this by comparing outcomes. A third mode, the kernel pinned to
scalar ``successes()`` via ``scalar_reference()``, isolates how much
of the win comes from batch success evaluation vs batched draws.

Workloads:

* ``stability-500link-kv`` — the headline: a dynamic-protocol
  stability run (two-phase frames, clean-up lottery, stochastic
  injection) over a 500-link affectance-threshold instance with the
  ack-feedback KV scheduler.
* ``static-decay-500link`` / ``static-singlehop-500link`` — static
  backlog drains isolating the kernel itself.

Results go to ``BENCH_p1.json`` (see ``benchmarks/run_perf.py``) so
later PRs have a trajectory to compare against.
"""

from __future__ import annotations

import json
import resource
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from _harness import once, print_experiment

import repro
from repro.core.frames import FrameParameters
from repro.interference.base import InterferenceModel
from repro.interference.matrix_model import AffectanceThresholdModel
from repro.network.topology import mac_network
from repro.staticsched import (
    DecayScheduler,
    KvScheduler,
    SingleHopScheduler,
)
from repro.staticsched.base import (
    LinkQueues,
    RunResult,
    SlotRecord,
    StaticAlgorithm,
)
from repro.staticsched.kernel import scalar_reference
from repro.staticsched.runloop import use_backend
from repro.utils.rng import RngLike, ensure_rng

NUM_LINKS = 500
FRAMES = 8
FRAME = FrameParameters(
    frame_length=1000,
    phase1_budget=900,
    cleanup_budget=80,
    measure_budget=30.0,
    epsilon=0.5,
    rate=0.2,
    f_m=1.0,
    m=NUM_LINKS,
)


# ----------------------------------------------------------------------
# Scalar baselines: the pre-kernel slot loops, preserved verbatim
# ----------------------------------------------------------------------


class LegacyKv(KvScheduler):
    """The seed KvScheduler.run: per-link dict state, one draw per link."""

    name = "kv-scalar-loop"

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        gen = ensure_rng(rng)
        queues = LinkQueues(requests, model.num_links)
        delivered: List[int] = []
        history: Optional[List[SlotRecord]] = [] if record_history else None
        probability: Dict[int, float] = {
            link: self._p0 for link in queues.busy_links()
        }
        idle_streak: Dict[int, int] = {link: 0 for link in probability}
        slots = 0
        while slots < budget and queues.pending:
            transmitting = []
            for link_id in queues.busy_links():
                if gen.random() < probability[link_id]:
                    transmitting.append(link_id)
                    idle_streak[link_id] = 0
                else:
                    idle_streak[link_id] += 1
            successes = self._transmit(
                model, queues, transmitting, delivered, history
            )
            for link_id in transmitting:
                if link_id in successes:
                    probability[link_id] = self._p0
                else:
                    probability[link_id] = max(
                        self._p_min, probability[link_id] * self._backoff
                    )
            for link_id, streak in idle_streak.items():
                if (
                    streak >= self._recovery_slots
                    and queues.queue_length(link_id)
                ):
                    probability[link_id] = min(
                        self._p0, probability[link_id] * 2.0
                    )
                    idle_streak[link_id] = 0
            slots += 1
        return self._finalise(queues, delivered, slots, history)


class LegacyDecay(DecayScheduler):
    """The seed DecayScheduler.run: per-slot rebuilt link lists."""

    name = "decay-scalar-loop"

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        gen = ensure_rng(rng)
        queues = LinkQueues(requests, model.num_links)
        delivered: List[int] = []
        history: Optional[List[SlotRecord]] = [] if record_history else None
        measure = max(
            model.interference_measure(list(requests)), self._measure_floor
        )
        probability = min(1.0, 1.0 / (self._probability_scale * measure))
        busy = np.asarray(queues.busy_links(), dtype=int)
        counts = np.asarray(
            [queues.queue_length(int(e)) for e in busy], dtype=float
        )
        position = {int(e): k for k, e in enumerate(busy)}
        slots = 0
        while slots < budget and queues.pending:
            link_probability = 1.0 - (1.0 - probability) ** counts
            wants = gen.random(busy.shape[0]) < link_probability
            transmitting = [int(e) for e in busy[wants]]
            successes = self._transmit(
                model, queues, transmitting, delivered, history
            )
            if successes:
                for link_id in successes:
                    counts[position[link_id]] -= 1.0
                if (counts == 0).any():
                    keep = counts > 0
                    busy = busy[keep]
                    counts = counts[keep]
                    position = {int(e): k for k, e in enumerate(busy)}
            slots += 1
        return self._finalise(queues, delivered, slots, history)


class LegacySingleHop(SingleHopScheduler):
    """The seed SingleHopScheduler.run: scalar successes every slot."""

    name = "single-hop-scalar-loop"

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        queues = LinkQueues(requests, model.num_links)
        delivered: List[int] = []
        history: Optional[List[SlotRecord]] = [] if record_history else None
        slots = 0
        while slots < budget and queues.pending:
            transmitting = queues.busy_links()
            self._transmit(model, queues, transmitting, delivered, history)
            slots += 1
        return self._finalise(queues, delivered, slots, history)


# ----------------------------------------------------------------------
# The 500-link workloads
# ----------------------------------------------------------------------


def banded_affectance_matrix(
    m: int, reach: int, base: float, exponent: float
):
    """A synthetic SINR-like impact matrix: geometric decay with link
    distance, unit diagonal."""
    idx = np.arange(m)
    distance = np.abs(idx[:, None] - idx[None, :]).astype(float)
    matrix = base / (1.0 + distance) ** exponent
    matrix[distance > reach] = 0.0
    np.fill_diagonal(matrix, 1.0)
    return matrix


def build_model(
    reach: int = NUM_LINKS, base: float = 0.15, exponent: float = 0.3
) -> AffectanceThresholdModel:
    """The contention workload: slowly-decaying impact keeps a few
    hundred links competing all run — the paper's interesting regime
    (heavy standing backlog near the service ceiling) and the one the
    kernel targets. The defaults sustain ~4 successes per slot under
    the adaptive KV scheduler with 500 busy links."""
    return AffectanceThresholdModel(
        mac_network(NUM_LINKS),
        banded_affectance_matrix(NUM_LINKS, reach, base, exponent),
    )


def run_stability(scheduler, frames: int):
    """The 500-link stability run; only the frame loop is timed —
    instance construction is identical across modes and excluded.

    Pinned to the ``kernel`` backend: P1 measures the per-slot kernel
    against the pre-kernel scalar loops, and must keep doing so now
    that the default backend is the fused loop (P4 owns that
    comparison). A scalar-reference context still wins the tie.
    """
    model = build_model()
    protocol = repro.DynamicProtocol(
        model, scheduler, FRAME.rate, params=FRAME, rng=17
    )
    routing = repro.build_routing_table(model.network)
    injection = repro.uniform_pair_injection(
        routing, model, FRAME.rate, num_generators=8, rng=1017
    )
    simulation = repro.FrameSimulation(protocol, injection)
    with use_backend("kernel"):
        start = time.perf_counter()
        simulation.run(frames)
        seconds = time.perf_counter() - start
    return {
        "slots": frames * FRAME.frame_length,
        "delivered": len(protocol.delivered),
        "in_system": protocol.packets_in_system,
        "failures": protocol.potential.total_failures,
    }, seconds


def run_static(scheduler, budget: int, model_kwargs=None):
    """A static backlog drain on the 500-link model (run loop timed).

    Pinned to the ``kernel`` backend like :func:`run_stability`.
    """
    model = build_model(**(model_kwargs or {}))
    model.weight_matrix()  # build + validate W outside the timed region
    rng = np.random.default_rng(23)
    requests = list(rng.integers(0, NUM_LINKS, size=4000))
    with use_backend("kernel"):
        start = time.perf_counter()
        result = scheduler.run(
            model, requests, budget, rng=np.random.default_rng(29)
        )
        seconds = time.perf_counter() - start
    return {
        "slots": result.slots_used,
        "delivered": len(result.delivered),
    }, seconds


TIMING_REPEATS = 3


def _workload_row(name, runner, legacy_runner):
    """Time one workload three ways; verify all executed one schedule.

    Repetitions are interleaved across the three modes and the minimum
    wall-clock per mode is kept: the min is the standard noise-robust
    estimator (scheduling and cache pressure only ever add time), and
    interleaving means a slow window in a shared container degrades
    every mode's samples instead of biasing one side of the ratio.
    Outcomes must be identical across modes and repetitions (fixed
    seeds), which is asserted.
    """
    vec_value = ref_value = legacy_value = None
    vec_seconds = ref_seconds = legacy_seconds = float("inf")
    for _ in range(TIMING_REPEATS):
        value, seconds = runner()
        assert vec_value in (None, value), "vectorized outcome diverged"
        vec_value, vec_seconds = value, min(vec_seconds, seconds)
        with scalar_reference():
            value, seconds = runner()
        assert ref_value in (None, value), "kernel-scalar outcome diverged"
        ref_value, ref_seconds = value, min(ref_seconds, seconds)
        value, seconds = legacy_runner()
        assert legacy_value in (None, value), "legacy outcome diverged"
        legacy_value, legacy_seconds = value, min(legacy_seconds, seconds)
    assert vec_value == ref_value == legacy_value, (
        f"{name}: paths diverged — vectorized {vec_value}, "
        f"kernel-scalar {ref_value}, legacy {legacy_value}"
    )
    slots = vec_value["slots"]
    return {
        "name": name,
        "links": NUM_LINKS,
        "slots": slots,
        "delivered": vec_value["delivered"],
        "seconds_vectorized": vec_seconds,
        "seconds_scalar": legacy_seconds,
        "seconds_kernel_scalar_successes": ref_seconds,
        "slots_per_sec_vectorized": slots / vec_seconds,
        "slots_per_sec_scalar": slots / legacy_seconds,
        "speedup": legacy_seconds / vec_seconds,
    }


def run_experiment(frames: int = FRAMES, out_path=None, tags=None):
    workloads = [
        _workload_row(
            "stability-500link-kv",
            lambda: run_stability(KvScheduler(), frames),
            lambda: run_stability(LegacyKv(), frames),
        ),
        _workload_row(
            "static-decay-500link",
            lambda: run_static(DecayScheduler(), 1200),
            lambda: run_static(LegacyDecay(), 1200),
        ),
        _workload_row(
            # Steeper decay so the all-transmit slots partially succeed
            # (the flat-decay default would deadlock a non-adaptive
            # broadcast) — this row exercises the row-sum fast path.
            "static-singlehop-500link",
            lambda: run_static(
                SingleHopScheduler(),
                1200,
                dict(reach=40, base=0.5, exponent=1.5),
            ),
            lambda: run_static(
                LegacySingleHop(),
                1200,
                dict(reach=40, base=0.5, exponent=1.5),
            ),
        ),
    ]
    headline = workloads[0]
    payload = {
        "benchmark": "p1_slot_kernel",
        "created_unix": time.time(),
        "links": NUM_LINKS,
        "frames": frames,
        "workloads": workloads,
        "headline_speedup": headline["speedup"],
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if tags:
        payload.update(tags)
    if out_path is None:
        out_path = Path(__file__).resolve().parents[1] / "BENCH_p1.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [
            w["name"],
            w["slots"],
            f"{w['slots_per_sec_scalar']:,.0f}",
            f"{w['slots_per_sec_vectorized']:,.0f}",
            f"{w['speedup']:.1f}x",
        ]
        for w in workloads
    ]
    print_experiment(
        "P1",
        "Vectorized slot kernel: batched draws + cached submatrices vs "
        "the per-link scalar slot loop on 500 links",
        ["workload", "slots", "scalar slots/s", "vectorized slots/s",
         "speedup"],
        rows,
    )
    return payload


def test_p1_slot_kernel(benchmark):
    payload = once(benchmark, run_experiment)
    assert payload["headline_speedup"] >= 3.0, (
        "kernel speedup below the 3x acceptance floor: "
        f"{payload['headline_speedup']:.2f}x"
    )
