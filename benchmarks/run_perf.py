#!/usr/bin/env python
"""Run the perf-tagged benchmarks and write machine-readable BENCH_*.json.

Usage (from the repo root or the benchmarks/ directory):

    python benchmarks/run_perf.py [--quick] [--out-dir DIR]

Each perf bench runs with fixed seeds and writes one ``BENCH_<id>.json``
containing throughput (slots/sec), before/after wall-clock, speedup,
and peak RSS, so successive PRs accumulate a comparable perf
trajectory. ``--quick`` shrinks the workloads for a fast smoke signal
(numbers are then not comparable across machines or PRs — the JSON is
tagged accordingly).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_ROOT = _HERE.parent

# Make `repro` and the sibling bench modules importable when invoked as
# a plain script (no PYTHONPATH needed).
for path in (str(_ROOT / "src"), str(_HERE)):
    if path not in sys.path:
        sys.path.insert(0, path)


def _run_p1(quick: bool, out_dir: Path) -> dict:
    import bench_p1_slot_kernel

    frames = 3 if quick else bench_p1_slot_kernel.FRAMES
    return bench_p1_slot_kernel.run_experiment(
        frames=frames,
        out_path=out_dir / "BENCH_p1.json",
        tags={"quick_mode": bool(quick)},
    )


def _run_p2(quick: bool, out_dir: Path) -> dict:
    import bench_p2_packet_store

    frames = 4 if quick else bench_p2_packet_store.FRAMES
    return bench_p2_packet_store.run_experiment(
        frames=frames,
        out_path=out_dir / "BENCH_p2.json",
        tags={"quick_mode": bool(quick)},
    )


def _run_p3(quick: bool, out_dir: Path) -> dict:
    import bench_p3_sharded_sweep

    if quick:
        return bench_p3_sharded_sweep.run_experiment(
            frames=30,
            fractions=(0.5, 1.2),
            seeds=(0,),
            worker_counts=(2, 4),
            repeats=1,
            out_path=out_dir / "BENCH_p3.json",
            tags={"quick_mode": True},
        )
    return bench_p3_sharded_sweep.run_experiment(
        out_path=out_dir / "BENCH_p3.json",
        tags={"quick_mode": False},
    )


def _run_p4(quick: bool, out_dir: Path) -> dict:
    import bench_p4_runloop

    frames = 3 if quick else bench_p4_runloop.FRAMES
    return bench_p4_runloop.run_experiment(
        frames=frames,
        out_path=out_dir / "BENCH_p4.json",
        tags={"quick_mode": bool(quick)},
    )


def _run_p5(quick: bool, out_dir: Path) -> dict:
    import bench_p5_fleet

    if quick:
        return bench_p5_fleet.run_experiment(
            frames=25,
            networks=3,
            nodes=12,
            worker_counts=(2, 4),
            repeats=1,
            out_path=out_dir / "BENCH_p5.json",
            tags={"quick_mode": True},
        )
    return bench_p5_fleet.run_experiment(
        out_path=out_dir / "BENCH_p5.json",
        tags={"quick_mode": False},
    )


def _run_p6(quick: bool, out_dir: Path) -> dict:
    import bench_p6_checkpoint

    if quick:
        return bench_p6_checkpoint.run_experiment(
            frames=6,
            interval=3,
            repeats=1,
            out_path=out_dir / "BENCH_p6.json",
            tags={"quick_mode": True},
        )
    return bench_p6_checkpoint.run_experiment(
        out_path=out_dir / "BENCH_p6.json",
        tags={"quick_mode": False},
    )


def _run_p7(quick: bool, out_dir: Path) -> dict:
    import bench_p7_streaming

    if quick:
        return bench_p7_streaming.run_experiment(
            base_frames=500,
            long_factor=8,
            repeats=2,
            out_path=out_dir / "BENCH_p7.json",
            tags={"quick_mode": True},
        )
    return bench_p7_streaming.run_experiment(
        out_path=out_dir / "BENCH_p7.json",
        tags={"quick_mode": False},
    )


def _run_p8(quick: bool, out_dir: Path) -> dict:
    import bench_p8_campaign

    if quick:
        return bench_p8_campaign.run_experiment(
            frames=30,
            seeds=(0,),
            tolerance=0.25,
            repeats=1,
            out_path=out_dir / "BENCH_p8.json",
            tags={"quick_mode": True},
        )
    return bench_p8_campaign.run_experiment(
        out_path=out_dir / "BENCH_p8.json",
        tags={"quick_mode": False},
    )


def _run_p9(quick: bool, out_dir: Path) -> dict:
    import bench_p9_batched_fleet

    if quick:
        return bench_p9_batched_fleet.run_experiment(
            frames=20,  # the stability assessor's minimum horizon
            networks=4,
            repeats=1,
            out_path=out_dir / "BENCH_p9.json",
            tags={"quick_mode": True},
        )
    return bench_p9_batched_fleet.run_experiment(
        out_path=out_dir / "BENCH_p9.json",
        tags={"quick_mode": False},
    )


def _run_p10(quick: bool, out_dir: Path) -> dict:
    import bench_p10_compiled_wave

    if quick:
        return bench_p10_compiled_wave.run_experiment(
            sinr_frames=6,
            fleet_frames=20,  # the stability assessor's minimum horizon
            fleet_networks=4,
            repeats=1,
            out_path=out_dir / "BENCH_p10.json",
            tags={"quick_mode": True},
        )
    return bench_p10_compiled_wave.run_experiment(
        out_path=out_dir / "BENCH_p10.json",
        tags={"quick_mode": False},
    )


#: Registry of perf benches: id -> (runner(quick, out_dir) -> payload,
#: headline-speedup floor or None). The floor is per-bench: P1's
#: acceptance criterion is >= 3x, P2's is >= 2x; future benches
#: declare their own. P3's 2x-at-4-workers floor needs real cores, so
#: it is enforced CPU-conditionally by its pytest wrapper, not here.
#: P4's fused-numpy floor is 1.5x on any host; its numba floor (3x) is
#: numba-conditional and enforced by the pytest wrapper / CI lane.
#: P5 (the scenario fleet) is CPU-conditional like P3.
#: P6 (checkpointed execution) inverts the convention: its "speedup"
#: is plain/checkpointed wall-clock, so the 0.95 floor is an overhead
#: ceiling (~5%) rather than a scaling target.
#: P7 (streaming metrics) follows P6's convention: the headline is
#: streaming/full wall-clock (floor 0.95 = overhead ceiling); its
#: second floor — streaming peak RSS flat w.r.t. horizon — is asserted
#: by the bench itself (``streaming_rss_flat`` in BENCH_p7.json).
#: P8 (frontier bisection) counts simulations, not seconds: its 2x
#: floor (bisection vs fixed grid at equal boundary resolution) is
#: deterministic on any host, and the bench itself asserts the two
#: instruments agree on the boundary within one tolerance.
#: P9 (the batched fleet kernel) enforces its 2x-over-serial floor
#: unconditionally: batching spends no extra cores, so even the 1-CPU
#: container must deliver it (parity is asserted inside the bench).
#: P10 (the compiled wave engine) is numba-conditional like P4: its
#: headline (compiled SINR over fused numpy, floor 2x) is None without
#: numba, which skips the check here; the batch-JIT 1.3x floor is
#: enforced by its pytest wrapper on the CI numba lane. Parity — both
#: halves bit-identical to serial — is asserted inside the bench on
#: every host, numba or not.
PERF_BENCHES = {
    "p1": (_run_p1, 3.0),
    "p2": (_run_p2, 2.0),
    "p3": (_run_p3, None),
    "p4": (_run_p4, 1.5),
    "p5": (_run_p5, None),
    "p6": (_run_p6, 0.95),
    "p7": (_run_p7, 0.95),
    "p8": (_run_p8, 2.0),
    "p9": (_run_p9, 2.0),
    "p10": (_run_p10, 2.0),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrunken workloads: fast smoke signal, not comparable numbers",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        help=(
            "directory for BENCH_*.json (default: repo root; a quick "
            "run defaults to a temp dir so it cannot overwrite the "
            "committed full-run baseline)"
        ),
    )
    parser.add_argument(
        "--only",
        choices=sorted(PERF_BENCHES),
        action="append",
        help="run a subset of the perf benches (repeatable)",
    )
    args = parser.parse_args(argv)
    if args.out_dir is None:
        if args.quick:
            args.out_dir = Path(tempfile.mkdtemp(prefix="bench-quick-"))
        else:
            args.out_dir = _ROOT
    args.out_dir.mkdir(parents=True, exist_ok=True)

    selected = args.only or sorted(PERF_BENCHES)
    failures = []
    for bench_id in selected:
        runner, floor = PERF_BENCHES[bench_id]
        print(f"== perf bench {bench_id} ==")
        start = time.perf_counter()
        # The bench itself writes its tagged BENCH_*.json (single write).
        payload = runner(args.quick, args.out_dir)
        elapsed = time.perf_counter() - start
        headline = payload.get("headline_speedup")
        print(
            f"   wrote {args.out_dir / f'BENCH_{bench_id}.json'} in "
            f"{elapsed:.1f}s"
            + (f" (headline speedup {headline:.1f}x)" if headline else "")
        )
        if (
            floor is not None
            and headline is not None
            and headline < floor
            and not args.quick
        ):
            failures.append(bench_id)
    if failures:
        print(f"FAIL: speedup floor missed by: {', '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
