"""E12 — the abstract's summary: competitive ratios "between constant and
O(log^2 m)" across interference models.

The headline table of the paper, reproduced as one sweep: for each
model family, the certified injection rate of the derived protocol,
the empirical single-slot feasibility bound (what any protocol could
serve per slot), and the resulting competitive ratio at two network
sizes. The per-family *growth* between the sizes is the quantity the
paper bounds: flat-ish for packet routing / MAC / linear power;
polylog for the rest.
"""

import math

from _harness import once, print_experiment, transformed_decay

import repro
from repro.interference.builders import protocol_model_conflicts
from repro.sinr.weights import monotone_power_model
from repro.staticsched.kv import KvScheduler


def family_rows(num_nodes, seed):
    rows = {}

    # Packet routing (identity W): trivial scheduler, ratio ~ 2 (eps).
    net = repro.grid_network(num_nodes // 6 + 2, 6)
    model = repro.PacketRoutingModel(net)
    algorithm = repro.SingleHopScheduler()
    rows["packet routing"] = (net.size_m, model, algorithm)

    # MAC with ids.
    net = repro.mac_network(min(num_nodes, 12))
    rows["MAC (ids)"] = (
        net.size_m, repro.MultipleAccessChannel(net),
        repro.RoundRobinScheduler(),
    )

    # SINR, linear power.
    net = repro.random_sinr_network(num_nodes, rng=seed)
    model = repro.linear_power_model(net, alpha=3.0, beta=1.0, noise=0.02)
    rows["SINR linear power"] = (
        net.size_m, model, transformed_decay(net.size_m)
    )

    # SINR, monotone sub-linear power.
    model = monotone_power_model(
        net, repro.SquareRootPower(), alpha=3.0, beta=1.0, noise=0.02
    )
    rows["SINR sqrt power"] = (
        net.size_m,
        model,
        repro.TransformedAlgorithm(KvScheduler(), m=net.size_m,
                                   chi_scale=0.05),
    )

    # Conflict graph (protocol model).
    conflicts = protocol_model_conflicts(net, guard_factor=0.5)
    ordering = repro.length_ordering(net)
    model = repro.ConflictGraphModel(net, conflicts, ordering=ordering)
    rows["conflict graph"] = (
        net.size_m, model, transformed_decay(net.size_m)
    )
    return rows


def run_experiment():
    small = family_rows(14, seed=1)
    large = family_rows(30, seed=2)
    rows = []
    growths = {}
    for family in small:
        ratios = []
        for size_rows in (small, large):
            m, model, algorithm = size_rows[family]
            certified = repro.certified_rate(algorithm, m)
            upper = repro.feasible_measure_upper_bound(model, trials=16,
                                                       rng=3)
            ratios.append(upper / certified)
        m_small = small[family][0]
        m_large = large[family][0]
        # Growth exponent of the ratio in log m between the two sizes.
        growth = (
            math.log(ratios[1] / ratios[0])
            / math.log(math.log(m_large + 2) / math.log(m_small + 2))
            if ratios[0] > 0 and m_large > m_small
            else 0.0
        )
        growths[family] = growth
        rows.append(
            [family, m_small, f"{ratios[0]:.3g}", m_large,
             f"{ratios[1]:.3g}", f"{growth:+.1f}"]
        )
    print_experiment(
        "E12",
        "Abstract: competitive ratios between constant and O(log^2 m) — "
        "ratio growth exponent in log m per family",
        ["family", "m (small)", "ratio", "m (large)", "ratio",
         "(log m)-exponent"],
        rows,
    )
    return growths


def test_e12_summary(benchmark):
    growths = once(benchmark, run_experiment)
    # Exact-bound families stay flat.
    assert abs(growths["packet routing"]) < 1.0
    assert abs(growths["MAC (ids)"]) < 1.5
    # Everything stays polylog: exponents bounded (no polynomial blowup).
    for family, growth in growths.items():
        assert growth < 8.0, f"{family} ratio grows too fast"
