"""P6 — checkpointed execution vs the plain run loop.

The robustness tentpole: long fleet campaigns need crash durability,
which means snapshotting the full engine state (protocol RNG, packet
store, scheduler, injection, metrics) to disk every
``DEFAULT_SNAPSHOT_INTERVAL`` frames. Durability that taxes the run
loop would just get switched off, so the acceptance criterion is that
checkpointing at the default interval costs at most ~5% wall-clock on
the P4 headline workload (the 500-link store-mode stability run under
the KV scheduler).

The benchmark interleaves the plain run and the checkpointed run
(min-of-N, the P1..P5 noise-robust estimator), asserts the checkpointed
run's physics are identical to the plain run's, and additionally
verifies the actual robustness property: an interrupted run restored
from its snapshot finishes bit-identically to the uninterrupted one.

The headline charges the *directly timed* snapshot cost against the
plain wall-clock: ``t_plain / (t_plain + t_snapshots)``, floor 0.95
(≈ 5% overhead ceiling). A checkpointed run does exactly the plain
run's frames (chunked ``sim.run`` calls, parity-asserted identical)
plus the snapshot writes, so the snapshot time *is* the overhead — and
measuring it directly cancels the noise of the other ~97% of the run,
which on this container (same-process plain repeats spread ~1.6-2.4s)
otherwise drowns a few-percent delta in the end-to-end min-of-N. The
end-to-end checkpointed wall-clock is still measured and reported.

Results go to ``BENCH_p6.json`` (see ``benchmarks/run_perf.py``).
"""

from __future__ import annotations

import json
import os
import resource
import tempfile
import time
from pathlib import Path

from _harness import once, print_experiment
from bench_p1_slot_kernel import FRAME, NUM_LINKS, build_model

import repro
from repro.sim.checkpoint import (
    DEFAULT_SNAPSHOT_INTERVAL,
    load_checkpoint_into,
    run_with_checkpoints,
    save_checkpoint,
)
from repro.staticsched import KvScheduler

FRAMES = 100  # two default-interval snapshots: one mid-run, one final
TIMING_REPEATS = 5
OVERHEAD_FLOOR = 0.95  # headline t_plain / t_checkpointed must stay above


def _build_simulation():
    """The P4 headline workload: 500-link store-mode stability run."""
    model = build_model()
    routing = repro.build_routing_table(model.network)
    injection = repro.uniform_pair_injection(
        routing, model, FRAME.rate, num_generators=8, rng=1017
    )
    protocol = repro.DynamicProtocol(
        model, KvScheduler(), FRAME.rate, params=FRAME, rng=17,
        store=injection.store,
    )
    return repro.FrameSimulation(protocol, injection), protocol


def _outcome(simulation, protocol):
    return {
        "frames": simulation.frames_run,
        "delivered": len(protocol.delivered),
        "in_system": protocol.packets_in_system,
        "failures": protocol.potential.total_failures,
        "queue_series": list(simulation.metrics.queue_series),
    }


def _plain_run(frames: int):
    simulation, protocol = _build_simulation()
    start = time.perf_counter()
    simulation.run(frames)
    seconds = time.perf_counter() - start
    return seconds, _outcome(simulation, protocol)


def _checkpointed_run(frames: int, path: str, interval: int):
    """Returns (wall seconds, outcome, seconds spent inside saves)."""
    import repro.sim.checkpoint as ckpt_mod

    save_seconds = [0.0]
    original = ckpt_mod.save_checkpoint

    def timed_save(*args, **kwargs):
        t0 = time.perf_counter()
        original(*args, **kwargs)
        save_seconds[0] += time.perf_counter() - t0

    simulation, protocol = _build_simulation()
    ckpt_mod.save_checkpoint = timed_save
    try:
        start = time.perf_counter()
        run_with_checkpoints(simulation, frames, path, interval=interval)
        seconds = time.perf_counter() - start
    finally:
        ckpt_mod.save_checkpoint = original
    return seconds, _outcome(simulation, protocol), save_seconds[0]


def _resume_outcome(frames: int, path: str, interval: int):
    """Interrupt mid-run, restore onto a fresh build, finish."""
    interrupt = max(1, frames // 2)
    partial, _ = _build_simulation()
    run_with_checkpoints(partial, interrupt, path, interval=interval)
    simulation, protocol = _build_simulation()
    start = time.perf_counter()
    load_checkpoint_into(simulation, path)
    restore_seconds = time.perf_counter() - start
    simulation.run(frames - simulation.frames_run)
    return restore_seconds, _outcome(simulation, protocol)


def run_experiment(
    frames: int = FRAMES,
    interval: int = DEFAULT_SNAPSHOT_INTERVAL,
    repeats: int = TIMING_REPEATS,
    out_path=None,
    tags=None,
):
    tmp = tempfile.mkdtemp(prefix="bench-p6-")
    ckpt_path = os.path.join(tmp, "bench.ckpt")
    seconds = {"plain": float("inf"), "checkpointed": float("inf")}
    outcomes = {}
    # Untimed warm-up: the first save pays one-off import/JIT costs
    # (zipfile machinery, backend warm-up) that would otherwise show
    # up as phantom checkpoint overhead in the first timed repeat.
    warm_frames = min(4, frames)
    _plain_run(warm_frames)
    _checkpointed_run(warm_frames, ckpt_path, max(1, warm_frames // 2))
    snapshot_seconds = float("inf")
    for _ in range(repeats):
        plain_s, plain_outcome = _plain_run(frames)
        ckpt_s, ckpt_outcome, save_s = _checkpointed_run(
            frames, ckpt_path, interval
        )
        seconds["plain"] = min(seconds["plain"], plain_s)
        seconds["checkpointed"] = min(seconds["checkpointed"], ckpt_s)
        snapshot_seconds = min(snapshot_seconds, save_s)
        outcomes["plain"] = plain_outcome
        outcomes["checkpointed"] = ckpt_outcome
    assert outcomes["plain"] == outcomes["checkpointed"], (
        "checkpointing changed the physics"
    )
    checkpoint_bytes = os.path.getsize(ckpt_path)

    # One isolated snapshot write, timed (the per-interval cost).
    simulation, _ = _build_simulation()
    simulation.run(min(frames, interval))
    start = time.perf_counter()
    save_checkpoint(ckpt_path, simulation)
    write_seconds = time.perf_counter() - start

    # The robustness property itself: interrupt + restore == clean.
    restore_seconds, resumed_outcome = _resume_outcome(
        frames, ckpt_path, interval
    )
    assert resumed_outcome == outcomes["plain"], (
        "an interrupted+resumed run diverged from the clean run"
    )

    snapshots = max(1, -(-frames // interval))  # ceil: one per chunk
    overhead = snapshot_seconds / seconds["plain"]
    headline = 1.0 / (1.0 + overhead)
    slots = frames * FRAME.frame_length
    payload = {
        "benchmark": "p6_checkpoint",
        "created_unix": time.time(),
        "workload": {
            "name": "stability-500link-kv",
            "num_links": NUM_LINKS,
            "frames": frames,
            "frame_length": FRAME.frame_length,
            "slots": slots,
            "snapshot_interval": interval,
            "snapshots_written": snapshots,
        },
        "parity": "identical",
        "resume_parity": "identical",
        "seconds_plain": seconds["plain"],
        "seconds_checkpointed": seconds["checkpointed"],
        "snapshot_seconds": snapshot_seconds,
        "checkpoint_write_seconds": write_seconds,
        "checkpoint_restore_seconds": restore_seconds,
        "checkpoint_bytes": checkpoint_bytes,
        "overhead_fraction": overhead,
        "end_to_end_overhead_fraction": (
            seconds["checkpointed"] / seconds["plain"] - 1.0
        ),
        "headline_speedup": headline,
        "headline_floor": OVERHEAD_FLOOR,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if tags:
        payload.update(tags)
    if out_path is None:
        out_path = Path(__file__).resolve().parents[1] / "BENCH_p6.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")

    end_to_end_pct = payload["end_to_end_overhead_fraction"] * 100.0
    print_experiment(
        "P6",
        f"Checkpointed execution: {snapshots} snapshot(s) over {frames} "
        f"frames, interrupt+resume bit-identical",
        ["run", "seconds", "slots/sec", "overhead"],
        [
            ["plain", f"{seconds['plain']:.2f}",
             f"{slots / seconds['plain']:.0f}", "-"],
            ["checkpointed", f"{seconds['checkpointed']:.2f}",
             f"{slots / seconds['checkpointed']:.0f}",
             f"{end_to_end_pct:+.1f}% (noisy)"],
            [f"{snapshots} snapshots (headline)", f"{snapshot_seconds:.3f}",
             "-", f"+{overhead * 100:.1f}%"],
            ["snapshot write", f"{write_seconds:.3f}",
             f"({checkpoint_bytes / 1024:.0f} KiB)", "-"],
            ["snapshot restore", f"{restore_seconds:.3f}", "-", "-"],
        ],
    )
    return payload


def test_p6_checkpoint(benchmark):
    payload = once(benchmark, run_experiment)
    assert payload["parity"] == "identical"
    assert payload["resume_parity"] == "identical"
    assert payload["headline_speedup"] >= OVERHEAD_FLOOR, (
        f"checkpoint overhead above the ~5% ceiling: "
        f"{payload['overhead_fraction'] * 100:.1f}%"
    )
