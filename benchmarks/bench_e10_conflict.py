"""E10 — Theorem 19 & Section 7.2: conflict graphs with small inductive
independence.

Paper claims:
(a) the random 1/(4I)-transmission algorithm serves any request set in
    O(I log n) slots on a conflict-graph model (Theorem 19);
(b) with the ordering-based weight matrix, no protocol exceeds rate
    rho, the inductive independence number — and disk-graph-derived
    conflict graphs (protocol model, distance-2 matching) have small
    rho under the length ordering.

Instances: grid deployments (unit spacing), whose disk graphs have
*local* conflicts — the regime Section 7.2 is about. (A dense random
deployment at the connectivity radius makes the conflict graph nearly
complete; then the model degenerates to the multiple-access channel
and the 1/(4I) algorithm's measure is the packet count — legal, but
uninformative about locality.)

Reproduced rows: measured slots vs I*log(n) ratio for growing request
sets (expect a flat, bounded constant), the witnessed rho values for
both disk-graph models, and the single-slot feasibility bound compared
against rho.
"""

import math

import numpy as np

from _harness import once, print_experiment

import repro
from repro.interference.builders import (
    distance2_matching_conflicts,
    protocol_model_conflicts,
)


def conflict_instance(kind):
    net = repro.grid_network(5, 5)
    if kind == "protocol-model":
        conflicts = protocol_model_conflicts(net, guard_factor=0.5)
    else:
        conflicts = distance2_matching_conflicts(net, connectivity_radius=1.0)
    ordering = repro.length_ordering(net)
    model = repro.ConflictGraphModel(net, conflicts, ordering=ordering)
    rho = repro.inductive_independence_for_ordering(
        model.conflicts, ordering, exact_limit=16
    )
    return net, model, rho


def run_experiment():
    rows = []
    ratios = []
    rhos = {}
    for kind in ("protocol-model", "distance-2"):
        net, model, rho = conflict_instance(kind)
        rhos[kind] = rho
        upper = repro.feasible_measure_upper_bound(model, trials=16, rng=2)
        rows.append([kind, f"rho={rho}", f"feasible-I bound {upper:.1f}",
                     "", ""])
        algorithm = repro.DecayScheduler()
        rng = np.random.default_rng(4)
        for n in (40, 80, 160):
            requests = [int(rng.integers(model.num_links))
                        for _ in range(n)]
            measure = model.interference_measure(requests)
            budget = 4 * algorithm.budget_for(measure, n)
            slots = np.mean([
                algorithm.run(model, requests, budget, rng=s).slots_used
                for s in (1, 2)
            ])
            ratio = slots / (measure * math.log(n))
            ratios.append(ratio)
            rows.append(["", f"n={n}", f"I={measure:.1f}",
                         f"slots={slots:.0f}",
                         f"slots/(I ln n)={ratio:.2f}"])
    print_experiment(
        "E10",
        "Theorem 19: 1/(4I) algorithm uses O(I log n) slots on disk-graph "
        "conflict models; length ordering witnesses small rho",
        ["model", "a", "b", "c", "d"],
        rows,
    )
    return ratios, rhos


def test_e10_conflict_graphs(benchmark):
    ratios, rhos = once(benchmark, run_experiment)
    # O(I log n): the normalised cost is bounded and does not trend up.
    assert max(ratios) < 25.0
    assert ratios[2] < 2.0 * ratios[0] + 1.0
    assert ratios[5] < 2.0 * ratios[3] + 1.0
    # Disk-graph conflict models have small inductive independence
    # under the length ordering (constant; generous numeric cap).
    for kind, rho in rhos.items():
        assert rho <= 12, f"{kind}: rho={rho} unexpectedly large"