"""P7 — streaming metrics retention vs full history at long horizons.

The bounded-memory tentpole: ``metrics="streaming"`` folds every
per-frame series into O(1) accumulators (compensated sums, a ring
window, a quantile sketch) and periodically summarises-and-releases
delivered packets from the store, so a run's peak memory is a function
of the *live* state, not the horizon. Full retention keeps the whole
history — its memory grows linearly with frames, which is exactly what
locks 1e6+-frame soak runs out of reach.

The benchmark runs one cheap MAC workload at a short and a long
horizon (16x apart; the default long horizon is 1,000,000 frames —
10,000x the 100-frame default the P1..P6 benches use) in BOTH
retention modes, each in its OWN SUBPROCESS: ``ru_maxrss`` is a
per-process high-water mark and never goes down, so mode/horizon
combinations measured in one process would all report the largest
run's peak. The child prints one JSON line; the parent asserts parity
(identical ``CellResult`` records per horizon) and checks two floors:

* memory — streaming peak RSS must be decoupled from the horizon:
  its growth over the 16x span stays below ``RSS_COUPLING_TOLERANCE``
  (5%) of what FULL retention's RSS grows over the same span. The
  comparison is against full's growth, not streaming's own baseline,
  because the baseline is tens of MiB: allocator fragmentation over
  ~15k store compactions adds a few MiB that would fail a naive
  relative check while being plainly horizon-flat next to the
  hundreds of MiB a retained history costs (measured full run:
  92 -> 859 MiB over 62.5k -> 1e6 frames; streaming: 40 -> 48 MiB);
* throughput — the headline, streaming over full wall-clock, must
  stay >= 0.95 (the accumulators must not tax the run loop). Container
  wall-clock drifts run to run, so this ratio comes from a dedicated
  child interleaving both modes min-of-N at the short horizon; the
  long-horizon single-run frames/sec are reported alongside.

Results go to ``BENCH_p7.json`` (see ``benchmarks/run_perf.py``).
"""

from __future__ import annotations

import json
import math
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

BASE_FRAMES = 62_500
LONG_FACTOR = 16  # long horizon = 1,000,000 frames by default
TIMING_REPEATS = 3
THROUGHPUT_FLOOR = 0.95
# Streaming's long-horizon RSS growth must stay below this fraction of
# full retention's growth over the same 16x horizon span.
RSS_COUPLING_TOLERANCE = 0.05

_ROOT = Path(__file__).resolve().parents[1]


def _build_spec(frames: int, metrics: str):
    from repro.scenario import ScenarioSpec

    # The cheapest workload in the scenario registry (~5k frames/sec):
    # horizon dominates, per-frame cost doesn't.
    return ScenarioSpec(
        topology="mac",
        topology_kwargs={"num_stations": 4},
        model="mac",
        scheduler="round-robin",
        frames=frames,
        seed=1017,
        metrics=metrics,
    )


def _child_main(metrics: str, frames: int) -> None:
    """Run one (mode, horizon) cell and print its measurement as JSON."""
    # Untimed warm-up: first-run import/alloc costs would otherwise
    # show up as phantom throughput loss (the horizon runs are long,
    # but the short-horizon cells are seconds). Its memory footprint is
    # negligible next to the measured horizon.
    _build_spec(min(500, frames), metrics).run()
    spec = _build_spec(frames, metrics)
    start = time.perf_counter()
    record = spec.run()
    seconds = time.perf_counter() - start
    # The exact-parity contract: these fields are bit-identical across
    # retention modes at any horizon. The verdict's slope/tail numbers
    # switch to the windowed estimator once the horizon exceeds the
    # ring window — that recompute parity is pinned by
    # tests/test_streaming_parity.py, not here — but the stability
    # *decision* on this fixed workload must agree.
    exact = {
        "rate": record.rate,
        "throughput": record.throughput,
        "latency": record.latency,
        "frame_length": record.frame_length,
        "injected": record.injected,
        "delivered": record.delivered,
        "failures": record.failures,
        "stable": record.verdict.stable,
    }
    print(
        json.dumps(
            {
                "metrics": metrics,
                "frames": frames,
                "seconds": seconds,
                "frames_per_sec": frames / seconds,
                "peak_rss_kb": resource.getrusage(
                    resource.RUSAGE_SELF
                ).ru_maxrss,
                "exact_fields": exact,
            }
        )
    )


def _throughput_child_main(frames: int, repeats: int) -> None:
    """Interleaved min-of-N of both modes in ONE process.

    The single-run per-mode children are fine for peak RSS (which is
    deterministic) but container wall-clock drifts run to run, so the
    throughput ratio comes from interleaved repeats — the same
    noise-robust min-of-N estimator the P1..P6 benches use — inside one
    process so both modes see the same machine state.
    """
    _build_spec(min(500, frames), "full").run()
    best = {"full": math.inf, "streaming": math.inf}
    for _ in range(repeats):
        for metrics in ("full", "streaming"):
            spec = _build_spec(frames, metrics)
            start = time.perf_counter()
            spec.run()
            best[metrics] = min(best[metrics], time.perf_counter() - start)
    print(
        json.dumps(
            {
                "frames": frames,
                "repeats": repeats,
                "seconds_full": best["full"],
                "seconds_streaming": best["streaming"],
            }
        )
    )


def _spawn(argv: list) -> dict:
    """Spawn a fresh measurement process (ru_maxrss is monotone)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__)] + [str(a) for a in argv],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _measure(metrics: str, frames: int) -> dict:
    return _spawn(["--child", metrics, frames])


def run_experiment(
    base_frames: int = BASE_FRAMES,
    long_factor: int = LONG_FACTOR,
    repeats: int = TIMING_REPEATS,
    out_path=None,
    tags=None,
):
    from _harness import print_experiment

    long_frames = base_frames * long_factor
    cells = {}
    for metrics in ("full", "streaming"):
        for frames in (base_frames, long_frames):
            cells[(metrics, frames)] = _measure(metrics, frames)
    timing = _spawn(["--child-throughput", base_frames, repeats])

    # Parity: per horizon, every exact-contract field (throughput,
    # mean latency, counts, the stability decision) is identical
    # across retention modes.
    for frames in (base_frames, long_frames):
        assert (
            cells[("streaming", frames)]["exact_fields"]
            == cells[("full", frames)]["exact_fields"]
        ), f"streaming diverged from full retention at {frames} frames"

    rss = {key: cell["peak_rss_kb"] for key, cell in cells.items()}
    rss_growth_streaming = (
        rss[("streaming", long_frames)] / rss[("streaming", base_frames)]
    )
    rss_growth_full = rss[("full", long_frames)] / rss[("full", base_frames)]
    delta_streaming = (
        rss[("streaming", long_frames)] - rss[("streaming", base_frames)]
    )
    delta_full = rss[("full", long_frames)] - rss[("full", base_frames)]
    rss_coupling = delta_streaming / delta_full if delta_full > 0 else 0.0
    headline = timing["seconds_full"] / timing["seconds_streaming"]
    payload = {
        "benchmark": "p7_streaming",
        "created_unix": time.time(),
        "workload": {
            "name": "mac-roundrobin-4stations",
            "frames_short": base_frames,
            "frames_long": long_frames,
            "horizon_vs_bench_default": long_frames / 100.0,
        },
        "parity": "identical",
        "cells": {
            f"{metrics}@{frames}": {
                k: v for k, v in cell.items() if k != "exact_fields"
            }
            for (metrics, frames), cell in cells.items()
        },
        "rss_growth_streaming": rss_growth_streaming,
        "rss_growth_full": rss_growth_full,
        "rss_coupling": rss_coupling,
        "rss_coupling_tolerance": RSS_COUPLING_TOLERANCE,
        "streaming_rss_flat": rss_coupling <= RSS_COUPLING_TOLERANCE,
        "timing": timing,
        "headline_speedup": headline,
        "headline_floor": THROUGHPUT_FLOOR,
    }
    if tags:
        payload.update(tags)
    if out_path is None:
        out_path = _ROOT / "BENCH_p7.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")

    rows = []
    for (metrics, frames), cell in sorted(cells.items()):
        rows.append(
            [
                f"{metrics}@{frames}",
                f"{cell['seconds']:.1f}",
                f"{cell['frames_per_sec']:.0f}",
                f"{cell['peak_rss_kb'] / 1024:.0f} MiB",
            ]
        )
    rows.append(
        [
            f"RSS growth ({long_factor}x horizon)",
            "-",
            "-",
            f"x{rss_growth_streaming:.3f} (full: x{rss_growth_full:.3f}, "
            f"coupling {rss_coupling * 100:.1f}%)",
        ]
    )
    rows.append(
        [
            f"throughput (min of {repeats}, interleaved)",
            f"{timing['seconds_streaming']:.1f}",
            f"{base_frames / timing['seconds_streaming']:.0f}",
            f"x{headline:.3f} vs full",
        ]
    )
    print_experiment(
        "P7",
        f"Streaming retention: horizon-flat memory at {long_frames} "
        f"frames, throughput x{headline:.2f} vs full",
        ["cell", "seconds", "frames/sec", "peak RSS"],
        rows,
    )
    return payload


def test_p7_streaming(benchmark):
    from _harness import once

    payload = once(benchmark, run_experiment)
    assert payload["parity"] == "identical"
    assert payload["streaming_rss_flat"], (
        f"streaming peak RSS growth is coupled to the horizon: "
        f"{payload['rss_coupling'] * 100:.1f}% of full retention's "
        f"growth (tolerance {RSS_COUPLING_TOLERANCE * 100:.0f}%)"
    )
    assert payload["headline_speedup"] >= THROUGHPUT_FLOOR, (
        f"streaming throughput fell below {THROUGHPUT_FLOOR}x full "
        f"retention: x{payload['headline_speedup']:.3f}"
    )


if __name__ == "__main__":
    if len(sys.argv) == 4 and sys.argv[1] == "--child":
        sys.path.insert(0, str(_ROOT / "src"))
        _child_main(sys.argv[2], int(sys.argv[3]))
    elif len(sys.argv) == 4 and sys.argv[1] == "--child-throughput":
        sys.path.insert(0, str(_ROOT / "src"))
        _throughput_child_main(int(sys.argv[2]), int(sys.argv[3]))
    else:
        sys.path.insert(0, str(_ROOT / "src"))
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        run_experiment()
