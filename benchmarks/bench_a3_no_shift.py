"""A3 — ablation: the Section-5 random shift against bursty adversaries.

The shift exists because a bursty (w, lambda)-bounded adversary can
drop an entire window budget into one frame; without the shift those
packets all activate together and phase 1 sees a measure burst far
above its provisioning J. Theorem 11 is exactly the statement that the
uniform delay restores the stochastic analysis.

Reproduction: identical bursty adversary, shift on vs off, on a
tightly hand-provisioned protocol (phase-1 budget 30 per 100-slot
frame, average arrival measure 20; the per-window burst is 80). Expected: the shift
spreads each burst over ``delta_max`` frames and phase 1 absorbs it
(zero failures); the ablation takes each burst head-on and most of it
fails into the clean-up buffers.
"""

from _harness import once, print_experiment

import repro
from repro.core.frames import FrameParameters


def run_case(shift_enabled, frames=260):
    net = repro.grid_network(3, 3)
    model = repro.PacketRoutingModel(net)
    rate, window = 0.2, 400  # burst budget 80 >> phase-1 budget 30
    params = FrameParameters(
        frame_length=100,
        phase1_budget=30,
        cleanup_budget=20,
        measure_budget=30.0,
        epsilon=0.5,
        rate=rate,
        f_m=1.0,
        m=net.size_m,
    )
    protocol = repro.ShiftedDynamicProtocol(
        model, repro.SingleHopScheduler(), rate,
        window=window, params=params, shift_enabled=shift_enabled, rng=2,
    )
    routing = repro.build_routing_table(net)
    pairs = [(s, d) for s, d in routing.pairs() if s == 0]
    paths = [routing.path(s, d) for s, d in pairs]
    adversary = repro.BurstyAdversary(model, paths, window=window,
                                      rate=rate, rng=3)
    audit = repro.WindowAudit(model, window, rate)
    simulation = repro.FrameSimulation(protocol, adversary, audit=audit)
    simulation.run(frames)
    return protocol, simulation.metrics, audit


def run_experiment():
    shifted, metrics_shifted, audit = run_case(True)
    ablated, metrics_ablated, _ = run_case(False)
    rows = [
        [
            "with shift (Sec. 5)",
            shifted.delta_max,
            metrics_shifted.delivered_count(),
            shifted.inner.potential.total_failures,
            metrics_shifted.max_queue,
        ],
        [
            "no shift (A3)",
            0,
            metrics_ablated.delivered_count(),
            ablated.inner.potential.total_failures,
            metrics_ablated.max_queue,
        ],
    ]
    print_experiment(
        "A3",
        "ablation: bursty adversary (burst 80 vs phase-1 budget 30) — "
        f"audited worst window {audit.worst_window_measure:.1f} = w*lambda",
        ["configuration", "delta_max", "delivered", "phase-1 failures",
         "peak queue"],
        rows,
    )
    return shifted, ablated


def test_a3_shift_absorbs_bursts(benchmark):
    shifted, ablated = once(benchmark, run_experiment)
    # The ablation must actually suffer: a large share of every burst
    # fails. The shift must absorb all (or nearly all) of it.
    assert ablated.inner.potential.total_failures > 100
    assert (
        shifted.inner.potential.total_failures
        <= ablated.inner.potential.total_failures / 10
    )
