"""X6 — robustness beyond the paper's two injection models.

The stochastic model (Section 2.1) assumes slot-independence; the
window adversary bounds every window deterministically. Real traffic
sits in between: bursty but stationary. This experiment drives the
*unchanged* Section-4 protocol with two such processes at the same
long-run rate as an iid baseline:

* **Markov-modulated ON/OFF** generators (mean burst 25 slots) —
  violates property (b) (slot independence);
* **Poisson batch arrivals** — violates property (c) (one packet per
  generator per slot).

Expected: at a long-run rate well inside the provisioning, all three
remain stable — the frame protocol never uses independence *within* a
frame, only the per-frame arrival measure, so stationary burstiness is
absorbed exactly like the Chernoff analysis suggests. The experiment
also reports each process's measured vs declared rate (the
``empirical_usage`` audit).
"""

import numpy as np

from _harness import once, print_experiment

import repro
from repro.core.frames import FrameParameters
from repro.injection.markov import (
    MarkovModulatedInjection,
    PoissonBatchInjection,
    empirical_usage,
)
from repro.injection.stochastic import PathGenerator


def build_network():
    net = repro.grid_network(3, 3)
    model = repro.PacketRoutingModel(net)
    routing = repro.build_routing_table(net)
    paths = [routing.path(s, d) for s, d in routing.pairs()]
    return net, model, paths


def make_processes(model, paths, target_rate, seed):
    """Three processes with identical long-run mean usage."""
    # Per-path probability so that ||W . F||_inf == target_rate.
    probe = PoissonBatchInjection(
        [(p, 1.0 / len(paths)) for p in paths], batch_mean=1.0, rng=0
    )
    unit_rate = probe.injection_rate(model)
    scale = target_rate / unit_rate

    iid = repro.StochasticInjection(
        [
            PathGenerator([(p, scale / len(paths)) for p in paths])
        ] * 4,
        rng=seed,
    )
    # ON/OFF gating with pi_on = 1/2: double the ON-probabilities so
    # the long-run mean matches. Mean burst length 1/p_on_off = 25.
    markov = MarkovModulatedInjection(
        [
            PathGenerator([(p, 2.0 * scale / len(paths)) for p in paths])
        ] * 4,
        p_on_off=0.04,
        p_off_on=0.04,
        rng=seed,
    )
    poisson = PoissonBatchInjection(
        [(p, 1.0 / len(paths)) for p in paths],
        batch_mean=4.0 * scale,
        rng=seed,
    )
    # Note: iid uses 4 generators at scale, so its aggregate F is
    # 4 * scale / len(paths) per path — match Poisson's batch mean.
    return {"iid (Sec. 2.1)": iid, "Markov ON/OFF": markov,
            "Poisson batch": poisson}


def run_experiment():
    net, model, paths = build_network()
    target_rate = 0.05  # per-generator; aggregate 4x
    params = FrameParameters(
        frame_length=400,
        phase1_budget=120,
        cleanup_budget=40,
        measure_budget=60.0,
        epsilon=0.5,
        rate=4 * target_rate,
        f_m=1.0,
        m=net.size_m,
    )

    rows, results = [], {}
    for label, process in make_processes(model, paths, target_rate, 17).items():
        declared = process.injection_rate(model)
        audit_process = make_processes(model, paths, target_rate, 17)[label]
        measured = model.injection_norm(
            empirical_usage(audit_process, model.num_links, horizon=40_000)
        )
        protocol = repro.DynamicProtocol(
            model, repro.SingleHopScheduler(), rate=4 * target_rate,
            params=params, rng=9,
        )
        simulation = repro.FrameSimulation(protocol, process)
        simulation.run(160)
        metrics = simulation.metrics
        verdict = repro.assess_stability(
            metrics.queue_series,
            load_per_frame=max(1.0, metrics.injected_total / 160),
        )
        results[label] = (verdict, protocol)
        rows.append(
            [
                label,
                f"{declared:.3f}",
                f"{measured:.3f}",
                metrics.injected_total,
                protocol.potential.total_failures,
                f"{metrics.mean_queue():.1f}",
                verdict.stable,
            ]
        )
    print_experiment(
        "X6",
        "bursty-but-stationary injection: the unchanged protocol absorbs "
        "Markov bursts and Poisson batches at the iid-equivalent rate",
        ["process", "declared rate", "measured rate", "injected",
         "failures", "tail queue", "stable"],
        rows,
    )
    return results


def test_x6_markov_robustness(benchmark):
    results = once(benchmark, run_experiment)
    for label, (verdict, protocol) in results.items():
        assert verdict.stable, f"{label} unstable"
    # The bursty processes may fail a few packets on burst peaks but
    # the clean-up phase must keep the backlog near zero.
    for label, (verdict, protocol) in results.items():
        assert protocol.potential.value <= 10, label
