"""E2 — Theorem 3: bounded queues below the frame provisioning, blow-up above.

Paper claim: the dynamic protocol — frames of length ``T``, phase-1
budget sized for the provisioned measure ``J``, failed packets drained
by the clean-up lottery — keeps expected queues bounded whenever the
arriving measure per frame stays within the provisioning, and its
queues/potential must grow once arrivals exceed what phase 1 can serve.

Design note: sizing frames from the paper's constants leaves phase 1
with an ~8-12x budget slack (the advertised ``f`` of the decay
scheduler is conservative), so sweeping the injection rate against the
*certified* rate never crosses the true service ceiling at an
affordable scale — a probe at 16x the certified rate still shows zero
failures. The boundary experiment therefore uses a hand-built frame
(same two-phase structure, paper clean-up lottery) whose phase-1
budget implies a measurable service ceiling, and sweeps the *actual*
arrival measure across it: 0.5x / 1.0x the provisioned rate (stable)
vs ~4x (beyond the ceiling — failures pile up faster than the
``1/(2em)`` clean-up drain and the queue diverges).

Expected shape: drift ~ 0 and near-zero failures at <= 1x; sustained
failure accumulation and positive drift at 4x.
"""

from _harness import once, print_experiment, sinr_instance, transformed_decay

import repro
from repro.core.frames import FrameParameters


def run_experiment():
    net, model = sinr_instance(14, seed=2)
    algorithm = transformed_decay(net.size_m)
    routing = repro.build_routing_table(net)
    provisioned = 0.02  # measure per slot the frame is built for
    params = FrameParameters(
        frame_length=600,
        phase1_budget=500,
        cleanup_budget=80,
        measure_budget=18.0,  # (1 + eps) * provisioned * T
        epsilon=0.5,
        rate=provisioned,
        f_m=1.0,
        m=net.size_m,
    )

    rows, results = [], {}
    for factor, frames in ((0.5, 70), (1.0, 70), (4.0, 70)):
        injected_rate = factor * provisioned
        protocol = repro.DynamicProtocol(
            model, algorithm, provisioned, params=params, rng=3
        )
        injection = repro.uniform_pair_injection(
            routing, model, injected_rate, num_generators=8, rng=1003
        )
        simulation = repro.FrameSimulation(protocol, injection)
        simulation.run(frames)
        metrics = simulation.metrics
        verdict = repro.assess_stability(
            metrics.queue_series,
            load_per_frame=max(1.0, injected_rate * params.frame_length),
        )
        results[factor] = (verdict, protocol, metrics)
        rows.append(
            [
                f"{factor:.1f}x",
                f"{injected_rate:.3f}",
                metrics.injected_total,
                metrics.delivered_count(),
                f"{metrics.mean_queue():.1f}",
                f"{verdict.normalised_slope:+.4f}",
                protocol.potential.total_failures,
                verdict.stable,
            ]
        )
    print_experiment(
        "E2",
        "Theorem 3: two-phase frames stable within provisioning, diverging "
        "beyond the phase-1 service ceiling (T=600, T'=500, clean-up 1/m)",
        ["inject", "measure/slot", "injected", "delivered", "tail queue",
         "norm. drift", "failures", "stable"],
        rows,
    )
    return results


def test_e2_stability_boundary(benchmark):
    results = once(benchmark, run_experiment)
    for factor in (0.5, 1.0):
        verdict, protocol, metrics = results[factor]
        assert verdict.stable, f"unstable at {factor}x provisioned rate"
    overload_verdict, overload_protocol, overload_metrics = results[4.0]
    assert not overload_verdict.stable
    # The divergence mechanism is the one from the proof: failures
    # outpace the clean-up drain, so the potential is left positive.
    assert overload_protocol.potential.value > 0