"""X5 — the Section-6.1 open problem: a nearly-optimal static algorithm.

Paper: "in [26] an improved analysis of the algorithm in [33] has been
presented. It remains an open problem to fit this analysis into our
framework."

Empirical exploration of that open problem with the HM-style
contention-adaptive scheduler (constant multiplicative factor,
polylog additive term — the ICALP'11 shape):

* **X5a** — static scaling: on a fixed SINR network with growing
  request multiplicity, slots/I stays flat for the adaptive scheduler
  while the fixed-probability decay scheduler (O(I log n)) degrades.
* **X5b** — framework payoff: fed into the *unchanged* dynamic
  framework, the constant-f bound certifies an injection rate that is
  orders of magnitude above what the transformed KV algorithm
  certifies on the same network — and the protocol is stable when run
  at that rate. The transformation machinery accepts the improved
  bound as-is; what remains open in the paper is only the *proof*.
"""

import math

from _harness import once, print_experiment, sinr_instance

import repro
from repro.staticsched.hm import HmScheduler


def run_experiment():
    net, model = sinr_instance(14, seed=2)
    m = net.size_m

    # ---- X5a: slots/I as the instance densifies -------------------------
    rows = []
    hm_ratios, decay_ratios = [], []
    rng_seed = 0
    for n in (40, 120, 360):
        links = [i % 5 for i in range(n)]
        measure = model.interference_measure(links)
        hm = HmScheduler()
        hm_result = hm.run(model, links, budget=200 * n, rng=rng_seed)
        decay = repro.DecayScheduler()
        decay_result = decay.run(model, links, budget=200 * n,
                                 rng=rng_seed + 1)
        assert hm_result.all_delivered and decay_result.all_delivered
        hm_ratios.append(hm_result.slots_used / measure)
        decay_ratios.append(decay_result.slots_used / measure)
        rows.append(
            [
                n,
                f"{measure:.1f}",
                f"{hm_result.slots_used}",
                f"{hm_ratios[-1]:.2f}",
                f"{decay_result.slots_used}",
                f"{decay_ratios[-1]:.2f}",
            ]
        )
        rng_seed += 10
    print_experiment(
        "X5a",
        "HM-style adaptive scheduler: slots/I flat as n grows "
        "(vs the O(I log n) decay scheduler)",
        ["n", "I", "HM slots", "HM slots/I", "decay slots",
         "decay slots/I"],
        rows,
    )

    # ---- X5b: certified rates and stability at the improved rate --------
    hm_algorithm = HmScheduler()
    hm_rate = repro.certified_rate(hm_algorithm, m)
    kv_rate = repro.certified_rate(
        repro.TransformedAlgorithm(repro.KvScheduler(), m=m,
                                   chi_scale=0.05),
        m,
    )
    decay_rate = repro.certified_rate(
        repro.TransformedAlgorithm(repro.DecayScheduler(), m=m,
                                   chi_scale=0.05),
        m,
    )

    protocol = repro.DynamicProtocol(
        model, hm_algorithm, 0.5 * hm_rate, t_scale=0.001, rng=3
    )
    routing = repro.build_routing_table(net)
    injection = repro.uniform_pair_injection(
        routing, model, 0.5 * hm_rate, num_generators=8, rng=1003
    )
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(60)
    metrics = simulation.metrics
    verdict = repro.assess_stability(
        metrics.queue_series,
        load_per_frame=max(1.0, metrics.injected_total / 60),
    )
    rate_rows = [
        ["HM (native f = O(1))", f"{hm_rate:.4g}",
         f"{hm_rate / kv_rate:.0f}x KV"],
        ["transformed KV [33]", f"{kv_rate:.4g}", "1x"],
        ["transformed decay [Thm 19]", f"{decay_rate:.4g}",
         f"{decay_rate / kv_rate:.1f}x KV"],
        ["HM protocol @0.5x certified", f"{0.5 * hm_rate:.4g}",
         f"stable: {verdict.stable}, failures: "
         f"{protocol.potential.total_failures}"],
    ]
    print_experiment(
        "X5b",
        "framework payoff: the improved bound certifies a far higher "
        f"injection rate on the same m={m} network",
        ["algorithm", "certified rate", "note"],
        rate_rows,
    )
    return {
        "hm_ratios": hm_ratios,
        "decay_ratios": decay_ratios,
        "hm_rate": hm_rate,
        "kv_rate": kv_rate,
        "verdict": verdict,
        "protocol": protocol,
    }


def test_x5_hm_open_problem(benchmark):
    results = once(benchmark, run_experiment)
    # X5a: adaptive slots/I must not grow with n (allow 50% noise band),
    # and must beat the fixed-probability scheduler on dense instances.
    hm = results["hm_ratios"]
    decay = results["decay_ratios"]
    assert hm[-1] <= hm[0] * 1.5
    assert hm[-1] < decay[-1]
    # X5b: the improved bound certifies a strictly higher rate and the
    # protocol actually sustains half of it.
    assert results["hm_rate"] > 10 * results["kv_rate"]
    assert results["verdict"].stable
    assert results["protocol"].potential.total_failures == 0
