"""P10 — the compiled wave engine: SINR numba lane + batch-JIT driver.

Two halves, one lane (PR 10):

* **Compiled SINR evaluator** — the paper's gain-table SINR model
  joins the numba run loop. Headline: a ~500-link ``sinr-linear``
  stability run under the KV scheduler, timed per backend. The
  acceptance floor is **2x** compiled over the fused numpy lane,
  enforced whenever numba is importable (the CI numba lane); the
  container without numba records ``numba_present: false`` honestly
  and skips the compiled timing, like BENCH_p4 does for its 3x floor.
* **Batch-JIT wave driver** — the BENCH_p9 fleet shape (8 small
  ``sinr-linear`` networks under HM at ``chi = 0.002``) routed through
  :mod:`repro.staticsched._batchloop_numba`: one compiled call per
  wave round instead of numpy calls per event slot. Floor: **1.3x**
  over the numpy wave engine, numba-conditional for the same reason.
  (P9's unconditional 2x numpy-wave-over-serial floor is unchanged
  and stays enforced by bench_p9.)

Parity is asserted *inside* the bench, unconditionally, with or
without numba: the timed runs must produce identical outcomes across
backends/executors, and both compiled halves additionally replay a
reduced workload through the interpreted (stub) driver against the
scalar-reference / serial-executor ground truth — so the exact code
the JIT compiles is parity-checked on every host.

Results go to ``BENCH_p10.json`` (see ``benchmarks/run_perf.py``).
"""

from __future__ import annotations

import json
import resource
import time
from pathlib import Path

import numpy as np

from _harness import once, print_experiment, sinr_instance
from bench_p9_batched_fleet import build_specs, records_identical

import repro
from repro.core.frames import FrameParameters
from repro.scenario import run_scenario_fleet
from repro.scenario.batched import BatchedExecutor
from repro.sim.sharding import SerialExecutor
from repro.staticsched import KvScheduler
from repro.staticsched.runloop import (
    available_backends,
    numba_available,
    use_backend,
)

SINR_NODES = 40  # ~560 links on the fixed seed: the 500-link class
SINR_SEED = 7
SINR_RATE = 0.3
SINR_FRAMES = 30
FLEET_FRAMES = 40
FLEET_NETWORKS = 8
TIMING_REPEATS = 2

#: Floors enforced by the pytest wrapper whenever numba is importable
#: (the CI numba lane runs this bench; the plain container records
#: ``numba_present: false`` and skips them honestly).
SINR_FLOOR = 2.0
JIT_FLOOR = 1.3


# ----------------------------------------------------------------------
# Half 1: compiled SINR lane
# ----------------------------------------------------------------------


def _sinr_frame(links: int) -> FrameParameters:
    """BENCH_p1-shaped frame parameters sized to the SINR instance
    (bare KV has no network-size bound, so frames are explicit)."""
    return FrameParameters(
        frame_length=1000,
        phase1_budget=900,
        cleanup_budget=80,
        measure_budget=30.0,
        epsilon=0.5,
        rate=SINR_RATE,
        f_m=1.0,
        m=links,
    )


def _sinr_stability(backend: str, frames: int):
    """One ~500-link SINR stability run; only the frame loop is timed."""
    net, model = sinr_instance(SINR_NODES, SINR_SEED)
    frame = _sinr_frame(int(model.num_links))
    routing = repro.build_routing_table(net)
    injection = repro.uniform_pair_injection(
        routing, model, SINR_RATE, num_generators=8, rng=1017
    )
    protocol = repro.DynamicProtocol(
        model, KvScheduler(), SINR_RATE, params=frame, rng=17,
        store=injection.store,
    )
    simulation = repro.FrameSimulation(protocol, injection)
    with use_backend(backend):
        start = time.perf_counter()
        simulation.run(frames)
        seconds = time.perf_counter() - start
    outcome = {
        "delivered": len(protocol.delivered),
        "in_system": protocol.packets_in_system,
        "failures": protocol.potential.total_failures,
    }
    return outcome, seconds


def _compiled_stub_parity() -> str:
    """Replay the compiled SINR driver interpreted (stub mode) against
    the scalar reference on a small instance — run on every host, so
    the exact code numba compiles is parity-checked even without
    numba. Returns "identical" or raises."""
    from repro.staticsched import _runloop_numba as rn
    from repro.staticsched.kernel import scalar_reference
    from repro.staticsched.runloop import HmPolicy, KvPolicy
    from repro.staticsched.hm import HmScheduler

    net, model = sinr_instance(14, 3)
    rng = np.random.default_rng(5)
    requests = list(rng.integers(0, model.num_links, size=25))
    cases = [
        (KvScheduler, lambda s: KvPolicy(
            s._p0, s._p_min, s._backoff, s._recovery_slots
        )),
        (HmScheduler, lambda s: HmPolicy(s._chi)),
    ]
    for scheduler_cls, policy_factory in cases:
        scheduler = scheduler_cls()
        budget = min(
            scheduler.budget_for(
                model.interference_measure(requests), len(requests)
            ),
            300,
        )
        gen_ref = np.random.default_rng(6)
        with scalar_reference():
            reference = scheduler_cls().run(
                model, requests, budget, rng=gen_ref
            )
        gen = np.random.default_rng(6)
        got = rn.run_compiled(
            policy_factory(scheduler), model, requests, budget, gen,
            False,
        )
        assert got.delivered == reference.delivered
        assert got.remaining == reference.remaining
        assert got.slots_used == reference.slots_used
        assert gen.bit_generator.state == gen_ref.bit_generator.state
    return "identical"


# ----------------------------------------------------------------------
# Half 2: batch-JIT wave driver on the BENCH_p9 fleet shape
# ----------------------------------------------------------------------


def _fleet_run(specs, mode: str):
    """One fleet pass: 'serial', 'wave' (numpy engine) or 'jit'."""
    import repro.scenario.batched as batched_mod

    if mode == "serial":
        start = time.perf_counter()
        result = run_scenario_fleet(specs, SerialExecutor())
        return result, time.perf_counter() - start
    if mode == "wave":
        # Suppress the JIT route so the numpy wave engine is timed
        # even where numba is installed.
        original = batched_mod.jit_group_supported
        batched_mod.jit_group_supported = lambda *a, **k: False
        try:
            start = time.perf_counter()
            result = run_scenario_fleet(specs, BatchedExecutor(strict=True))
            return result, time.perf_counter() - start
        finally:
            batched_mod.jit_group_supported = original
    # 'jit': the production route — backend auto resolves numba, so
    # eligible groups take the compiled wave driver on their own.
    start = time.perf_counter()
    result = run_scenario_fleet(specs, BatchedExecutor(strict=True))
    return result, time.perf_counter() - start


def _jit_stub_parity() -> str:
    """Force a reduced fleet through the batch-JIT driver interpreted
    (stub mode) and require serial-identical records. Returns
    "identical" or raises."""
    import repro.scenario.batched as batched_mod
    from repro.staticsched import _runloop_numba as rn
    from repro.staticsched._batchloop_numba import run_batched_streams_jit

    specs = build_specs(frames=20, networks=3)
    serial = run_scenario_fleet(specs, SerialExecutor())
    saved_flag = rn.NUMBA_AVAILABLE
    saved_engine = batched_mod.run_batched_streams
    rn.NUMBA_AVAILABLE = True  # let supported() admit the stub driver
    batched_mod.run_batched_streams = run_batched_streams_jit
    try:
        batched = run_scenario_fleet(specs, BatchedExecutor(strict=True))
    finally:
        rn.NUMBA_AVAILABLE = saved_flag
        batched_mod.run_batched_streams = saved_engine
    assert records_identical(serial.records, batched.records), (
        "batch-JIT (stub) fleet records diverged from serial"
    )
    assert serial.summary == batched.summary
    return "identical"


# ----------------------------------------------------------------------
# The experiment
# ----------------------------------------------------------------------


def run_experiment(
    sinr_frames: int = SINR_FRAMES,
    fleet_frames: int = FLEET_FRAMES,
    fleet_networks: int = FLEET_NETWORKS,
    repeats: int = TIMING_REPEATS,
    out_path=None,
    tags=None,
):
    numba_present = numba_available()

    # -- half 1: SINR stability, per backend (interleaved min-of-N) --
    backends = [
        name for name in available_backends()
        if name not in ("scalar", "kernel")
    ]
    sinr_secs = {name: float("inf") for name in backends}
    sinr_outcomes = {}
    for _ in range(repeats):
        for backend in backends:
            outcome, seconds = _sinr_stability(backend, sinr_frames)
            reference = sinr_outcomes.setdefault(backend, outcome)
            assert reference == outcome, (
                f"{backend}: SINR outcome diverged across repetitions"
            )
            sinr_secs[backend] = min(sinr_secs[backend], seconds)
    first = next(iter(sinr_outcomes))
    for backend, outcome in sinr_outcomes.items():
        assert outcome == sinr_outcomes[first], (
            f"SINR backends diverged: {first} vs {backend}"
        )
    sinr_speedup = (
        sinr_secs["numpy"] / sinr_secs["numba"]
        if "numba" in sinr_secs else None
    )
    compiled_stub_parity = _compiled_stub_parity()

    # -- half 2: fleet wave vs batch-JIT (interleaved min-of-N) ------
    specs = build_specs(fleet_frames, fleet_networks)
    fleet_modes = ["serial", "wave"] + (["jit"] if numba_present else [])
    fleet_secs = {mode: float("inf") for mode in fleet_modes}
    fleet_results = {}
    for _ in range(repeats):
        for mode in fleet_modes:
            result, seconds = _fleet_run(specs, mode)
            fleet_secs[mode] = min(fleet_secs[mode], seconds)
            previous = fleet_results.setdefault(mode, result)
            assert records_identical(
                previous.records, result.records
            ), f"fleet '{mode}' records diverged across repetitions"
            fleet_results[mode] = result
    baseline = fleet_results["serial"]
    for mode in fleet_modes:
        assert records_identical(
            baseline.records, fleet_results[mode].records
        ), f"fleet '{mode}' is not record-identical to serial"
        assert fleet_results[mode].summary == baseline.summary
    jit_speedup = (
        fleet_secs["wave"] / fleet_secs["jit"]
        if "jit" in fleet_secs else None
    )
    jit_stub_parity = _jit_stub_parity()

    net, model = sinr_instance(SINR_NODES, SINR_SEED)
    payload = {
        "benchmark": "p10_compiled_wave",
        "created_unix": time.time(),
        "numba_present": numba_present,
        "sinr_workload": {
            "name": f"sinr-stability-{model.num_links}link-kv",
            "nodes": SINR_NODES,
            "links": int(model.num_links),
            "frames": sinr_frames,
            "rate": SINR_RATE,
            "seconds": sinr_secs,
            **sinr_outcomes[first],
        },
        "fleet_workload": {
            "name": "batched-fleet-sinr-linear-hm (BENCH_p9 shape)",
            "frames": fleet_frames,
            "networks": fleet_networks,
            "seconds": fleet_secs,
        },
        "sinr_parity": "identical",
        "fleet_parity": "identical",
        "compiled_stub_parity": compiled_stub_parity,
        "jit_stub_parity": jit_stub_parity,
        "sinr_speedup": sinr_speedup,
        "jit_speedup": jit_speedup,
        "headline_speedup": sinr_speedup,
        "sinr_floor": SINR_FLOOR,
        "jit_floor": JIT_FLOOR,
        "floors_conditional_on_numba": True,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if tags:
        payload.update(tags)
    if out_path is None:
        out_path = Path(__file__).resolve().parents[1] / "BENCH_p10.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [
            payload["sinr_workload"]["name"],
            f"{sinr_secs['numpy']:.2f}",
            f"{sinr_secs['numba']:.2f}" if "numba" in sinr_secs else "-",
            f"{sinr_speedup:.2f}x" if sinr_speedup else "n/a (no numba)",
            compiled_stub_parity,
        ],
        [
            payload["fleet_workload"]["name"],
            f"{fleet_secs['wave']:.2f}",
            f"{fleet_secs['jit']:.2f}" if "jit" in fleet_secs else "-",
            f"{jit_speedup:.2f}x" if jit_speedup else "n/a (no numba)",
            jit_stub_parity,
        ],
    ]
    print_experiment(
        "P10",
        "Compiled wave engine: SINR gain-table numba lane + batch-JIT "
        "fleet driver, bit-identical to serial "
        f"(numba {'present' if numba_present else 'absent'})",
        ["workload", "numpy secs", "numba secs", "speedup",
         "stub parity"],
        rows,
    )
    return payload


def test_p10_compiled_wave(benchmark):
    payload = once(benchmark, run_experiment)
    # Parity is unconditional: timed runs agreed across lanes, and the
    # stub replays matched the scalar reference / serial executor.
    assert payload["sinr_parity"] == "identical"
    assert payload["fleet_parity"] == "identical"
    assert payload["compiled_stub_parity"] == "identical"
    assert payload["jit_stub_parity"] == "identical"
    # The floors bind wherever numba is importable (the CI numba lane).
    if payload["numba_present"]:
        assert payload["sinr_speedup"] >= SINR_FLOOR, (
            f"compiled SINR lane below the {SINR_FLOOR}x floor: "
            f"{payload['sinr_speedup']:.2f}x"
        )
        assert payload["jit_speedup"] >= JIT_FLOOR, (
            f"batch-JIT wave driver below the {JIT_FLOOR}x floor: "
            f"{payload['jit_speedup']:.2f}x"
        )
