"""P5 — the multi-network fleet runner vs the serial scenario loop.

The scaling tentpole after P3: the sharded sweep parallelised the
(rate, seed) cells of *one* network, but the paper's claims quantify
over *distributions of networks* — an honest data point is a fleet of
independent topology draws, and the serial loop runs them one after
another in one process. The scenario layer (``repro.scenario``)
describes each network as a picklable ``ScenarioSpec``;
``run_scenario_fleet`` maps the fleet over a process pool, one worker
per network, each worker drawing and building its own topology from
the spec's seed, and folds the per-network records through the same
aggregation — so the only thing an executor changes is wall-clock.

Workload: the ``sinr-linear`` preset (Corollary 12's regime) at 8
distinct random geometric instances — seeds 0..7, 20 nodes each, run
at 0.7x certified rate for 60 frames. Network *construction* (BFS
routing, affectance matrices) happens inside the workers too, which is
exactly what the sharded sweep could not parallelise.

The benchmark runs the same spec list serially and at 1, 2, and 4
process workers, asserts every configuration produces identical
per-network records, and reports networks/sec. The headline is the
4-worker speedup over serial; the acceptance floor is 2x, which needs
real CPUs — the pytest wrapper enforces it when >= 4 cores are
available and records ``cpu_count`` in the JSON either way, so a
1-core container documents overhead honestly instead of faking
scaling.

Results go to ``BENCH_p5.json`` (see ``benchmarks/run_perf.py``).
"""

from __future__ import annotations

import json
import math
import resource
import time
from pathlib import Path

import pytest

from _harness import once, print_experiment

from repro.scenario import ScenarioSpec, preset_spec, run_scenario_fleet
from repro.sim.sharding import (
    ProcessExecutor,
    SerialExecutor,
    default_worker_count,
)

PRESET = "sinr-linear"
NODES = 20
FRAMES = 60
RATE_FRACTION = 0.7
NETWORKS = 8
WORKER_COUNTS = (1, 2, 4)
HEADLINE_WORKERS = 4
TIMING_REPEATS = 2


def build_specs(
    frames: int = FRAMES, networks: int = NETWORKS, nodes: int = NODES
):
    specs = [
        preset_spec(
            PRESET,
            nodes=nodes,
            seed=seed,
            frames=frames,
            rate=RATE_FRACTION,
        )
        for seed in range(networks)
    ]
    # Round-trip through JSON: the fleet must scale on exactly the
    # serialized form a spec file would carry.
    return [ScenarioSpec.from_json(spec.to_json()) for spec in specs]


def records_identical(left, right) -> bool:
    """Per-network CellResult equality, NaN-aware on latency."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if (a.rate_index, a.rate, a.seed, a.verdict, a.tail_queue,
                a.throughput, a.frame_length, a.injected, a.delivered,
                a.failures) != (b.rate_index, b.rate, b.seed, b.verdict,
                                b.tail_queue, b.throughput, b.frame_length,
                                b.injected, b.delivered, b.failures):
            return False
        if not (
            a.latency == b.latency
            or (math.isnan(a.latency) and math.isnan(b.latency))
        ):
            return False
    return True


def run_experiment(
    frames: int = FRAMES,
    networks: int = NETWORKS,
    nodes: int = NODES,
    worker_counts=WORKER_COUNTS,
    repeats: int = TIMING_REPEATS,
    out_path=None,
    tags=None,
):
    specs = build_specs(frames, networks, nodes)
    executors = [("serial", SerialExecutor())] + [
        (f"process-{count}", ProcessExecutor(workers=count))
        for count in worker_counts
    ]
    seconds = {name: float("inf") for name, _ in executors}
    records = {}
    # Interleaved min-of-N (the P1..P4 noise-robust estimator); every
    # configuration must reproduce the identical fleet records.
    for _ in range(repeats):
        for name, executor in executors:
            start = time.perf_counter()
            result = run_scenario_fleet(specs, executor)
            seconds[name] = min(seconds[name], time.perf_counter() - start)
            assert name not in records or records_identical(
                records[name].records, result.records
            ), f"{name} records diverged between repeats"
            records[name] = result
    baseline = records["serial"]
    for name, _ in executors:
        assert records_identical(
            baseline.records, records[name].records
        ), f"fleet '{name}' is not record-identical to serial"
        assert records[name].summary == baseline.summary

    worker_rows = []
    for count in worker_counts:
        name = f"process-{count}"
        worker_rows.append(
            {
                "workers": count,
                "seconds": seconds[name],
                "networks_per_sec": networks / seconds[name],
                "speedup": seconds["serial"] / seconds[name],
            }
        )
    headline = seconds["serial"] / seconds[f"process-{HEADLINE_WORKERS}"]
    payload = {
        "benchmark": "p5_fleet",
        "created_unix": time.time(),
        "cpu_count": default_worker_count(),
        "workload": {
            "name": f"fleet-{PRESET}-{nodes}nodes",
            "preset": PRESET,
            "nodes": nodes,
            "frames": frames,
            "rate_fraction": RATE_FRACTION,
            "networks": networks,
            "distinct_topologies": True,
        },
        "parity": "identical",
        "seconds_serial": seconds["serial"],
        "networks_per_sec_serial": networks / seconds["serial"],
        "workers": worker_rows,
        "headline_workers": HEADLINE_WORKERS,
        "headline_speedup": headline,
        "stable_fraction": baseline.summary.stable_fraction,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if tags:
        payload.update(tags)
    if out_path is None:
        out_path = Path(__file__).resolve().parents[1] / "BENCH_p5.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")

    rows = [["serial", 1, f"{seconds['serial']:.2f}",
             f"{networks / seconds['serial']:.2f}", "1.0x"]]
    for row in worker_rows:
        rows.append(
            [
                "process",
                row["workers"],
                f"{row['seconds']:.2f}",
                f"{row['networks_per_sec']:.2f}",
                f"{row['speedup']:.2f}x",
            ]
        )
    print_experiment(
        "P5",
        f"Scenario fleet runner: {networks} independent networks on "
        f"{default_worker_count()} CPU(s), record-identical to serial",
        ["executor", "workers", "seconds", "networks/sec", "speedup"],
        rows,
    )
    return payload


def test_p5_fleet(benchmark):
    payload = once(benchmark, run_experiment)
    # Parity is unconditional: every executor configuration reproduced
    # the serial records (run_experiment asserts it network for
    # network, summary included).
    assert payload["parity"] == "identical"
    cpus = payload["cpu_count"]
    if cpus >= HEADLINE_WORKERS:
        assert payload["headline_speedup"] >= 2.0, (
            f"fleet speedup below the 2x acceptance floor at "
            f"{HEADLINE_WORKERS} workers: "
            f"{payload['headline_speedup']:.2f}x"
        )
    else:
        pytest.skip(
            f"scaling floor needs >= {HEADLINE_WORKERS} CPUs, have "
            f"{cpus}; parity was still enforced"
        )
