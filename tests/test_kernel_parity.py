"""Run-loop backends vs the scalar reference path.

Three layers of verification:

1. **Full-run parity** — every scheduler is run per *backend* from
   the same seed on the same instance: the ``kernel`` per-slot path
   (batch evaluators, cached submatrices), the fused ``numpy``
   backend (chunked draws, sparse bookkeeping, inline evaluators),
   the ``numba`` backend when numba is installed, and the scalar
   reference inside ``kernel.scalar_reference()`` (one scalar
   ``successes()`` call per slot). All ``RunResult``\\ s — delivered
   order, remaining set, slots used, full slot history — must be
   identical, which also pins down that every backend consumes the
   exact same RNG stream (the chunk-drawn backends must rewind their
   overdraw to the per-slot generator position).
2. **Predicate parity** — ``successes_mask`` must agree with
   ``successes`` on random active sets for every model, including a
   hypothesis sweep over random weight matrices for the affectance
   criterion.
3. **Boundary parity** — crafted instances whose accumulated impact
   lands exactly on the affectance threshold, forcing the fused and
   compiled backends through their exact-summation guard paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interference.builders import node_constraint_conflicts
from repro.interference.conflict import ConflictGraphModel
from repro.interference.jamming import JammedModel, PeriodicBurstPattern
from repro.interference.mac import MultipleAccessChannel
from repro.interference.matrix_model import (
    AffectanceThresholdModel,
    ExplicitMatrixModel,
)
from repro.interference.packet_routing import PacketRoutingModel
from repro.interference.unreliable import UnreliableModel
from repro.network.topology import (
    grid_network,
    mac_network,
    random_sinr_network,
)
from repro.sinr.weights import linear_power_model
from repro.staticsched import (
    DecayScheduler,
    FkvScheduler,
    HmScheduler,
    KvScheduler,
    MacBackoffScheduler,
    RoundRobinScheduler,
    SingleHopScheduler,
)
from repro.staticsched.kernel import scalar_reference
from repro.staticsched.runloop import available_backends, use_backend


def _random_weights(m: int, seed: int, scale: float = 0.35) -> np.ndarray:
    rng = np.random.default_rng(seed)
    matrix = rng.random((m, m)) * scale
    np.fill_diagonal(matrix, 1.0)
    return matrix


def _affectance_model():
    net = mac_network(10)  # any 10-link network; W carries the structure
    return AffectanceThresholdModel(net, _random_weights(10, seed=11))


def _conflict_model():
    net = grid_network(3, 3)
    return ConflictGraphModel(net, node_constraint_conflicts(net))


def _sinr_model():
    net = random_sinr_network(12, rng=3)
    return linear_power_model(net, alpha=3.0, beta=1.0, noise=0.02)


def _unreliable_model():
    return UnreliableModel(_affectance_model(), 0.35, rng=77)


def _jammed_model():
    return JammedModel(
        _affectance_model(),
        PeriodicBurstPattern(period=5, burst=2),
        targets=[0, 2, 4, 6],
    )


def _explicit_model():
    """A model with NO vectorized overrides: exercises the base
    ``successes_mask`` fallback and the default ``MaskBatchEvaluator``
    — the path every third-party model subclass gets for free."""
    weights = _random_weights(8, seed=19)

    def predicate(transmitting):
        # At most 2 simultaneous low-id links succeed (arbitrary but
        # deterministic semantics independent of W).
        chosen = sorted(transmitting)[:2]
        return set(chosen)

    return ExplicitMatrixModel(mac_network(8), weights, predicate)


MODEL_FACTORIES = {
    "packet-routing": lambda: PacketRoutingModel(grid_network(3, 3)),
    "mac": lambda: MultipleAccessChannel(mac_network(5)),
    "conflict": _conflict_model,
    "affectance": _affectance_model,
    "sinr": _sinr_model,
    "unreliable": _unreliable_model,
    "jammed": _jammed_model,
    "explicit-fallback": _explicit_model,
}

KERNEL_SCHEDULERS = {
    "kv": lambda: KvScheduler(),
    "decay": lambda: DecayScheduler(),
    "fkv": lambda: FkvScheduler(),
    "hm": lambda: HmScheduler(),
    "single-hop": lambda: SingleHopScheduler(),
}


def _run_once(scheduler_factory, model_factory, seed, record_history=True):
    """One seeded run; fresh model + scheduler so stateful wrappers
    (loss RNG, jammer clock) replay identically in both modes."""
    model = model_factory()
    scheduler = scheduler_factory()
    rng = np.random.default_rng(seed)
    requests = list(rng.integers(0, model.num_links, size=25))
    measure = model.interference_measure(requests)
    budget = min(scheduler.budget_for(measure, len(requests)), 400)
    return scheduler.run(
        model,
        requests,
        budget,
        rng=np.random.default_rng(seed + 1),
        record_history=record_history,
    )


#: Concrete non-reference backends runnable here ("numba" only rides
#: along when numba is importable — the CI numba lane covers it).
PARITY_BACKENDS = tuple(
    name for name in available_backends() if name != "scalar"
)


@pytest.mark.parametrize("backend", PARITY_BACKENDS)
@pytest.mark.parametrize("model_name", sorted(MODEL_FACTORIES))
@pytest.mark.parametrize("sched_name", sorted(KERNEL_SCHEDULERS))
def test_full_run_parity(sched_name, model_name, backend):
    scheduler_factory = KERNEL_SCHEDULERS[sched_name]
    model_factory = MODEL_FACTORIES[model_name]
    with use_backend(backend):
        run = _run_once(scheduler_factory, model_factory, seed=5)
    with scalar_reference():
        reference = _run_once(scheduler_factory, model_factory, seed=5)
    assert run.delivered == reference.delivered
    assert run.remaining == reference.remaining
    assert run.slots_used == reference.slots_used
    assert run.history == reference.history


@pytest.mark.parametrize("sched_name", ["mac-backoff", "round-robin"])
def test_mac_only_schedulers_unaffected_by_reference_mode(sched_name):
    """The MAC-specialised schedulers bypass the kernel; reference mode
    must be a no-op for them."""
    factory = {
        "mac-backoff": lambda: MacBackoffScheduler(),
        "round-robin": lambda: RoundRobinScheduler(),
    }[sched_name]
    model_factory = MODEL_FACTORIES["mac"]
    vectorized = _run_once(factory, model_factory, seed=9)
    with scalar_reference():
        reference = _run_once(factory, model_factory, seed=9)
    assert vectorized.delivered == reference.delivered
    assert vectorized.remaining == reference.remaining
    assert vectorized.slots_used == reference.slots_used
    assert vectorized.history == reference.history


@pytest.mark.parametrize("model_name", sorted(MODEL_FACTORIES))
def test_successes_mask_matches_successes(model_name):
    """Random active sets: the batch predicate equals the scalar one.

    Stateful wrappers (loss coins, jammer clock) are compared across
    twin instances so both predicates consume identical streams.
    """
    factory = MODEL_FACTORIES[model_name]
    rng = np.random.default_rng(123)
    mask_model = factory()
    scalar_model = factory()
    m = mask_model.num_links
    for _ in range(60):
        active = rng.random(m) < rng.uniform(0.0, 1.0)
        got = mask_model.successes_mask(active)
        expected = scalar_model.successes(
            [int(e) for e in np.flatnonzero(active)]
        )
        assert set(np.flatnonzero(got).tolist()) == expected
        # Successes are always a subset of the active set.
        assert not (got & ~active).any()


def test_mac_backoff_bincount_stage1_matches_bucket_walk():
    """The no-history bincount sifting path (the production path) must
    serve the same packets in the same order as the history-recording
    bucket walk, from the same seed.

    The budget is capped inside stage 1 so the comparison is exact:
    stage 2 legitimately diverges between history modes (the recording
    branch draws extra `choice` samples).
    """
    import math

    model = MODEL_FACTORIES["mac"]()
    scheduler = MacBackoffScheduler()
    rng = np.random.default_rng(31)
    # Stage 1 only engages above the stage-2 takeover population
    # (~1100 packets at the default phi/delta), so go big.
    requests = list(rng.integers(0, model.num_links, size=3000))
    n = len(requests)
    factor = scheduler._survival_factor()
    stage1_total = sum(
        max(1, math.floor(factor**i * n))
        for i in range(1, scheduler._stage1_rounds(n) + 1)
    )
    assert stage1_total > 2, "instance too small to exercise stage 1"
    budget = stage1_total - 1  # stays inside stage 1, cuts a round short
    fast = scheduler.run(
        model, requests, budget, rng=np.random.default_rng(8)
    )
    slow = scheduler.run(
        model,
        requests,
        budget,
        rng=np.random.default_rng(8),
        record_history=True,
    )
    assert fast.delivered == slow.delivered
    assert fast.remaining == slow.remaining
    assert fast.slots_used == slow.slots_used


def test_successes_mask_empty_and_shape():
    model = _affectance_model()
    empty = model.successes_mask(np.zeros(model.num_links, dtype=bool))
    assert not empty.any()
    from repro.errors import SchedulingError

    with pytest.raises(SchedulingError):
        model.successes_mask(np.zeros(model.num_links + 1, dtype=bool))


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    threshold=st.floats(min_value=0.2, max_value=2.0),
    density=st.floats(min_value=0.05, max_value=0.95),
)
def test_affectance_mask_property(seed, threshold, density):
    """Property sweep: random W, threshold, and active set agree with
    the scalar affectance criterion."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(2, 14))
    model = AffectanceThresholdModel(
        mac_network(m), _random_weights(m, seed=seed), threshold=threshold
    )
    active = rng.random(m) < density
    got = model.successes_mask(active)
    expected = model.successes([int(e) for e in np.flatnonzero(active)])
    assert set(np.flatnonzero(got).tolist()) == expected


def test_batch_evaluator_incremental_drop():
    """The cached-submatrix evaluator stays correct as links drain."""
    model = _affectance_model()
    busy = np.arange(model.num_links, dtype=np.int64)
    evaluator = model.batch_evaluator(busy)
    rng = np.random.default_rng(6)
    while busy.size > 1:
        transmit = rng.random(busy.size) < 0.6
        got = evaluator.successes_local(transmit)
        expected = model.successes([int(e) for e in busy[transmit]])
        assert set(busy[got].tolist()) == expected
        keep = np.ones(busy.size, dtype=bool)
        keep[int(rng.integers(busy.size))] = False
        busy = busy[keep]
        evaluator.drop(keep)
