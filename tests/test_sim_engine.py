"""The frame-granular simulation engine."""

import numpy as np
import pytest

from repro.core.protocol import DynamicProtocol
from repro.errors import ConfigurationError
from repro.injection.stochastic import PathGenerator, StochasticInjection
from repro.interference.packet_routing import PacketRoutingModel
from repro.network.topology import line_network
from repro.sim.engine import FrameSimulation
from repro.staticsched.single_hop import SingleHopScheduler


def make_setup(rate_probability=0.3, rng=0):
    net = line_network(4)
    model = PacketRoutingModel(net)
    protocol = DynamicProtocol(
        model, SingleHopScheduler(), rate=0.5, t_scale=0.01, rng=rng
    )
    generator = PathGenerator([((0, 1, 2), rate_probability)])
    injection = StochasticInjection([generator], rng=rng)
    return protocol, injection


def test_engine_runs_and_records():
    protocol, injection = make_setup()
    simulation = FrameSimulation(protocol, injection)
    metrics = simulation.run(30)
    assert metrics.frames == 30
    assert len(metrics.queue_series) == 30
    assert simulation.frames_run == 30


def test_engine_rejects_non_protocol():
    _, injection = make_setup()
    with pytest.raises(ConfigurationError):
        FrameSimulation(object(), injection)


def test_engine_rejects_negative_frames():
    protocol, injection = make_setup()
    with pytest.raises(ConfigurationError):
        FrameSimulation(protocol, injection).run(-1)


def test_conservation_of_packets():
    """injected == delivered + in-system at every recorded frame."""
    protocol, injection = make_setup(rng=3)
    simulation = FrameSimulation(protocol, injection)
    metrics = simulation.run(40)
    assert (
        metrics.injected_total
        == metrics.delivered_count() + protocol.packets_in_system
    )


def test_incremental_runs_accumulate():
    protocol, injection = make_setup(rng=4)
    simulation = FrameSimulation(protocol, injection)
    simulation.run(10)
    simulation.run(10)
    assert simulation.metrics.frames == 20
    assert simulation.frames_run == 20


def test_deterministic_replay():
    def run(seed):
        protocol, injection = make_setup(rng=seed)
        simulation = FrameSimulation(protocol, injection)
        return simulation.run(25).queue_series

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_audit_hook_invoked():
    from repro.injection.adversarial import WindowAudit
    from repro.interference.packet_routing import PacketRoutingModel

    net = line_network(4)
    model = PacketRoutingModel(net)
    protocol = DynamicProtocol(
        model, SingleHopScheduler(), rate=0.5, t_scale=0.01, rng=0
    )
    generator = PathGenerator([((0,), 0.2)])
    injection = StochasticInjection([generator], rng=0)
    audit = WindowAudit(model, window=protocol.frame_length, rate=1.0)
    simulation = FrameSimulation(protocol, injection, audit=audit)
    simulation.run(5)
    assert audit.worst_window_measure >= 0.0
