"""Rate sweeps over the packet-routing baseline."""

import pytest

from repro.core.protocol import DynamicProtocol
from repro.injection.stochastic import PathGenerator, StochasticInjection
from repro.interference.packet_routing import PacketRoutingModel
from repro.network.topology import line_network
from repro.sim.runner import run_rate_sweep, simulate_protocol
from repro.staticsched.single_hop import SingleHopScheduler


NET = line_network(3)
MODEL = PacketRoutingModel(NET)


def make_protocol(rate, seed):
    # The protocol is provisioned for rate 0.5 regardless of the actual
    # injection: phase 1 can then serve ~0.75 T hops per frame on a
    # link, so per-slot arrival probability 1.0 genuinely overloads it.
    return DynamicProtocol(
        MODEL, SingleHopScheduler(), rate=0.5, t_scale=0.01, rng=seed
    )


def make_injection(rate, seed, protocol):
    # One generator pushing a 2-hop path at per-slot probability = rate.
    generator = PathGenerator([((0, 1), min(rate, 1.0))])
    return StochasticInjection([generator], rng=seed)


def test_simulate_protocol_returns_engine():
    simulation = simulate_protocol(
        make_protocol(0.3, 0), make_injection(0.3, 0, None), frames=25
    )
    assert simulation.metrics.frames == 25


def test_sweep_stable_below_capacity_unstable_above():
    records = run_rate_sweep(
        make_protocol,
        make_injection,
        rates=[0.3, 1.0],  # 1.0: one packet every slot > provisioned 0.5
        frames=60,
        seeds=(0, 1),
        load_per_frame=lambda rate: rate
        * make_protocol(rate, 0).frame_length,
    )
    assert records[0].stable
    assert not records[1].stable


def test_sweep_record_fields():
    records = run_rate_sweep(
        make_protocol,
        make_injection,
        rates=[0.2],
        frames=40,
        seeds=(0,),
    )
    record = records[0]
    assert record.rate == 0.2
    assert record.seeds == 1
    assert 0.0 <= record.stable_fraction <= 1.0
    assert record.mean_throughput >= 0.0
    assert len(record.verdicts) == 1


def test_sweep_rates_are_processed_in_order():
    records = run_rate_sweep(
        make_protocol,
        make_injection,
        rates=[0.1, 0.2, 0.3],
        frames=20,
        seeds=(0,),
    )
    assert [record.rate for record in records] == [0.1, 0.2, 0.3]


def test_sweep_aggregates_across_seeds():
    records = run_rate_sweep(
        make_protocol,
        make_injection,
        rates=[0.3],
        frames=30,
        seeds=(0, 1, 2),
    )
    record = records[0]
    assert record.seeds == 3
    assert len(record.verdicts) == 3
    # stable_fraction is the mean of the per-seed verdicts.
    expected = sum(1.0 for v in record.verdicts if v.stable) / 3
    assert record.stable_fraction == pytest.approx(expected)


def test_sweep_default_load_uses_frame_length():
    # Identical runs with explicit load = rate * T must agree with the
    # default (the default computes exactly that per protocol).
    explicit = run_rate_sweep(
        make_protocol,
        make_injection,
        rates=[0.3],
        frames=30,
        seeds=(0,),
        load_per_frame=lambda rate: max(
            1.0, rate * make_protocol(rate, 0).frame_length
        ),
    )
    default = run_rate_sweep(
        make_protocol,
        make_injection,
        rates=[0.3],
        frames=30,
        seeds=(0,),
    )
    assert (
        explicit[0].verdicts[0].normalised_slope
        == default[0].verdicts[0].normalised_slope
    )


def test_sweep_record_majority_verdict():
    from repro.sim.runner import RateSweepRecord

    record = RateSweepRecord(
        rate=0.5, seeds=3, stable_fraction=2 / 3,
        mean_tail_queue=0.0, mean_throughput=0.0, mean_latency=0.0,
    )
    assert record.stable
    record.stable_fraction = 1 / 3
    assert not record.stable


def test_sweep_empty_rates_returns_empty():
    records = run_rate_sweep(
        make_protocol, make_injection, rates=[], frames=10, seeds=(0,)
    )
    assert records == []


def test_sweep_accepts_generator_seeds():
    # Regression: ``seeds`` used to be re-consumed after iteration
    # (``len(list(seeds))``), so a generator yielded ``seeds=0`` on the
    # first rate and silently skipped every later rate's cells. The
    # grid must be materialised exactly once.
    from_list = run_rate_sweep(
        make_protocol, make_injection, rates=[0.2, 0.3], frames=30,
        seeds=[0, 1],
    )
    from_generator = run_rate_sweep(
        make_protocol, make_injection, rates=[0.2, 0.3], frames=30,
        seeds=(seed for seed in (0, 1)),
    )
    assert len(from_generator) == 2
    for expected, record in zip(from_list, from_generator):
        assert record.seeds == 2
        assert len(record.verdicts) == 2
        assert record.stable_fraction == expected.stable_fraction
        assert record.mean_tail_queue == expected.mean_tail_queue
        assert record.mean_throughput == expected.mean_throughput


def test_sweep_accepts_generator_rates():
    from_generator = run_rate_sweep(
        make_protocol, make_injection,
        rates=(rate for rate in (0.1, 0.2)), frames=20, seeds=(0,),
    )
    assert [record.rate for record in from_generator] == [0.1, 0.2]


def test_measure_cell_and_aggregate_match_sweep():
    # The staged pipeline (measure cells, then aggregate) is exactly
    # what run_rate_sweep does internally.
    from repro.sim.runner import aggregate_rate_sweep, measure_cell

    results = []
    for index, rate in enumerate([0.2, 0.3]):
        for seed in (0, 1):
            protocol = make_protocol(rate, seed)
            results.append(
                measure_cell(
                    protocol,
                    make_injection(rate, seed, protocol),
                    30,
                    rate=rate,
                    seed=seed,
                    rate_index=index,
                )
            )
    staged = aggregate_rate_sweep(results)
    direct = run_rate_sweep(
        make_protocol, make_injection, rates=[0.2, 0.3], frames=30,
        seeds=(0, 1),
    )
    assert len(staged) == len(direct) == 2
    for a, b in zip(staged, direct):
        assert (a.rate, a.seeds, a.stable_fraction, a.mean_tail_queue,
                a.mean_throughput) == (b.rate, b.seeds, b.stable_fraction,
                                       b.mean_tail_queue, b.mean_throughput)
        assert a.verdicts == b.verdicts


def test_duplicate_rates_stay_distinct_records():
    # Two sweep rows at the same rate must not merge in aggregation
    # (cells group by position in the rate list, not by float value).
    records = run_rate_sweep(
        make_protocol, make_injection, rates=[0.2, 0.2], frames=20,
        seeds=(0,),
    )
    assert len(records) == 2
    assert records[0].rate == records[1].rate == 0.2


def test_simulate_protocol_latency_bookkeeping():
    simulation = simulate_protocol(
        make_protocol(0.3, 0), make_injection(0.3, 0, None), frames=60
    )
    protocol = simulation.protocol
    summary = simulation.metrics.latency_summary(list(protocol.delivered))
    # Two-hop path, one hop per frame: every delivered packet spans at
    # least one full frame from injection to delivery.
    if protocol.delivered:
        fastest = min(
            p.delivered_at - p.injected_at for p in protocol.delivered
        )
        assert fastest >= protocol.frame_length
        assert summary.mean >= fastest
        assert summary.maximum >= summary.p95 >= summary.median
