"""Tests for the jamming extension (Section-9 direction, X3 bench)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.interference.jamming import (
    FrontLoadedPattern,
    JammedModel,
    PeriodicBurstPattern,
    RandomPattern,
    jamming_budget_factor,
    worst_window_fraction,
)
from repro.interference.packet_routing import PacketRoutingModel
from repro.network.topology import line_network


@pytest.fixture()
def base_model():
    """Packet routing over a 4-node chain: every attempt succeeds alone."""
    return PacketRoutingModel(line_network(4))


class TestPeriodicBurstPattern:
    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            PeriodicBurstPattern(period=0, burst=0)

    def test_rejects_burst_exceeding_period(self):
        with pytest.raises(ConfigurationError):
            PeriodicBurstPattern(period=4, burst=5)

    def test_rejects_negative_phase(self):
        with pytest.raises(ConfigurationError):
            PeriodicBurstPattern(period=4, burst=1, phase=-1)

    def test_jams_prefix_of_each_cycle(self):
        pattern = PeriodicBurstPattern(period=5, burst=2)
        flags = [pattern.is_jammed(t) for t in range(10)]
        assert flags == [True, True, False, False, False] * 2

    def test_phase_shifts_the_burst(self):
        pattern = PeriodicBurstPattern(period=4, burst=1, phase=2)
        assert [pattern.is_jammed(t) for t in range(4)] == [
            False,
            False,
            True,
            False,
        ]

    def test_jam_fraction(self):
        assert PeriodicBurstPattern(10, 3).jam_fraction == pytest.approx(0.3)

    def test_zero_burst_never_jams(self):
        pattern = PeriodicBurstPattern(period=3, burst=0)
        assert not any(pattern.is_jammed(t) for t in range(30))


class TestRandomPattern:
    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_rejects_bad_sigma(self, bad):
        with pytest.raises(ConfigurationError):
            RandomPattern(bad, rng=0)

    def test_memoised_decisions(self):
        pattern = RandomPattern(0.5, rng=0)
        first = [pattern.is_jammed(t) for t in range(100)]
        second = [pattern.is_jammed(t) for t in range(100)]
        assert first == second

    def test_fraction_concentrates(self):
        pattern = RandomPattern(0.3, rng=1)
        fraction = np.mean([pattern.is_jammed(t) for t in range(5000)])
        assert abs(fraction - 0.3) < 0.03

    def test_zero_sigma_never_jams(self):
        pattern = RandomPattern(0.0, rng=0)
        assert not any(pattern.is_jammed(t) for t in range(100))


class TestFrontLoadedPattern:
    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            FrontLoadedPattern(window=0, sigma=0.5)

    @pytest.mark.parametrize("bad", [-0.1, 1.0])
    def test_rejects_bad_sigma(self, bad):
        with pytest.raises(ConfigurationError):
            FrontLoadedPattern(window=10, sigma=bad)

    def test_budget_is_floored(self):
        pattern = FrontLoadedPattern(window=10, sigma=0.35)
        assert pattern.per_window_budget == 3
        assert pattern.jam_fraction == pytest.approx(0.3)

    def test_burst_at_window_start(self):
        pattern = FrontLoadedPattern(window=5, sigma=0.4)
        flags = [pattern.is_jammed(t) for t in range(10)]
        assert flags == [True, True, False, False, False] * 2

    @given(
        window=st.integers(min_value=1, max_value=60),
        sigma=st.floats(min_value=0.0, max_value=0.95),
    )
    @settings(max_examples=50, deadline=None)
    def test_respects_window_bound(self, window, sigma):
        """Every window of ``window`` slots contains at most the budget."""
        pattern = FrontLoadedPattern(window=window, sigma=sigma)
        horizon = max(window * 6, window + 1)
        worst = worst_window_fraction(pattern, window, horizon)
        assert worst <= pattern.jam_fraction + 1e-12


class TestJammedModel:
    def test_rejects_bad_target(self, base_model):
        pattern = PeriodicBurstPattern(2, 1)
        with pytest.raises(ConfigurationError):
            JammedModel(base_model, pattern, targets=[99])

    def test_weight_matrix_unchanged(self, base_model):
        jammed = JammedModel(base_model, PeriodicBurstPattern(2, 1))
        np.testing.assert_allclose(
            jammed.weight_matrix(), base_model.weight_matrix()
        )

    def test_jammed_slots_erase_successes(self, base_model):
        jammed = JammedModel(base_model, PeriodicBurstPattern(2, 1))
        assert jammed.successes([0]) == set()      # slot 0: jammed
        assert jammed.successes([0]) == {0}        # slot 1: clear
        assert jammed.successes([0]) == set()      # slot 2: jammed

    def test_targets_limit_the_jammer(self, base_model):
        always = PeriodicBurstPattern(1, 1)  # jams every slot
        jammed = JammedModel(base_model, always, targets=[0])
        assert jammed.successes([0, 2]) == {2}

    def test_clock_advances_even_without_transmissions(self, base_model):
        jammed = JammedModel(base_model, PeriodicBurstPattern(2, 1))
        jammed.successes([])  # slot 0 consumed
        assert jammed.successes([0]) == {0}  # slot 1: clear

    def test_reset_rewinds_clock(self, base_model):
        jammed = JammedModel(base_model, PeriodicBurstPattern(2, 1))
        for _ in range(3):
            jammed.successes([0])
        jammed.reset()
        assert jammed.slots_elapsed == 0
        assert jammed.successes([0]) == set()  # slot 0 again: jammed

    def test_slots_elapsed_counts_calls(self, base_model):
        jammed = JammedModel(base_model, PeriodicBurstPattern(3, 1))
        for _ in range(5):
            jammed.successes([1])
        assert jammed.slots_elapsed == 5

    def test_base_collisions_still_apply(self, base_model):
        """In a clear slot, the base predicate is the ground truth."""
        never = PeriodicBurstPattern(period=1, burst=0)
        jammed = JammedModel(base_model, never)
        # Packet routing: all distinct links succeed together.
        assert jammed.successes([0, 1, 2]) == {0, 1, 2}


class TestBudgetFactor:
    def test_zero_jamming_is_pure_slack(self):
        assert jamming_budget_factor(0.0, slack=1.5) == pytest.approx(1.5)

    def test_half_jamming_doubles(self):
        assert jamming_budget_factor(0.5, slack=1.0) == pytest.approx(2.0)

    @pytest.mark.parametrize("bad", [-0.1, 1.0])
    def test_rejects_bad_sigma(self, bad):
        with pytest.raises(ConfigurationError):
            jamming_budget_factor(bad)

    def test_rejects_bad_slack(self):
        with pytest.raises(ConfigurationError):
            jamming_budget_factor(0.2, slack=0.5)

    @given(sigma=st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_sigma(self, sigma):
        assert jamming_budget_factor(sigma) >= jamming_budget_factor(0.0)


class TestWorstWindowFraction:
    def test_requires_positive_window(self):
        with pytest.raises(ConfigurationError):
            worst_window_fraction(PeriodicBurstPattern(2, 1), 0, 10)

    def test_requires_horizon_covering_window(self):
        with pytest.raises(ConfigurationError):
            worst_window_fraction(PeriodicBurstPattern(2, 1), 10, 5)

    def test_periodic_pattern_exact(self):
        pattern = PeriodicBurstPattern(period=4, burst=2)
        assert worst_window_fraction(pattern, 4, 40) == pytest.approx(0.5)

    def test_misaligned_window_sees_the_burst(self):
        """A window smaller than the period can be fully jammed."""
        pattern = PeriodicBurstPattern(period=10, burst=5)
        assert worst_window_fraction(pattern, 5, 100) == pytest.approx(1.0)


class TestJammedStaticScheduling:
    """End to end: a scheduler under jamming needs the scaled budget."""

    def test_round_trip_with_scaled_budget(self, base_model):
        from repro.staticsched.single_hop import SingleHopScheduler

        sigma = 0.5
        pattern = PeriodicBurstPattern(period=2, burst=1)
        jammed = JammedModel(base_model, pattern)
        scheduler = SingleHopScheduler()
        requests = [0, 1, 2] * 4
        base_budget = scheduler.budget_for(
            base_model.interference_measure(requests), len(requests)
        )
        scaled = int(
            np.ceil(base_budget * jamming_budget_factor(sigma, slack=1.0))
        ) + 1
        result = scheduler.run(jammed, requests, scaled, rng=0)
        assert result.all_delivered

    def test_unscaled_budget_leaves_leftovers(self, base_model):
        pattern = PeriodicBurstPattern(period=2, burst=1, phase=0)
        jammed = JammedModel(base_model, pattern)
        from repro.staticsched.single_hop import SingleHopScheduler

        scheduler = SingleHopScheduler()
        requests = [0] * 10
        # 10 packets on one link need 10 clear slots; a 10-slot budget
        # under 50% jamming serves only ~5.
        result = scheduler.run(jammed, requests, 10, rng=0)
        assert not result.all_delivered
        assert len(result.delivered) == 5
