"""MAC, packet-routing, explicit-matrix, and threshold models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.interference.mac import MultipleAccessChannel
from repro.interference.matrix_model import (
    AffectanceThresholdModel,
    ExplicitMatrixModel,
)
from repro.interference.packet_routing import PacketRoutingModel
from repro.network.network import Network
from repro.network.topology import mac_network


def test_mac_all_ones_matrix(mac_model):
    weights = mac_model.weight_matrix()
    assert np.allclose(weights, 1.0)


def test_mac_measure_is_packet_count(mac_model):
    assert mac_model.interference_measure([0, 1, 2, 2]) == 4.0


def test_mac_success_iff_alone(mac_model):
    assert mac_model.successes([3]) == {3}
    assert mac_model.successes([1, 2]) == set()
    assert mac_model.successes([]) == set()
    assert mac_model.successes([0, 1, 2, 3, 4]) == set()


def test_packet_routing_identity_matrix(packet_routing_model):
    assert np.allclose(
        packet_routing_model.weight_matrix(),
        np.eye(packet_routing_model.num_links),
    )


def test_packet_routing_measure_is_congestion(packet_routing_model):
    # Three packets on link 0, one on link 1: congestion 3.
    assert packet_routing_model.interference_measure([0, 0, 0, 1]) == 3.0


def test_packet_routing_everything_succeeds(packet_routing_model):
    links = list(range(packet_routing_model.num_links))
    assert packet_routing_model.successes(links) == set(links)


def test_explicit_model_delegates_predicate():
    net = mac_network(3)
    weights = np.eye(3)

    def only_even(links):
        return {e for e in links if e % 2 == 0}

    model = ExplicitMatrixModel(net, weights, only_even)
    assert model.successes([0, 1, 2]) == {0, 2}


def test_explicit_model_rejects_predicate_inventing_links():
    net = mac_network(3)

    def bad_predicate(links):
        return {99}

    model = ExplicitMatrixModel(net, np.eye(3), bad_predicate)
    with pytest.raises(ConfigurationError):
        model.successes([0])


def test_threshold_model_accumulation():
    net = Network(3, [(0, 1), (1, 2), (2, 0)])
    weights = np.array(
        [
            [1.0, 0.6, 0.6],
            [0.6, 1.0, 0.6],
            [0.6, 0.6, 1.0],
        ]
    )
    model = AffectanceThresholdModel(net, weights, threshold=1.0)
    # Pairwise impact 0.6 <= 1: pairs feasible.
    assert model.feasible_set([0, 1])
    # All three: each suffers 1.2 > 1 -> everybody fails.
    assert model.successes([0, 1, 2]) == set()


def test_threshold_model_asymmetric_success():
    net = Network(2, [(0, 1), (1, 0)])
    weights = np.array([[1.0, 0.9], [0.1, 1.0]])
    model = AffectanceThresholdModel(net, weights, threshold=0.5)
    # Link 0 suffers 0.9 > 0.5 (fails); link 1 suffers 0.1 (succeeds).
    assert model.successes([0, 1]) == {1}


def test_threshold_model_rejects_nonpositive_threshold():
    net = Network(2, [(0, 1), (1, 0)])
    with pytest.raises(ConfigurationError):
        AffectanceThresholdModel(net, np.eye(2), threshold=0.0)


def test_threshold_model_empty_set():
    net = Network(2, [(0, 1), (1, 0)])
    model = AffectanceThresholdModel(net, np.eye(2))
    assert model.successes([]) == set()
