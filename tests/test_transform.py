"""Algorithm 1 (Section 3): the dense-instance transformation."""

import math

import numpy as np
import pytest

from repro.core.transform import TransformedAlgorithm, paper_chi
from repro.errors import ConfigurationError, SchedulingError
from repro.staticsched.decay import DecayScheduler


def dense_requests(model, n, seed, links=4):
    """n requests concentrated on a few links — the dense regime."""
    rng = np.random.default_rng(seed)
    pool = list(rng.choice(model.num_links, size=min(links, model.num_links),
                           replace=False))
    return [int(pool[i % len(pool)]) for i in range(n)]


@pytest.fixture(scope="module")
def transformed(sinr_model_module):
    return TransformedAlgorithm(
        DecayScheduler(), m=sinr_model_module.network.size_m, chi_scale=0.1
    )


@pytest.fixture(scope="module")
def sinr_model_module():
    from repro.network.topology import random_sinr_network
    from repro.sinr.weights import linear_power_model

    net = random_sinr_network(15, rng=7)
    return linear_power_model(net, alpha=3.0, beta=1.0, noise=0.05)


def test_paper_chi_value():
    assert paper_chi(10) == pytest.approx(6.0 * (math.log(10) + 9.0))
    assert paper_chi(10, chi_scale=0.5) == pytest.approx(
        3.0 * (math.log(10) + 9.0)
    )


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        TransformedAlgorithm(DecayScheduler(), m=0)
    with pytest.raises(ConfigurationError):
        TransformedAlgorithm(DecayScheduler(), m=5, phi=0.0)


def test_delivers_everything_within_own_budget(transformed, sinr_model_module):
    requests = dense_requests(sinr_model_module, 60, seed=1)
    measure = sinr_model_module.interference_measure(requests)
    budget = transformed.budget_for(measure, len(requests))
    result = transformed.run(sinr_model_module, requests, budget, rng=2)
    assert result.all_delivered


def test_partitions_requests(transformed, sinr_model_module):
    requests = dense_requests(sinr_model_module, 40, seed=3)
    result = transformed.run(sinr_model_module, requests, 10_000, rng=4)
    assert sorted(result.delivered + result.remaining) == list(
        range(len(requests))
    )


def test_empty_requests(transformed, sinr_model_module):
    result = transformed.run(sinr_model_module, [], 100, rng=0)
    assert result.all_delivered
    assert result.slots_used == 0


def test_zero_budget(transformed, sinr_model_module):
    requests = dense_requests(sinr_model_module, 10, seed=5)
    result = transformed.run(sinr_model_module, requests, 0, rng=0)
    assert result.delivered == []


def test_negative_budget_rejected(transformed, sinr_model_module):
    with pytest.raises(SchedulingError):
        transformed.run(sinr_model_module, [0], -5, rng=0)


def test_deterministic_under_seed(transformed, sinr_model_module):
    requests = dense_requests(sinr_model_module, 30, seed=6)
    a = transformed.run(sinr_model_module, requests, 50_000, rng=8)
    b = transformed.run(sinr_model_module, requests, 50_000, rng=8)
    assert a.delivered == b.delivered
    assert a.slots_used == b.slots_used


def test_network_bound_multiplicative_independent_of_n(transformed):
    bound = transformed.network_bound(15)
    f = bound.f(15)
    assert f > 0
    # g grows sub-linearly: doubling n far less than doubles g for large n.
    g1 = bound.g(15, 10_000)
    g2 = bound.g(15, 20_000)
    assert g2 < 2 * g1


def test_budget_scales_linearly_in_measure_for_dense_instances(transformed):
    """The transformation's whole point: budget ~ f(m) I + o(I)."""
    n = 5000
    b1 = transformed.budget_for(100.0, n)
    b2 = transformed.budget_for(200.0, n)
    b4 = transformed.budget_for(400.0, n)
    # Increments should be roughly proportional to the measure increments.
    inc1 = b2 - b1
    inc2 = b4 - b2
    assert inc2 == pytest.approx(2 * inc1, rel=0.35)


def test_transformed_budget_growth_in_n_is_subdominant():
    """Theorem 1's point: at fixed I, growing n inflates the base budget
    multiplicatively (O(I log n)) but the transformed budget only through
    the sub-linear additive term."""
    base = DecayScheduler()
    transformed = TransformedAlgorithm(base, m=20, chi_scale=0.2)
    measure = 10_000.0
    n_small, n_large = 1_000, 1_000_000
    base_growth = base.budget_for(measure, n_large) / base.budget_for(
        measure, n_small
    )
    transformed_growth = transformed.budget_for(
        measure, n_large
    ) / transformed.budget_for(measure, n_small)
    # Base budget doubles (ln 1e6 / ln 1e3 = 2); transformed barely moves.
    assert base_growth > 1.8
    assert transformed_growth < base_growth / 1.3


def test_actual_slots_shrink_versus_base(sinr_model_module):
    """Measured (not budgeted) slots: transformed stays near-linear in I."""
    base = DecayScheduler()
    transformed = TransformedAlgorithm(
        base, m=sinr_model_module.network.size_m, chi_scale=0.1
    )
    requests = dense_requests(sinr_model_module, 120, seed=9)
    measure = sinr_model_module.interference_measure(requests)
    generous = 10 * base.budget_for(measure, len(requests))
    base_run = base.run(sinr_model_module, requests, generous, rng=10)
    trans_run = transformed.run(sinr_model_module, requests, generous, rng=10)
    assert base_run.all_delivered and trans_run.all_delivered
    assert trans_run.slots_used <= base_run.slots_used * 1.5


def test_charge_reserved_accounting(sinr_model_module):
    requests = dense_requests(sinr_model_module, 30, seed=11)
    m = sinr_model_module.network.size_m
    lean = TransformedAlgorithm(DecayScheduler(), m=m, chi_scale=0.1)
    padded = TransformedAlgorithm(
        DecayScheduler(), m=m, chi_scale=0.1, charge_reserved=True
    )
    lean_run = lean.run(sinr_model_module, requests, 10**9, rng=12)
    padded_run = padded.run(sinr_model_module, requests, 10**9, rng=12)
    assert padded_run.slots_used >= lean_run.slots_used
    assert lean_run.delivered == padded_run.delivered


def test_history_consistent_with_model(transformed, sinr_model_module):
    requests = dense_requests(sinr_model_module, 25, seed=13)
    result = transformed.run(
        sinr_model_module, requests, 100_000, rng=14, record_history=True
    )
    for record in result.history:
        assert set(record.succeeded) == sinr_model_module.successes(
            list(record.attempted)
        )


def test_name_mentions_base():
    algorithm = TransformedAlgorithm(DecayScheduler(), m=5)
    assert "decay" in algorithm.name
