"""Point arithmetic."""

import math

import numpy as np
import pytest

from repro.geometry.point import (
    Point,
    array_to_points,
    distance,
    midpoint,
    points_to_array,
)


def test_distance_matches_hypot():
    a, b = Point(0, 0), Point(3, 4)
    assert distance(a, b) == 5.0
    assert a.distance_to(b) == b.distance_to(a)


def test_distance_to_self_is_zero():
    p = Point(1.5, -2.5)
    assert p.distance_to(p) == 0.0


def test_midpoint():
    assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)


def test_translated_and_scaled():
    p = Point(1, 2)
    assert p.translated(3, -1) == Point(4, 1)
    assert p.scaled(2) == Point(2, 4)
    # Originals untouched (frozen dataclass).
    assert p == Point(1, 2)


def test_iter_and_tuple():
    p = Point(1.0, 2.0)
    assert tuple(p) == (1.0, 2.0)
    assert p.as_tuple() == (1.0, 2.0)


def test_points_are_hashable_and_ordered():
    assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2
    assert Point(0, 1) < Point(1, 0)


def test_points_to_array_roundtrip():
    points = [Point(0, 0), Point(1.5, 2.5), Point(-3, 4)]
    arr = points_to_array(points)
    assert arr.shape == (3, 2)
    assert array_to_points(arr) == points


def test_points_to_array_empty():
    assert points_to_array([]).shape == (0, 2)


def test_array_to_points_rejects_bad_shape():
    with pytest.raises(ValueError):
        array_to_points(np.zeros((3, 3)))
