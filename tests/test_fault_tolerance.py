"""The resilient executor under real faults: no mocks, real processes.

Every failure mode here is injected through :mod:`repro.sim.faults`
(the ``REPRO_FAULTS`` environment variable) and recovered through the
production paths: workers really die (``os._exit``), cells really
exceed their wall-clock budget, checkpoints really get their bytes
flipped. The invariant throughout: whatever happens mid-campaign, the
final records are byte-identical to one clean serial run.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.scenario import ScenarioSpec, run_scenario_fleet
from repro.scenario.fleet import FleetUnit
from repro.sim.faults import ENV_VAR, FaultInjector, active_injector
from repro.sim.resilience import (
    FaultTolerantExecutor,
    FleetManifest,
    RetryPolicy,
    cell_result_from_dict,
    cell_result_to_dict,
    run_resilient_fleet,
    unit_key,
)

pytestmark = pytest.mark.usefixtures("clean_fault_env")


@pytest.fixture
def clean_fault_env():
    """Guarantee no fault plan leaks between tests."""
    os.environ.pop(ENV_VAR, None)
    yield
    os.environ.pop(ENV_VAR, None)


def _set_faults(**plan):
    os.environ[ENV_VAR] = json.dumps(plan)


def _specs(n=3, frames=25, seed0=0):
    return [
        ScenarioSpec(
            topology="random",
            topology_kwargs={"num_nodes": 7},
            model="packet-routing",
            scheduler="single-hop",
            frames=frames,
            seed=seed0 + i,
        )
        for i in range(n)
    ]


def _same_records(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert repr(left) == repr(right)


@pytest.fixture(scope="module")
def clean_records():
    return run_scenario_fleet(_specs()).records


# ----------------------------------------------------------------------
# The fault injector itself
# ----------------------------------------------------------------------


def test_no_env_means_no_injector():
    assert active_injector() is None


def test_bad_env_json_raises():
    os.environ[ENV_VAR] = "{not json"
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        active_injector()


def test_unknown_fault_kind_raises():
    with pytest.raises(ConfigurationError, match="unknown fault kind"):
        FaultInjector({"explode": []})


def test_entry_matching():
    injector = FaultInjector({"raise": [{"index": 1, "attempt": 0}]})
    with pytest.raises(RuntimeError, match="injected fault"):
        injector.on_cell(1, 0)
    injector.on_cell(1, 1)  # attempt mismatch: no fault
    injector.on_cell(0, 0)  # index mismatch: no fault


def test_kill_refuses_in_main_process():
    injector = FaultInjector({"kill": [{}]})
    with pytest.raises(RuntimeError, match="refusing to _exit"):
        injector.on_cell(0, 0)


# ----------------------------------------------------------------------
# Retry, quarantine, timeout — real process pools
# ----------------------------------------------------------------------


def test_clean_run_matches_serial(clean_records):
    result = run_resilient_fleet(_specs(), workers=2)
    assert result.complete
    _same_records(result.records, clean_records)


def test_worker_kill_is_retried(clean_records):
    """A hard worker death (os._exit) recovers via retry, records intact."""
    _set_faults(kill=[{"index": 1, "attempt": 0}])
    result = run_resilient_fleet(_specs(), workers=2)
    assert result.complete
    _same_records(result.records, clean_records)
    assert any("crash" in f for f in result.statuses[1].failures)


def test_timeout_is_retried(clean_records):
    """A wedged cell is blamed and retried; healthy cells are kept."""
    _set_faults(delay=[{"index": 0, "attempt": 0, "seconds": 60}])
    result = run_resilient_fleet(_specs(), workers=2, cell_timeout=6.0)
    assert result.complete
    _same_records(result.records, clean_records)
    assert any("timeout" in f for f in result.statuses[0].failures)


def test_deterministic_failure_quarantines(clean_records):
    """Two identical error signatures stop the retries early."""
    _set_faults(**{"raise": [{"index": 2}]})
    result = run_resilient_fleet(_specs(), workers=2, max_retries=5)
    assert result.quarantined_indices == [2]
    assert result.statuses[2].attempts == 2  # not 6: quarantined early
    assert result.records[2] is None
    _same_records(result.records[:2], clean_records[:2])
    assert result.summary is not None  # aggregated over the survivors
    assert result.summary.networks == 2


def test_transient_failure_exhausts_to_failed():
    """Distinct signatures keep retrying, then mark the cell failed."""
    units = [FleetUnit(spec=spec, index=i) for i, spec in enumerate(_specs(1))]

    class Flaky:
        """A unit whose error message changes every attempt."""

        index = 0
        calls = 0

        def run(self):
            Flaky.calls += 1
            raise RuntimeError(f"transient #{Flaky.calls}")

    executor = FaultTolerantExecutor(
        max_retries=2,
        use_processes=False,
        strict=False,
        retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0),
    )
    results = executor.map([Flaky()])
    assert results == [None]
    assert executor.statuses[0].state == "failed"
    assert executor.statuses[0].attempts == 3  # initial + 2 retries
    del units


def test_strict_map_raises_naming_cells():
    _set_faults(**{"raise": [{"index": 0}]})
    units = [FleetUnit(spec=spec, index=i) for i, spec in enumerate(_specs(2))]
    executor = FaultTolerantExecutor(
        workers=2,
        use_processes=False,
        strict=True,
        retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0),
    )
    with pytest.raises(ConfigurationError, match="cell 0 quarantined"):
        executor.map(units)


def test_serial_fallback_after_repeated_pool_crashes(clean_records):
    """Every attempt killed -> pool crashes twice -> serial completes it."""
    _set_faults(kill=[{"index": 0}])  # every attempt of cell 0, any pool
    result = run_resilient_fleet(_specs(), workers=2, max_retries=6)
    # In-process the kill fault degrades to a RuntimeError, which the
    # serial path records as a deterministic error -> quarantine; the
    # other cells must still complete with correct records.
    assert result.records[0] is None
    _same_records(result.records[1:], clean_records[1:])


# ----------------------------------------------------------------------
# Manifest: durability, torn writes, resume
# ----------------------------------------------------------------------


def test_manifest_roundtrip(tmp_path, clean_records):
    manifest = FleetManifest(str(tmp_path / "m"))
    units = [FleetUnit(spec=spec, index=i) for i, spec in enumerate(_specs())]
    key = unit_key(units[0])
    manifest.record_fleet("fp", 3)
    manifest.record_completed(key, 0, clean_records[0])
    reloaded = FleetManifest(str(tmp_path / "m"))
    assert reloaded.invalid_lines == 0
    assert reloaded.fleet_entry["fingerprint"] == "fp"
    recovered = reloaded.completed_result(key)
    assert repr(recovered) == repr(clean_records[0])


def test_manifest_skips_torn_final_line(tmp_path, clean_records):
    manifest = FleetManifest(str(tmp_path / "m"))
    units = [FleetUnit(spec=spec, index=i) for i, spec in enumerate(_specs())]
    manifest.record_completed(unit_key(units[0]), 0, clean_records[0])
    manifest.record_completed(unit_key(units[1]), 1, clean_records[1])
    with open(manifest.path, "a") as handle:
        handle.write('{"sha256": "feed", "entry": {"kind": "comp')  # torn
    reloaded = FleetManifest(str(tmp_path / "m"))
    assert reloaded.invalid_lines == 1
    assert len(reloaded.completed_keys()) == 2


def test_manifest_rejects_checksum_forgery(tmp_path, clean_records):
    manifest = FleetManifest(str(tmp_path / "m"))
    units = [FleetUnit(spec=spec, index=i) for i, spec in enumerate(_specs())]
    manifest.record_completed(unit_key(units[0]), 0, clean_records[0])
    text = open(manifest.path).read().replace('"index": 0', '"index": 7')
    with open(manifest.path, "w") as handle:
        handle.write(text)
    reloaded = FleetManifest(str(tmp_path / "m"))
    assert reloaded.invalid_lines == 1
    assert reloaded.completed_keys() == []


def test_manifest_rejects_different_fleet(tmp_path):
    manifest = FleetManifest(str(tmp_path / "m"))
    manifest.record_fleet("fleet-a", 3)
    with pytest.raises(ConfigurationError, match="different fleet"):
        FleetManifest(str(tmp_path / "m")).record_fleet("fleet-b", 3)


def test_cell_result_json_roundtrip_is_exact(clean_records):
    for record in clean_records:
        via_json = json.loads(json.dumps(cell_result_to_dict(record)))
        assert repr(cell_result_from_dict(via_json)) == repr(record)


def test_resume_skips_completed_cells(tmp_path, clean_records):
    """Interrupted fleet + resume: only unfinished cells run again."""
    specs = _specs()
    _set_faults(**{"raise": [{"index": 1}]})
    first = run_resilient_fleet(
        specs, workers=2, manifest_dir=str(tmp_path / "m")
    )
    assert first.quarantined_indices == [1]
    os.environ.pop(ENV_VAR)
    second = run_resilient_fleet(
        specs, workers=2, manifest_dir=str(tmp_path / "m"), resume=True
    )
    assert second.complete
    _same_records(second.records, clean_records)
    assert [s.source for s in second.statuses] == [
        "manifest", "run", "manifest",
    ]


def test_corrupt_checkpoint_recovery(tmp_path, clean_records):
    """Kill mid-run, corrupt the snapshot, still byte-identical records."""
    _set_faults(
        kill=[{"index": 0, "attempt": 0}],
        corrupt=[{"index": 0, "attempt": 1}],
    )
    result = run_resilient_fleet(
        _specs(),
        workers=2,
        manifest_dir=str(tmp_path / "m"),
        snapshot_interval=5,
    )
    assert result.complete
    _same_records(result.records, clean_records)


def test_resume_without_manifest_dir_raises():
    with pytest.raises(ConfigurationError, match="manifest_dir"):
        run_resilient_fleet(_specs(), resume=True)


# ----------------------------------------------------------------------
# Executor edge cases
# ----------------------------------------------------------------------


def test_empty_fleet_raises():
    with pytest.raises(ConfigurationError, match="at least one"):
        run_resilient_fleet([])


def test_empty_unit_list_maps_to_empty():
    executor = FaultTolerantExecutor(use_processes=False)
    assert executor.map([]) == []
    assert executor.statuses == []


def test_builder_error_during_resolution_quarantines():
    """A spec naming a nonexistent component fails cleanly, not fatally."""
    bad = _specs(1)[0].replace(scheduler="no-such-scheduler")
    good = _specs(2, seed0=5)
    result = run_resilient_fleet(
        [good[0], bad, good[1]], workers=2,
        retry_policy=RetryPolicy(max_retries=3, backoff_base=0.0),
    )
    assert result.quarantined_indices == [1]
    assert result.records[1] is None
    assert result.records[0] is not None
    assert result.records[2] is not None


def test_keyboard_interrupt_leaves_manifest_durable(tmp_path, clean_records):
    """Ctrl-C mid-fleet: completed cells survive in the manifest."""
    specs = _specs()
    _set_faults(interrupt=[{"index": 1}])
    with pytest.raises(KeyboardInterrupt):
        run_resilient_fleet(
            specs,
            manifest_dir=str(tmp_path / "m"),
            use_processes=False,  # serial: interrupt hits the main process
        )
    os.environ.pop(ENV_VAR)
    manifest = FleetManifest(str(tmp_path / "m"))
    assert len(manifest.completed_keys()) == 1  # cell 0 flushed pre-interrupt
    resumed = run_resilient_fleet(
        specs, manifest_dir=str(tmp_path / "m"), resume=True,
        use_processes=False,
    )
    assert resumed.complete
    _same_records(resumed.records, clean_records)
    assert resumed.statuses[0].source == "manifest"


def test_retry_policy_backoff_is_deterministic():
    policy = RetryPolicy(max_retries=3, backoff_base=0.1, jitter=0.25)
    assert policy.delay(1, "k") == policy.delay(1, "k")
    assert policy.delay(1, "k") != policy.delay(1, "other")
    assert policy.delay(5, "k") <= policy.backoff_max * 1.25
    assert RetryPolicy(jitter=0.0).delay(0, "k") == 0.1


def test_retry_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ConfigurationError):
        FaultTolerantExecutor(workers=0)
    with pytest.raises(ConfigurationError):
        FaultTolerantExecutor(cell_timeout=0.0)


def test_make_executor_resilient():
    from repro.sim.sharding import make_executor

    executor = make_executor("resilient", workers=2, max_retries=1)
    assert executor.name == "resilient"
    assert executor.retry_policy.max_retries == 1
    with pytest.raises(ConfigurationError, match="no extra options"):
        make_executor("serial", max_retries=1)


# ----------------------------------------------------------------------
# The interrupt/resume soak (slow lane)
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_interrupt_resume_soak(tmp_path):
    """Interrupt a fleet at three different cells, resume each time.

    After the final resume the records must be byte-identical to one
    clean uninterrupted run — the end-to-end durability guarantee.
    """
    specs = _specs(n=5, frames=30)
    clean = run_scenario_fleet(specs).records
    manifest_dir = str(tmp_path / "soak")
    for victim in (0, 2, 4):
        _set_faults(interrupt=[{"index": victim}])
        with pytest.raises(KeyboardInterrupt):
            run_resilient_fleet(
                specs,
                manifest_dir=manifest_dir,
                resume=True,
                snapshot_interval=7,
                use_processes=False,
            )
        os.environ.pop(ENV_VAR)
    final = run_resilient_fleet(
        specs,
        manifest_dir=manifest_dir,
        resume=True,
        snapshot_interval=7,
        use_processes=False,
    )
    assert final.complete
    _same_records(final.records, clean)
    # Every interrupted round made durable progress: by the final round
    # at least the cells before the last victim came from the manifest.
    assert sum(1 for s in final.statuses if s.source == "manifest") >= 4
