"""Behavioural contracts shared by all static algorithms, plus
algorithm-specific guarantees."""

import math

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.interference.packet_routing import PacketRoutingModel
from repro.staticsched import (
    DecayScheduler,
    FkvScheduler,
    KvScheduler,
    MacBackoffScheduler,
    OracleScheduler,
    PowerControlScheduler,
    RoundRobinScheduler,
    SingleHopScheduler,
)

GENERIC_ALGORITHMS = [
    DecayScheduler(),
    FkvScheduler(),
    KvScheduler(),
    OracleScheduler(),
]


def random_requests(model, count, seed):
    rng = np.random.default_rng(seed)
    return list(rng.integers(0, model.num_links, size=count))


# ----------------------------------------------------------------------
# Shared contracts
# ----------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", GENERIC_ALGORITHMS, ids=lambda a: a.name)
def test_partitions_requests(algorithm, sinr_model):
    requests = random_requests(sinr_model, 30, seed=1)
    budget = algorithm.budget_for(
        sinr_model.interference_measure(requests), len(requests)
    )
    result = algorithm.run(sinr_model, requests, budget, rng=2)
    assert sorted(result.delivered + result.remaining) == sorted(
        range(len(requests))
    )
    assert result.slots_used <= budget


@pytest.mark.parametrize("algorithm", GENERIC_ALGORITHMS, ids=lambda a: a.name)
def test_empty_requests(algorithm, sinr_model):
    result = algorithm.run(sinr_model, [], 10, rng=0)
    assert result.all_delivered
    assert result.slots_used == 0


@pytest.mark.parametrize("algorithm", GENERIC_ALGORITHMS, ids=lambda a: a.name)
def test_zero_budget_leaves_everything(algorithm, sinr_model):
    requests = random_requests(sinr_model, 5, seed=3)
    result = algorithm.run(sinr_model, requests, 0, rng=0)
    assert result.delivered == []
    assert sorted(result.remaining) == list(range(5))


@pytest.mark.parametrize("algorithm", GENERIC_ALGORITHMS, ids=lambda a: a.name)
def test_negative_budget_rejected(algorithm, sinr_model):
    with pytest.raises(SchedulingError):
        algorithm.run(sinr_model, [0], -1, rng=0)


@pytest.mark.parametrize("algorithm", GENERIC_ALGORITHMS, ids=lambda a: a.name)
def test_history_is_model_consistent(algorithm, sinr_model):
    """Every slot's recorded successes must match the model's predicate."""
    requests = random_requests(sinr_model, 20, seed=4)
    budget = algorithm.budget_for(
        sinr_model.interference_measure(requests), len(requests)
    )
    result = algorithm.run(
        sinr_model, requests, budget, rng=5, record_history=True
    )
    assert result.history is not None
    for record in result.history:
        attempted = list(record.attempted)
        expected = sinr_model.successes(attempted)
        assert set(record.succeeded) == expected


@pytest.mark.parametrize("algorithm", GENERIC_ALGORITHMS, ids=lambda a: a.name)
def test_deterministic_under_seed(algorithm, sinr_model):
    requests = random_requests(sinr_model, 15, seed=6)
    a = algorithm.run(sinr_model, requests, 500, rng=7)
    b = algorithm.run(sinr_model, requests, 500, rng=7)
    assert a.delivered == b.delivered
    assert a.slots_used == b.slots_used


@pytest.mark.parametrize("algorithm", GENERIC_ALGORITHMS, ids=lambda a: a.name)
def test_completes_with_generous_budget(algorithm, sinr_model):
    requests = random_requests(sinr_model, 25, seed=8)
    budget = 4 * algorithm.budget_for(
        sinr_model.interference_measure(requests), len(requests)
    )
    result = algorithm.run(sinr_model, requests, budget, rng=9)
    assert result.all_delivered


def test_budget_for_monotone_in_measure():
    algorithm = DecayScheduler()
    assert algorithm.budget_for(10.0, 100) <= algorithm.budget_for(20.0, 100)
    assert algorithm.budget_for(10.0, 100) <= algorithm.budget_for(10.0, 1000)


# ----------------------------------------------------------------------
# Decay / FKV scaling
# ----------------------------------------------------------------------


def test_fkv_budget_beats_decay_for_dense_instances():
    """FKV's O(I + log^2 n) must undercut decay's O(I log n) eventually."""
    decay, fkv = DecayScheduler(), FkvScheduler()
    measure, n = 500.0, 100_000
    assert fkv.budget_for(measure, n) < decay.budget_for(measure, n)


def test_raw_algorithms_have_no_network_bound():
    with pytest.raises(SchedulingError, match="transformation"):
        DecayScheduler().network_bound(10)


# ----------------------------------------------------------------------
# MAC algorithms
# ----------------------------------------------------------------------


def test_mac_backoff_requires_mac_model(sinr_model):
    with pytest.raises(SchedulingError, match="multiple-access"):
        MacBackoffScheduler().run(sinr_model, [0], 10, rng=0)


def test_mac_backoff_delivers_everything(mac_model):
    requests = [0, 1, 2, 3, 4] * 6
    algorithm = MacBackoffScheduler(phi=1.0, delta=0.5)
    budget = algorithm.budget_for(len(requests), len(requests))
    result = algorithm.run(mac_model, requests, budget, rng=3)
    assert result.all_delivered


def test_mac_backoff_history_single_winner_slots(mac_model):
    requests = [0, 1, 2] * 4
    algorithm = MacBackoffScheduler()
    budget = algorithm.budget_for(len(requests), len(requests))
    result = algorithm.run(
        mac_model, requests, budget, rng=1, record_history=True
    )
    for record in result.history:
        if record.succeeded:
            assert len(record.attempted) == 1


def test_mac_backoff_network_bound_leading_constant():
    algorithm = MacBackoffScheduler(delta=0.5)
    bound = algorithm.network_bound(10)
    # f must be at least (1+delta)e and independent of m.
    assert bound.f(10) >= (1.5) * math.e
    assert bound.f(10) == bound.f(10_000)


def test_mac_backoff_parameter_validation():
    with pytest.raises(SchedulingError):
        MacBackoffScheduler(phi=0.5)
    with pytest.raises(SchedulingError):
        MacBackoffScheduler(delta=0.0)


def test_round_robin_exact_length(mac_model):
    requests = [0, 0, 1, 3, 3, 3]  # station 2 and 4 empty
    algorithm = RoundRobinScheduler()
    result = algorithm.run(mac_model, requests, 10_000, rng=None)
    assert result.all_delivered
    assert result.slots_used == len(requests) + mac_model.num_links


def test_round_robin_is_deterministic(mac_model):
    requests = [4, 2, 0, 2]
    a = RoundRobinScheduler().run(mac_model, requests, 100)
    b = RoundRobinScheduler().run(mac_model, requests, 100)
    assert a.delivered == b.delivered


def test_round_robin_requires_mac(sinr_model):
    with pytest.raises(SchedulingError):
        RoundRobinScheduler().run(sinr_model, [0], 10)


def test_round_robin_budget_cutoff(mac_model):
    requests = [0, 1, 2, 3, 4]
    result = RoundRobinScheduler().run(mac_model, requests, 3, rng=None)
    assert len(result.delivered) <= 3
    assert result.slots_used == 3


def test_round_robin_network_bound(mac_net):
    bound = RoundRobinScheduler().network_bound(mac_net.num_links)
    assert bound.f(5) == 1.0
    assert bound.g(5, 100) == 6.0


# ----------------------------------------------------------------------
# Power control
# ----------------------------------------------------------------------


def test_power_control_requires_sinr(mac_model):
    with pytest.raises(SchedulingError, match="SinrModel"):
        PowerControlScheduler().run(mac_model, [0], 10, rng=0)


def test_power_control_delivers(sinr_model):
    requests = random_requests(sinr_model, 20, seed=10)
    algorithm = PowerControlScheduler()
    budget = algorithm.budget_for(
        sinr_model.interference_measure(requests), len(requests)
    )
    result = algorithm.run(sinr_model, requests, budget, rng=11)
    assert result.all_delivered


# ----------------------------------------------------------------------
# Single hop & oracle
# ----------------------------------------------------------------------


def test_single_hop_length_equals_congestion(packet_routing_model):
    requests = [0, 0, 0, 1, 2]
    algorithm = SingleHopScheduler()
    result = algorithm.run(packet_routing_model, requests, 100)
    assert result.all_delivered
    assert result.slots_used == 3  # max queue length


def test_single_hop_network_bound():
    bound = SingleHopScheduler().network_bound(4)
    assert bound.f(4) == 1.0


def test_oracle_outperforms_decay_on_average(sinr_model):
    requests = random_requests(sinr_model, 30, seed=12)
    measure = sinr_model.interference_measure(requests)
    budget = DecayScheduler().budget_for(measure, len(requests))
    oracle = OracleScheduler().run(sinr_model, requests, budget, rng=13)
    decay = DecayScheduler().run(sinr_model, requests, budget, rng=13)
    assert oracle.all_delivered
    assert oracle.slots_used <= decay.slots_used


def test_oracle_greedy_set_is_feasible(sinr_model):
    oracle = OracleScheduler()
    busy = list(range(sinr_model.num_links))
    chosen = oracle.greedy_feasible_set(sinr_model, busy)
    assert chosen
    assert sinr_model.feasible_set(chosen)
