"""The Section-5 shifted protocol for window adversaries."""

import numpy as np
import pytest

from repro.core.adversarial import ShiftedDynamicProtocol
from repro.errors import ConfigurationError
from repro.injection.packet import Packet
from repro.interference.packet_routing import PacketRoutingModel
from repro.network.topology import line_network
from repro.staticsched.single_hop import SingleHopScheduler


def make_shifted(**kwargs):
    net = line_network(4)
    model = PacketRoutingModel(net)
    defaults = dict(
        rate=0.5, window=20, t_scale=0.01, rng=0
    )
    defaults.update(kwargs)
    return (
        ShiftedDynamicProtocol(model, SingleHopScheduler(), **defaults),
        model,
    )


def packet(pid, path=(0, 1), slot=0):
    return Packet(id=pid, path=tuple(path), injected_at=slot)


def test_delta_max_default_positive():
    protocol, _ = make_shifted()
    assert protocol.delta_max >= 1


def test_custom_delta_max():
    protocol, _ = make_shifted(delta_max=7)
    assert protocol.delta_max == 7


def test_delta_max_validation():
    with pytest.raises(ConfigurationError):
        make_shifted(delta_max=0)
    with pytest.raises(ConfigurationError):
        make_shifted(window=0)


def test_rate_at_capacity_rejected():
    with pytest.raises(ConfigurationError, match="capacity"):
        make_shifted(rate=1.0)


def test_packets_held_until_delay_elapses():
    protocol, _ = make_shifted(delta_max=3)
    batch = [packet(i) for i in range(50)]
    protocol.run_frame(batch)
    # With delta_max=3 and 50 packets, some are held (delay > 0) whp.
    assert protocol.held_count > 0
    assert protocol.packets_in_system == 50
    # After delta_max more frames everything has been released.
    for _ in range(protocol.delta_max + 1):
        protocol.run_frame([])
    assert protocol.held_count == 0


def test_shift_disabled_forwards_immediately():
    protocol, _ = make_shifted(shift_enabled=False, delta_max=10)
    batch = [packet(i) for i in range(20)]
    protocol.run_frame(batch)
    assert protocol.held_count == 0
    # They entered the inner protocol as frame-0 injections.
    assert protocol.inner.packets_in_system == 20


def test_eventual_delivery_of_all_packets():
    protocol, _ = make_shifted(delta_max=4)
    total = 30
    protocol.run_frame([packet(i, path=(0, 1, 2)) for i in range(total)])
    for _ in range(protocol.delta_max + 10):
        protocol.run_frame([])
    assert len(protocol.delivered) == total
    assert protocol.packets_in_system == 0


def test_inner_rate_is_higher_than_outer():
    protocol, _ = make_shifted(rate=0.5)
    # lambda' = (1 - eps/2)/f with eps = 0.5 -> 0.75 (f = 1).
    assert protocol.inner.params.rate == pytest.approx(0.75)


def test_shift_spreads_bursts():
    """A one-frame burst must be released over ~delta_max frames."""
    protocol, _ = make_shifted(delta_max=8, rng=3)
    burst = [packet(i) for i in range(200)]
    protocol.run_frame(burst)
    releases = []
    for _ in range(protocol.delta_max):
        before = protocol.held_count
        protocol.run_frame([])
        releases.append(before - protocol.held_count)
    # No single frame got much more than a fair share of the burst.
    assert max(releases) < 200 * 0.35


def test_frame_length_mirrors_inner():
    protocol, _ = make_shifted()
    assert protocol.frame_length == protocol.inner.frame_length
