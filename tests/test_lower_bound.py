"""Theorem 20 / Figure 1: the global-clock lower bound."""

import math

import numpy as np
import pytest

from repro.core.lower_bound import Figure1Model, simulate_figure1
from repro.errors import ConfigurationError
from repro.network.topology import figure1_instance


def test_model_weight_matrix_shape():
    net = figure1_instance(5)
    model = Figure1Model(net)
    weights = model.weight_matrix()
    assert np.allclose(np.diag(weights), 1.0)
    # The long link's row is all ones; shorts only see themselves.
    assert np.allclose(weights[model.long_link], 1.0)
    assert weights[0, 1] == 0.0


def test_short_links_always_succeed():
    net = figure1_instance(4)
    model = Figure1Model(net)
    shorts = list(range(model.long_link))
    assert model.successes(shorts) == set(shorts)


def test_long_link_needs_silence():
    net = figure1_instance(4)
    model = Figure1Model(net)
    long = model.long_link
    assert model.successes([long]) == {long}
    result = model.successes([0, long])
    assert long not in result
    assert 0 in result


def test_simulation_validates_inputs():
    with pytest.raises(ConfigurationError):
        simulate_figure1(1, 0.1, 100)
    with pytest.raises(ConfigurationError):
        simulate_figure1(4, 1.5, 100)
    with pytest.raises(ConfigurationError):
        simulate_figure1(4, 0.1, 100, protocol="quantum")


def test_global_clock_stable_below_half():
    result = simulate_figure1(8, rate=0.35, horizon=6000, protocol="global",
                              rng=1)
    # Long queue stays bounded: no upward drift.
    assert result.long_queue_slope() < 0.01
    assert result.final_long_queue < 100


def test_global_clock_unstable_above_half():
    result = simulate_figure1(8, rate=0.6, horizon=6000, protocol="global",
                              rng=2)
    # Arrivals 0.6/slot, service at most 0.5/slot: linear growth.
    assert result.long_queue_slope() > 0.05


def test_local_clock_unstable_at_log_m_over_m():
    m = 64
    rate = 1.5 * math.log(m) / m  # comfortably above ln(m)/m
    result = simulate_figure1(m, rate=rate, horizon=8000, protocol="local",
                              rng=3)
    assert result.long_queue_slope() > 0.01
    # Short links are fine throughout (they always succeed).
    assert max(result.max_short_queue) < 50


def test_local_clock_fine_at_tiny_rates():
    m = 64
    rate = 0.05 / m  # far below ln(m)/m: idle slots abound
    result = simulate_figure1(m, rate=rate, horizon=8000, protocol="local",
                              rng=4)
    assert result.long_queue_slope() < 0.005


def test_global_beats_local_at_theorem_rate():
    """The separation the theorem is about, at lambda = ln m / m."""
    m = 64
    rate = math.log(m) / m
    global_run = simulate_figure1(m, rate, 8000, protocol="global", rng=5)
    local_run = simulate_figure1(m, rate, 8000, protocol="local", rng=5)
    assert global_run.long_queue_slope() < 0.01
    assert local_run.final_long_queue > 5 * max(1, global_run.final_long_queue)


def test_sampling_stride():
    result = simulate_figure1(4, 0.2, 1000, rng=0, sample_every=10)
    assert len(result.long_queue) == 100


def test_deliveries_counted():
    result = simulate_figure1(6, 0.3, 2000, protocol="global", rng=6)
    assert result.short_delivered > 0
    assert result.long_delivered > 0
