"""Potential-function bookkeeping (Theorem-3 analysis)."""

import pytest

from repro.core.potential import PotentialTracker
from repro.errors import SchedulingError
from repro.injection.packet import Packet


def failed_packet(hops=3):
    packet = Packet(id=0, path=tuple(range(hops)), injected_at=0)
    packet.failed = True
    packet.failed_at_frame = 0
    return packet


def test_failure_adds_remaining_hops():
    tracker = PotentialTracker()
    tracker.on_failure(failed_packet(3))
    assert tracker.value == 3
    assert tracker.total_failures == 1


def test_cleanup_hop_decrements():
    tracker = PotentialTracker()
    tracker.on_failure(failed_packet(2))
    tracker.on_cleanup_hop(failed_packet(2))
    assert tracker.value == 1
    assert tracker.total_cleanup_hops == 1


def test_underflow_rejected():
    tracker = PotentialTracker()
    with pytest.raises(SchedulingError):
        tracker.on_cleanup_hop(failed_packet())


def test_failure_with_no_hops_rejected():
    tracker = PotentialTracker()
    packet = failed_packet(1)
    packet.advance(5)
    with pytest.raises(SchedulingError):
        tracker.on_failure(packet)


def test_sampling_and_drift():
    tracker = PotentialTracker()
    for value in range(10):
        tracker.value = value
        tracker.sample()
    assert tracker.series == list(range(10))
    assert tracker.drift_estimate() == pytest.approx(1.0)


def test_drift_of_flat_series_is_zero():
    tracker = PotentialTracker()
    for _ in range(20):
        tracker.sample()
    assert tracker.drift_estimate() == 0.0


def test_drift_short_series():
    tracker = PotentialTracker()
    tracker.sample()
    assert tracker.drift_estimate() == 0.0
