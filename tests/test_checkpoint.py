"""Checkpoint/resume parity: interrupt + resume == uninterrupted run.

The checkpoint layer snapshots a frame simulation at frame boundaries
— where every layer is quiescent — so a restored run must continue
*bit-identically* to one that never stopped, across schedulers, models,
injection processes and run-loop backends. These tests pin that
contract, plus the file format's validation guarantees: any corrupt,
truncated, foreign or mismatched checkpoint raises
:class:`ConfigurationError`, never a numpy traceback.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.errors import ConfigurationError
from repro.scenario import ScenarioSpec, preset_spec
from repro.sim.checkpoint import (
    FORMAT_VERSION,
    MAGIC,
    load_checkpoint_into,
    read_checkpoint,
    run_with_checkpoints,
    save_checkpoint,
    write_checkpoint,
)
from repro.sim.engine import FrameSimulation
from repro.staticsched.runloop import available_backends

BACKENDS = [b for b in available_backends() if b != "auto"]


def _build_sim(spec: ScenarioSpec) -> FrameSimulation:
    built = spec.build()
    return FrameSimulation(built.protocol, built.injection, metrics=spec.metrics)


def _assert_same(a, b):
    """Field-exact record equality that treats NaN == NaN.

    ``repr`` prints floats round-trip exactly, so equal reprs mean
    bit-identical records — while NaN latencies (a cell that delivered
    nothing) compare equal instead of tripping NaN != NaN.
    """
    assert repr(a) == repr(b)


def _interrupt_then_resume(spec, tmp_path, interrupt=9, interval=4):
    """Run to ``interrupt`` frames with snapshots, then resume via spec.

    Returns (clean CellResult, resumed CellResult); the caller asserts
    equality via :func:`_assert_same`.
    """
    path = str(tmp_path / "cell.ckpt")
    clean = spec.run()
    partial = _build_sim(spec)
    run_with_checkpoints(
        partial, interrupt, path, interval=interval,
        fingerprint=spec.fingerprint(),
    )
    assert os.path.exists(path)
    resumed = spec.run(checkpoint_path=path, snapshot_interval=interval)
    return clean, resumed


# ----------------------------------------------------------------------
# The resume parity matrix: scheduler x model x backend
# ----------------------------------------------------------------------

MATRIX = {
    "kv-routing": ScenarioSpec(
        topology="random", topology_kwargs={"num_nodes": 8},
        model="packet-routing", scheduler="kv", transform=True,
        frames=24,
    ),
    "decay-linear": ScenarioSpec(
        topology="random", topology_kwargs={"num_nodes": 8},
        model="linear-power", scheduler="decay", transform=True,
        frames=24,
    ),
    "fkv-routing": ScenarioSpec(
        topology="grid", topology_kwargs={"rows": 3, "cols": 3},
        model="packet-routing", scheduler="fkv", transform=True,
        frames=24,
    ),
    "hm-transformed": ScenarioSpec(
        topology="random", topology_kwargs={"num_nodes": 8},
        model="linear-power", scheduler="hm", transform=True, frames=24,
    ),
    "single-hop-grid": ScenarioSpec(
        topology="grid", topology_kwargs={"rows": 3, "cols": 3},
        model="packet-routing", scheduler="single-hop", frames=24,
    ),
    "mac-roundrobin": ScenarioSpec(
        topology="mac", topology_kwargs={"num_stations": 4},
        model="mac", scheduler="round-robin", frames=24,
    ),
    "mac-backoff": ScenarioSpec(
        topology="mac", topology_kwargs={"num_stations": 4},
        model="mac", scheduler="mac-backoff", frames=24,
    ),
}


@pytest.mark.parametrize("name", sorted(MATRIX))
def test_resume_parity_matrix(name, tmp_path):
    spec = MATRIX[name].replace(seed=7)
    clean, resumed = _interrupt_then_resume(spec, tmp_path)
    _assert_same(resumed, clean)


@pytest.mark.parametrize("backend", BACKENDS)
def test_resume_parity_per_backend(backend, tmp_path):
    spec = MATRIX["kv-routing"].replace(seed=3, backend=backend)
    clean, resumed = _interrupt_then_resume(spec, tmp_path)
    _assert_same(resumed, clean)


def test_resume_crosses_backends(tmp_path):
    """A snapshot taken under one backend resumes under another."""
    path = str(tmp_path / "cell.ckpt")
    scalar = MATRIX["kv-routing"].replace(seed=5, backend="scalar")
    numpy_spec = scalar.replace(backend="numpy")
    clean = numpy_spec.run()
    partial = _build_sim(scalar)
    run_with_checkpoints(
        partial, 9, path, interval=4, fingerprint=scalar.fingerprint()
    )
    resumed = numpy_spec.run(checkpoint_path=path, snapshot_interval=4)
    _assert_same(resumed, clean)


# ----------------------------------------------------------------------
# Stateful models and injections
# ----------------------------------------------------------------------

STATEFUL = {
    "fading-model": ScenarioSpec(
        topology="random", topology_kwargs={"num_nodes": 8},
        model="fading-sinr", scheduler="kv", transform=True,
        frames=24,
    ),
    "unreliable-model": ScenarioSpec(
        topology="random", topology_kwargs={"num_nodes": 8},
        model="unreliable", model_kwargs={"loss_probability": 0.1},
        scheduler="kv", transform=True, frames=24,
    ),
    "jammed-random-model": ScenarioSpec(
        topology="random", topology_kwargs={"num_nodes": 8},
        model="jammed", model_kwargs={"pattern": "random"},
        scheduler="kv", transform=True, frames=24,
    ),
    "markov-injection": ScenarioSpec(
        topology="random", topology_kwargs={"num_nodes": 8},
        model="packet-routing", scheduler="kv", transform=True,
        injection="markov", frames=24,
    ),
    "adversarial-injection": ScenarioSpec(
        topology="random", topology_kwargs={"num_nodes": 8},
        model="packet-routing", scheduler="kv", transform=True,
        injection="adversarial", injection_kwargs={"window": 16},
        frames=24,
    ),
}


@pytest.mark.parametrize("name", sorted(STATEFUL))
def test_resume_parity_stateful_components(name, tmp_path):
    spec = STATEFUL[name].replace(seed=11)
    clean, resumed = _interrupt_then_resume(spec, tmp_path)
    _assert_same(resumed, clean)


# ----------------------------------------------------------------------
# Streaming-retention resume parity
# ----------------------------------------------------------------------


def _same_tree(a, b, path=""):
    """Recursive bit-exact equality over state_dict trees."""
    import math

    import numpy as np

    if isinstance(a, dict):
        assert isinstance(b, dict) and set(a) == set(b), path
        for key in a:
            _same_tree(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for index, (x, y) in enumerate(zip(a, b)):
            _same_tree(x, y, f"{path}[{index}]")
    elif isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        assert np.array_equal(np.asarray(a), np.asarray(b)), path
    elif isinstance(a, float) and math.isnan(a):
        assert isinstance(b, float) and math.isnan(b), path
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


@pytest.mark.parametrize("name", sorted(MATRIX))
def test_resume_parity_streaming_matrix(name, tmp_path):
    spec = MATRIX[name].replace(seed=7, metrics="streaming")
    clean, resumed = _interrupt_then_resume(spec, tmp_path)
    _assert_same(resumed, clean)


@pytest.mark.parametrize("backend", BACKENDS)
def test_resume_parity_streaming_per_backend(backend, tmp_path):
    spec = MATRIX["kv-routing"].replace(
        seed=3, backend=backend, metrics="streaming"
    )
    clean, resumed = _interrupt_then_resume(spec, tmp_path)
    _assert_same(resumed, clean)


def test_streaming_records_match_full_records():
    """Retention changes memory, never physics or records."""
    full = MATRIX["kv-routing"].replace(seed=7)
    _assert_same(full.replace(metrics="streaming").run(), full.run())


def test_cross_retention_resume_refused(tmp_path):
    """A full-mode checkpoint cannot resume a streaming spec."""
    full = MATRIX["kv-routing"].replace(seed=7)
    path = str(tmp_path / "cell.ckpt")
    partial = _build_sim(full)
    run_with_checkpoints(
        partial, 9, path, interval=4, fingerprint=full.fingerprint()
    )
    streaming = full.replace(metrics="streaming")
    # Fingerprints differ, so spec.run() discards the foreign
    # checkpoint and restarts clean — still record-identical.
    _assert_same(
        streaming.run(checkpoint_path=str(tmp_path / "other.ckpt")),
        full.run(),
    )
    with pytest.raises(ConfigurationError):
        load_checkpoint_into(
            _build_sim(streaming), path, fingerprint=streaming.fingerprint()
        )


def test_resume_parity_streaming_mid_window_interrupt(tmp_path):
    """Interrupt between release boundaries, with releases having fired.

    The 24-frame matrix cells never reach the default release interval
    (64), so this drives a small-interval recorder directly: released
    latency state, compacted store, and pending delivered ids all cross
    the checkpoint, and the resumed state tree is bit-identical to the
    uninterrupted one.
    """
    from repro.sim.metrics import MetricsRecorder

    spec = MATRIX["kv-routing"].replace(seed=11)
    frames, interrupt, release = 24, 13, 5
    assert interrupt % release != 0

    def build():
        built = spec.build()
        recorder = MetricsRecorder(
            retention="streaming", release_interval=release
        )
        return FrameSimulation(
            built.protocol, built.injection, metrics=recorder
        )

    uninterrupted = build()
    uninterrupted.run(frames)
    # The scenario delivers early; the premise of the test is that
    # releases (frames 5 and 10) actually moved latencies + compacted.
    assert uninterrupted.metrics.released_count > 0

    partial = build()
    partial.run(interrupt)
    path = str(tmp_path / "mid.ckpt")
    save_checkpoint(path, partial)

    resumed = build()
    load_checkpoint_into(resumed, path)
    resumed.run(frames - interrupt)

    _same_tree(resumed.state_dict(), uninterrupted.state_dict())
    verdict_kwargs = dict(load_per_frame=2.0, min_frames=10)
    assert repr(
        resumed.metrics.stability_verdict(**verdict_kwargs)
    ) == repr(uninterrupted.metrics.stability_verdict(**verdict_kwargs))


# ----------------------------------------------------------------------
# File format validation
# ----------------------------------------------------------------------


@pytest.fixture
def snapshot(tmp_path):
    """A real checkpoint file plus the spec that produced it."""
    spec = MATRIX["kv-routing"].replace(seed=2)
    path = str(tmp_path / "cell.ckpt")
    sim = _build_sim(spec)
    sim.run(8)
    save_checkpoint(path, sim, fingerprint=spec.fingerprint())
    return spec, path


def test_read_back_roundtrip(snapshot):
    spec, path = snapshot
    state, fingerprint = read_checkpoint(path)
    assert fingerprint == spec.fingerprint()
    assert state["frame"] == 8
    sim = _build_sim(spec)
    assert load_checkpoint_into(sim, path) == 8


def test_missing_file_raises(tmp_path):
    with pytest.raises(ConfigurationError, match="cannot read"):
        read_checkpoint(str(tmp_path / "nope.ckpt"))


def test_foreign_file_raises(tmp_path):
    path = tmp_path / "foreign.ckpt"
    path.write_bytes(b"definitely not a checkpoint at all, no magic here")
    with pytest.raises(ConfigurationError, match="not a repro checkpoint"):
        read_checkpoint(str(path))


def test_truncated_file_raises(snapshot):
    _, path = snapshot
    blob = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(blob[: len(blob) // 2])
    with pytest.raises(ConfigurationError, match="corrupt or truncated"):
        read_checkpoint(path)


def test_flipped_byte_raises(snapshot):
    _, path = snapshot
    with open(path, "r+b") as handle:
        handle.seek(200)
        byte = handle.read(1)
        handle.seek(200)
        handle.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(ConfigurationError, match="checksum mismatch"):
        read_checkpoint(path)


def test_version_skew_raises(snapshot):
    _, path = snapshot
    with open(path, "r+b") as handle:
        handle.seek(len(MAGIC))
        handle.write(struct.pack("<I", FORMAT_VERSION + 1))
    with pytest.raises(ConfigurationError, match="format version"):
        read_checkpoint(path)


def test_fingerprint_mismatch_raises(snapshot):
    spec, path = snapshot
    other = spec.replace(seed=99)
    assert other.fingerprint() != spec.fingerprint()
    with pytest.raises(ConfigurationError, match="different run"):
        read_checkpoint(path, expect_fingerprint=other.fingerprint())
    # ... and matching (or absent) fingerprints read fine.
    read_checkpoint(path, expect_fingerprint=spec.fingerprint())


def test_fingerprint_ignores_frames_and_backend(snapshot):
    """Resume extends the horizon: frames/backend are not identity."""
    spec, _ = snapshot
    assert spec.replace(frames=999).fingerprint() == spec.fingerprint()
    assert (
        spec.replace(backend="numpy").fingerprint() == spec.fingerprint()
    )


def test_array_shape_mismatch_raises(tmp_path):
    import numpy as np

    path = str(tmp_path / "arr.ckpt")
    write_checkpoint(path, {"x": np.arange(5, dtype=np.int64)})
    state, _ = read_checkpoint(path)
    assert list(state["x"]) == [0, 1, 2, 3, 4]
    # Forge a header that promises a different shape for the payload.
    blob = open(path, "rb").read()
    body = blob[len(MAGIC) + 4 + 32 :]
    (header_len,) = struct.unpack_from("<Q", body, 0)
    header = body[8 : 8 + header_len].replace(b'"shape": [5]', b'"shape": [6]')
    import hashlib

    new_body = struct.pack("<Q", len(header)) + header + body[8 + header_len:]
    with open(path, "wb") as handle:
        handle.write(
            MAGIC
            + struct.pack("<I", FORMAT_VERSION)
            + hashlib.sha256(new_body).digest()
            + new_body
        )
    with pytest.raises(ConfigurationError, match="should be"):
        read_checkpoint(path)


def test_corrupt_checkpoint_falls_back_to_fresh_run(tmp_path):
    """spec.run discards a bad checkpoint and reproduces the clean result."""
    spec = MATRIX["kv-routing"].replace(seed=4)
    clean = spec.run()
    path = str(tmp_path / "cell.ckpt")
    partial = _build_sim(spec)
    run_with_checkpoints(
        partial, 9, path, interval=4, fingerprint=spec.fingerprint()
    )
    with open(path, "r+b") as handle:
        handle.seek(100)
        byte = handle.read(1)
        handle.seek(100)
        handle.write(bytes([byte[0] ^ 0xFF]))
    _assert_same(spec.run(checkpoint_path=path, snapshot_interval=4), clean)


def test_scheduler_mismatch_raises(tmp_path):
    """A snapshot restores only onto an identically configured scheduler."""
    spec = MATRIX["kv-routing"].replace(seed=2)
    path = str(tmp_path / "cell.ckpt")
    sim = _build_sim(spec)
    sim.run(5)
    save_checkpoint(path, sim)
    other = _build_sim(
        spec.replace(scheduler_kwargs={"backoff": 0.25})
    )
    with pytest.raises(ConfigurationError):
        load_checkpoint_into(other, path)


# ----------------------------------------------------------------------
# run_with_checkpoints edges
# ----------------------------------------------------------------------


def test_bad_snapshot_interval_raises(tmp_path):
    spec = MATRIX["kv-routing"]
    sim = _build_sim(spec)
    with pytest.raises(ConfigurationError, match="interval"):
        run_with_checkpoints(sim, 10, str(tmp_path / "c.ckpt"), interval=0)


def test_past_horizon_raises(tmp_path):
    spec = MATRIX["kv-routing"]
    sim = _build_sim(spec)
    sim.run(12)
    with pytest.raises(ConfigurationError, match="past the"):
        run_with_checkpoints(sim, 10, str(tmp_path / "c.ckpt"))


def test_snapshot_written_every_interval(tmp_path):
    spec = MATRIX["kv-routing"].replace(seed=1)
    path = str(tmp_path / "c.ckpt")
    sim = _build_sim(spec)
    run_with_checkpoints(sim, 10, path, interval=3)
    state, _ = read_checkpoint(path)
    assert state["frame"] == 10  # final snapshot covers the horizon
    assert sim.frames_run == 10


def test_preset_end_to_end_resume(tmp_path):
    """The headline workflow: preset spec, interrupt, resume, parity."""
    spec = preset_spec("sinr-linear", nodes=8, seed=3, frames=30)
    clean = spec.run()
    path = str(tmp_path / "cell.ckpt")
    partial = _build_sim(spec)
    run_with_checkpoints(
        partial, 13, path, interval=5, fingerprint=spec.fingerprint()
    )
    resumed = spec.run(checkpoint_path=path, snapshot_interval=5)
    _assert_same(resumed, clean)
