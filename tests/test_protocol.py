"""The Section-4 dynamic protocol."""

import numpy as np
import pytest

from repro.core.frames import FrameParameters
from repro.core.protocol import DynamicProtocol
from repro.core.transform import TransformedAlgorithm
from repro.errors import ConfigurationError, SchedulingError
from repro.injection.packet import Packet
from repro.interference.packet_routing import PacketRoutingModel
from repro.network.topology import line_network
from repro.staticsched.decay import DecayScheduler
from repro.staticsched.single_hop import SingleHopScheduler


@pytest.fixture()
def chain_protocol():
    """Packet-routing chain with the trivial scheduler: fully predictable."""
    net = line_network(5)
    model = PacketRoutingModel(net)
    return (
        DynamicProtocol(
            model, SingleHopScheduler(), rate=0.5, t_scale=0.01, rng=0
        ),
        net,
        model,
    )


def packet(pid, path, slot=0):
    return Packet(id=pid, path=tuple(path), injected_at=slot)


def test_injected_packets_wait_one_frame(chain_protocol):
    protocol, net, model = chain_protocol
    report0 = protocol.run_frame([packet(0, (0, 1))])
    # Injected during frame 0: nothing processed yet.
    assert report0.phase1_requests == 0
    assert report0.active_in_system == 1
    report1 = protocol.run_frame([])
    # Now the packet crossed its first hop.
    assert report1.phase1_hops == 1
    assert report1.active_in_system == 1
    report2 = protocol.run_frame([])
    assert report2.phase1_hops == 1
    assert report2.active_in_system == 0
    assert len(protocol.delivered) == 1


def test_one_hop_per_frame_delivery_time(chain_protocol):
    protocol, net, model = chain_protocol
    protocol.run_frame([packet(0, (0, 1, 2, 3))])
    for _ in range(4):
        protocol.run_frame([])
    assert len(protocol.delivered) == 1
    delivered = protocol.delivered[0]
    # Injected in frame 0, active frames 1..4, delivered at end of frame 4.
    assert delivered.delivered_at == 5 * protocol.frame_length


def test_latency_is_order_d_frames(chain_protocol):
    protocol, net, model = chain_protocol
    protocol.run_frame([packet(0, (0,)), packet(1, (0, 1, 2))])
    for _ in range(4):
        protocol.run_frame([])
    by_id = {p.id: p for p in protocol.delivered}
    assert by_id[0].latency() <= 2 * protocol.frame_length
    assert by_id[1].latency() <= 4 * protocol.frame_length


def test_no_failures_on_underloaded_packet_routing(chain_protocol):
    protocol, net, model = chain_protocol
    rng = np.random.default_rng(1)
    pid = 0
    for frame in range(30):
        batch = []
        if rng.random() < 0.5:
            batch.append(packet(pid, (0, 1, 2, 3), slot=frame))
            pid += 1
        report = protocol.run_frame(batch)
        assert report.newly_failed == 0
    assert protocol.potential.value == 0
    assert protocol.failed_count == 0


def forced_failure_protocol(rng=0, cleanup_enabled=True, cleanup_probability=1.0):
    """Phase-1 budget of zero-ish slots: every active packet fails."""
    net = line_network(4)
    model = PacketRoutingModel(net)
    params = FrameParameters(
        frame_length=10,
        phase1_budget=0,  # nothing can be served in phase 1
        cleanup_budget=5,
        measure_budget=1.0,
        epsilon=0.5,
        rate=0.1,
        f_m=1.0,
        m=net.size_m,
    )
    return (
        DynamicProtocol(
            model,
            SingleHopScheduler(),
            rate=0.1,
            params=params,
            cleanup_enabled=cleanup_enabled,
            cleanup_probability=cleanup_probability,
            rng=rng,
        ),
        model,
    )


def test_failures_enter_buffers_and_potential():
    protocol, model = forced_failure_protocol(cleanup_enabled=False)
    protocol.run_frame([packet(0, (0, 1, 2))])
    report = protocol.run_frame([])
    assert report.newly_failed == 1
    assert protocol.failed_count == 1
    assert protocol.potential.value == 3  # all three hops remain
    assert protocol.failed_buffer_sizes() == {0: 1}


def test_cleanup_drains_failed_packets():
    protocol, model = forced_failure_protocol(cleanup_probability=1.0)
    protocol.run_frame([packet(0, (0, 1))])
    protocol.run_frame([])  # fails in phase 1, cleanup serves one hop
    # With cleanup probability 1 and the trivial scheduler, each frame
    # moves the failed packet one hop.
    for _ in range(4):
        protocol.run_frame([])
    assert len(protocol.delivered) == 1
    assert protocol.potential.value == 0
    assert protocol.failed_count == 0


def test_cleanup_respects_failure_age():
    protocol, model = forced_failure_protocol(cleanup_probability=1.0)
    protocol.run_frame([packet(0, (0,), slot=0)])
    protocol.run_frame([packet(1, (0,), slot=1)])  # packet 0 fails here
    # Packet 0 failed in frame 1; packet 1 fails in frame 2. The buffer
    # serves oldest-first, so packet 0 must be delivered first.
    for _ in range(6):
        protocol.run_frame([])
    order = [p.id for p in protocol.delivered]
    assert order == [0, 1]


def test_ablation_no_cleanup_keeps_potential():
    protocol, model = forced_failure_protocol(cleanup_enabled=False)
    protocol.run_frame([packet(0, (0, 1))])
    for _ in range(5):
        report = protocol.run_frame([])
        assert report.cleanup_offered == 0
    assert protocol.potential.value == 2
    assert len(protocol.delivered) == 0


def test_cleanup_probability_validation():
    net = line_network(3)
    model = PacketRoutingModel(net)
    with pytest.raises(ConfigurationError):
        DynamicProtocol(
            model,
            SingleHopScheduler(),
            rate=0.1,
            t_scale=0.01,
            cleanup_probability=0.0,
        )


def test_packet_with_unknown_link_rejected(chain_protocol):
    protocol, net, model = chain_protocol
    with pytest.raises(SchedulingError, match="unknown link"):
        protocol.run_frame([packet(0, (99,))])


def test_frame_reports_are_consistent(chain_protocol):
    protocol, net, model = chain_protocol
    rng = np.random.default_rng(2)
    pid = 0
    for frame in range(20):
        batch = []
        if rng.random() < 0.7:
            batch.append(packet(pid, (0, 1), slot=frame))
            pid += 1
        report = protocol.run_frame(batch)
        assert report.frame == frame
        assert report.injected == len(batch)
        assert (
            report.active_in_system + report.failed_in_system
            == protocol.packets_in_system
        )
        assert report.delivered_packets == len(protocol.delivered)


def test_transformed_algorithm_drives_protocol():
    """Integration: transformed decay on SINR serves an underloaded flow."""
    from repro.network.topology import random_sinr_network
    from repro.sinr.weights import linear_power_model

    net = random_sinr_network(12, rng=3)
    model = linear_power_model(net, alpha=3.0, beta=1.0, noise=0.02)
    algorithm = TransformedAlgorithm(
        DecayScheduler(), m=net.size_m, chi_scale=0.05
    )
    bound = algorithm.network_bound(net.size_m)
    rate = 0.3 / bound.f(net.size_m)
    protocol = DynamicProtocol(model, algorithm, rate, t_scale=0.001, rng=4)
    links = [link.id for link in net.links]
    rng = np.random.default_rng(5)
    pid = 0
    for frame in range(15):
        batch = []
        for _ in range(3):
            batch.append(packet(pid, (int(rng.choice(links)),), slot=frame))
            pid += 1
        protocol.run_frame(batch)
    assert len(protocol.delivered) > 0
    assert protocol.packets_in_system + len(protocol.delivered) == pid
