"""Shared fixtures: small, fast instances of every model family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.interference.builders import node_constraint_conflicts
from repro.interference.conflict import ConflictGraphModel
from repro.interference.mac import MultipleAccessChannel
from repro.interference.packet_routing import PacketRoutingModel
from repro.network.routing import build_routing_table
from repro.network.topology import (
    grid_network,
    line_network,
    mac_network,
    random_sinr_network,
)
from repro.sinr.weights import linear_power_model


@pytest.fixture(scope="session")
def sinr_net():
    """A 15-node random geometric network (deterministic)."""
    return random_sinr_network(15, rng=7)


@pytest.fixture(scope="session")
def sinr_model(sinr_net):
    """Linear-power SINR model over ``sinr_net``."""
    return linear_power_model(sinr_net, alpha=3.0, beta=1.0, noise=0.05)


@pytest.fixture(scope="session")
def sinr_routing(sinr_net):
    return build_routing_table(sinr_net)


@pytest.fixture(scope="session")
def mac_net():
    """A 5-station multiple-access channel network."""
    return mac_network(5)


@pytest.fixture(scope="session")
def mac_model(mac_net):
    return MultipleAccessChannel(mac_net)


@pytest.fixture(scope="session")
def chain_net():
    """A 6-node forward chain (paths of length 1..5)."""
    return line_network(6)


@pytest.fixture(scope="session")
def routing_chain(chain_net):
    return build_routing_table(chain_net)


@pytest.fixture(scope="session")
def grid_net():
    return grid_network(3, 3)


@pytest.fixture(scope="session")
def conflict_model(grid_net):
    """Node-constraint conflict model over the 3x3 grid."""
    return ConflictGraphModel(grid_net, node_constraint_conflicts(grid_net))


@pytest.fixture(scope="session")
def packet_routing_model(grid_net):
    return PacketRoutingModel(grid_net)


@pytest.fixture()
def rng():
    return np.random.default_rng(42)
