"""Metrics recording and latency summaries."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.injection.packet import Packet
from repro.injection.store import PacketStore
from repro.sim.metrics import LatencySummary, MetricsRecorder


def delivered_packet(pid, injected, delivered, hops=1):
    packet = Packet(id=pid, path=tuple(range(hops)), injected_at=injected)
    for k in range(hops):
        packet.advance(delivered if k == hops - 1 else injected + k)
    return packet


def test_latency_summary_empty_is_nan_not_zero():
    """No delivered packets must not masquerade as zero latency."""
    summary = LatencySummary.from_packets([])
    assert summary.count == 0
    assert math.isnan(summary.mean)
    assert math.isnan(summary.median)
    assert math.isnan(summary.p95)
    assert math.isnan(summary.maximum)


def test_latency_summary_values():
    packets = [
        delivered_packet(0, 0, 10),
        delivered_packet(1, 5, 25),
        delivered_packet(2, 0, 30),
    ]
    summary = LatencySummary.from_packets(packets)
    assert summary.count == 3
    assert summary.mean == pytest.approx((10 + 20 + 30) / 3)
    assert summary.median == 20
    assert summary.maximum == 30


def test_recorder_series_and_totals():
    recorder = MetricsRecorder()
    for frame in range(5):
        recorder.record_frame(
            injected=2,
            in_system=frame,
            active=frame,
            failed=0,
            potential=0,
            delivered_total=frame * 2,
        )
    assert recorder.frames == 5
    assert recorder.injected_total == 10
    assert recorder.queue_series == [0, 1, 2, 3, 4]
    assert recorder.final_queue == 4
    assert recorder.max_queue == 4
    assert recorder.delivered_count() == 8
    assert recorder.throughput() == pytest.approx(8 / 5)


def test_mean_queue_tail():
    recorder = MetricsRecorder()
    for value in [100, 100, 0, 0]:
        recorder.record_frame(0, value, value, 0, 0, 0)
    assert recorder.mean_queue(tail_fraction=0.5) == 0.0
    assert recorder.mean_queue(tail_fraction=1.0) == 50.0


@pytest.mark.parametrize("bad", [0.0, -0.5, 1.5, 2.0])
def test_mean_queue_rejects_out_of_range_tail_fraction(bad):
    """tail_fraction > 1 used to slice a wrong window from the tail."""
    recorder = MetricsRecorder()
    for value in [100, 100, 0, 0]:
        recorder.record_frame(0, value, value, 0, 0, 0)
    with pytest.raises(ConfigurationError):
        recorder.mean_queue(tail_fraction=bad)


def test_latency_summary_from_store_sequence_matches_object_path():
    store = PacketStore()
    for pid, (injected, delivered) in enumerate([(0, 10), (5, 25), (0, 30)]):
        index = store.allocate((0,), injected)
        assert index == pid
        store.advance_one(index, delivered)
    sequence = store.sequence([0, 1, 2])
    summary = LatencySummary.from_packets(sequence)
    object_summary = LatencySummary.from_packets(list(sequence))
    assert summary == object_summary
    assert summary.count == 3
    assert summary.mean == pytest.approx((10 + 20 + 30) / 3)


def test_empty_recorder_defaults():
    recorder = MetricsRecorder()
    assert recorder.final_queue == 0
    assert recorder.max_queue == 0
    assert recorder.mean_queue() == 0.0
    assert recorder.throughput() == 0.0


def test_latency_by_path_length():
    recorder = MetricsRecorder()
    packets = [
        delivered_packet(0, 0, 10, hops=1),
        delivered_packet(1, 0, 30, hops=2),
        delivered_packet(2, 0, 20, hops=1),
    ]
    groups = recorder.latency_by_path_length(packets)
    assert set(groups) == {1, 2}
    assert groups[1].count == 2
    assert groups[2].mean == 30
