"""Metrics recording and latency summaries."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.injection.packet import Packet
from repro.injection.store import PacketStore
from repro.sim.metrics import LatencySummary, MetricsRecorder


def delivered_packet(pid, injected, delivered, hops=1):
    packet = Packet(id=pid, path=tuple(range(hops)), injected_at=injected)
    for k in range(hops):
        packet.advance(delivered if k == hops - 1 else injected + k)
    return packet


def test_latency_summary_empty_is_nan_not_zero():
    """No delivered packets must not masquerade as zero latency."""
    summary = LatencySummary.from_packets([])
    assert summary.count == 0
    assert math.isnan(summary.mean)
    assert math.isnan(summary.median)
    assert math.isnan(summary.p95)
    assert math.isnan(summary.maximum)


def test_latency_summary_values():
    packets = [
        delivered_packet(0, 0, 10),
        delivered_packet(1, 5, 25),
        delivered_packet(2, 0, 30),
    ]
    summary = LatencySummary.from_packets(packets)
    assert summary.count == 3
    assert summary.mean == pytest.approx((10 + 20 + 30) / 3)
    assert summary.median == 20
    assert summary.maximum == 30


def test_recorder_series_and_totals():
    recorder = MetricsRecorder()
    for frame in range(5):
        recorder.record_frame(
            injected=2,
            in_system=frame,
            active=frame,
            failed=0,
            potential=0,
            delivered_total=frame * 2,
        )
    assert recorder.frames == 5
    assert recorder.injected_total == 10
    assert recorder.queue_series == [0, 1, 2, 3, 4]
    assert recorder.final_queue == 4
    assert recorder.max_queue == 4
    assert recorder.delivered_count() == 8
    assert recorder.throughput() == pytest.approx(8 / 5)


def test_mean_queue_tail():
    recorder = MetricsRecorder()
    for value in [100, 100, 0, 0]:
        recorder.record_frame(0, value, value, 0, 0, 0)
    assert recorder.mean_queue(tail_fraction=0.5) == 0.0
    assert recorder.mean_queue(tail_fraction=1.0) == 50.0


@pytest.mark.parametrize("bad", [0.0, -0.5, 1.5, 2.0])
def test_mean_queue_rejects_out_of_range_tail_fraction(bad):
    """tail_fraction > 1 used to slice a wrong window from the tail."""
    recorder = MetricsRecorder()
    for value in [100, 100, 0, 0]:
        recorder.record_frame(0, value, value, 0, 0, 0)
    with pytest.raises(ConfigurationError):
        recorder.mean_queue(tail_fraction=bad)


def test_latency_summary_from_store_sequence_matches_object_path():
    store = PacketStore()
    for pid, (injected, delivered) in enumerate([(0, 10), (5, 25), (0, 30)]):
        index = store.allocate((0,), injected)
        assert index == pid
        store.advance_one(index, delivered)
    sequence = store.sequence([0, 1, 2])
    summary = LatencySummary.from_packets(sequence)
    object_summary = LatencySummary.from_packets(list(sequence))
    assert summary == object_summary
    assert summary.count == 3
    assert summary.mean == pytest.approx((10 + 20 + 30) / 3)


def test_empty_recorder_defaults():
    recorder = MetricsRecorder()
    assert recorder.final_queue == 0
    assert recorder.max_queue == 0
    assert recorder.mean_queue() == 0.0
    assert recorder.throughput() == 0.0


def test_latency_by_path_length():
    recorder = MetricsRecorder()
    packets = [
        delivered_packet(0, 0, 10, hops=1),
        delivered_packet(1, 0, 30, hops=2),
        delivered_packet(2, 0, 20, hops=1),
    ]
    groups = recorder.latency_by_path_length(packets)
    assert set(groups) == {1, 2}
    assert groups[1].count == 2
    assert groups[2].mean == 30


# ----------------------------------------------------------------------
# load_state_dict validation (negative / boolean / non-integral counts)
# ----------------------------------------------------------------------


def _full_state(frames=2):
    recorder = MetricsRecorder()
    for frame in range(frames):
        recorder.record_frame(1, frame, frame, 0, 0, frame)
    return recorder.state_dict()


def test_load_state_dict_roundtrip():
    state = _full_state()
    recorder = MetricsRecorder()
    recorder.load_state_dict(state)
    assert recorder.state_dict() == state


@pytest.mark.parametrize("field", ["frames", "injected_total"])
@pytest.mark.parametrize("bad", [-1, -7, True, False, 2.5, "3", None])
def test_load_state_dict_rejects_bad_scalars(field, bad):
    """Negative counts, bools, and non-integral values all raise,
    naming the offending field."""
    state = _full_state()
    state[field] = bad
    recorder = MetricsRecorder()
    with pytest.raises(ConfigurationError, match=field):
        recorder.load_state_dict(state)


@pytest.mark.parametrize("bad", [-1, True, 1.5, "x"])
def test_load_state_dict_rejects_bad_series_entries(bad):
    state = _full_state()
    state["queue_series"][1] = bad
    recorder = MetricsRecorder()
    with pytest.raises(ConfigurationError, match="queue_series"):
        recorder.load_state_dict(state)


def test_load_state_dict_rejects_numpy_bool():
    import numpy as np

    state = _full_state()
    state["frames"] = np.bool_(True)
    with pytest.raises(ConfigurationError, match="frames"):
        MetricsRecorder().load_state_dict(state)


def test_load_state_dict_accepts_numpy_integers():
    import numpy as np

    state = _full_state()
    state["frames"] = np.int64(state["frames"])
    recorder = MetricsRecorder()
    recorder.load_state_dict(state)
    assert recorder.frames == 2


def test_load_state_dict_rejects_length_mismatch():
    state = _full_state()
    state["queue_series"].append(0)
    with pytest.raises(ConfigurationError, match="queue_series"):
        MetricsRecorder().load_state_dict(state)


# ----------------------------------------------------------------------
# Streaming retention
# ----------------------------------------------------------------------


def _record(recorder, values, injected=1):
    for frame, value in enumerate(values):
        recorder.record_frame(injected, value, value, 0, 0, frame + 1)


def test_streaming_recorder_matches_full_summaries():
    import numpy as np

    rng = np.random.default_rng(5)
    values = rng.integers(0, 100, size=300).tolist()
    full = MetricsRecorder()
    stream = MetricsRecorder(retention="streaming")
    _record(full, values)
    _record(stream, values)
    assert stream.frames == full.frames
    assert stream.injected_total == full.injected_total
    assert stream.final_queue == full.final_queue
    assert stream.max_queue == full.max_queue
    assert stream.delivered_count() == full.delivered_count()
    assert stream.throughput() == full.throughput()
    # Exact (not approximate) while the run fits the ring window.
    assert stream.mean_queue() == full.mean_queue()
    assert stream.mean_queue(tail_fraction=1.0) == full.mean_queue(
        tail_fraction=1.0
    )
    assert repr(stream.stability_verdict(load_per_frame=2.0)) == repr(
        full.stability_verdict(load_per_frame=2.0)
    )
    assert stream.recent_queue_series() == values
    assert full.recent_queue_series() is full.queue_series


def test_streaming_recorder_series_stay_empty():
    stream = MetricsRecorder(retention="streaming")
    _record(stream, list(range(100)))
    assert stream.queue_series == []
    assert stream.delivered_series == []
    assert stream.frames == 100


def test_streaming_recorder_rejects_unknown_retention():
    with pytest.raises(ConfigurationError, match="retention"):
        MetricsRecorder(retention="bounded")
    with pytest.raises(ConfigurationError, match="release_interval"):
        MetricsRecorder(retention="streaming", release_interval=0)


def test_streaming_state_roundtrip_preserves_summaries():
    stream = MetricsRecorder(retention="streaming", window=64)
    _record(stream, list(range(200)))
    state = stream.state_dict()
    other = MetricsRecorder(retention="streaming", window=64)
    other.load_state_dict(state)
    assert other.frames == stream.frames
    assert other.mean_queue() == stream.mean_queue()
    assert other.max_queue == stream.max_queue
    assert repr(other.stability_verdict()) == repr(stream.stability_verdict())


def test_streaming_state_refuses_cross_retention_and_config_drift():
    stream = MetricsRecorder(retention="streaming")
    _record(stream, list(range(30)))
    state = stream.state_dict()
    with pytest.raises(ConfigurationError, match="retention"):
        MetricsRecorder().load_state_dict(state)
    with pytest.raises(ConfigurationError, match="retention"):
        stream.load_state_dict(_full_state())
    other = MetricsRecorder(retention="streaming", window=1024)
    with pytest.raises(ConfigurationError, match="window"):
        other.load_state_dict(state)


def test_streaming_latency_summary_merges_pending_and_released():
    import numpy as np

    stream = MetricsRecorder(retention="streaming")
    stream.absorb_latencies(
        np.asarray([10, 30], dtype=np.int64),
        np.asarray([1, 2], dtype=np.int64),
    )
    pending = [delivered_packet(2, 0, 20, hops=1)]
    summary = stream.latency_summary(pending)
    assert summary.count == 3
    assert summary.mean == pytest.approx(20.0)
    assert summary.maximum == 30.0
    # Idempotent: merging pending packets must not mutate the sketch.
    assert stream.latency_summary(pending) == summary
    groups = stream.latency_by_path_length(pending)
    assert set(groups) == {1, 2}
    assert groups[1].count == 2
    assert groups[2].count == 1


def test_full_recorder_rejects_absorb():
    import numpy as np

    recorder = MetricsRecorder()
    with pytest.raises(ConfigurationError, match="streaming"):
        recorder.absorb_latencies(
            np.asarray([1], dtype=np.int64), np.asarray([1], dtype=np.int64)
        )
