"""Metrics recording and latency summaries."""

import pytest

from repro.injection.packet import Packet
from repro.sim.metrics import LatencySummary, MetricsRecorder


def delivered_packet(pid, injected, delivered, hops=1):
    packet = Packet(id=pid, path=tuple(range(hops)), injected_at=injected)
    for k in range(hops):
        packet.advance(delivered if k == hops - 1 else injected + k)
    return packet


def test_latency_summary_empty():
    summary = LatencySummary.from_packets([])
    assert summary.count == 0
    assert summary.mean == 0.0


def test_latency_summary_values():
    packets = [
        delivered_packet(0, 0, 10),
        delivered_packet(1, 5, 25),
        delivered_packet(2, 0, 30),
    ]
    summary = LatencySummary.from_packets(packets)
    assert summary.count == 3
    assert summary.mean == pytest.approx((10 + 20 + 30) / 3)
    assert summary.median == 20
    assert summary.maximum == 30


def test_recorder_series_and_totals():
    recorder = MetricsRecorder()
    for frame in range(5):
        recorder.record_frame(
            injected=2,
            in_system=frame,
            active=frame,
            failed=0,
            potential=0,
            delivered_total=frame * 2,
        )
    assert recorder.frames == 5
    assert recorder.injected_total == 10
    assert recorder.queue_series == [0, 1, 2, 3, 4]
    assert recorder.final_queue == 4
    assert recorder.max_queue == 4
    assert recorder.delivered_count() == 8
    assert recorder.throughput() == pytest.approx(8 / 5)


def test_mean_queue_tail():
    recorder = MetricsRecorder()
    for value in [100, 100, 0, 0]:
        recorder.record_frame(0, value, value, 0, 0, 0)
    assert recorder.mean_queue(tail_fraction=0.5) == 0.0
    assert recorder.mean_queue(tail_fraction=1.0) == 50.0


def test_empty_recorder_defaults():
    recorder = MetricsRecorder()
    assert recorder.final_queue == 0
    assert recorder.max_queue == 0
    assert recorder.mean_queue() == 0.0
    assert recorder.throughput() == 0.0


def test_latency_by_path_length():
    recorder = MetricsRecorder()
    packets = [
        delivered_packet(0, 0, 10, hops=1),
        delivered_packet(1, 0, 30, hops=2),
        delivered_packet(2, 0, 20, hops=1),
    ]
    groups = recorder.latency_by_path_length(packets)
    assert set(groups) == {1, 2}
    assert groups[1].count == 2
    assert groups[2].mean == 30
