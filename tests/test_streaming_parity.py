"""The streaming-vs-batch parity contract (the PR's correctness soak).

Streaming retention must be *observationally identical* to full
retention: every ``CellResult`` field bit-equal (count/mean/extreme
statistics are exact under compensated summation and order-preserving
compaction), and the only sanctioned divergence is the quantile
sketch, whose median/p95 must sit within its documented relative-error
bound of the nearest-rank batch recompute from the full history.

Workload sizing: the transformed schedulers (kv/decay/fkv) run huge
frames (~10^5 slots), so they get short horizons with a small
``release_interval`` to still exercise the summarize-and-release path;
the cheap single-hop/MAC workloads carry the long horizons — past the
ring window, through many compaction cycles. The ``slow``-marked soak
runs thousands of frames; everything else is PR-lane fast.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.scenario import ScenarioSpec
from repro.sim.engine import FrameSimulation
from repro.sim.metrics import MetricsRecorder
from repro.sim.stability import assess_stability_windowed
from repro.staticsched.runloop import available_backends

BACKENDS = [b for b in available_backends() if b != "auto"]

# Cheap workloads (small frames): long horizons, spec-level runs where
# the default release_interval=64 fires several times.
FAST_SPECS = {
    "single-hop-grid": ScenarioSpec(
        topology="grid", topology_kwargs={"rows": 3, "cols": 3},
        model="packet-routing", scheduler="single-hop",
        frames=400, seed=5,
    ),
    "mac-roundrobin": ScenarioSpec(
        topology="mac", topology_kwargs={"num_stations": 4},
        model="mac", scheduler="round-robin", frames=400, seed=5,
    ),
}

# Expensive transformed schedulers (huge frames): short horizons, run
# at engine level with a small release_interval so the release path
# still cycles.
HEAVY_SPECS = {
    "kv-routing": ScenarioSpec(
        topology="random", topology_kwargs={"num_nodes": 8},
        model="packet-routing", scheduler="kv", transform=True,
        frames=24, seed=5,
    ),
    "decay-linear": ScenarioSpec(
        topology="random", topology_kwargs={"num_nodes": 8},
        model="linear-power", scheduler="decay", transform=True,
        frames=24, seed=5,
    ),
    "fkv-grid": ScenarioSpec(
        topology="grid", topology_kwargs={"rows": 3, "cols": 3},
        model="packet-routing", scheduler="fkv", transform=True,
        frames=24, seed=5,
    ),
}


def _nearest_rank(sorted_values, q):
    rank = max(0, math.ceil(q * len(sorted_values)) - 1)
    return float(sorted_values[rank])


def _run_pair(spec, release_interval=16):
    """Run ``spec`` under both retentions and return the two sims."""
    built_full = spec.build()
    full = FrameSimulation(built_full.protocol, built_full.injection)
    full.run(spec.frames)
    built_s = spec.build()
    streaming = FrameSimulation(
        built_s.protocol,
        built_s.injection,
        metrics=MetricsRecorder(
            retention="streaming", release_interval=release_interval
        ),
    )
    streaming.run(spec.frames)
    return full, streaming


# ----------------------------------------------------------------------
# Record-level parity: scheduler x backend
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(FAST_SPECS))
def test_cell_records_match_across_retention(name):
    full = FAST_SPECS[name].run()
    streaming = FAST_SPECS[name].replace(metrics="streaming").run()
    # repr round-trips floats exactly and treats NaN latency uniformly,
    # so equal reprs mean bit-identical records.
    assert repr(streaming) == repr(full)


@pytest.mark.parametrize("name", sorted(HEAVY_SPECS))
def test_transformed_scheduler_summaries_match(name):
    full, streaming = _run_pair(HEAVY_SPECS[name], release_interval=8)
    f, s = full.metrics, streaming.metrics
    assert s.released_count > 0  # the release path actually cycled
    assert s.injected_total == f.injected_total
    assert s.final_queue == f.final_queue
    assert s.max_queue == f.max_queue
    batch = f.latency_summary(full.protocol.delivered)
    merged = s.latency_summary(streaming.protocol.delivered)
    assert merged.count == batch.count
    assert merged.mean == batch.mean
    assert merged.maximum == batch.maximum


@pytest.mark.parametrize("backend", BACKENDS)
def test_cell_records_match_across_retention_per_backend(backend):
    spec = FAST_SPECS["single-hop-grid"].replace(seed=3, backend=backend)
    full = spec.run()
    streaming = spec.replace(metrics="streaming").run()
    assert repr(streaming) == repr(full)


# ----------------------------------------------------------------------
# Summary-level parity: exact fields exact, sketch fields bounded
# ----------------------------------------------------------------------


def test_summaries_exact_and_quantiles_within_sketch_bound():
    spec = FAST_SPECS["single-hop-grid"].replace(frames=600)
    full, streaming = _run_pair(spec)
    f, s = full.metrics, streaming.metrics
    assert s.released_count > 0
    delivered_full = full.protocol.delivered
    delivered_stream = streaming.protocol.delivered
    batch = f.latency_summary(delivered_full)
    merged = s.latency_summary(delivered_stream)
    # Exact contract: count, mean, max (compensated integer sums).
    assert merged.count == batch.count
    assert merged.mean == batch.mean
    assert merged.maximum == batch.maximum
    # Sketch contract: median/p95 within alpha of the nearest-rank
    # order statistic recomputed from the full history.
    latencies = np.sort(np.asarray([p.latency() for p in delivered_full]))
    alpha = s.sketch_alpha
    for q, estimate in ((0.5, merged.median), (0.95, merged.p95)):
        truth = _nearest_rank(latencies, q)
        assert abs(estimate - truth) <= alpha * truth * (1.0 + 1e-9)
    # Queue statistics: exact.
    assert s.frames == f.frames
    assert s.injected_total == f.injected_total
    assert s.final_queue == f.final_queue
    assert s.max_queue == f.max_queue
    assert s.delivered_count() == f.delivered_count()


def test_by_path_length_summaries_match():
    spec = FAST_SPECS["single-hop-grid"]
    full, streaming = _run_pair(spec)
    batch = full.metrics.latency_by_path_length(full.protocol.delivered)
    merged = streaming.metrics.latency_by_path_length(
        streaming.protocol.delivered
    )
    assert sorted(merged) == sorted(batch)
    for length, summary in batch.items():
        assert merged[length].count == summary.count
        assert merged[length].mean == summary.mean
        assert merged[length].maximum == summary.maximum


# ----------------------------------------------------------------------
# Compaction actually bounds the store
# ----------------------------------------------------------------------


def test_streaming_compaction_shrinks_store():
    spec = FAST_SPECS["single-hop-grid"]
    full, streaming = _run_pair(spec, release_interval=8)
    assert len(streaming.protocol.store) < len(full.protocol.store)
    # ...without losing accounting: totals agree exactly.
    assert streaming.protocol.delivered_total == full.protocol.delivered_total
    assert (
        streaming.metrics.delivered_count() == full.metrics.delivered_count()
    )


# ----------------------------------------------------------------------
# Long soak beyond the ring window
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_long_soak_windowed_verdict_matches_batch_recompute():
    spec = FAST_SPECS["single-hop-grid"].replace(frames=3000)
    full, streaming = _run_pair(spec, release_interval=8)
    f, s = full.metrics, streaming.metrics
    assert s.frames == 3000 and s.frames > s.window
    # The full history is the ground truth; the streaming verdict must
    # bit-match the windowed detector recomputed from it.
    batch = assess_stability_windowed(
        f.queue_series,
        window=s.window,
        head_frames=s._queue.head_frames,
        load_per_frame=2.0,
    )
    stream = s.stability_verdict(load_per_frame=2.0)
    assert repr(stream) == repr(batch)
    # Exact statistics survive hundreds of release/compaction cycles.
    assert s.injected_total == f.injected_total
    assert s.max_queue == f.max_queue
    assert s.final_queue == f.final_queue
    series = np.asarray(f.queue_series, dtype=float)
    n = series.size
    start = n - max(1, min(s.window, n - int(n * 0.5)))
    assert s.mean_queue(0.5) == float(series[start:].mean())
    batch_summary = f.latency_summary(full.protocol.delivered)
    merged = s.latency_summary(streaming.protocol.delivered)
    assert merged.count == batch_summary.count
    assert merged.mean == batch_summary.mean
    assert merged.maximum == batch_summary.maximum
