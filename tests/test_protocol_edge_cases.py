"""Protocol edge cases and failure injection beyond the main suite."""

import numpy as np
import pytest

from repro.core.frames import FrameParameters
from repro.core.protocol import DynamicProtocol
from repro.injection.packet import Packet
from repro.interference.packet_routing import PacketRoutingModel
from repro.interference.unreliable import UnreliableModel
from repro.network.topology import line_network
from repro.staticsched.single_hop import SingleHopScheduler


def tight_params(m, frame_length=10, phase1=6, cleanup=3):
    return FrameParameters(
        frame_length=frame_length,
        phase1_budget=phase1,
        cleanup_budget=cleanup,
        measure_budget=1.0,
        epsilon=0.5,
        rate=0.1,
        f_m=1.0,
        m=m,
    )


def make_protocol(**kwargs):
    net = line_network(4)
    model = kwargs.pop("model", None) or PacketRoutingModel(net)
    params = kwargs.pop("params", None) or tight_params(net.size_m)
    return DynamicProtocol(
        model, SingleHopScheduler(), rate=0.1, params=params, rng=0, **kwargs
    ), model


def packet(pid, path=(0,), slot=0):
    return Packet(id=pid, path=tuple(path), injected_at=slot)


def test_empty_frames_are_cheap_and_sane():
    protocol, _ = make_protocol()
    for _ in range(5):
        report = protocol.run_frame([])
        assert report.injected == 0
        assert report.phase1_requests == 0
    assert protocol.packets_in_system == 0
    assert protocol.potential.series == [0] * 5


def test_massive_single_frame_burst_eventually_drains():
    # 100 one-hop packets on one link; phase 1 serves 30 per frame, the
    # overflow fails and then drains via clean-up at one hop per frame
    # (single busy buffer, lottery probability 1): full recovery takes
    # ~70 clean-up frames.
    protocol, _ = make_protocol(
        params=tight_params(4, frame_length=40, phase1=30, cleanup=8),
        cleanup_probability=1.0,
    )
    protocol.run_frame([packet(i) for i in range(100)])
    protocol.run_frame([])
    # 70 overflowed phase 1; the same frame's clean-up already drained 1.
    assert protocol.potential.value == 69
    for _ in range(90):
        protocol.run_frame([])
    assert len(protocol.delivered) == 100
    assert protocol.packets_in_system == 0
    assert protocol.potential.value == 0


def test_failed_buffer_movement_across_links():
    # Force failures on two different first-hop links. The clean-up
    # phase runs inside the same frame as the failure: packet 1 (one
    # hop) is delivered immediately, packet 0 advances to its second
    # hop's buffer and is delivered one frame later.
    protocol, _ = make_protocol(
        params=tight_params(4, frame_length=10, phase1=0, cleanup=6),
        cleanup_probability=1.0,
    )
    protocol.run_frame([packet(0, (0, 1)), packet(1, (2,))])
    protocol.run_frame([])  # both fail in phase 1, clean-up acts
    assert protocol.failed_buffer_sizes() == {1: 1}
    assert [p.id for p in protocol.delivered] == [1]
    protocol.run_frame([])
    assert protocol.failed_buffer_sizes() == {}
    assert sorted(p.id for p in protocol.delivered) == [0, 1]


def test_cleanup_chain_onto_offered_link_regression():
    # Regression: packet 0 (path 0->1) and packet 1 (path 1) both fail
    # and are both offered in the same clean-up round. Packet 0's served
    # hop moves it onto link 1 — the same link whose (also served) head
    # is packet 1. Interleaving pushes with pops used to displace packet
    # 1 from its buffer head and raise SchedulingError.
    protocol, _ = make_protocol(
        params=tight_params(4, frame_length=10, phase1=0, cleanup=6),
        cleanup_probability=1.0,
    )
    protocol.run_frame([packet(0, (0, 1)), packet(1, (1,))])
    protocol.run_frame([])  # both fail in phase 1, clean-up serves both
    assert [p.id for p in protocol.delivered] == [1]
    assert protocol.failed_buffer_sizes() == {1: 1}
    protocol.run_frame([])
    assert sorted(p.id for p in protocol.delivered) == [0, 1]
    assert protocol.packets_in_system == 0


def test_unreliable_model_inside_protocol_still_conserves():
    net = line_network(4)
    base = PacketRoutingModel(net)
    model = UnreliableModel(base, 0.3, rng=5)
    protocol, _ = make_protocol(
        model=model,
        params=tight_params(net.size_m, frame_length=60, phase1=40, cleanup=15),
        cleanup_probability=1.0,
    )
    rng = np.random.default_rng(3)
    pid = 0
    injected = 0
    for frame in range(40):
        batch = []
        if rng.random() < 0.6:
            batch.append(packet(pid, (0, 1, 2), slot=frame))
            pid += 1
            injected += 1
        protocol.run_frame(batch)
    assert len(protocol.delivered) + protocol.packets_in_system == injected


def test_potential_series_sampled_every_frame():
    protocol, _ = make_protocol()
    for _ in range(7):
        protocol.run_frame([])
    assert len(protocol.potential.series) == 7


def test_cleanup_lottery_rate_visible_in_reports():
    """With p=1/m and a single stuffed buffer, offers happen ~1/m of frames."""
    m = 4
    protocol, _ = make_protocol(
        params=tight_params(m, frame_length=10, phase1=0, cleanup=5),
    )
    protocol.run_frame([packet(i) for i in range(30)])
    offered = 0
    frames = 400
    for _ in range(frames):
        report = protocol.run_frame([])
        offered += report.cleanup_offered
        if protocol.potential.value == 0:
            break
    # Expected offer rate 1/m = 0.25 per frame while the buffer is busy.
    assert offered > 0
    assert offered <= frames


def test_delivered_list_is_stable_identity():
    protocol, _ = make_protocol()
    p = packet(0, (0, 1))
    protocol.run_frame([p])
    protocol.run_frame([])
    protocol.run_frame([])
    assert protocol.delivered[0] is p
    assert p.delivered_at == 3 * protocol.frame_length
