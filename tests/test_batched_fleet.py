"""The batched executor's bit-identity and fallback contracts.

The wave engine's promise is executor invisibility with teeth: every
record a batched fleet produces must be *bit-identical* to the serial
run of the same spec — same deliveries, same RNG stream consumption,
same summary — across the scheduler x model matrix, under both metrics
modes, for every batch shape (singletons, mixed frame counts, members
that retire early, members with nothing to do). Units that cannot
batch must leave the batched path *loudly* (warning, or error under
``strict``) and still produce the serial result. And a whole campaign
driven through ``BatchedExecutor`` must emit the exact frontier JSON
the serial executor emits.
"""

from __future__ import annotations

import math
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.scenario import ScenarioSpec, preset_spec, run_scenario_fleet
from repro.scenario.batched import (
    BATCHABLE_SCHEDULERS,
    BatchedExecutor,
    BatchFallbackWarning,
    run_fleet_batched,
)
from repro.scenario.campaign import campaign_from_data, run_campaign
from repro.scenario.fleet import FleetUnit
from repro.sim.runner import CellResult
from repro.sim.sharding import SerialExecutor, make_executor

# scheduler x model combinations the parity matrix pins. Node budgets
# stay small: bit-identity is a structural property, not a scale one.
MATRIX_SPECS = {
    "kv-linear": ScenarioSpec(
        topology="random",
        topology_kwargs={"num_nodes": 8},
        model="linear-power",
        scheduler="kv",
        transform=True,
        frames=20,
    ),
    "decay-linear-transformed": ScenarioSpec(
        topology="random",
        topology_kwargs={"num_nodes": 8},
        model="linear-power",
        scheduler="decay",
        transform=True,
        frames=20,
    ),
    "fkv-conflict": ScenarioSpec(
        topology="grid",
        topology_kwargs={"rows": 3, "cols": 3},
        model="conflict-node",
        scheduler="fkv",
        transform=True,
        frames=20,
    ),
    "hm-linear": ScenarioSpec(
        topology="random",
        topology_kwargs={"num_nodes": 8},
        model="linear-power",
        scheduler="hm",
        frames=20,
    ),
    "kv-unreliable": ScenarioSpec(
        topology="random",
        topology_kwargs={"num_nodes": 8},
        model="unreliable",
        model_kwargs={"loss_probability": 0.2},
        scheduler="kv",
        transform=True,
        frames=20,
    ),
    "singlehop-routing": ScenarioSpec(
        topology="grid",
        topology_kwargs={"rows": 3, "cols": 3},
        model="packet-routing",
        scheduler="single-hop",
        frames=20,
    ),
}


def records_equal(left, right) -> bool:
    """CellResult equality, NaN-aware on the latency mean."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if (
            math.isnan(a.latency)
            and math.isnan(b.latency)
            and a.rate_index == b.rate_index
        ):
            a = CellResult(**{**a.__dict__, "latency": 0.0})
            b = CellResult(**{**b.__dict__, "latency": 0.0})
        if a != b:
            return False
    return True


def _assert_batched_matches_serial(specs, **executor_kwargs):
    serial = run_scenario_fleet(specs, SerialExecutor())
    with warnings.catch_warnings():
        # Eligible specs must batch; any fallback here is a bug.
        warnings.simplefilter("error", BatchFallbackWarning)
        batched = run_scenario_fleet(
            specs, BatchedExecutor(**executor_kwargs)
        )
    assert records_equal(serial.records, batched.records)
    assert serial.summary == batched.summary
    return serial, batched


# ----------------------------------------------------------------------
# The scheduler x model x metrics parity matrix
# ----------------------------------------------------------------------


@pytest.mark.parametrize("metrics", ["full", "streaming"])
@pytest.mark.parametrize("combo", sorted(MATRIX_SPECS))
def test_batched_parity_matrix(combo, metrics):
    base = MATRIX_SPECS[combo]
    specs = [
        base.replace(seed=seed, metrics=metrics) for seed in (0, 1, 2)
    ]
    _assert_batched_matches_serial(specs)


def test_every_batchable_scheduler_is_covered():
    covered = {spec.scheduler for spec in MATRIX_SPECS.values()}
    assert covered == set(BATCHABLE_SCHEDULERS)


# ----------------------------------------------------------------------
# Batch shapes: singletons, mixed frames, early retirement, idle peers
# ----------------------------------------------------------------------


def test_batch_of_one():
    _assert_batched_matches_serial(
        [MATRIX_SPECS["hm-linear"].replace(seed=3)]
    )


def test_mixed_frames_batch_together():
    """frames is excluded from the group key: networks that retire
    early must leave the survivors' private RNG streams untouched."""
    base = MATRIX_SPECS["kv-linear"]
    specs = [
        base.replace(seed=seed, frames=frames)
        for seed, frames in ((0, 20), (1, 40), (2, 25))
    ]
    _assert_batched_matches_serial(specs)


def test_idle_member_batches_with_busy_peers():
    """A network whose injection produces (next to) nothing — its
    sub-runs are born finished — must coexist with busy group peers."""
    base = MATRIX_SPECS["hm-linear"]
    specs = [
        base.replace(seed=0, rate_mode="absolute", rate=1e-6),
        base.replace(seed=1, rate_mode="absolute", rate=0.5),
    ]
    _assert_batched_matches_serial(specs)


def test_padding_ratio_splits_groups(monkeypatch):
    """ratio=1 forces one batch per distinct size; parity must hold
    through the split, and the split must actually happen."""
    import repro.scenario.batched as batched_mod

    sizes: list = []
    real = batched_mod.run_batched_streams

    def spy(streams):
        sizes.append(len(streams))
        return real(streams)

    monkeypatch.setattr(batched_mod, "run_batched_streams", spy)
    base = MATRIX_SPECS["kv-linear"]
    specs = [
        base.replace(seed=0),
        base.replace(seed=1, topology_kwargs={"num_nodes": 14}),
    ]
    serial = run_scenario_fleet(specs, SerialExecutor())
    batched = run_scenario_fleet(
        specs, BatchedExecutor(padding_ratio=1.0)
    )
    assert records_equal(serial.records, batched.records)
    assert len(sizes) >= 2 and all(size >= 1 for size in sizes)


def test_large_networks_stay_serial_by_design():
    """Above ``large_links`` nothing batches — and nothing warns:
    that is a sizing decision, not a fallback."""
    specs = [
        MATRIX_SPECS["kv-linear"].replace(seed=seed) for seed in (0, 1)
    ]
    serial = run_scenario_fleet(specs, SerialExecutor())
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        batched = run_scenario_fleet(
            specs, BatchedExecutor(large_links=1)
        )
    assert records_equal(serial.records, batched.records)


# ----------------------------------------------------------------------
# Loud fallbacks
# ----------------------------------------------------------------------


def test_unbatchable_scheduler_warns_and_matches_serial():
    specs = [
        ScenarioSpec(
            topology="mac",
            topology_kwargs={"num_stations": 4},
            model="mac",
            scheduler="round-robin",
            frames=20,
            seed=seed,
        )
        for seed in (0, 1)
    ]
    serial = run_scenario_fleet(specs, SerialExecutor())
    with pytest.warns(BatchFallbackWarning, match="no fused policy"):
        batched = run_scenario_fleet(specs, BatchedExecutor())
    assert records_equal(serial.records, batched.records)


def test_scalar_backend_warns_and_matches_serial():
    specs = [
        MATRIX_SPECS["kv-linear"].replace(seed=seed, backend="scalar")
        for seed in (0, 1)
    ]
    serial = run_scenario_fleet(specs, SerialExecutor())
    with pytest.warns(BatchFallbackWarning, match="no fused run loop"):
        batched = run_scenario_fleet(specs, BatchedExecutor())
    assert records_equal(serial.records, batched.records)


def test_checkpointed_unit_warns_and_matches(tmp_path):
    spec = MATRIX_SPECS["singlehop-routing"].replace(seed=4)
    plain = FleetUnit(spec=spec, index=0)
    unit = plain.with_checkpoint(str(tmp_path / "unit.ckpt"))
    with pytest.warns(BatchFallbackWarning, match="checkpointed"):
        got = BatchedExecutor().map([unit])
    assert records_equal([plain.run()], got)


def test_strict_mode_raises_instead_of_warning():
    spec = ScenarioSpec(
        topology="mac",
        topology_kwargs={"num_stations": 4},
        model="mac",
        scheduler="round-robin",
        frames=20,
    )
    with pytest.raises(ConfigurationError, match="cannot batch"):
        run_fleet_batched([FleetUnit(spec=spec, index=0)], strict=True)


def test_parameter_validation():
    with pytest.raises(ConfigurationError, match="padding_ratio"):
        run_fleet_batched([], padding_ratio=0.5)
    with pytest.raises(ConfigurationError, match="large_links"):
        run_fleet_batched([], large_links=0)


def test_make_executor_knows_batched():
    executor = make_executor("batched", workers=3)
    assert isinstance(executor, BatchedExecutor)
    with pytest.raises(ConfigurationError):
        make_executor("no-such-executor")


# ----------------------------------------------------------------------
# Preset fleets and the campaign frontier
# ----------------------------------------------------------------------


def test_preset_fleet_batches_bit_identically():
    specs = [
        preset_spec("sinr-linear", nodes=8, seed=seed, frames=20,
                    scheduler="hm")
        for seed in range(4)
    ]
    _assert_batched_matches_serial(specs)


CAMPAIGN_DATA = {
    "name": "batched-frontier",
    "axes": {
        "topology": [{"name": "mac", "kwargs": {"num_stations": 4}}],
        "model": ["mac"],
        "scheduler": ["single-hop", {"name": "decay", "transform": True}],
        "injection": ["uniform-pairs"],
    },
    "seeds": [0, 1],
    "frames": 20,
    "search": {"rate_low": 0.5, "rate_high": 2.0, "tolerance": 0.5},
}


def test_campaign_frontier_bit_identical_batched():
    """The PR 8 frontier document must be byte-for-byte identical when
    every probe wave runs through the wave engine — with zero
    fallbacks."""
    spec = campaign_from_data(CAMPAIGN_DATA)
    serial = run_campaign(spec, executor=SerialExecutor()).to_json()
    with warnings.catch_warnings():
        warnings.simplefilter("error", BatchFallbackWarning)
        batched = run_campaign(spec, executor=BatchedExecutor()).to_json()
    assert serial == batched
