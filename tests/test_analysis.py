"""Fitting, bounds, and table formatting."""

import math

import numpy as np
import pytest

from repro.analysis.bounds import (
    chernoff_upper_tail,
    claim5_overload_probability,
    lemma6_drain_probability,
)
from repro.analysis.fitting import (
    fit_affine,
    fit_power_law,
    growth_exponent,
    log_growth_exponent,
)
from repro.analysis.tables import format_table
from repro.errors import ConfigurationError


# ----------------------------------------------------------------------
# Fitting
# ----------------------------------------------------------------------


def test_fit_affine_exact_line():
    fit = fit_affine([0, 1, 2, 3], [1, 3, 5, 7])
    assert fit.slope == pytest.approx(2.0)
    assert fit.intercept == pytest.approx(1.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.predict(10) == pytest.approx(21.0)


def test_fit_affine_noise_reduces_r2(rng):
    x = np.arange(50, dtype=float)
    y = 2 * x + rng.normal(0, 20, size=50)
    fit = fit_affine(x, y)
    assert 0.0 < fit.r_squared < 1.0
    assert fit.slope == pytest.approx(2.0, abs=0.8)


def test_fit_affine_validation():
    with pytest.raises(ConfigurationError):
        fit_affine([1], [2])
    with pytest.raises(ConfigurationError):
        fit_affine([1, 1], [2, 3])
    with pytest.raises(ConfigurationError):
        fit_affine([1, 2], [2, 3, 4])


def test_fit_power_law_recovers_exponent():
    x = np.array([1, 2, 4, 8, 16], dtype=float)
    y = 3.0 * x**1.7
    fit = fit_power_law(x, y)
    assert fit.slope == pytest.approx(1.7)
    assert math.exp(fit.intercept) == pytest.approx(3.0)


def test_fit_power_law_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        fit_power_law([1, 0], [1, 1])


def test_growth_exponent_flat_vs_linear():
    x = [10, 100, 1000]
    assert growth_exponent(x, [5, 5.1, 5.05]) == pytest.approx(0.0, abs=0.05)
    assert growth_exponent(x, [10, 100, 1000]) == pytest.approx(1.0)


def test_log_growth_exponent_quadratic_log():
    ms = [16, 64, 256, 1024, 4096]
    ratios = [math.log(m) ** 2 for m in ms]
    assert log_growth_exponent(ms, ratios) == pytest.approx(2.0, abs=0.05)


# ----------------------------------------------------------------------
# Bounds
# ----------------------------------------------------------------------


def test_chernoff_upper_tail_basic_properties():
    assert chernoff_upper_tail(10.0, 10.0) == 1.0
    assert chernoff_upper_tail(10.0, 5.0) == 1.0  # below-mean: trivial
    p20 = chernoff_upper_tail(10.0, 20.0)
    p30 = chernoff_upper_tail(10.0, 30.0)
    assert 0.0 < p30 < p20 < 1.0


def test_chernoff_zero_mean():
    assert chernoff_upper_tail(0.0, 1.0) == 0.0
    assert chernoff_upper_tail(0.0, 0.0) == 1.0


def test_chernoff_matches_closed_form():
    mean, threshold = 5.0, 10.0
    delta = 1.0
    expected = (math.e / 4.0) ** mean  # (e^1 / 2^2)^mean
    assert chernoff_upper_tail(mean, threshold) == pytest.approx(expected)


def test_claim5_decreases_with_frame_length():
    p_small = claim5_overload_probability(10, 0.01, 1000, delta=0.5)
    p_large = claim5_overload_probability(10, 0.01, 10_000, delta=0.5)
    assert p_large < p_small


def test_claim5_capped_at_one():
    assert claim5_overload_probability(10**6, 0.5, 2, delta=0.01) == 1.0


def test_lemma6_value():
    assert lemma6_drain_probability(1) == pytest.approx(1.0 / (2 * math.e))
    assert lemma6_drain_probability(10) == pytest.approx(
        1.0 / (20 * math.e)
    )
    with pytest.raises(ConfigurationError):
        lemma6_drain_probability(0)


def test_empirical_drain_beats_lemma6():
    """Simulated clean-up drain frequency must respect the 1/(2em) floor."""
    import numpy as np

    from repro.core.frames import FrameParameters
    from repro.core.protocol import DynamicProtocol
    from repro.injection.packet import Packet
    from repro.interference.packet_routing import PacketRoutingModel
    from repro.network.topology import line_network
    from repro.staticsched.single_hop import SingleHopScheduler

    net = line_network(4)
    model = PacketRoutingModel(net)
    params = FrameParameters(
        frame_length=10, phase1_budget=0, cleanup_budget=5,
        measure_budget=1.0, epsilon=0.5, rate=0.1, f_m=1.0, m=net.size_m,
    )
    protocol = DynamicProtocol(
        model, SingleHopScheduler(), rate=0.1, params=params, rng=0
    )
    # Load 30 one-hop packets; phase 1 always fails them into buffers.
    protocol.run_frame([
        Packet(id=i, path=(0,), injected_at=0) for i in range(30)
    ])
    frames = 400
    for _ in range(frames):
        protocol.run_frame([])
        if protocol.potential.value == 0:
            break
    drained = protocol.potential.total_cleanup_hops
    floor = lemma6_drain_probability(net.size_m)
    # Expected drains >= frames * floor; allow statistical slack.
    assert drained >= 0.3 * frames * floor


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------


def test_format_table_alignment():
    text = format_table(
        ["name", "value"],
        [["alpha", 1.5], ["b", 22]],
        title="demo",
    )
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1]
    assert set(lines[2].replace(" ", "")) == {"-"}
    assert "alpha" in lines[3]


def test_format_table_number_formatting():
    text = format_table(["x"], [[0.000123], [1234567.0], [True], [0.0]])
    assert "0.000123" in text
    assert "1.23e+06" in text
    assert "yes" in text
