"""Packet lifecycle."""

import pytest

from repro.errors import TopologyError
from repro.injection.packet import Packet


def test_packet_requires_nonempty_path():
    with pytest.raises(TopologyError):
        Packet(id=0, path=(), injected_at=0)


def test_packet_initial_state():
    packet = Packet(id=1, path=(3, 4, 5), injected_at=10)
    assert packet.path_length == 3
    assert packet.remaining_hops == 3
    assert packet.current_link == 3
    assert not packet.is_delivered
    assert not packet.failed


def test_advance_through_delivery():
    packet = Packet(id=2, path=(0, 1), injected_at=5)
    assert packet.advance(slot=8) is False
    assert packet.current_link == 1
    assert packet.remaining_hops == 1
    assert packet.advance(slot=12) is True
    assert packet.is_delivered
    assert packet.delivered_at == 12
    assert packet.latency() == 7


def test_advance_past_delivery_raises():
    packet = Packet(id=3, path=(0,), injected_at=0)
    packet.advance(1)
    with pytest.raises(TopologyError):
        packet.advance(2)
    with pytest.raises(TopologyError):
        packet.current_link


def test_latency_before_delivery_raises():
    packet = Packet(id=4, path=(0,), injected_at=0)
    with pytest.raises(TopologyError):
        packet.latency()


def test_path_coerced_to_int_tuple():
    import numpy as np

    packet = Packet(id=5, path=[np.int64(2), np.int64(3)], injected_at=0)
    assert packet.path == (2, 3)
    assert all(isinstance(e, int) for e in packet.path)
