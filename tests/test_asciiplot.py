"""ASCII plotting helpers."""

from repro.analysis.asciiplot import line_chart, sparkline


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_sparkline_flat_series():
    out = sparkline([5, 5, 5, 5])
    assert len(out) == 4
    assert len(set(out)) == 1


def test_sparkline_monotone_levels():
    out = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
    # Levels must be non-decreasing for a monotone series.
    levels = " .:-=+*#%@"
    ranks = [levels.index(c) for c in out]
    assert ranks == sorted(ranks)
    assert ranks[0] == 0
    assert ranks[-1] == len(levels) - 1


def test_sparkline_resamples_to_width():
    out = sparkline(list(range(1000)), width=50)
    assert len(out) == 50


def test_line_chart_contains_markers_and_bounds():
    chart = line_chart(
        {"alpha": [0, 1, 2, 3], "beta": [3, 2, 1, 0]},
        height=6,
        width=20,
        title="demo",
    )
    assert "demo" in chart
    assert "a" in chart and "b" in chart
    assert "a=alpha" in chart and "b=beta" in chart
    assert "3" in chart  # max annotation
    assert "0" in chart  # min annotation


def test_line_chart_empty():
    assert line_chart({}, title="t") == "t"
    assert line_chart({"x": []}) == ""


def test_line_chart_flat_series_does_not_crash():
    chart = line_chart({"flat": [2, 2, 2]})
    assert "f" in chart
