"""ASCII plotting helpers."""

import pytest

from repro.analysis.asciiplot import line_chart, phase_diagram, sparkline


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_sparkline_flat_series():
    out = sparkline([5, 5, 5, 5])
    assert len(out) == 4
    assert len(set(out)) == 1


def test_sparkline_monotone_levels():
    out = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
    # Levels must be non-decreasing for a monotone series.
    levels = " .:-=+*#%@"
    ranks = [levels.index(c) for c in out]
    assert ranks == sorted(ranks)
    assert ranks[0] == 0
    assert ranks[-1] == len(levels) - 1


def test_sparkline_resamples_to_width():
    out = sparkline(list(range(1000)), width=50)
    assert len(out) == 50


def test_line_chart_contains_markers_and_bounds():
    chart = line_chart(
        {"alpha": [0, 1, 2, 3], "beta": [3, 2, 1, 0]},
        height=6,
        width=20,
        title="demo",
    )
    assert "demo" in chart
    assert "a" in chart and "b" in chart
    assert "a=alpha" in chart and "b=beta" in chart
    assert "3" in chart  # max annotation
    assert "0" in chart  # min annotation


def test_line_chart_empty():
    assert line_chart({}, title="t") == "t"
    assert line_chart({"x": []}) == ""


def test_line_chart_flat_series_does_not_crash():
    chart = line_chart({"flat": [2, 2, 2]})
    assert "f" in chart


def test_phase_diagram_bracketed_row_has_three_regions():
    out = phase_diagram(
        [("rr", 1.0, 1.25, "bracketed")], low=0.5, high=2.0, width=40
    )
    (row,) = [line for line in out.splitlines() if line.startswith("rr")]
    bar = row.split()[1]
    # Stable, bracket, unstable — in that order, all three present.
    assert set(bar) == {"#", "?", "."}
    assert bar == "".join(sorted(bar, key="#?.".index))
    assert "1.12 +- 0.12" in row  # midpoint +- half-width annotation


def test_phase_diagram_out_of_range_rows_are_one_sided():
    out = phase_diagram(
        [("below", None, 0.5, "below-range"),
         ("above", 2.0, None, "above-range")],
        low=0.5, high=2.0, width=30,
    )
    below = next(l for l in out.splitlines() if l.startswith("below"))
    above = next(l for l in out.splitlines() if l.startswith("above"))
    assert "." * 30 in below and "< 0.5" in below
    assert "#" * 30 in above and "> 2" in above


def test_phase_diagram_axis_and_legend():
    out = phase_diagram(
        [("cell", 1.0, 1.5, "bracketed")], low=0.5, high=2.0, title="t"
    )
    lines = out.splitlines()
    assert lines[0] == "t"
    assert "0.5" in lines[1] and "2" in lines[1]
    assert "frontier bracket" in lines[-1]


def test_phase_diagram_validates_width_and_axis():
    with pytest.raises(ValueError, match="width"):
        phase_diagram([], low=0.0, high=1.0, width=1)
    with pytest.raises(ValueError, match="high > low"):
        phase_diagram([], low=1.0, high=1.0)
