"""Serial vs sharded sweeps must be record-for-record identical.

The sharded executor's whole contract is that executor choice is
invisible in the results: the same cell specs produce bit-identical
``RateSweepRecord`` lists whether they run in-process, through a
1-worker pool, or across n workers. These tests pin that contract on
scheduler x injection combinations, including NaN-latency cells (seeds
that deliver nothing) and the closure-based ``run_rate_sweep`` path.
"""

from __future__ import annotations

import math
import multiprocessing

import pytest

from repro.core.protocol import DynamicProtocol
from repro.errors import ConfigurationError
from repro.injection.stochastic import (
    PathGenerator,
    StochasticInjection,
    uniform_pair_injection,
)
from repro.interference.mac import MultipleAccessChannel
from repro.interference.packet_routing import PacketRoutingModel
from repro.network.routing import build_routing_table
from repro.network.topology import line_network, mac_network
from repro.sim.runner import run_rate_sweep
from repro.sim.sharding import (
    CellSpec,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
    register_injection_builder,
    register_protocol_builder,
    resolve_protocol_builder,
    run_cell,
    run_sharded_sweep,
    sweep_specs,
)
from repro.staticsched.round_robin import RoundRobinScheduler
from repro.staticsched.single_hop import SingleHopScheduler

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK,
    reason="test-local builders reach workers via fork inheritance",
)

LINE_NET = line_network(4)
LINE_MODEL = PacketRoutingModel(LINE_NET)
LINE_ROUTING = build_routing_table(LINE_NET)
MAC_NET = mac_network(4)
MAC_MODEL = MultipleAccessChannel(MAC_NET)
MAC_ROUTING = build_routing_table(MAC_NET)

_MODELS = {
    "line": (LINE_MODEL, LINE_ROUTING),
    "mac": (MAC_MODEL, MAC_ROUTING),
}
_SCHEDULERS = {
    "single-hop": SingleHopScheduler,
    "round-robin": RoundRobinScheduler,
}

# scheduler x injection combinations the parity contract is pinned on.
COMBOS = [
    ("line", "single-hop", "path"),
    ("line", "single-hop", "uniform"),
    ("mac", "round-robin", "path"),
    ("mac", "round-robin", "uniform"),
]

RATES = [0.2, 0.9]
SEEDS = (0, 1)
FRAMES = 40


@register_protocol_builder("parity-protocol")
def parity_protocol(
    rate, seed, *, net="line", scheduler="single-hop", cap=0.5, t_scale=0.01
):
    # Provisioned for a fixed cap so sweep rates genuinely cross the
    # stability boundary (same trick as tests/test_sim_runner.py).
    model, _ = _MODELS[net]
    return DynamicProtocol(
        model, _SCHEDULERS[scheduler](), rate=cap, t_scale=t_scale, rng=seed
    )


@register_injection_builder("parity-injection")
def parity_injection(rate, seed, protocol, *, net="line", kind="path"):
    model, routing = _MODELS[net]
    if kind == "path":
        path = (0, 1) if net == "line" else (0,)
        generator = PathGenerator([(path, min(rate, 1.0))])
        return StochasticInjection([generator], rng=seed)
    return uniform_pair_injection(
        routing, model, rate, num_generators=4, rng=seed + 1000
    )


def specs_for(net, scheduler, kind, rates=RATES, seeds=SEEDS, frames=FRAMES):
    return sweep_specs(
        rates,
        seeds,
        frames=frames,
        protocol="parity-protocol",
        injection="parity-injection",
        protocol_kwargs={"net": net, "scheduler": scheduler},
        injection_kwargs={"net": net, "kind": kind},
    )


def closures_for(net, scheduler, kind):
    def make_protocol(rate, seed):
        return parity_protocol(rate, seed, net=net, scheduler=scheduler)

    def make_injection(rate, seed, protocol):
        return parity_injection(rate, seed, protocol, net=net, kind=kind)

    return make_protocol, make_injection


def assert_sweeps_identical(left, right):
    """Field-for-field record equality, NaN-aware on latency means."""
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.rate == b.rate
        assert a.seeds == b.seeds
        assert a.stable_fraction == b.stable_fraction
        assert a.mean_tail_queue == b.mean_tail_queue
        assert a.mean_throughput == b.mean_throughput
        assert a.mean_latency == b.mean_latency or (
            math.isnan(a.mean_latency) and math.isnan(b.mean_latency)
        )
        assert a.verdicts == b.verdicts


# ----------------------------------------------------------------------
# Spec path == closure path (in-process)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("net,scheduler,kind", COMBOS)
def test_spec_run_matches_closure_run(net, scheduler, kind):
    make_protocol, make_injection = closures_for(net, scheduler, kind)
    serial = run_rate_sweep(
        make_protocol, make_injection, RATES, frames=FRAMES, seeds=SEEDS
    )
    sharded = run_sharded_sweep(specs_for(net, scheduler, kind))
    assert_sweeps_identical(serial, sharded)
    # Sanity: the combo actually straddles the boundary, so the parity
    # assertion is not comparing degenerate all-stable tables.
    assert serial[0].stable_fraction >= serial[-1].stable_fraction


# ----------------------------------------------------------------------
# Process pools == serial, 1 worker and n workers, same specs
# ----------------------------------------------------------------------


@needs_fork
def test_process_executor_matches_serial_one_and_n_workers():
    specs = specs_for("line", "single-hop", "uniform")
    serial = run_sharded_sweep(specs, SerialExecutor())
    one_worker = run_sharded_sweep(specs, ProcessExecutor(workers=1))
    n_workers = run_sharded_sweep(specs, ProcessExecutor(workers=3))
    assert_sweeps_identical(serial, one_worker)
    assert_sweeps_identical(serial, n_workers)


@needs_fork
@pytest.mark.slow
@pytest.mark.parametrize("net,scheduler,kind", COMBOS)
def test_process_parity_full_matrix(net, scheduler, kind):
    specs = specs_for(net, scheduler, kind)
    serial = run_sharded_sweep(specs, SerialExecutor())
    for workers in (1, 3):
        sharded = run_sharded_sweep(specs, ProcessExecutor(workers=workers))
        assert_sweeps_identical(serial, sharded)


@needs_fork
def test_nan_latency_cells_survive_the_pool():
    # Rate 0.0 injects nothing, so its latency summaries are NaN; the
    # NaN-aware aggregation must behave identically on both paths.
    specs = specs_for("line", "single-hop", "path", rates=[0.0, 0.25])
    serial = run_sharded_sweep(specs, SerialExecutor())
    sharded = run_sharded_sweep(specs, ProcessExecutor(workers=2))
    assert math.isnan(serial[0].mean_latency)
    assert math.isnan(sharded[0].mean_latency)
    assert not math.isnan(serial[1].mean_latency)
    assert_sweeps_identical(serial, sharded)


@needs_fork
def test_run_rate_sweep_accepts_a_process_executor():
    # Module-level factories are picklable, so the closure-shaped API
    # itself can shard: same records as the default in-process loop.
    serial = run_rate_sweep(
        parity_protocol, parity_injection, RATES, frames=FRAMES, seeds=SEEDS
    )
    sharded = run_rate_sweep(
        parity_protocol,
        parity_injection,
        RATES,
        frames=FRAMES,
        seeds=SEEDS,
        executor=ProcessExecutor(workers=2),
    )
    assert_sweeps_identical(serial, sharded)


@needs_fork
def test_cell_results_align_with_specs():
    specs = specs_for("line", "single-hop", "path")
    for executor in (SerialExecutor(), ProcessExecutor(workers=2)):
        results = executor.map(specs)
        assert [(r.rate_index, r.rate, r.seed) for r in results] == [
            (s.rate_index, s.rate, s.seed) for s in specs
        ]


# ----------------------------------------------------------------------
# Spec generation and builder resolution
# ----------------------------------------------------------------------


def test_sweep_specs_materializes_generators_rate_major():
    specs = sweep_specs(
        (r for r in (0.1, 0.2)),
        (s for s in (0, 1, 2)),
        frames=10,
        protocol="parity-protocol",
        injection="parity-injection",
    )
    assert [(s.rate, s.seed) for s in specs] == [
        (0.1, 0), (0.1, 1), (0.1, 2), (0.2, 0), (0.2, 1), (0.2, 2)
    ]
    assert [s.rate_index for s in specs] == [0, 0, 0, 1, 1, 1]


def test_cell_spec_validation():
    with pytest.raises(ConfigurationError):
        CellSpec(rate=0.1, seed=0, frames=0, pair="compare-contender")
    with pytest.raises(ConfigurationError):
        CellSpec(rate=0.1, seed=0, frames=10)  # no builders at all
    with pytest.raises(ConfigurationError):
        CellSpec(
            rate=0.1, seed=0, frames=10,
            pair="compare-contender",
            protocol="parity-protocol", injection="parity-injection",
        )


def test_unknown_builder_name_raises():
    spec = CellSpec(
        rate=0.1, seed=0, frames=25,
        protocol="no-such-builder", injection="parity-injection",
    )
    with pytest.raises(ConfigurationError, match="no-such-builder"):
        run_cell(spec)


def test_duplicate_registration_rejected():
    def other(rate, seed):
        raise AssertionError("never built")

    with pytest.raises(ConfigurationError):
        register_protocol_builder("parity-protocol", other)
    # Re-registering the same callable is a no-op.
    register_protocol_builder("parity-protocol", parity_protocol)


def test_dotted_path_resolution():
    from repro.cli import registry

    builder = resolve_protocol_builder(
        "repro.cli.registry:scenario_protocol"
    )
    assert builder is registry.scenario_protocol
    with pytest.raises(ConfigurationError):
        resolve_protocol_builder("repro.cli.registry:not_a_builder")
    with pytest.raises(ConfigurationError):
        resolve_protocol_builder("no.such.module:builder")


def test_make_executor():
    assert isinstance(make_executor("serial"), SerialExecutor)
    process = make_executor("process", workers=2)
    assert isinstance(process, ProcessExecutor)
    assert process.workers == 2
    with pytest.raises(ConfigurationError):
        make_executor("threads")
    with pytest.raises(ConfigurationError):
        make_executor("process", workers=0)


def test_empty_spec_list_is_empty_sweep():
    assert run_sharded_sweep([]) == []
    assert ProcessExecutor(workers=2).map([]) == []


def test_mixed_rates_in_one_group_rejected():
    # Hand-built specs that forget distinct rate_index values must not
    # be silently averaged into one record.
    specs = [
        CellSpec(
            rate=rate, seed=0, frames=25,
            protocol="parity-protocol", injection="parity-injection",
        )
        for rate in (0.1, 0.5)
    ]
    with pytest.raises(ConfigurationError, match="rate_index"):
        run_sharded_sweep(specs)
