"""Stochastic injection: generators, rates, batch equivalence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, InjectionError
from repro.injection.stochastic import (
    PathGenerator,
    StochasticInjection,
    uniform_pair_injection,
)
from repro.network.routing import build_routing_table


def test_generator_validates_probabilities():
    with pytest.raises(InjectionError):
        PathGenerator([((0,), -0.1)])
    with pytest.raises(InjectionError):
        PathGenerator([((0,), 0.6), ((1,), 0.6)])
    with pytest.raises(InjectionError):
        PathGenerator([((), 0.5)])


def test_generator_total_and_scaling():
    gen = PathGenerator([((0,), 0.2), ((1, 2), 0.3)])
    assert gen.total_probability == pytest.approx(0.5)
    scaled = gen.scaled(0.5)
    assert scaled.total_probability == pytest.approx(0.25)
    # Original untouched.
    assert gen.total_probability == pytest.approx(0.5)


def test_generator_mean_usage_counts_multiplicity():
    gen = PathGenerator([((0, 1, 0), 0.5)])
    usage = gen.mean_usage(3)
    assert usage.tolist() == [1.0, 0.5, 0.0]


def test_injection_requires_generators():
    with pytest.raises(InjectionError):
        StochasticInjection([])


def test_packets_per_slot_at_most_one_per_generator():
    gen = PathGenerator([((0,), 1.0)])
    injection = StochasticInjection([gen, gen], rng=0)
    for slot in range(10):
        packets = injection.packets_for_slot(slot)
        assert len(packets) == 2  # both generators always inject
        assert all(p.injected_at == slot for p in packets)


def test_packet_ids_unique():
    gen = PathGenerator([((0,), 0.8)])
    injection = StochasticInjection([gen], rng=1)
    ids = [p.id for batch in injection.stream(50) for p in batch]
    assert len(ids) == len(set(ids))


def test_empirical_rate_matches_mean(sinr_model, sinr_routing):
    target = 0.3 * 1.0  # arbitrary but below generator capacity
    injection = uniform_pair_injection(
        sinr_routing, sinr_model, target_rate=target, num_generators=4, rng=3
    )
    assert injection.injection_rate(sinr_model) == pytest.approx(target)


def test_uniform_pair_injection_rejects_overload(sinr_model, sinr_routing):
    with pytest.raises(ConfigurationError, match="num_generators"):
        uniform_pair_injection(
            sinr_routing, sinr_model, target_rate=1e9, num_generators=1
        )


def test_uniform_pair_injection_rejects_empty_routed_path(
    sinr_model, sinr_routing
):
    """A degenerate routing table (empty path) must fail loudly."""
    from repro.network.routing import RoutingTable

    broken = RoutingTable(sinr_routing.network, {(0, 0): ()})
    with pytest.raises(ConfigurationError, match="empty path"):
        uniform_pair_injection(
            broken, sinr_model, target_rate=0.1, pairs=[(0, 0)]
        )


def test_uniform_pair_injection_rate_scales_with_generators(
    sinr_model, sinr_routing
):
    """The aggregate rate is exact for any generator count (the old
    implementation summed identical usage arrays; the multiply must
    land on the same rate)."""
    target = 0.3
    for num_generators in (1, 3, 7):
        injection = uniform_pair_injection(
            sinr_routing,
            sinr_model,
            target_rate=target,
            num_generators=num_generators,
            rng=3,
        )
        assert injection.injection_rate(sinr_model) == pytest.approx(target)
        assert len(injection.generators) == num_generators


def test_batch_range_distribution_matches_slotwise():
    """packets_for_range must match per-slot draws in distribution."""
    gen = PathGenerator([((0,), 0.3), ((1,), 0.2)])
    horizon = 4000

    slotwise = StochasticInjection([gen], rng=11)
    count_slotwise = sum(
        len(slotwise.packets_for_slot(t)) for t in range(horizon)
    )
    batch = StochasticInjection([gen], rng=12)
    count_batch = len(batch.packets_for_range(0, horizon))

    expected = horizon * 0.5
    sigma = (horizon * 0.5 * 0.5) ** 0.5
    assert abs(count_slotwise - expected) < 5 * sigma
    assert abs(count_batch - expected) < 5 * sigma


def test_batch_range_stamps_inside_range():
    gen = PathGenerator([((0,), 0.5)])
    injection = StochasticInjection([gen], rng=2)
    packets = injection.packets_for_range(100, 200)
    assert all(100 <= p.injected_at < 200 for p in packets)


def test_batch_range_empty_interval():
    gen = PathGenerator([((0,), 0.5)])
    injection = StochasticInjection([gen], rng=2)
    assert injection.packets_for_range(5, 5) == []


def test_mean_usage_aggregates_generators():
    g1 = PathGenerator([((0,), 0.5)])
    g2 = PathGenerator([((0, 1), 0.25)])
    injection = StochasticInjection([g1, g2], rng=0)
    usage = injection.mean_usage(2)
    assert usage.tolist() == [0.75, 0.25]
