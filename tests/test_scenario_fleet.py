"""The fleet runner's executor-invisibility contract.

``run_scenario_fleet`` must be record-for-record identical between the
serial loop and process executors, across scheduler x topology x
backend combinations — and a spec that went through JSON must produce
the same records as the original. These are the acceptance criteria of
the scenario layer: if any of this drifts, a fleet sharded across
workers silently stops reproducing the serial campaign.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    FleetUnit,
    ScenarioSpec,
    aggregate_fleet,
    preset_spec,
    run_scenario_fleet,
)
from repro.sim.runner import CellResult
from repro.sim.sharding import (
    ProcessExecutor,
    SerialExecutor,
    run_sharded_sweep,
    sweep_specs,
)
from repro.sim.stability import StabilityVerdict

# scheduler x topology x model combinations the parity matrix pins.
# Node budgets stay small: parity is a structural property, not a
# scale property, and every cell runs 3x (serial, process, json).
MATRIX_SPECS = {
    "grid-singlehop": ScenarioSpec(
        topology="grid",
        topology_kwargs={"rows": 3, "cols": 3},
        model="packet-routing",
        scheduler="single-hop",
        frames=25,
    ),
    "mac-roundrobin": ScenarioSpec(
        topology="mac",
        topology_kwargs={"num_stations": 4},
        model="mac",
        scheduler="round-robin",
        frames=25,
    ),
    "random-decay-transformed": ScenarioSpec(
        topology="random",
        topology_kwargs={"num_nodes": 8},
        model="linear-power",
        scheduler="decay",
        transform=True,
        frames=25,
    ),
}

BACKENDS_UNDER_TEST = (None, "numpy", "scalar")


def records_equal(left, right) -> bool:
    """CellResult equality, NaN-aware on the latency mean."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if (
            math.isnan(a.latency)
            and math.isnan(b.latency)
            and a.rate_index == b.rate_index
        ):
            a = CellResult(**{**a.__dict__, "latency": 0.0})
            b = CellResult(**{**b.__dict__, "latency": 0.0})
        if a != b:
            return False
    return True


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("combo", sorted(MATRIX_SPECS))
def test_fleet_parity_serial_process_json(combo, backend):
    base = MATRIX_SPECS[combo]
    specs = [
        base.replace(seed=seed, backend=backend) for seed in (0, 1)
    ]
    serial = run_scenario_fleet(specs, SerialExecutor())
    process = run_scenario_fleet(specs, ProcessExecutor(workers=2))
    json_trip = run_scenario_fleet(
        [ScenarioSpec.from_json(spec.to_json()) for spec in specs],
        SerialExecutor(),
    )
    assert records_equal(serial.records, process.records), (
        f"{combo} backend={backend}: process fleet diverged from serial"
    )
    assert records_equal(serial.records, json_trip.records), (
        f"{combo} backend={backend}: JSON round-trip changed the records"
    )
    assert serial.summary == process.summary


def test_fleet_records_keep_spec_order():
    specs = [
        MATRIX_SPECS["grid-singlehop"].replace(seed=seed)
        for seed in (5, 3, 1)
    ]
    result = run_scenario_fleet(specs)
    assert [r.rate_index for r in result.records] == [0, 1, 2]
    assert [r.seed for r in result.records] == [5, 3, 1]


def test_backend_choice_never_changes_records():
    base = MATRIX_SPECS["random-decay-transformed"]
    reference = run_scenario_fleet([base.replace(backend="scalar")])
    fused = run_scenario_fleet([base.replace(backend="numpy")])
    assert records_equal(reference.records, fused.records)


def test_sweep_cells_carrying_scenarios_shard_identically():
    base = MATRIX_SPECS["grid-singlehop"]
    certified = base.build(with_protocol=False).certified
    cells = sweep_specs(
        [0.5 * certified, 1.2 * certified],
        [0, 1],
        frames=25,
        scenario=base,
    )
    serial = run_sharded_sweep(cells)
    sharded = run_sharded_sweep(cells, ProcessExecutor(workers=2))
    assert len(serial) == 2
    for a, b in zip(serial, sharded):
        assert a.seeds == b.seeds
        assert a.stable_fraction == b.stable_fraction
        assert a.mean_tail_queue == b.mean_tail_queue
        assert a.mean_throughput == b.mean_throughput
        assert a.verdicts == b.verdicts
        assert a.mean_latency == b.mean_latency or (
            math.isnan(a.mean_latency) and math.isnan(b.mean_latency)
        )


def test_fleet_over_preset_distribution():
    # The headline workload: one preset, many random instances — every
    # network is a different draw, rebuilt inside its runner.
    specs = [
        preset_spec("sinr-linear", nodes=8, seed=seed, frames=25)
        for seed in range(3)
    ]
    result = run_scenario_fleet(specs)
    networks = {
        tuple(
            (link.sender, link.receiver)
            for link in spec.build(with_protocol=False).network.links
        )
        for spec in specs
    }
    assert len(networks) == 3, "seeds must draw distinct instances"
    assert result.summary.networks == 3
    assert result.summary.total_injected == sum(
        r.injected for r in result.records
    )


class TestAggregation:
    @staticmethod
    def _record(index, stable, latency, tail=10.0, through=2.0,
                injected=50, delivered=40):
        return CellResult(
            rate_index=index,
            rate=0.5,
            seed=index,
            verdict=StabilityVerdict(
                stable=stable,
                slope_per_frame=0.0,
                normalised_slope=0.0,
                blowup_ratio=1.0,
                tail_mean=tail,
            ),
            tail_queue=tail,
            throughput=through,
            latency=latency,
            frame_length=6,
            injected=injected,
            delivered=delivered,
            failures=0,
        )

    def test_summary_statistics(self):
        result = aggregate_fleet([
            self._record(0, True, 10.0, tail=4.0, through=1.0),
            self._record(1, False, 20.0, tail=8.0, through=3.0),
        ])
        summary = result.summary
        assert summary.networks == 2
        assert summary.stable_fraction == 0.5
        assert summary.mean_tail_queue == 6.0
        assert summary.mean_throughput == 2.0
        assert summary.mean_latency == 15.0
        assert summary.total_injected == 100
        assert summary.total_delivered == 80

    def test_nan_latency_is_skipped_not_poisoning(self):
        result = aggregate_fleet([
            self._record(0, True, float("nan"), delivered=0),
            self._record(1, True, 30.0),
        ])
        assert result.summary.mean_latency == 30.0

    def test_all_nan_latency_stays_nan(self):
        result = aggregate_fleet([
            self._record(0, True, float("nan"), delivered=0),
        ])
        assert math.isnan(result.summary.mean_latency)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError, match="empty fleet"):
            aggregate_fleet([])
        with pytest.raises(ConfigurationError, match="at least one"):
            run_scenario_fleet([])

    def test_fleet_unit_carries_index_into_record(self):
        unit = FleetUnit(spec=MATRIX_SPECS["grid-singlehop"], index=7)
        assert unit.run().rate_index == 7
