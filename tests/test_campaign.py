"""The campaign engine's determinism and resume contracts.

A campaign's frontier document must be a pure function of the campaign
spec: grid expansion is order-stable, the bisection probes the same
rates in the same order regardless of executor or worker count, and an
interrupted campaign resumed from its manifest produces the document
an uninterrupted run produces — bit for bit. These are the acceptance
criteria of the survey layer: if any of this drifts, phase diagrams
stop being comparable across machines and reruns.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenario.campaign import (
    AxisComponent,
    CampaignSpec,
    FrontierSearch,
    campaign_from_data,
    load_campaign,
    run_campaign,
)
from repro.sim.sharding import ProcessExecutor, SerialExecutor

# One MAC network, two schedulers: round-robin brackets its boundary
# inside the search range, single-hop is unstable already at the low
# endpoint — the two cheapest probe workloads in the registry, so the
# bisection runs end-to-end in well under a second per campaign.
CAMPAIGN_DATA = {
    "name": "test-frontier",
    "axes": {
        "topology": [{"name": "mac", "kwargs": {"num_stations": 8}}],
        "model": ["mac"],
        "scheduler": ["round-robin", "single-hop"],
        "injection": ["uniform-pairs"],
    },
    "seeds": [0, 1],
    "frames": 40,
    "search": {"rate_low": 0.5, "rate_high": 2.0, "tolerance": 0.25},
}


def small_campaign() -> CampaignSpec:
    return campaign_from_data(CAMPAIGN_DATA)


# ---------------------------------------------------------------------
# Spec parsing and validation
# ---------------------------------------------------------------------


def test_round_trip_through_dict_and_fingerprint():
    spec = small_campaign()
    again = CampaignSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.fingerprint() == spec.fingerprint()


def test_campaign_wrapper_key_is_optional():
    wrapped = campaign_from_data({"campaign": CAMPAIGN_DATA})
    assert wrapped == small_campaign()


def test_load_campaign_reads_json_file(tmp_path):
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(CAMPAIGN_DATA))
    assert load_campaign(path) == small_campaign()


def test_missing_required_axes_rejected():
    with pytest.raises(ConfigurationError, match="topology"):
        campaign_from_data({"axes": {"scheduler": ["round-robin"]}})
    with pytest.raises(ConfigurationError, match="scheduler"):
        campaign_from_data({"axes": {"topology": ["mac"]}})


def test_unknown_fields_rejected():
    data = dict(CAMPAIGN_DATA, extra=1)
    with pytest.raises(ConfigurationError, match="extra"):
        campaign_from_data(data)
    with pytest.raises(ConfigurationError, match="rate"):
        campaign_from_data(
            dict(CAMPAIGN_DATA, base={"rate": 0.5})
        )


def test_transform_only_on_scheduler_axis():
    with pytest.raises(ConfigurationError, match="scheduler axis"):
        AxisComponent(kind="topology", name="mac", transform=True)


def test_search_validation():
    with pytest.raises(ConfigurationError, match="rate_low"):
        FrontierSearch(rate_low=0.0)
    with pytest.raises(ConfigurationError, match="rate_high"):
        FrontierSearch(rate_low=1.0, rate_high=0.5)
    with pytest.raises(ConfigurationError, match="tolerance"):
        FrontierSearch(tolerance=0.0)
    with pytest.raises(ConfigurationError, match="rate_mode"):
        FrontierSearch(rate_mode="relative")


def test_duplicate_seeds_rejected():
    with pytest.raises(ConfigurationError, match="distinct"):
        campaign_from_data(dict(CAMPAIGN_DATA, seeds=[0, 0]))


# ---------------------------------------------------------------------
# Grid expansion
# ---------------------------------------------------------------------


def test_expansion_is_order_stable():
    data = {
        "axes": {
            "topology": ["mac", "grid"],
            "model": ["mac"],
            "scheduler": ["round-robin", "single-hop", "decay"],
            "injection": ["uniform-pairs"],
        },
    }
    spec = campaign_from_data(data)
    cells = spec.expand()
    # itertools.product order: topology-major, axes in listed order.
    assert [c.index for c in cells] == list(range(6))
    assert [(c.topology.name, c.scheduler.name) for c in cells] == [
        ("mac", "round-robin"), ("mac", "single-hop"), ("mac", "decay"),
        ("grid", "round-robin"), ("grid", "single-hop"), ("grid", "decay"),
    ]
    # Expansion is a pure function of the document.
    assert spec.expand() == cells


def test_cells_inherit_search_and_base_fields():
    spec = campaign_from_data(
        dict(CAMPAIGN_DATA, base={"t_scale": 0.002, "metrics": "streaming"})
    )
    for cell in spec.expand():
        assert cell.base.rate == spec.search.rate_low
        assert cell.base.rate_mode == spec.search.rate_mode
        assert cell.base.frames == spec.frames
        assert cell.base.t_scale == 0.002
        assert cell.base.metrics == "streaming"


def test_scheduler_axis_carries_transform():
    spec = campaign_from_data({
        "axes": {
            "topology": ["mac"],
            "scheduler": ["round-robin",
                          {"name": "decay", "transform": True}],
        },
    })
    plain, transformed = spec.expand()
    assert not plain.base.transform
    assert transformed.base.transform
    assert transformed.scheduler.display == "decay+T"


# ---------------------------------------------------------------------
# Frontier search
# ---------------------------------------------------------------------


def test_frontier_statuses_and_bracket():
    result = run_campaign(small_campaign())
    by_scheduler = {
        cell.labels["scheduler"]: cell for cell in result.cells
    }
    rr = by_scheduler["round-robin"]
    assert rr.status == "bracketed"
    assert rr.converged
    assert rr.upper - rr.lower <= 0.25 + 1e-12
    assert rr.frontier == pytest.approx(0.5 * (rr.lower + rr.upper))
    sh = by_scheduler["single-hop"]
    assert sh.status == "below-range"
    assert sh.frontier is None and sh.lower is None
    assert sh.upper == 0.5
    # The bracket wave alone settles an out-of-range cell.
    assert sh.simulations == 2 * len(result.spec.seeds)


def test_bisection_beats_fixed_grid_cell_count():
    result = run_campaign(small_campaign())
    assert result.total_simulations < result.grid_equivalent_simulations


def test_majority_verdict_over_seeds_recorded():
    result = run_campaign(small_campaign())
    for cell in result.cells:
        for probe in cell.probes:
            assert len(probe.results) == 2
            votes = sum(
                1.0 for r in probe.results if r.verdict.stable
            ) / len(probe.results)
            assert probe.stable_fraction == votes
            assert probe.stable == (votes >= 0.5)


def test_document_is_json_safe_and_deterministic():
    first = run_campaign(small_campaign()).to_json()
    second = run_campaign(small_campaign()).to_json()
    assert first == second
    doc = json.loads(first)
    assert doc["kind"] == "campaign-frontier"
    assert doc["fingerprint"] == small_campaign().fingerprint()
    assert len(doc["cells"]) == 2


def test_frontier_bit_identical_across_executors():
    serial = run_campaign(small_campaign(), executor=SerialExecutor())
    one = run_campaign(
        small_campaign(), executor=ProcessExecutor(workers=1)
    )
    many = run_campaign(
        small_campaign(), executor=ProcessExecutor(workers=3)
    )
    assert serial.to_json() == one.to_json() == many.to_json()


def test_phase_diagram_renders_every_cell():
    result = run_campaign(small_campaign())
    diagram = result.phase_diagram()
    assert "round-robin" in diagram
    assert "single-hop" in diagram
    assert "# stable" in diagram


# ---------------------------------------------------------------------
# Manifest journaling and resume
# ---------------------------------------------------------------------


class InterruptingExecutor:
    """Runs ``waves`` executor waves, then dies — a crash mid-campaign."""

    def __init__(self, waves: int):
        self.waves = waves
        self.inner = SerialExecutor()

    def map(self, units):
        if self.waves <= 0:
            raise KeyboardInterrupt("interrupted mid-campaign")
        self.waves -= 1
        return self.inner.map(units)


def test_resume_matches_uninterrupted(tmp_path):
    baseline = run_campaign(small_campaign()).to_json()

    manifest_dir = str(tmp_path / "manifest")
    with pytest.raises(KeyboardInterrupt):
        run_campaign(
            small_campaign(),
            executor=InterruptingExecutor(waves=1),
            manifest_dir=manifest_dir,
        )
    # The completed bracket wave survived the crash...
    from repro.sim.resilience import FleetManifest

    journalled = len(FleetManifest(manifest_dir).completed_keys())
    assert journalled > 0
    # ...and the resumed run recovers it instead of re-simulating,
    # finishing with the exact uninterrupted document.
    resumed = run_campaign(
        small_campaign(), manifest_dir=manifest_dir, resume=True
    )
    assert resumed.to_json() == baseline


def test_full_manifest_resume_runs_nothing(tmp_path):
    manifest_dir = str(tmp_path / "manifest")
    baseline = run_campaign(
        small_campaign(), manifest_dir=manifest_dir
    ).to_json()

    class RefusingExecutor:
        def map(self, units):
            raise AssertionError(
                "resume of a finished campaign must not simulate"
            )

    replay = run_campaign(
        small_campaign(),
        executor=RefusingExecutor(),
        manifest_dir=manifest_dir,
        resume=True,
    )
    assert replay.to_json() == baseline


def test_manifest_refuses_a_different_campaign(tmp_path):
    manifest_dir = str(tmp_path / "manifest")
    run_campaign(small_campaign(), manifest_dir=manifest_dir)
    edited = campaign_from_data(dict(CAMPAIGN_DATA, seeds=[0, 1, 2]))
    with pytest.raises(ConfigurationError, match="different fleet"):
        run_campaign(edited, manifest_dir=manifest_dir, resume=True)


def test_resume_requires_manifest_dir():
    with pytest.raises(ConfigurationError, match="manifest_dir"):
        run_campaign(small_campaign(), resume=True)
