"""RunResult, LengthBound, LinkQueues."""

import pytest

from repro.errors import SchedulingError
from repro.staticsched.base import LengthBound, LinkQueues, RunResult


def test_run_result_all_delivered():
    assert RunResult(delivered=[0, 1], remaining=[]).all_delivered
    assert not RunResult(delivered=[0], remaining=[1]).all_delivered


def test_run_result_merge_after():
    first = RunResult(delivered=[0], remaining=[1, 2], slots_used=5)
    second = RunResult(delivered=[2], remaining=[1], slots_used=3)
    merged = first.merge_after(second)
    assert merged.delivered == [0, 2]
    assert merged.remaining == [1]
    assert merged.slots_used == 8


def test_length_bound_slots():
    bound = LengthBound(
        multiplicative=lambda m: 2.0,
        additive=lambda m, n: 10.0,
    )
    assert bound.f(5) == 2.0
    assert bound.g(5, 100) == 10.0
    assert bound.slots(5, measure=3.0, n=100) == 16
    assert bound.slots(5, measure=0.0, n=1) == 10


def test_length_bound_minimum_one_slot():
    bound = LengthBound(lambda m: 0.0, lambda m, n: 0.0)
    assert bound.slots(1, 0.0, 1) == 1


def test_link_queues_fifo():
    queues = LinkQueues([2, 0, 2, 1], num_links=3)
    assert queues.pending == 4
    assert queues.busy_links() == [0, 1, 2]
    assert queues.queue_length(2) == 2
    assert queues.head(2) == 0  # request index 0 was first on link 2
    assert queues.pop(2) == 0
    assert queues.head(2) == 2
    assert queues.pending == 3


def test_link_queues_remaining_indices():
    queues = LinkQueues([1, 1, 0], num_links=2)
    queues.pop(1)
    assert queues.remaining_indices() == [2, 1]


def test_link_queues_errors():
    queues = LinkQueues([0], num_links=2)
    with pytest.raises(SchedulingError):
        queues.head(1)
    with pytest.raises(SchedulingError):
        queues.pop(1)
    with pytest.raises(SchedulingError):
        LinkQueues([5], num_links=2)


def test_link_queues_out_of_range_links():
    """Unknown link ids fail loudly (CSR indexing must not wrap)."""
    import numpy as np

    queues = LinkQueues([0, 1], num_links=2)
    for bad in (-1, 2, 7):
        assert queues.queue_length(bad) == 0
        with pytest.raises(SchedulingError):
            queues.head(bad)
        with pytest.raises(SchedulingError):
            queues.pop(bad)
        with pytest.raises(SchedulingError):
            queues.pop_heads(np.asarray([bad], dtype=np.int64))
    with pytest.raises(SchedulingError):
        queues.pop_heads(np.asarray([0, 0], dtype=np.int64))
    assert queues.pending == 2


def test_link_queues_pop_heads_matches_scalar_pops():
    import numpy as np

    batch = LinkQueues([2, 0, 2, 1, 0], num_links=3)
    scalar = LinkQueues([2, 0, 2, 1, 0], num_links=3)
    links = np.asarray([0, 2], dtype=np.int64)
    got = batch.pop_heads(links).tolist()
    expected = [scalar.pop(0), scalar.pop(2)]
    assert got == expected
    assert batch.pending == scalar.pending
    assert batch.remaining_indices() == scalar.remaining_indices()


def test_link_queues_empty():
    queues = LinkQueues([], num_links=3)
    assert queues.pending == 0
    assert queues.busy_links() == []
    assert queues.remaining_indices() == []
