"""RunResult, LengthBound, LinkQueues."""

import pytest

from repro.errors import SchedulingError
from repro.staticsched.base import LengthBound, LinkQueues, RunResult


def test_run_result_all_delivered():
    assert RunResult(delivered=[0, 1], remaining=[]).all_delivered
    assert not RunResult(delivered=[0], remaining=[1]).all_delivered


def test_run_result_merge_after():
    first = RunResult(delivered=[0], remaining=[1, 2], slots_used=5)
    second = RunResult(delivered=[2], remaining=[1], slots_used=3)
    merged = first.merge_after(second)
    assert merged.delivered == [0, 2]
    assert merged.remaining == [1]
    assert merged.slots_used == 8


def test_length_bound_slots():
    bound = LengthBound(
        multiplicative=lambda m: 2.0,
        additive=lambda m, n: 10.0,
    )
    assert bound.f(5) == 2.0
    assert bound.g(5, 100) == 10.0
    assert bound.slots(5, measure=3.0, n=100) == 16
    assert bound.slots(5, measure=0.0, n=1) == 10


def test_length_bound_minimum_one_slot():
    bound = LengthBound(lambda m: 0.0, lambda m, n: 0.0)
    assert bound.slots(1, 0.0, 1) == 1


def test_link_queues_fifo():
    queues = LinkQueues([2, 0, 2, 1], num_links=3)
    assert queues.pending == 4
    assert queues.busy_links() == [0, 1, 2]
    assert queues.queue_length(2) == 2
    assert queues.head(2) == 0  # request index 0 was first on link 2
    assert queues.pop(2) == 0
    assert queues.head(2) == 2
    assert queues.pending == 3


def test_link_queues_remaining_indices():
    queues = LinkQueues([1, 1, 0], num_links=2)
    queues.pop(1)
    assert queues.remaining_indices() == [2, 1]


def test_link_queues_errors():
    queues = LinkQueues([0], num_links=2)
    with pytest.raises(SchedulingError):
        queues.head(1)
    with pytest.raises(SchedulingError):
        queues.pop(1)
    with pytest.raises(SchedulingError):
        LinkQueues([5], num_links=2)


def test_link_queues_empty():
    queues = LinkQueues([], num_links=3)
    assert queues.pending == 0
    assert queues.busy_links() == []
    assert queues.remaining_indices() == []
