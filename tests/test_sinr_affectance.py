"""Affectance: definition, caps, and the SINR bridge."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, InfeasibleLinkError
from repro.geometry.point import Point
from repro.network.network import Network
from repro.network.topology import line_network, random_sinr_network
from repro.sinr.affectance import (
    affectance_matrix,
    average_affectance,
    sender_receiver_gains,
)
from repro.sinr.power import LinearPower, UniformPower


def two_parallel_links(gap=5.0):
    """Two unit links side by side, ``gap`` apart."""
    points = [
        Point(0, 0),
        Point(1, 0),
        Point(0, gap),
        Point(1, gap),
    ]
    return Network(4, [(0, 1), (2, 3)], positions=points)


def test_gains_diagonal_is_own_link():
    net = two_parallel_links()
    gains = sender_receiver_gains(net, alpha=2.0)
    assert gains[0, 0] == pytest.approx(1.0)  # length-1 link
    # Cross gain: sender (0,0) to receiver (1,5): distance sqrt(26).
    assert gains[0, 1] == pytest.approx(26.0 ** (-1.0))


def test_gains_reject_bad_alpha():
    net = two_parallel_links()
    with pytest.raises(ConfigurationError):
        sender_receiver_gains(net, alpha=0.0)


def test_affectance_in_unit_interval():
    net = random_sinr_network(20, rng=3)
    powers = LinearPower().powers(net, 3.0)
    affect = affectance_matrix(net, powers, alpha=3.0, beta=1.0, noise=0.01)
    assert affect.min() >= 0.0
    assert affect.max() <= 1.0
    assert np.allclose(np.diag(affect), 1.0)


def test_affectance_decays_with_distance():
    near = two_parallel_links(gap=2.0)
    far = two_parallel_links(gap=50.0)
    powers = np.ones(2)
    a_near = affectance_matrix(near, powers, 3.0, 0.5, 0.0, cap=False)
    a_far = affectance_matrix(far, powers, 3.0, 0.5, 0.0, cap=False)
    assert a_far[0, 1] < a_near[0, 1]


def test_affectance_uncapped_criterion_matches_sinr():
    """The additive affectance criterion == the exact SINR inequality."""
    from repro.sinr.model import SinrModel

    net = random_sinr_network(15, rng=11)
    alpha, beta, noise = 3.0, 1.0, 0.02
    model = SinrModel(net, alpha=alpha, beta=beta, noise=noise,
                      power=LinearPower())
    powers = model.powers
    affect = affectance_matrix(net, np.asarray(powers), alpha, beta, noise,
                               cap=False)
    rng = np.random.default_rng(5)
    for _ in range(30):
        size = int(rng.integers(1, min(8, net.num_links)))
        subset = list(rng.choice(net.num_links, size=size, replace=False))
        sinr_ok = model.successes(subset)
        for link in subset:
            others = [e for e in subset if e != link]
            total = float(affect[others, link].sum()) if others else 0.0
            assert (link in sinr_ok) == (total <= 1.0 + 1e-9), (
                f"affectance criterion disagrees with SINR for {link} in {subset}"
            )


def test_infeasible_link_detected():
    net = two_parallel_links()
    powers = np.ones(2) * 0.5
    # noise so high that signal (0.5 at distance 1, alpha 2) < beta*noise
    with pytest.raises(InfeasibleLinkError):
        affectance_matrix(net, powers, alpha=2.0, beta=1.0, noise=1.0)


def test_affectance_shape_validation():
    net = two_parallel_links()
    with pytest.raises(ConfigurationError):
        affectance_matrix(net, np.ones(3), 3.0, 1.0, 0.0)
    with pytest.raises(ConfigurationError):
        affectance_matrix(net, np.ones(2), 3.0, -1.0, 0.0)
    with pytest.raises(ConfigurationError):
        affectance_matrix(net, np.ones(2), 3.0, 1.0, -0.5)


def test_average_affectance():
    affect = np.array([[1.0, 0.5], [0.25, 1.0]])
    members = np.array([0, 1])
    # Column sums: [1.25, 1.5]; average 1.375.
    assert average_affectance(affect, members) == pytest.approx(1.375)
    assert average_affectance(affect, np.array([], dtype=int)) == 0.0


def test_colocated_cross_distance_gives_capped_affectance():
    """Bidirected pair: reverse link's sender sits on the forward receiver."""
    net = Network(
        2,
        [(0, 1), (1, 0)],
        positions=[Point(0, 0), Point(1, 0)],
    )
    powers = np.ones(2)
    affect = affectance_matrix(net, powers, 3.0, 1.0, 0.0)
    # Link 1's sender is node 1 = link 0's... receiver is node 1 for link 0.
    # Cross distance d(sender(0), receiver(1)) = d(0, 0) = 0 -> capped at 1.
    assert affect[0, 1] == 1.0
    assert affect[1, 0] == 1.0
