"""Tests for the command-line interface."""

from __future__ import annotations

import multiprocessing
import os

import pytest

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process-executor CLI tests assume fork workers",
)

from repro.cli.builders import (
    SCENARIOS,
    TOPOLOGIES,
    build_scenario,
    build_topology,
    scenario_names,
    topology_names,
)
from repro.cli.main import main
from repro.cli.registry import EXPERIMENTS, experiment_ids
from repro.errors import ConfigurationError

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks")


class TestBuilders:
    @pytest.mark.parametrize("name", scenario_names())
    def test_every_scenario_builds(self, name):
        scenario = build_scenario(name, nodes=9, seed=0)
        assert scenario.network.num_links > 0
        assert scenario.certified > 0
        assert scenario.m == scenario.network.size_m
        # The algorithm bound is usable (protocol sizing needs it).
        bound = scenario.algorithm.network_bound(scenario.m)
        assert bound.f(scenario.m) >= 1.0

    @pytest.mark.parametrize("kind", topology_names())
    def test_every_topology_builds(self, kind):
        net = build_topology(kind, nodes=8, seed=1)
        assert net.num_nodes >= 2
        assert net.num_links >= 1

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            build_scenario("nope", nodes=9, seed=0)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            build_topology("nope", nodes=9, seed=0)

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            build_scenario("packet-routing", nodes=1, seed=0)
        with pytest.raises(ConfigurationError):
            build_topology("grid", nodes=1, seed=0)

    def test_registries_expose_names(self):
        assert set(scenario_names()) == set(SCENARIOS)
        assert set(topology_names()) == set(TOPOLOGIES)


class TestRegistry:
    def test_ids_unique(self):
        ids = experiment_ids()
        assert len(ids) == len(set(ids))

    def test_every_bench_file_exists(self):
        for entry in EXPERIMENTS:
            path = os.path.join(BENCH_DIR, entry.bench_file)
            assert os.path.exists(path), (
                f"registry lists {entry.bench_file} but it does not exist"
            )

    def test_every_bench_file_registered(self):
        listed = {entry.bench_file for entry in EXPERIMENTS}
        on_disk = {
            name
            for name in os.listdir(BENCH_DIR)
            if name.startswith("bench_") and name.endswith(".py")
        }
        missing = on_disk - listed
        assert not missing, f"benches not in the registry: {sorted(missing)}"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PODC 2012" in out
        assert "sinr-linear" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for entry in EXPERIMENTS:
            assert entry.id in out

    def test_topology_geometric(self, capsys):
        assert main(["topology", "--kind", "grid", "--nodes", "9"]) == 0
        out = capsys.readouterr().out
        assert "9 nodes" in out
        assert "geometric: True" in out

    def test_topology_non_geometric(self, capsys):
        assert main(["topology", "--kind", "mac", "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        assert "geometric: False" in out

    def test_topology_truncates_link_table(self, capsys):
        assert main(
            ["topology", "--kind", "grid", "--nodes", "16", "--links", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "more links" in out

    def test_simulate_packet_routing(self, capsys):
        code = main(
            [
                "simulate",
                "--model", "packet-routing",
                "--nodes", "9",
                "--frames", "40",
                "--seed", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "injected" in out
        assert "queue series:" in out

    def test_simulate_with_check(self, capsys):
        code = main(
            [
                "simulate",
                "--model", "packet-routing",
                "--nodes", "9",
                "--frames", "40",
                "--check",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "drift/frame" in out
        assert "Little's law" in out

    def test_simulate_with_trace(self, capsys):
        code = main(
            [
                "simulate",
                "--model", "packet-routing",
                "--nodes", "9",
                "--frames", "40",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "activated" in out
        assert "delivered" in out

    def test_simulate_mac(self, capsys):
        code = main(
            [
                "simulate",
                "--model", "mac",
                "--nodes", "5",
                "--frames", "40",
                "--rate-fraction", "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario 'mac'" in out

    def test_compare(self, capsys):
        code = main(
            ["compare", "--nodes", "10", "--frames", "20", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "decay [Thm 19]" in out
        assert "HM-style [26]" in out
        assert "certified rate" in out

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--model", "packet-routing",
                "--nodes", "9",
                "--frames", "60",
                "--fractions", "0.3",
                "--seeds", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0.30x" in out
        assert "stable frac" in out

    @needs_fork
    def test_sweep_process_executor_output_identical(self, capsys):
        # The executor is invisible in the results: byte-identical
        # stdout, serial vs a 2-worker process pool.
        argv = [
            "sweep",
            "--model", "packet-routing",
            "--nodes", "9",
            "--frames", "40",
            "--fractions", "0.3,0.8",
            "--seeds", "0,1",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--executor", "process", "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    @needs_fork
    @pytest.mark.slow
    def test_compare_process_executor_output_identical(self, capsys):
        argv = ["compare", "--nodes", "10", "--frames", "20", "--seed", "1"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--executor", "process", "--workers", "3"]) == 0
        assert capsys.readouterr().out == serial

    def test_sweep_rejects_bad_fractions(self, capsys):
        code = main(
            ["sweep", "--fractions", "abc", "--seeds", "0"]
        )
        assert code == 2
        assert "bad --fractions" in capsys.readouterr().err

    def test_sweep_rejects_empty_seeds(self, capsys):
        code = main(["sweep", "--fractions", "0.5", "--seeds", ""])
        assert code == 2

    def test_deterministic_output(self, capsys):
        argv = [
            "simulate",
            "--model", "packet-routing",
            "--nodes", "9",
            "--frames", "30",
            "--seed", "7",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second


class TestScenariosCommand:
    def test_lists_every_registered_component(self, capsys):
        from repro.scenario import registry

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for kind in ("topology", "model", "scheduler", "injection"):
            assert f"{kind}:" in out
            for name in registry.names(kind):
                assert name + "(" in out, f"{kind} '{name}' not listed"
        # Signatures are printed, not just names — the authoring aid.
        assert "rows" in out and "num_generators" in out
        assert "backend:" in out
        assert "presets:" in out


class TestFleetCommand:
    def test_generated_fleet(self, capsys):
        code = main(
            ["fleet", "--model", "packet-routing", "--nodes", "9",
             "--networks", "2", "--frames", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 network(s)" in out
        assert "summary over 2 network(s)" in out
        assert "packet-routing" in out

    def test_spec_file_fleet(self, tmp_path, capsys):
        import json

        from repro.scenario import preset_spec

        specs = [
            preset_spec("packet-routing", nodes=9, seed=seed, frames=30)
            for seed in (0, 1)
        ]
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({"specs": [s.to_dict() for s in specs]}))
        assert main(["fleet", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"spec file {path}" in out
        assert "summary over 2 network(s)" in out

    @needs_fork
    def test_fleet_process_executor_output_identical(self, capsys):
        argv = ["fleet", "--model", "packet-routing", "--nodes", "9",
                "--networks", "2", "--frames", "30"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--executor", "process", "--workers", "2"]) == 0
        process = capsys.readouterr().out
        assert process.replace("'process'", "'serial'") == serial

    def test_fleet_rejects_bad_spec_file(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["fleet", "--spec", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_fleet_rejects_zero_networks(self, capsys):
        assert main(["fleet", "--networks", "0"]) == 2
        assert "--networks" in capsys.readouterr().err


CAMPAIGN_DATA = {
    "name": "cli-frontier",
    "axes": {
        "topology": [{"name": "mac", "kwargs": {"num_stations": 8}}],
        "model": ["mac"],
        "scheduler": ["round-robin", "single-hop"],
        "injection": ["uniform-pairs"],
    },
    "seeds": [0, 1],
    "frames": 40,
    "search": {"rate_low": 0.5, "rate_high": 2.0, "tolerance": 0.25},
}


class TestCampaignCommand:
    @pytest.fixture
    def spec_path(self, tmp_path):
        import json

        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(CAMPAIGN_DATA))
        return str(path)

    def test_campaign_prints_table_and_diagram(self, spec_path, capsys):
        assert main(["campaign", "--spec", spec_path]) == 0
        out = capsys.readouterr().out
        assert "campaign: cli-frontier" in out
        assert "round-robin" in out and "single-hop" in out
        assert "bracketed" in out and "below-range" in out
        assert "# stable   ? frontier bracket   . unstable" in out
        assert "fixed grid at the same resolution" in out

    def test_campaign_writes_deterministic_document(
        self, spec_path, tmp_path, capsys
    ):
        import json

        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        assert main(
            ["campaign", "--spec", spec_path, "--out", str(out_a)]
        ) == 0
        assert main(
            ["campaign", "--spec", spec_path, "--out", str(out_b)]
        ) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        doc = json.loads(out_a.read_text())
        assert doc["kind"] == "campaign-frontier"
        assert len(doc["cells"]) == 2

    @needs_fork
    def test_campaign_stdout_identical_across_executors(
        self, spec_path, capsys
    ):
        assert main(["campaign", "--spec", spec_path]) == 0
        serial = capsys.readouterr().out
        assert main(
            ["campaign", "--spec", spec_path,
             "--executor", "process", "--workers", "2"]
        ) == 0
        process = capsys.readouterr().out
        assert process.replace("'process'", "'serial'") == serial

    def test_campaign_resume_reproduces_document(
        self, spec_path, tmp_path, capsys
    ):
        base = tmp_path / "base.json"
        assert main(
            ["campaign", "--spec", spec_path, "--out", str(base)]
        ) == 0
        capsys.readouterr()
        ckpt = str(tmp_path / "ckpt")
        first = tmp_path / "first.json"
        assert main(
            ["campaign", "--spec", spec_path, "--out", str(first),
             "--checkpoint-dir", ckpt]
        ) == 0
        capsys.readouterr()
        resumed = tmp_path / "resumed.json"
        assert main(
            ["campaign", "--spec", spec_path, "--out", str(resumed),
             "--checkpoint-dir", ckpt, "--resume"]
        ) == 0
        assert base.read_bytes() == first.read_bytes()
        assert base.read_bytes() == resumed.read_bytes()

    def test_campaign_resume_needs_checkpoint_dir(self, spec_path, capsys):
        assert main(["campaign", "--spec", spec_path, "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_campaign_rejects_bad_spec_file(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["campaign", "--spec", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_scenarios_mentions_campaigns(self, capsys):
        assert main(["scenarios"]) == 0
        assert "campaign" in capsys.readouterr().out
