"""Seeded-randomness utilities."""

import numpy as np
import pytest

from repro.utils.rng import (
    RngFactory,
    ensure_rng,
    geometric_delay,
    random_subset,
    spawn_rngs,
)


def test_ensure_rng_passthrough():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(5).random(4)
    b = ensure_rng(5).random(4)
    assert np.allclose(a, b)


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_spawn_rngs_deterministic():
    first = [g.random() for g in spawn_rngs(9, 3)]
    second = [g.random() for g in spawn_rngs(9, 3)]
    assert first == second


def test_spawn_rngs_independent_streams():
    a, b = spawn_rngs(1, 2)
    assert a.random() != b.random()


def test_spawn_rngs_negative_count_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_rng_factory_sequence_is_stable():
    values_one = [RngFactory(3).next().random() for _ in range(1)]
    factory = RngFactory(3)
    values_two = [factory.next().random()]
    assert values_one == values_two
    assert factory.spawned == 1


def test_rng_factory_streams_differ():
    factory = RngFactory(11)
    assert factory.next().random() != factory.next().random()


def test_random_subset_probability_extremes(rng):
    items = list(range(50))
    assert random_subset(rng, items, 0.0) == []
    assert random_subset(rng, items, 1.0) == items
    assert random_subset(rng, [], 0.5) == []


def test_random_subset_is_subset(rng):
    items = list(range(30))
    subset = random_subset(rng, items, 0.4)
    assert set(subset) <= set(items)


def test_geometric_delay_bounds(rng):
    draws = [geometric_delay(rng, 0.5) for _ in range(200)]
    assert all(d >= 0 for d in draws)
    # Mean of failures-before-success at p=0.5 is 1.
    assert 0.5 < np.mean(draws) < 2.0


def test_geometric_delay_rejects_bad_probability(rng):
    with pytest.raises(ValueError):
        geometric_delay(rng, 0.0)
    with pytest.raises(ValueError):
        geometric_delay(rng, 1.5)
