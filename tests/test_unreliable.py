"""Unreliable networks (the Section-9 extension)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.interference.packet_routing import PacketRoutingModel
from repro.interference.unreliable import (
    UnreliableModel,
    reliability_budget_factor,
)
from repro.network.topology import line_network
from repro.staticsched.single_hop import SingleHopScheduler


@pytest.fixture()
def base_model():
    return PacketRoutingModel(line_network(5))


def test_loss_probability_validation(base_model):
    with pytest.raises(ConfigurationError):
        UnreliableModel(base_model, 1.0)
    with pytest.raises(ConfigurationError):
        UnreliableModel(base_model, -0.1)


def test_zero_loss_is_transparent(base_model):
    model = UnreliableModel(base_model, 0.0, rng=0)
    links = list(range(base_model.num_links))
    assert model.successes(links) == base_model.successes(links)


def test_weight_matrix_unchanged(base_model):
    model = UnreliableModel(base_model, 0.3, rng=0)
    assert np.allclose(model.weight_matrix(), base_model.weight_matrix())
    assert model.interference_measure([0, 0]) == (
        base_model.interference_measure([0, 0])
    )


def test_losses_are_subset_of_base_successes(base_model):
    model = UnreliableModel(base_model, 0.5, rng=1)
    links = list(range(base_model.num_links))
    for _ in range(20):
        winners = model.successes(links)
        assert winners <= base_model.successes(links)


def test_empirical_loss_rate(base_model):
    loss = 0.3
    model = UnreliableModel(base_model, loss, rng=2)
    trials, survived = 4000, 0
    for _ in range(trials):
        survived += len(model.successes([0]))
    rate = survived / trials
    assert abs(rate - (1.0 - loss)) < 0.05


def test_interference_losses_still_apply():
    from repro.interference.mac import MultipleAccessChannel
    from repro.network.topology import mac_network

    base = MultipleAccessChannel(mac_network(3))
    model = UnreliableModel(base, 0.2, rng=3)
    # Collisions lose regardless of the reliability coin.
    assert model.successes([0, 1]) == set()


def test_budget_factor_values():
    assert reliability_budget_factor(0.0, slack=1.0) == 1.0
    assert reliability_budget_factor(0.5, slack=1.0) == pytest.approx(2.0)
    assert reliability_budget_factor(0.5) == pytest.approx(3.0)
    with pytest.raises(ConfigurationError):
        reliability_budget_factor(1.0)
    with pytest.raises(ConfigurationError):
        reliability_budget_factor(0.5, slack=0.5)


def test_scheduler_on_unreliable_model_needs_larger_budget(base_model):
    """The paper's point: only the static schedule length is affected."""
    loss = 0.4
    model = UnreliableModel(base_model, loss, rng=4)
    algorithm = SingleHopScheduler()
    requests = [0] * 12  # congestion 12 on one link
    base_budget = algorithm.budget_for(12.0, 12)

    tight = algorithm.run(model, list(requests), base_budget, rng=5)
    assert not tight.all_delivered  # losses eat into the exact budget

    factor = reliability_budget_factor(loss, slack=2.0)
    padded_budget = int(base_budget * factor)
    padded = algorithm.run(model, list(requests), padded_budget, rng=5)
    assert padded.all_delivered


def test_deterministic_under_seed(base_model):
    def outcomes(seed):
        model = UnreliableModel(base_model, 0.5, rng=seed)
        return [tuple(sorted(model.successes([0, 1]))) for _ in range(10)]

    assert outcomes(7) == outcomes(7)
