"""ScenarioSpec / CellSpec serialization and validation edge cases.

The scenario layer's contract is that a spec is *plain data*: it
round-trips through JSON bit-exactly into the same records, survives
any pickle protocol and multiprocessing start method, and normalises
numpy scalars and arrays on the way out. These tests pin the edges of
that contract — numpy-typed kwargs, spawn-context pickling, unknown
fields, and the validation errors that keep malformed specs from
reaching a worker.
"""

from __future__ import annotations

import json
import multiprocessing
import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scenario import ScenarioSpec, preset_spec
from repro.scenario.fleet import specs_from_data
from repro.sim.sharding import CellSpec, ProcessExecutor, sweep_specs

HAS_SPAWN = "spawn" in multiprocessing.get_all_start_methods()
needs_spawn = pytest.mark.skipif(
    not HAS_SPAWN, reason="spawn start method unavailable"
)

#: A small, fast scenario used throughout (grid is deterministic, so
#: only rate/seed/frames distinguish runs).
GRID_SPEC = ScenarioSpec(
    topology="grid",
    topology_kwargs={"rows": 3, "cols": 3},
    model="packet-routing",
    scheduler="single-hop",
    frames=25,
)


class TestNumpyNormalisation:
    def test_numpy_scalars_in_kwargs_normalise(self):
        spec = ScenarioSpec(
            topology="grid",
            topology_kwargs={"rows": np.int64(3), "cols": np.int32(3)},
            model="packet-routing",
            scheduler="single-hop",
            rate=np.float64(0.5),
            frames=25,
        )
        data = spec.to_dict()
        assert type(data["topology_kwargs"]["rows"]) is int
        assert type(data["topology_kwargs"]["cols"]) is int
        # json must accept the whole payload without a custom encoder.
        text = json.dumps(data)
        rebuilt = ScenarioSpec.from_json(text)
        assert rebuilt.topology_kwargs == {"rows": 3, "cols": 3}

    def test_numpy_arrays_in_kwargs_normalise_to_lists(self):
        pairs = np.array([[0, 1], [1, 2]], dtype=np.int64)
        spec = GRID_SPEC.replace(
            injection_kwargs={"pairs": pairs, "num_generators": np.int64(4)}
        )
        data = spec.to_dict()
        assert data["injection_kwargs"]["pairs"] == [[0, 1], [1, 2]]
        assert type(data["injection_kwargs"]["pairs"][0][0]) is int
        json.dumps(data)

    def test_rate_field_numpy_scalar_round_trips_bit_exact(self):
        rate = np.float64(0.487123498761234)
        spec = GRID_SPEC.replace(rate=rate, rate_mode="fraction")
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.rate == float(rate)

    def test_unserialisable_kwargs_fail_at_to_dict(self):
        spec = GRID_SPEC.replace(topology_kwargs={"rows": 3, "cols": object()})
        with pytest.raises(ConfigurationError, match="cannot serialise"):
            spec.to_dict()

    def test_numpy_typed_kwargs_produce_identical_records(self):
        plain = GRID_SPEC.run()
        numpy_typed = ScenarioSpec(
            topology="grid",
            topology_kwargs={"rows": np.int64(3), "cols": np.int64(3)},
            model="packet-routing",
            scheduler="single-hop",
            rate=np.float64(0.5),
            frames=np.int64(25),
        ).run()
        assert plain == numpy_typed


class TestJsonRoundTrip:
    @pytest.mark.parametrize("preset", ["packet-routing", "mac"])
    def test_round_trip_equality_and_identical_records(self, preset):
        spec = preset_spec(preset, nodes=9, seed=2, frames=25)
        rebuilt = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert rebuilt == spec
        assert rebuilt.run() == spec.run()

    def test_random_topology_round_trip_identical_records(self):
        spec = preset_spec("sinr-linear", nodes=8, seed=4, frames=25)
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.run() == spec.run()

    def test_unknown_fields_rejected(self):
        data = GRID_SPEC.to_dict()
        data["topologyy"] = "grid"
        with pytest.raises(ConfigurationError, match="topologyy"):
            ScenarioSpec.from_dict(data)

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            ScenarioSpec.from_dict(["grid"])

    def test_spec_file_shapes(self):
        one = GRID_SPEC.to_dict()
        assert len(specs_from_data(one)) == 1
        assert len(specs_from_data([one, one])) == 2
        assert len(specs_from_data({"specs": [one]})) == 1
        with pytest.raises(ConfigurationError, match="spec file"):
            specs_from_data("not-a-spec")


class TestValidation:
    def test_bad_rate_mode(self):
        with pytest.raises(ConfigurationError, match="rate_mode"):
            GRID_SPEC.replace(rate_mode="relative")

    def test_bad_backend(self):
        with pytest.raises(ConfigurationError, match="backend"):
            GRID_SPEC.replace(backend="cuda")

    def test_bad_frames_and_rate(self):
        with pytest.raises(ConfigurationError, match="frames"):
            GRID_SPEC.replace(frames=0)
        with pytest.raises(ConfigurationError, match="rate"):
            GRID_SPEC.replace(rate=0.0)

    def test_empty_component_name(self):
        with pytest.raises(ConfigurationError, match="topology"):
            GRID_SPEC.replace(topology="")

    def test_unknown_component_surfaces_at_build(self):
        spec = GRID_SPEC.replace(scheduler="no-such-scheduler")
        with pytest.raises(ConfigurationError, match="no-such-scheduler"):
            spec.build()

    def test_dotted_path_topology_without_seed_param_builds(self):
        # Third-party callables resolved by module:function path need
        # no 'seed' parameter; the spec seed is only injected into
        # builders that accept one.
        spec = GRID_SPEC.replace(
            topology="repro.network.topology:grid_network",
            topology_kwargs={"rows": 3, "cols": 3},
        )
        built = spec.build(with_protocol=False)
        assert built.network.num_nodes == 9
        assert spec.run() == GRID_SPEC.run()

    def test_scenario_cell_rejects_zero_rate_at_construction(self):
        with pytest.raises(ConfigurationError, match="rate > 0"):
            CellSpec(rate=0.0, seed=0, frames=25, scenario=GRID_SPEC)

    def test_cell_names_exactly_one_construction_path(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            CellSpec(
                rate=0.1, seed=0, frames=25,
                scenario=GRID_SPEC, pair="compare-contender",
            )
        with pytest.raises(ConfigurationError, match="exactly one"):
            CellSpec(
                rate=0.1, seed=0, frames=25,
                scenario=GRID_SPEC, protocol="x", injection="y",
            )


class TestPickling:
    def test_spec_pickles_across_protocols(self):
        spec = preset_spec("sinr-linear", nodes=8, seed=1)
        for protocol in range(2, pickle.HIGHEST_PROTOCOL + 1):
            assert pickle.loads(pickle.dumps(spec, protocol)) == spec

    def test_cellspec_with_scenario_pickles(self):
        cell = CellSpec(rate=0.2, seed=0, frames=25, scenario=GRID_SPEC)
        clone = pickle.loads(pickle.dumps(cell))
        assert clone.scenario == GRID_SPEC
        assert clone.run() == cell.run()

    @needs_spawn
    def test_scenario_cells_run_in_spawn_workers(self):
        # Spawn workers inherit nothing: the unpickle of ScenarioSpec
        # itself must re-register the built-in components.
        cells = sweep_specs(
            [0.1, 0.3], [0], frames=25, scenario=GRID_SPEC
        )
        serial = [cell.run() for cell in cells]
        spawned = ProcessExecutor(workers=2, start_method="spawn").map(cells)
        assert spawned == serial
