"""Frame sizing (Section 4 constraints)."""

import pytest

from repro.core.frames import (
    FrameParameters,
    compute_frame_parameters,
    epsilon_for_rate,
)
from repro.errors import ConfigurationError
from repro.staticsched.round_robin import RoundRobinScheduler
from repro.staticsched.single_hop import SingleHopScheduler


def test_epsilon_from_rate():
    # f = 1: rate 0.6 -> eps = 0.4.
    assert epsilon_for_rate(0.6, 1.0) == pytest.approx(0.4)
    # Clamped to 1/2 (paper's w.l.o.g.).
    assert epsilon_for_rate(0.1, 1.0) == 0.5


def test_epsilon_rejects_at_capacity():
    with pytest.raises(ConfigurationError, match="capacity"):
        epsilon_for_rate(1.0, 1.0)
    with pytest.raises(ConfigurationError):
        epsilon_for_rate(1.5, 1.0)


def test_parameters_satisfy_structure():
    params = compute_frame_parameters(
        SingleHopScheduler(), m=10, rate=0.5, t_scale=0.01
    )
    assert params.phase1_budget + params.cleanup_budget <= params.frame_length
    assert params.measure_budget >= 1.0
    assert params.epsilon == 0.5
    assert params.f_m == 1.0


def test_parameters_reject_bad_inputs():
    with pytest.raises(ConfigurationError):
        compute_frame_parameters(SingleHopScheduler(), m=0, rate=0.5)
    with pytest.raises(ConfigurationError):
        compute_frame_parameters(SingleHopScheduler(), m=5, rate=0.0)
    with pytest.raises(ConfigurationError):
        compute_frame_parameters(SingleHopScheduler(), m=5, rate=0.5,
                                 t_scale=0.0)


def test_higher_rate_means_smaller_epsilon_bigger_t():
    low = compute_frame_parameters(
        SingleHopScheduler(), m=10, rate=0.5, t_scale=0.01
    )
    high = compute_frame_parameters(
        SingleHopScheduler(), m=10, rate=0.9, t_scale=0.01
    )
    assert high.epsilon < low.epsilon
    assert high.frame_length >= low.frame_length


def test_t_scale_shrinks_frames():
    big = compute_frame_parameters(SingleHopScheduler(), m=10, rate=0.5)
    small = compute_frame_parameters(
        SingleHopScheduler(), m=10, rate=0.5, t_scale=0.001
    )
    assert small.frame_length <= big.frame_length


def test_paper_scale_meets_drift_constants():
    """At t_scale=1 the frame must clear the 100 f/eps^3 term."""
    params = compute_frame_parameters(SingleHopScheduler(), m=4, rate=0.5)
    f, eps = params.f_m, params.epsilon
    assert params.frame_length >= 100 * f / eps**3


def test_frame_parameters_post_init_validation():
    with pytest.raises(ConfigurationError, match="fit"):
        FrameParameters(
            frame_length=10,
            phase1_budget=8,
            cleanup_budget=5,
            measure_budget=1.0,
            epsilon=0.5,
            rate=0.5,
            f_m=1.0,
            m=4,
        )


def test_round_robin_parameters():
    """RR's additive g = m + 1 shows up in both phase budgets."""
    params = compute_frame_parameters(
        RoundRobinScheduler(), m=6, rate=0.5, t_scale=0.01
    )
    assert params.cleanup_budget >= 6  # f*1 + (m+1)
    assert params.phase1_budget >= params.measure_budget
