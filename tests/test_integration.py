"""End-to-end pipelines: one per model family of the paper.

Each test assembles topology -> interference model -> algorithm ->
protocol -> injection -> simulation and checks the qualitative claim
the paper makes for that family (stability below the certified rate,
conservation, deliveries happening). These are the smoke equivalents of
the benchmark experiments, kept small enough for CI.
"""

import math

import numpy as np
import pytest

import repro


def run_pipeline(model, algorithm, rate, frames, *, t_scale, routing,
                 seeds=(0,), generators=4):
    results = []
    for seed in seeds:
        protocol = repro.DynamicProtocol(
            model, algorithm, rate, t_scale=t_scale, rng=seed
        )
        injection = repro.uniform_pair_injection(
            routing, model, rate, num_generators=generators, rng=seed + 100
        )
        simulation = repro.FrameSimulation(protocol, injection)
        simulation.run(frames)
        results.append((protocol, simulation.metrics))
    return results


# ----------------------------------------------------------------------
# SINR with linear power (Corollary 12 setting)
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_sinr_linear_power_pipeline_stable():
    net = repro.random_sinr_network(20, rng=1)
    model = repro.linear_power_model(net, alpha=3.0, beta=1.0, noise=0.02)
    algorithm = repro.TransformedAlgorithm(
        repro.DecayScheduler(), m=net.size_m, chi_scale=0.05
    )
    routing = repro.build_routing_table(net)
    rate = 0.5 * repro.certified_rate(algorithm, net.size_m)
    (protocol, metrics), = run_pipeline(
        model, algorithm, rate, frames=60, t_scale=0.001, routing=routing
    )
    verdict = repro.assess_stability(
        metrics.queue_series,
        load_per_frame=rate * protocol.frame_length,
    )
    assert verdict.stable
    assert metrics.delivered_count() > 0
    assert (
        metrics.injected_total
        == metrics.delivered_count() + protocol.packets_in_system
    )


# ----------------------------------------------------------------------
# Packet routing (Section 7 degenerate case): stable for lambda < 1
# ----------------------------------------------------------------------


def test_packet_routing_pipeline_stable_at_high_rate():
    net = repro.grid_network(3, 3)
    model = repro.PacketRoutingModel(net)
    algorithm = repro.SingleHopScheduler()
    routing = repro.build_routing_table(net)
    rate = 0.7  # below 1: the paper's claim for packet routing
    (protocol, metrics), = run_pipeline(
        model, algorithm, rate, frames=80, t_scale=0.01, routing=routing,
        generators=8,
    )
    verdict = repro.assess_stability(
        metrics.queue_series, load_per_frame=rate * protocol.frame_length
    )
    assert verdict.stable


# ----------------------------------------------------------------------
# Multiple-access channel (Corollaries 16/18)
# ----------------------------------------------------------------------


def test_mac_round_robin_pipeline_stable():
    net = repro.mac_network(6)
    model = repro.MultipleAccessChannel(net)
    algorithm = repro.RoundRobinScheduler()
    routing = repro.build_routing_table(net)
    rate = 0.6  # < 1: Corollary 18 territory
    (protocol, metrics), = run_pipeline(
        model, algorithm, rate, frames=80, t_scale=0.01, routing=routing,
        generators=8,
    )
    verdict = repro.assess_stability(
        metrics.queue_series, load_per_frame=rate * protocol.frame_length
    )
    assert verdict.stable


@pytest.mark.slow
def test_mac_backoff_pipeline_stable_below_1_over_e():
    # Algorithm 2's O(log^2 n) additive constants force frames of ~10^5
    # slots regardless of t_scale, so this test keeps the rate (and with
    # it the per-frame packet volume) low and the horizon short; the E8
    # benchmark covers the full-load behaviour.
    net = repro.mac_network(3)
    model = repro.MultipleAccessChannel(net)
    algorithm = repro.MacBackoffScheduler(phi=1.0, delta=0.5)
    routing = repro.build_routing_table(net)
    rate = 0.3 * repro.certified_rate(algorithm, net.size_m)
    (protocol, metrics), = run_pipeline(
        model, algorithm, rate, frames=22, t_scale=0.02, routing=routing,
        generators=6,
    )
    verdict = repro.assess_stability(
        metrics.queue_series,
        load_per_frame=rate * protocol.frame_length,
        min_frames=20,
    )
    assert verdict.stable
    assert protocol.potential.total_failures == 0


# ----------------------------------------------------------------------
# Conflict graph (Section 7.2)
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_conflict_graph_pipeline():
    net = repro.grid_network(3, 3)
    conflicts = repro.node_constraint_conflicts(net)
    ordering = repro.degree_ordering(conflicts)
    model = repro.ConflictGraphModel(net, conflicts, ordering=ordering)
    algorithm = repro.TransformedAlgorithm(
        repro.DecayScheduler(), m=net.size_m, chi_scale=0.05
    )
    routing = repro.build_routing_table(net)
    rate = 0.5 * repro.certified_rate(algorithm, net.size_m)
    (protocol, metrics), = run_pipeline(
        model, algorithm, rate, frames=50, t_scale=0.001, routing=routing
    )
    verdict = repro.assess_stability(
        metrics.queue_series, load_per_frame=max(1.0, rate * protocol.frame_length)
    )
    assert verdict.stable


# ----------------------------------------------------------------------
# Adversarial injection (Theorem 11)
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_adversarial_pipeline_with_bursty_adversary():
    net = repro.grid_network(3, 3)
    model = repro.PacketRoutingModel(net)
    algorithm = repro.SingleHopScheduler()
    routing = repro.build_routing_table(net)
    rate = 0.5
    protocol = repro.ShiftedDynamicProtocol(
        model, algorithm, rate, window=50, t_scale=0.01, rng=2
    )
    paths = [routing.path(s, d) for s, d in routing.pairs()]
    adversary = repro.BurstyAdversary(
        model, paths, window=50, rate=rate, rng=3
    )
    simulation = repro.FrameSimulation(protocol, adversary)
    metrics = simulation.run(120)
    verdict = repro.assess_stability(
        metrics.queue_series,
        load_per_frame=max(1.0, rate * protocol.frame_length),
    )
    assert verdict.stable
    assert metrics.delivered_count() > 0


# ----------------------------------------------------------------------
# Overload sanity: above-capacity injection must blow up
# ----------------------------------------------------------------------


def test_overload_is_detected_as_unstable():
    net = repro.line_network(3)
    model = repro.PacketRoutingModel(net)
    protocol = repro.DynamicProtocol(
        model, repro.SingleHopScheduler(), rate=0.5, t_scale=0.01, rng=0
    )
    generator = repro.PathGenerator([((0, 1), 1.0)])  # 1 packet/slot
    injection = repro.StochasticInjection([generator], rng=1)
    simulation = repro.FrameSimulation(protocol, injection)
    metrics = simulation.run(60)
    verdict = repro.assess_stability(
        metrics.queue_series,
        load_per_frame=protocol.frame_length,
    )
    assert not verdict.stable


# ----------------------------------------------------------------------
# Determinism across the whole stack
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_full_pipeline_deterministic():
    def run(seed):
        net = repro.random_sinr_network(15, rng=9)
        model = repro.linear_power_model(net, alpha=3.0, beta=1.0, noise=0.02)
        algorithm = repro.TransformedAlgorithm(
            repro.DecayScheduler(), m=net.size_m, chi_scale=0.05
        )
        routing = repro.build_routing_table(net)
        rate = 0.4 * repro.certified_rate(algorithm, net.size_m)
        protocol = repro.DynamicProtocol(
            model, algorithm, rate, t_scale=0.001, rng=seed
        )
        injection = repro.uniform_pair_injection(
            routing, model, rate, num_generators=3, rng=seed
        )
        simulation = repro.FrameSimulation(protocol, injection)
        simulation.run(25)
        return simulation.metrics.queue_series

    assert run(5) == run(5)
