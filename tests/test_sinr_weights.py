"""Section-6 weight matrices."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.network.network import Network
from repro.network.topology import random_sinr_network
from repro.sinr.power import LinearPower, SquareRootPower, UniformPower
from repro.sinr.weights import (
    linear_power_model,
    linear_power_weights,
    monotone_power_model,
    monotone_power_weights,
    power_control_weights,
)


@pytest.fixture(scope="module")
def net():
    return random_sinr_network(18, rng=13)


def _check_valid_weight_matrix(weights, n):
    assert weights.shape == (n, n)
    assert weights.min() >= 0.0
    assert weights.max() <= 1.0
    assert np.allclose(np.diag(weights), 1.0)


def test_linear_power_weights_valid(net):
    weights = linear_power_weights(net, 3.0, 1.0, 0.05)
    _check_valid_weight_matrix(weights, net.num_links)


def test_linear_power_weights_transpose_convention(net):
    from repro.sinr.affectance import affectance_matrix

    powers = LinearPower().powers(net, 3.0)
    affect = affectance_matrix(net, powers, 3.0, 1.0, 0.05)
    weights = linear_power_weights(net, 3.0, 1.0, 0.05)
    assert np.allclose(weights, affect.T)


def test_monotone_weights_charge_shorter_links_only(net):
    weights = monotone_power_weights(
        net, SquareRootPower(), 3.0, 1.0, 0.01
    )
    _check_valid_weight_matrix(weights, net.num_links)
    lengths = net.link_lengths()
    n = net.num_links
    for e in range(n):
        for e2 in range(n):
            if e == e2:
                continue
            if weights[e, e2] > 0:
                # e is charged against e2 => e is not longer than e2.
                assert lengths[e] <= lengths[e2] + 1e-12


def test_monotone_weights_reject_nonmonotone_assignment(net):
    class Backwards(UniformPower):
        def powers(self, network, alpha):
            lengths = network.link_lengths()
            return 1.0 / (lengths**alpha)

    with pytest.raises(ConfigurationError, match="monotone"):
        monotone_power_weights(net, Backwards(), 3.0, 1.0, 0.01)


def test_monotone_weights_exactly_one_direction_charged(net):
    weights = monotone_power_weights(net, LinearPower(), 3.0, 1.0, 0.01)
    n = net.num_links
    for e in range(n):
        for e2 in range(e + 1, n):
            # At most one of the pair carries positive weight.
            assert not (weights[e, e2] > 0 and weights[e2, e] > 0)


def test_power_control_weights_formula():
    # Hand-checkable 2-link instance: l0 length 1, l1 length 2.
    points = [Point(0, 0), Point(1, 0), Point(10, 0), Point(12, 0)]
    net = Network(4, [(0, 1), (2, 3)], positions=points)
    alpha = 2.0
    weights = power_control_weights(net, alpha)
    # l0 shorter: charged against l1.
    # d(s0, r1) = d(0, 12) = 12; d(s1, r0) = d(10, 1) = 9.
    expected = min(1.0, 1.0 / 12.0**2 + 1.0 / 9.0**2)
    assert weights[0, 1] == pytest.approx(expected)
    assert weights[1, 0] == 0.0


def test_power_control_weights_valid(net):
    weights = power_control_weights(net, 3.0)
    _check_valid_weight_matrix(weights, net.num_links)


def test_power_control_weights_need_geometry():
    bare = Network(3, [(0, 1), (1, 2)])
    with pytest.raises(ConfigurationError):
        power_control_weights(bare, 3.0)
    net2 = random_sinr_network(5, rng=0)
    with pytest.raises(ConfigurationError):
        power_control_weights(net2, 0.0)


def test_linear_power_model_bundles_weights(net):
    model = linear_power_model(net, alpha=3.0, beta=1.0, noise=0.05)
    expected = linear_power_weights(net, 3.0, 1.0, 0.05)
    assert np.allclose(model.weight_matrix(), expected)
    assert model.power_assignment.describe().startswith("linear")


def test_monotone_power_model_bundles_weights(net):
    model = monotone_power_model(net, SquareRootPower(), alpha=3.0,
                                 beta=1.0, noise=0.01)
    expected = monotone_power_weights(net, SquareRootPower(), 3.0, 1.0, 0.01)
    assert np.allclose(model.weight_matrix(), expected)


def test_feasible_sets_have_bounded_measure_linear_power(net):
    """Paper Section 6.1: single-slot feasible sets have I = O(1).

    Empirical check: greedily grown feasible sets under the exact SINR
    predicate have small measure under the matched weights.
    """
    model = linear_power_model(net, alpha=3.5, beta=1.0, noise=0.01)
    rng = np.random.default_rng(2)
    worst = 0.0
    for _ in range(20):
        order = rng.permutation(net.num_links)
        chosen = []
        for link in order:
            cand = chosen + [int(link)]
            if model.feasible_set(cand):
                chosen = cand
        if chosen:
            worst = max(worst, model.interference_measure(chosen))
    # "O(1)": generous numeric cap, far below the m ~ num_links scale.
    assert worst <= 8.0
