"""Conflict-graph model, orderings, and inductive independence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.interference.builders import (
    conflict_density,
    distance2_matching_conflicts,
    node_constraint_conflicts,
    protocol_model_conflicts,
    radio_network_conflicts,
)
from repro.interference.conflict import ConflictGraphModel
from repro.interference.inductive import (
    degree_ordering,
    inductive_independence_for_ordering,
    length_ordering,
)
from repro.network.network import Network
from repro.network.topology import grid_network, line_network, star_network


def path_conflicts():
    """Conflict path 0 - 1 - 2 - 3 over a 4-link network."""
    net = Network(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    conflicts = {0: {1}, 1: {2}, 2: {3}, 3: set()}
    return net, conflicts


def test_symmetrisation():
    net, conflicts = path_conflicts()
    model = ConflictGraphModel(net, conflicts)
    assert model.conflicts[1] == {0, 2}
    assert model.conflicts[3] == {2}


def test_success_requires_no_conflicting_neighbour():
    net, conflicts = path_conflicts()
    model = ConflictGraphModel(net, conflicts)
    assert model.successes([0, 2]) == {0, 2}
    assert model.successes([0, 1]) == set()
    assert model.successes([0, 3]) == {0, 3}
    assert model.is_independent([0, 2])
    assert not model.is_independent([1, 2])


def test_weight_matrix_charges_earlier_neighbours_only():
    net, conflicts = path_conflicts()
    model = ConflictGraphModel(net, conflicts, ordering=[0, 1, 2, 3])
    weights = model.weight_matrix()
    assert weights[1, 0] == 1.0  # 0 earlier than 1
    assert weights[0, 1] == 0.0  # 1 later than 0: not charged
    assert weights[2, 1] == 1.0
    assert np.allclose(np.diag(weights), 1.0)


def test_measure_depends_on_ordering():
    net, conflicts = path_conflicts()
    forward = ConflictGraphModel(net, conflicts, ordering=[0, 1, 2, 3])
    backward = ConflictGraphModel(net, conflicts, ordering=[3, 2, 1, 0])
    requests = [0, 1, 2, 3]
    # Both orderings give a valid measure; they may differ numerically.
    assert forward.interference_measure(requests) >= 1.0
    assert backward.interference_measure(requests) >= 1.0


def test_ordering_must_be_permutation():
    net, conflicts = path_conflicts()
    with pytest.raises(ConfigurationError):
        ConflictGraphModel(net, conflicts, ordering=[0, 0, 1, 2])


def test_conflict_map_rejects_unknown_links():
    net, _ = path_conflicts()
    with pytest.raises(ConfigurationError):
        ConflictGraphModel(net, {9: {0}})


def test_rank_and_degree():
    net, conflicts = path_conflicts()
    model = ConflictGraphModel(net, conflicts, ordering=[3, 2, 1, 0])
    assert model.rank(3) == 0
    assert model.rank(0) == 3
    assert model.conflict_degree(1) == 2


# ----------------------------------------------------------------------
# Inductive independence
# ----------------------------------------------------------------------


def test_inductive_independence_of_path_is_one():
    _, conflicts = path_conflicts()
    full = {e: set(n) for e, n in conflicts.items()}
    # Symmetrise by hand for the standalone function.
    for e, neigh in list(full.items()):
        for u in neigh:
            full.setdefault(u, set()).add(e)
    rho = inductive_independence_for_ordering(full, [0, 1, 2, 3])
    assert rho == 1


def test_inductive_independence_of_clique_is_one():
    conflicts = {0: {1, 2}, 1: {0, 2}, 2: {0, 1}}
    rho = inductive_independence_for_ordering(conflicts, [0, 1, 2])
    assert rho == 1  # earlier-neighbourhoods are cliques


def test_inductive_independence_of_star_centre_last():
    # Star: centre 0 conflicts with 1..4, leaves mutually independent.
    conflicts = {0: {1, 2, 3, 4}, 1: {0}, 2: {0}, 3: {0}, 4: {0}}
    # Centre last: its earlier-neighbourhood is all 4 independent leaves.
    rho_bad = inductive_independence_for_ordering(conflicts, [1, 2, 3, 4, 0])
    assert rho_bad == 4
    # Centre first: every leaf sees only the centre.
    rho_good = inductive_independence_for_ordering(conflicts, [0, 1, 2, 3, 4])
    assert rho_good == 1


def test_inductive_independence_rejects_non_permutation():
    conflicts = {0: {1}, 1: {0}}
    with pytest.raises(ConfigurationError):
        inductive_independence_for_ordering(conflicts, [0, 0])


def test_degree_ordering_star_puts_centre_early():
    conflicts = {0: {1, 2, 3, 4}, 1: {0}, 2: {0}, 3: {0}, 4: {0}}
    ordering = degree_ordering(conflicts)
    rho = inductive_independence_for_ordering(conflicts, ordering)
    assert rho == 1


def test_length_ordering_sorts_by_length():
    net = line_network(4, spacing=1.0)
    # All lengths equal: falls back to id order.
    assert length_ordering(net) == [0, 1, 2]


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def test_node_constraint_conflicts_shared_endpoint():
    net = line_network(4)  # links 0:(0,1) 1:(1,2) 2:(2,3)
    conflicts = node_constraint_conflicts(net)
    assert conflicts[0] == {1}
    assert conflicts[1] == {0, 2}
    assert conflicts[2] == {1}


def test_node_constraint_on_star_is_clique():
    net = star_network(4)
    conflicts = node_constraint_conflicts(net)
    # Every link touches the centre, so all links mutually conflict.
    for e, neigh in conflicts.items():
        assert len(neigh) == net.num_links - 1


def test_protocol_model_conflicts_nearby_senders():
    net = line_network(4, spacing=1.0)
    conflicts = protocol_model_conflicts(net, guard_factor=0.5)
    # Sender of link 1 (node 1) is exactly at the receiver of link 0:
    # within the guard zone.
    assert 1 in conflicts[0]
    model = ConflictGraphModel(net, conflicts)
    assert not model.successes([0, 1]) == {0, 1}


def test_protocol_model_rejects_negative_guard():
    net = line_network(3)
    with pytest.raises(ConfigurationError):
        protocol_model_conflicts(net, guard_factor=-0.1)


def test_radio_network_conflicts():
    net = line_network(4, spacing=1.0)
    conflicts = radio_network_conflicts(net, range_radius=1.0)
    # Link 1's sender (node 1) is in range of link 0's receiver (node 1).
    assert 1 in conflicts[0]
    # Link 2's sender (node 2) is 1.0 from node 1... also in range.
    assert 2 in conflicts[0]


def test_distance2_matching_conflicts_share_endpoint_always_conflict():
    net = line_network(4, spacing=10.0)
    conflicts = distance2_matching_conflicts(net, connectivity_radius=1.0)
    assert 1 in conflicts[0]  # shared node 1
    assert 2 not in conflicts[0]  # 10 apart, out of radius


def test_conflict_density():
    conflicts = {0: {1}, 1: {0}, 2: set()}
    assert conflict_density(conflicts) == pytest.approx(2.0 / 3.0)
    assert conflict_density({}) == 0.0


def test_builders_require_geometry():
    net = Network(3, [(0, 1), (1, 2)])
    from repro.errors import TopologyError

    with pytest.raises(TopologyError):
        protocol_model_conflicts(net)
