"""The run-loop backend layer: selection, chunked RNG, lazy history.

Complements ``test_kernel_parity`` (which pins full-run equality per
backend × scheduler × model) with the machinery-level contracts:

* chunk-pre-drawn uniforms equal per-slot draws for arbitrary
  take/chunk interleavings, and the generator lands on the exact
  per-slot stream position afterwards (hypothesis sweep);
* backend resolution — auto detection, silent numba fallback, the
  scalar reference winning ties, per-cell backend pinning in sharded
  sweeps;
* the kernel's shared idle mask is an *enforced* read-only view;
* ``LazySlotHistory`` behaves like the eager ``List[SlotRecord]`` it
  replaced (equality, concatenation, merge, feasibility consumers);
* the compiled backend's wrapper (chunk splicing, borderline slots,
  history growth) replays the scalar reference even when numba is
  absent and the driver runs interpreted.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.interference.builders import node_constraint_conflicts
from repro.interference.conflict import ConflictGraphModel
from repro.interference.matrix_model import AffectanceThresholdModel
from repro.network.topology import grid_network, mac_network
from repro.staticsched import (
    DecayScheduler,
    FkvScheduler,
    HmScheduler,
    KvScheduler,
    SingleHopScheduler,
)
from repro.staticsched import _runloop_numba
from repro.staticsched.base import LazySlotHistory, RunResult, SlotRecord
from repro.staticsched.kernel import make_run_state, scalar_reference
from repro.staticsched.runloop import (
    BACKENDS,
    ChunkedUniforms,
    DecayPolicy,
    FkvPolicy,
    HmPolicy,
    KvPolicy,
    SingleHopPolicy,
    available_backends,
    default_backend,
    numba_available,
    resolve_backend,
    set_default_backend,
    use_backend,
)


def _random_weights(m: int, seed: int, scale: float = 0.35) -> np.ndarray:
    rng = np.random.default_rng(seed)
    matrix = rng.random((m, m)) * scale
    np.fill_diagonal(matrix, 1.0)
    return matrix


def _affectance_model(m: int = 10, seed: int = 11, threshold: float = 1.0):
    return AffectanceThresholdModel(
        mac_network(m), _random_weights(m, seed=seed), threshold=threshold
    )


# ----------------------------------------------------------------------
# Chunked RNG parity
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    chunk_slots=st.integers(min_value=1, max_value=80),
    takes=st.lists(st.integers(min_value=1, max_value=40), min_size=1,
                   max_size=30),
)
def test_chunked_uniforms_match_per_slot_draws(seed, chunk_slots, takes):
    """Any interleaving of take sizes and chunk sizes replays the
    stream of separate per-slot draws, values and final state both."""
    ref_gen = np.random.default_rng(seed)
    expected = [ref_gen.random(k).copy() for k in takes]

    gen = np.random.default_rng(seed)
    chunk = ChunkedUniforms(gen, chunk_slots=chunk_slots)
    got = [chunk.take(k).copy() for k in takes]
    chunk.finalize()

    for want, have in zip(expected, got):
        assert np.array_equal(want, have)
    # finalize() must rewind overdraw: the generator sits exactly
    # where the per-slot draws left theirs.
    assert gen.bit_generator.state == ref_gen.bit_generator.state
    assert gen.random() == ref_gen.random()


def test_chunked_uniforms_shared_generator_across_runs():
    """Back-to-back runs on one generator (the protocol's pattern)
    stay aligned with the per-slot reference."""
    takes_a, takes_b = [5, 5, 3], [7, 2]
    ref = np.random.default_rng(3)
    expected = [ref.random(k).copy() for k in takes_a + takes_b]

    gen = np.random.default_rng(3)
    got = []
    for takes in (takes_a, takes_b):
        chunk = ChunkedUniforms(gen, chunk_slots=4)
        got.extend(chunk.take(k).copy() for k in takes)
        chunk.finalize()
    for want, have in zip(expected, got):
        assert np.array_equal(want, have)
    assert gen.bit_generator.state == ref.bit_generator.state


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------


def test_backend_registry_names():
    assert BACKENDS == ("auto", "numpy", "numba", "scalar")
    concrete = available_backends()
    assert "numpy" in concrete and "kernel" in concrete
    assert ("numba" in concrete) == numba_available()


def test_resolve_auto_and_numba_fallback():
    assert resolve_backend("auto") in ("numpy", "numba")
    if not numba_available():
        # Absent numba falls back silently, never errors.
        assert resolve_backend("numba") == "numpy"
        assert resolve_backend("auto") == "numpy"


def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError):
        resolve_backend("fortran")
    with pytest.raises(ConfigurationError):
        set_default_backend("fortran")
    with pytest.raises(ConfigurationError):
        with use_backend("fortran"):
            pass


def test_use_backend_nests_and_restores():
    assert default_backend() == "auto"
    with use_backend("kernel"):
        assert resolve_backend() == "kernel"
        with use_backend("numpy"):
            assert resolve_backend() == "numpy"
        assert resolve_backend() == "kernel"
    assert resolve_backend() in ("numpy", "numba")


def test_scalar_reference_wins_ties():
    """A scalar verification context cannot be overridden from below —
    nested explicit backend selections still resolve to scalar."""
    with scalar_reference():
        assert resolve_backend() == "scalar"
        with use_backend("numpy"):
            assert resolve_backend() == "scalar"
        assert resolve_backend("kernel") == "scalar"
    assert resolve_backend() != "scalar"


def test_set_default_backend_round_trip():
    try:
        set_default_backend("kernel")
        assert resolve_backend() == "kernel"
    finally:
        set_default_backend("auto")


# ----------------------------------------------------------------------
# Enforced read-only shared masks
# ----------------------------------------------------------------------


def test_kernel_idle_mask_is_read_only():
    """The kernel's reused no-success mask is an enforced invariant:
    writing through it raises instead of corrupting later slots."""
    model = _affectance_model()
    kernel, _, _, _ = make_run_state(model, [0, 1, 2], record_history=False)
    idle = kernel.transmit(np.zeros(kernel.size, dtype=bool))
    assert not idle.any()
    with pytest.raises(ValueError):
        idle[0] = True
    # Compaction rebuilds the mask; the fresh one is read-only too.
    kernel.transmit(np.ones(kernel.size, dtype=bool))
    if kernel.last_keep is not None:
        idle2 = kernel.transmit(np.zeros(kernel.size, dtype=bool))
        with pytest.raises(ValueError):
            idle2[0] = True


# ----------------------------------------------------------------------
# Lazy history
# ----------------------------------------------------------------------


def _kv_history(backend: str, seed: int = 5):
    model = _affectance_model()
    rng = np.random.default_rng(seed)
    requests = list(rng.integers(0, model.num_links, size=20))
    with use_backend(backend):
        return KvScheduler().run(
            model, requests, 120,
            rng=np.random.default_rng(seed + 1), record_history=True,
        )


def test_lazy_history_list_compatibility():
    result = _kv_history("numpy")
    history = result.history
    assert isinstance(history, LazySlotHistory)
    assert len(history) > 0
    # Indexing, negative indexing, slicing, iteration.
    first = history[0]
    assert isinstance(first, SlotRecord)
    assert history[-1] == history[len(history) - 1]
    assert history[1:3] == list(history)[1:3]
    assert all(isinstance(r, SlotRecord) for r in history)
    with pytest.raises(IndexError):
        history[len(history)]
    # Equality against a plain list of SlotRecords, both directions.
    eager = [SlotRecord(r.attempted, r.succeeded) for r in history]
    assert history == eager
    assert eager == list(history)
    assert not (history == eager[:-1])
    # Concatenation materialises like list + list.
    assert history + eager == eager + eager
    assert eager + history == eager + eager


def test_lazy_history_merge_after():
    a = _kv_history("numpy", seed=5)
    b = _kv_history("kernel", seed=9)
    merged = a.merge_after(
        RunResult(
            delivered=b.delivered,
            remaining=b.remaining,
            slots_used=b.slots_used,
            history=b.history,
        )
    )
    assert merged.history == list(a.history) + list(b.history)
    assert merged.slots_used == a.slots_used + b.slots_used


@pytest.mark.parametrize("backend", ["kernel", "numpy"])
def test_history_feasibility_consumers(backend):
    """The schedule-feasibility pattern used across the test suite —
    re-checking every recorded slot against the model's predicate —
    keeps working on lazily materialised histories."""
    model = _affectance_model()
    rng = np.random.default_rng(2)
    requests = list(rng.integers(0, model.num_links, size=18))
    with use_backend(backend):
        result = SingleHopScheduler().run(
            model, requests, 60, rng=0, record_history=True
        )
    assert result.history is not None
    assert len(result.history) == result.slots_used
    for record in result.history:
        attempted = list(record.attempted)
        assert set(record.succeeded) == model.successes(attempted)
        assert attempted == sorted(attempted)
        assert list(record.succeeded) == sorted(record.succeeded)


# ----------------------------------------------------------------------
# Threshold-boundary parity (exact-summation guard paths)
# ----------------------------------------------------------------------


def _boundary_model(m: int = 6, threshold: float = 1.0):
    """Impacts land exactly on the threshold for 1 + 2·threshold
    transmitters: 0.5 off-diagonal entries, integer-valued sums."""
    weights = np.full((m, m), 0.5)
    np.fill_diagonal(weights, 1.0)
    return AffectanceThresholdModel(
        mac_network(m), weights, threshold=threshold
    )


@pytest.mark.parametrize("backend", [
    name for name in available_backends() if name != "scalar"
])
@pytest.mark.parametrize("sched_factory", [
    lambda: KvScheduler(initial_probability=0.6),
    lambda: SingleHopScheduler(),
], ids=["kv", "single-hop"])
def test_threshold_boundary_parity(backend, sched_factory):
    requests = list(range(6)) * 3
    with use_backend(backend):
        run = sched_factory().run(
            _boundary_model(), requests, 200,
            rng=np.random.default_rng(3), record_history=True,
        )
    with scalar_reference():
        reference = sched_factory().run(
            _boundary_model(), requests, 200,
            rng=np.random.default_rng(3), record_history=True,
        )
    assert run.delivered == reference.delivered
    assert run.remaining == reference.remaining
    assert run.history == reference.history


# ----------------------------------------------------------------------
# Generator-state parity through protocol-shaped call sequences
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", [
    name for name in available_backends() if name != "scalar"
])
def test_generator_state_matches_reference_after_runs(backend):
    """Back-to-back runs sharing one generator (the dynamic protocol's
    exact pattern) leave the stream where the reference leaves it."""
    model = _affectance_model()
    rng = np.random.default_rng(8)
    requests = list(rng.integers(0, model.num_links, size=22))

    second = list(rng.integers(0, model.num_links, size=9))

    gen_ref = np.random.default_rng(13)
    with scalar_reference():
        ref_a = KvScheduler().run(model, requests, 90, rng=gen_ref)
        ref_mid = gen_ref.random()
        ref_b = DecayScheduler().run(model, second, 50, rng=gen_ref)

    gen = np.random.default_rng(13)
    with use_backend(backend):
        got_a = KvScheduler().run(model, requests, 90, rng=gen)
        got_mid = gen.random()
        got_b = DecayScheduler().run(model, second, 50, rng=gen)
    assert got_a.delivered == ref_a.delivered
    assert got_mid == ref_mid
    assert got_b.delivered == ref_b.delivered
    assert gen.bit_generator.state == gen_ref.bit_generator.state


# ----------------------------------------------------------------------
# The compiled backend's wrapper, exercised without numba
# ----------------------------------------------------------------------


_COMPILED_POLICIES = {
    "kv": (
        KvScheduler,
        lambda s: KvPolicy(s._p0, s._p_min, s._backoff, s._recovery_slots),
    ),
    "decay": (
        DecayScheduler,
        lambda s: DecayPolicy(s._probability_scale, s._measure_floor),
    ),
    "fkv": (
        FkvScheduler,
        lambda s: FkvPolicy(s._probability_scale, s._phase_scale),
    ),
    "hm": (HmScheduler, lambda s: HmPolicy(s._chi)),
    "single-hop": (SingleHopScheduler, lambda s: SingleHopPolicy()),
}


def _conflict_model():
    net = grid_network(3, 3)
    return ConflictGraphModel(net, node_constraint_conflicts(net))


@pytest.mark.parametrize("model_factory", [_affectance_model,
                                           _conflict_model],
                         ids=["affectance", "conflict"])
@pytest.mark.parametrize("sched_name", sorted(_COMPILED_POLICIES))
@pytest.mark.parametrize("record_history", [False, True],
                         ids=["plain", "history"])
def test_compiled_wrapper_replays_reference(
    sched_name, model_factory, record_history
):
    """``run_compiled`` is driven through its full re-entry protocol
    (chunk refills, borderline slots, history growth) and must replay
    the scalar reference — with numba absent the driver runs
    interpreted, so this covers the wrapper logic in every lane."""
    sched_cls, policy_factory = _COMPILED_POLICIES[sched_name]
    model = model_factory()
    scheduler = sched_cls()
    rng = np.random.default_rng(5)
    requests = list(rng.integers(0, model.num_links, size=25))
    measure = model.interference_measure(requests)
    budget = min(scheduler.budget_for(measure, len(requests)), 300)

    gen_ref = np.random.default_rng(6)
    with scalar_reference():
        reference = sched_cls().run(
            model_factory(), requests, budget,
            rng=gen_ref, record_history=record_history,
        )
    gen = np.random.default_rng(6)
    got = _runloop_numba.run_compiled(
        policy_factory(scheduler), model, requests, budget, gen,
        record_history,
    )
    assert got.delivered == reference.delivered
    assert got.remaining == reference.remaining
    assert got.slots_used == reference.slots_used
    if record_history:
        assert got.history == reference.history
    assert gen.bit_generator.state == gen_ref.bit_generator.state


def test_compiled_supported_matrix():
    """The compiled set is exactly {kv, decay, fkv, hm, single-hop} ×
    {affectance, conflict, sinr} — hm additionally gated on the
    pairwise self-check — and empty without numba (the sinr column has
    its own suite in test_compiled_sinr.py)."""
    kv = KvPolicy(0.125, 1e-4, 0.5, 8)
    aff = _affectance_model()
    assert _runloop_numba.supported(kv, aff) == numba_available()
    assert _runloop_numba.supported(HmPolicy(0.25), aff) == (
        numba_available() and _runloop_numba._pairwise_self_check()
    )
    from repro.interference.mac import MultipleAccessChannel

    assert not _runloop_numba.supported(
        kv, MultipleAccessChannel(mac_network(4))
    )


def test_pairwise_sum_replays_numpy_reduce():
    """``_pairwise_sum`` must equal ``np.add.reduce`` bit for bit on
    every size class of the algorithm (sequential, one block, blocked
    with tail, recursive splits) under adversarial magnitude spreads —
    the property that admits HM to the compiled lane."""
    rng = np.random.default_rng(97)
    for n in (0, 1, 2, 7, 8, 9, 15, 16, 17, 64, 127, 128, 129,
              255, 256, 500, 1024, 4097):
        for _ in range(3):
            a = rng.random(n) * 10.0 ** rng.integers(-15, 15, size=n)
            a *= np.where(rng.random(n) < 0.5, -1.0, 1.0)
            assert _runloop_numba._pairwise_sum(a, 0, n) == np.add.reduce(a)
    # Offset starts (the driver sums scratch prefixes, always lo=0,
    # but the contract should hold for any window).
    a = rng.random(300) * 10.0 ** rng.integers(-12, 12, size=300)
    for lo, n in ((0, 300), (3, 128), (10, 9), (200, 100)):
        assert (
            _runloop_numba._pairwise_sum(a, lo, n)
            == np.add.reduce(a[lo:lo + n])
        )
    assert _runloop_numba._pairwise_self_check()


# ----------------------------------------------------------------------
# Backend threading through sharded sweeps
# ----------------------------------------------------------------------


def test_cellspec_backend_pins_and_pickles():
    from repro.sim.sharding import CellSpec, SerialExecutor, sweep_specs

    # No `requires`: the pair builder is registered by this module's
    # import and the executor is in-process.
    specs = sweep_specs(
        [0.02], [0], frames=25,
        pair="runloop-test-pair", backend="numpy",
    )
    assert all(spec.backend == "numpy" for spec in specs)
    clone = pickle.loads(pickle.dumps(specs[0]))
    assert clone.backend == "numpy"

    kernel_specs = [
        CellSpec(
            rate=s.rate, seed=s.seed, frames=s.frames,
            rate_index=s.rate_index, pair=s.pair,
            requires=s.requires, backend="kernel",
        )
        for s in specs
    ]
    fused = SerialExecutor().map(specs)
    kernel = SerialExecutor().map(kernel_specs)
    # Backends are bit-identical, so pinning different backends per
    # cell cannot change any record.
    for a, b in zip(fused, kernel):
        assert a == b


def _runloop_test_pair(rate, seed, **kwargs):
    import repro

    model = _affectance_model(m=8, seed=21)
    routing = repro.build_routing_table(model.network)
    injection = repro.uniform_pair_injection(
        routing, model, rate, num_generators=2, rng=seed + 100
    )
    protocol = repro.DynamicProtocol(
        model, SingleHopScheduler(), rate, t_scale=0.01, rng=seed,
        store=injection.store,
    )
    return protocol, injection


def _register_test_builders():
    from repro.sim.sharding import register_pair_builder

    register_pair_builder("runloop-test-pair", _runloop_test_pair)


_register_test_builders()
