"""Competitive-ratio estimation utilities."""

import pytest

from repro.core.competitive import (
    certified_rate,
    competitive_ratio,
    estimate_max_stable_rate,
    feasible_measure_upper_bound,
)
from repro.errors import ConfigurationError
from repro.staticsched.round_robin import RoundRobinScheduler
from repro.staticsched.single_hop import SingleHopScheduler


def test_certified_rate_single_hop():
    # f = 1, eps = 0.5 -> rate 0.5.
    assert certified_rate(SingleHopScheduler(), m=10) == pytest.approx(0.5)
    assert certified_rate(SingleHopScheduler(), m=10, epsilon=0.2) == (
        pytest.approx(0.8)
    )


def test_certified_rate_validation():
    with pytest.raises(ConfigurationError):
        certified_rate(SingleHopScheduler(), m=10, epsilon=0.0)


def test_feasible_upper_bound_mac_is_one(mac_model):
    # Only singletons are feasible; a singleton's measure is 1.
    assert feasible_measure_upper_bound(mac_model, trials=8, rng=0) == 1.0


def test_feasible_upper_bound_packet_routing(packet_routing_model):
    # All links at once are feasible; identity W gives measure 1.
    bound = feasible_measure_upper_bound(packet_routing_model, trials=4, rng=0)
    assert bound == 1.0


def test_feasible_upper_bound_sinr_small_constant(sinr_model):
    bound = feasible_measure_upper_bound(sinr_model, trials=16, rng=1)
    assert 1.0 <= bound <= 10.0  # "O(1)" for linear power


def test_feasible_upper_bound_validation(mac_model):
    with pytest.raises(ConfigurationError):
        feasible_measure_upper_bound(mac_model, trials=0)


def test_bisection_finds_threshold():
    threshold = 0.37

    def stable(rate):
        return rate < threshold

    low, high = estimate_max_stable_rate(stable, 0.0, 1.0, iterations=10)
    assert low <= threshold <= high
    assert high - low < 0.01


def test_bisection_everything_stable():
    low, high = estimate_max_stable_rate(lambda r: True, 0.1, 0.9)
    assert (low, high) == (0.9, 0.9)


def test_bisection_nothing_stable():
    low, high = estimate_max_stable_rate(lambda r: False, 0.1, 0.9)
    assert (low, high) == (0.0, 0.1)


def test_bisection_validation():
    with pytest.raises(ConfigurationError):
        estimate_max_stable_rate(lambda r: True, 0.5, 0.5)


def test_competitive_ratio_guards():
    assert competitive_ratio(2.0, 1.0) == 2.0
    assert competitive_ratio(1.0, 2.0) == 1.0  # never below 1
    assert competitive_ratio(1.0, 0.0) == float("inf")
