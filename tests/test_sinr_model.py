"""The exact SINR model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.network.network import Network
from repro.network.topology import line_network, random_sinr_network
from repro.sinr.model import SinrModel
from repro.sinr.power import LinearPower, UniformPower


def distant_pair():
    """Two unit links 100 apart: mutually harmless."""
    points = [Point(0, 0), Point(1, 0), Point(100, 0), Point(101, 0)]
    return Network(4, [(0, 1), (2, 3)], positions=points)


def close_pair():
    """Two unit links 0.5 apart: mutually destructive under uniform power.

    Signal is 1 (unit length); interference comes from sqrt(1 + 0.25)
    away, i.e. 1 / 1.118**3 ~ 0.716, so the SINR ~ 1.40 < beta = 2.
    """
    points = [Point(0, 0), Point(1, 0), Point(0, 0.5), Point(1, 0.5)]
    return Network(4, [(0, 1), (2, 3)], positions=points)


def test_singletons_succeed():
    model = SinrModel(distant_pair(), alpha=3.0, beta=1.0, noise=0.1)
    model.check_all_singletons()


def test_distant_links_coexist():
    model = SinrModel(distant_pair(), alpha=3.0, beta=1.0, noise=0.0)
    assert model.successes([0, 1]) == {0, 1}


def test_close_links_collide():
    model = SinrModel(close_pair(), alpha=3.0, beta=2.0, noise=0.0)
    # Interference from 1.5-1.8 away vs signal from distance 1; beta=2
    # makes the SINR fail both ways.
    assert model.successes([0, 1]) == set()
    assert model.successes([0]) == {0}


def test_sinr_value_computation():
    model = SinrModel(distant_pair(), alpha=2.0, beta=1.0, noise=0.5)
    # Alone: SINR = (1/1) / 0.5 = 2.
    assert model.sinr(0, [0]) == pytest.approx(2.0)


def test_sinr_infinite_without_noise_or_interference():
    model = SinrModel(distant_pair(), alpha=2.0, beta=1.0, noise=0.0)
    assert model.sinr(0, [0]) == float("inf")


def test_sinr_requires_member_link():
    model = SinrModel(distant_pair(), alpha=2.0, beta=1.0, noise=0.0)
    with pytest.raises(ConfigurationError):
        model.sinr(1, [0])


def test_noise_threshold_matters():
    net = distant_pair()
    quiet = SinrModel(net, alpha=2.0, beta=1.0, noise=0.5)
    loud = SinrModel(net, alpha=2.0, beta=3.0, noise=0.5)
    assert quiet.singleton_succeeds(0)
    assert not loud.singleton_succeeds(0)  # 1/0.5 = 2 < 3


def test_successes_with_powers_overrides_assignment():
    net = close_pair()
    model = SinrModel(net, alpha=3.0, beta=2.0, noise=0.0)
    # Default uniform powers collide (see above); a huge asymmetry saves
    # link 0.
    winners = model.successes_with_powers([0, 1], [1000.0, 1.0])
    assert 0 in winners
    assert 1 not in winners


def test_successes_with_powers_validates():
    model = SinrModel(distant_pair(), alpha=3.0, beta=1.0, noise=0.0)
    with pytest.raises(ConfigurationError):
        model.successes_with_powers([0, 1], [1.0])
    with pytest.raises(ConfigurationError):
        model.successes_with_powers([0], [0.0])


def test_requires_geometry():
    bare = Network(3, [(0, 1), (1, 2)])
    with pytest.raises(ConfigurationError):
        SinrModel(bare)


def test_parameter_validation():
    net = distant_pair()
    with pytest.raises(ConfigurationError):
        SinrModel(net, alpha=-1.0)
    with pytest.raises(ConfigurationError):
        SinrModel(net, beta=0.0)
    with pytest.raises(ConfigurationError):
        SinrModel(net, noise=-0.1)


def test_default_weight_matrix_is_affectance_transpose():
    from repro.sinr.affectance import affectance_matrix

    net = random_sinr_network(12, rng=9)
    model = SinrModel(net, alpha=3.0, beta=1.0, noise=0.05,
                      power=LinearPower())
    affect = affectance_matrix(
        net, np.asarray(model.powers), 3.0, 1.0, 0.05
    )
    assert np.allclose(model.weight_matrix(), affect.T)


def test_powers_view_read_only():
    model = SinrModel(distant_pair(), alpha=3.0, beta=1.0, noise=0.0)
    with pytest.raises(ValueError):
        model.powers[0] = 99.0


def test_monotone_success_under_shrinking_sets():
    """Removing transmitters never hurts a surviving link."""
    net = random_sinr_network(15, rng=21)
    model = SinrModel(net, alpha=3.5, beta=1.0, noise=0.01,
                      power=LinearPower())
    rng = np.random.default_rng(4)
    links = list(rng.choice(net.num_links, size=6, replace=False))
    winners = model.successes(links)
    for drop in links:
        smaller = [e for e in links if e != drop]
        smaller_winners = model.successes(smaller)
        # Anyone who won in the bigger set and still transmits must win.
        assert (winners - {drop}) <= smaller_winners


def test_signal_strengths_match_singleton_sinr():
    """signal_strengths()[l] / noise equals the lone-transmission SINR."""
    net = random_sinr_network(10, rng=8)
    noise = 0.03
    model = SinrModel(net, alpha=3.0, beta=1.0, noise=noise,
                      power=LinearPower())
    signals = model.signal_strengths()
    assert (signals > 0).all()
    for link in (0, net.num_links // 2, net.num_links - 1):
        assert signals[link] / noise == pytest.approx(
            model.sinr(link, [link])
        )
