"""Property-based tests (hypothesis) on the core invariants.

These target the *data-structure* level guarantees the proofs rest on:
affectance normalisation, measure algebra, success-predicate sanity,
scheduler request conservation. Strategies are kept small so the suite
stays fast; hypothesis shrinks violations to minimal counterexamples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.interference.base import request_vector
from repro.interference.conflict import ConflictGraphModel
from repro.interference.mac import MultipleAccessChannel
from repro.interference.matrix_model import AffectanceThresholdModel
from repro.network.network import Network
from repro.network.topology import mac_network
from repro.sinr.affectance import affectance_matrix
from repro.sinr.model import SinrModel
from repro.sinr.power import LinearPower, UniformPower
from repro.staticsched.decay import DecayScheduler
from repro.staticsched.single_hop import SingleHopScheduler
from repro.interference.packet_routing import PacketRoutingModel


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def geometric_networks(draw):
    """Small geometric networks with well-separated random nodes."""
    n = draw(st.integers(min_value=4, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    # Rejection-sample until all pairwise distances exceed a floor, so
    # path loss stays finite and links are individually feasible.
    for _ in range(50):
        coords = rng.random((n, 2)) * 10.0
        diffs = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt((diffs**2).sum(axis=2))
        np.fill_diagonal(dist, np.inf)
        if dist.min() > 0.5:
            break
    points = [Point(float(x), float(y)) for x, y in coords]
    links = []
    for i in range(n):
        j = int(dist[i].argmin())
        links.append((i, j))
        links.append((j, i))
    links = sorted(set(links))
    return Network(n, links, positions=points)


@st.composite
def weight_matrices(draw, size):
    """Valid W matrices: entries in [0,1], unit diagonal."""
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=size * size,
            max_size=size * size,
        )
    )
    matrix = np.asarray(values).reshape(size, size)
    np.fill_diagonal(matrix, 1.0)
    return matrix


# ----------------------------------------------------------------------
# Affectance invariants
# ----------------------------------------------------------------------


@given(geometric_networks(), st.floats(min_value=2.1, max_value=5.0))
@settings(max_examples=25, deadline=None)
def test_affectance_always_in_unit_interval(net, alpha):
    powers = LinearPower().powers(net, alpha)
    affect = affectance_matrix(net, powers, alpha, beta=1.0, noise=0.0)
    assert affect.min() >= 0.0
    assert affect.max() <= 1.0
    assert np.allclose(np.diag(affect), 1.0)


@given(geometric_networks())
@settings(max_examples=15, deadline=None)
def test_sinr_default_weights_are_valid(net):
    model = SinrModel(net, alpha=3.0, beta=1.0, noise=0.0,
                      power=LinearPower())
    weights = model.weight_matrix()  # runs the base-class validation
    assert weights.shape == (net.num_links, net.num_links)


@given(geometric_networks(), st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_sinr_successes_subset_and_singletons(net, seed):
    model = SinrModel(net, alpha=3.0, beta=0.8, noise=0.0,
                      power=LinearPower())
    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, net.num_links + 1))
    subset = sorted(rng.choice(net.num_links, size=size, replace=False))
    winners = model.successes(subset)
    assert winners <= set(subset)
    assert model.successes([subset[0]]) == {subset[0]}


# ----------------------------------------------------------------------
# Measure algebra
# ----------------------------------------------------------------------


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_measure_is_subadditive_and_monotone(data):
    size = data.draw(st.integers(min_value=2, max_value=6))
    net = mac_network(size)
    weights = data.draw(weight_matrices(size))
    model = AffectanceThresholdModel(net, weights)
    a = data.draw(
        st.lists(st.integers(0, size - 1), min_size=0, max_size=8)
    )
    b = data.draw(
        st.lists(st.integers(0, size - 1), min_size=0, max_size=8)
    )
    measure_a = model.interference_measure(a)
    measure_b = model.interference_measure(b)
    measure_ab = model.interference_measure(a + b)
    assert measure_ab <= measure_a + measure_b + 1e-9
    assert measure_ab >= max(measure_a, measure_b) - 1e-9


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_measure_scales_linearly(data):
    size = data.draw(st.integers(min_value=2, max_value=6))
    net = mac_network(size)
    weights = data.draw(weight_matrices(size))
    model = AffectanceThresholdModel(net, weights)
    requests = data.draw(
        st.lists(st.integers(0, size - 1), min_size=1, max_size=5)
    )
    k = data.draw(st.integers(min_value=2, max_value=4))
    single = model.interference_measure(requests)
    repeated = model.interference_measure(requests * k)
    assert repeated == pytest.approx(k * single)


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_request_vector_matches_manual_count(data):
    size = data.draw(st.integers(min_value=1, max_value=8))
    ids = data.draw(st.lists(st.integers(0, size - 1), max_size=20))
    vector = request_vector(size, ids)
    assert vector.sum() == len(ids)
    for link in range(size):
        assert vector[link] == ids.count(link)


# ----------------------------------------------------------------------
# Scheduler conservation
# ----------------------------------------------------------------------


@given(
    st.lists(st.integers(0, 4), min_size=0, max_size=15),
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=99),
)
@settings(max_examples=30, deadline=None)
def test_decay_conserves_requests_on_mac(requests, budget, seed):
    model = MultipleAccessChannel(mac_network(5))
    result = DecayScheduler().run(model, requests, budget, rng=seed)
    assert sorted(result.delivered + result.remaining) == sorted(
        range(len(requests))
    )
    assert result.slots_used <= budget


@given(
    st.lists(st.integers(0, 3), min_size=0, max_size=12),
    st.integers(min_value=0, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_single_hop_conserves_and_bounds(requests, budget):
    net = mac_network(4)
    model = PacketRoutingModel(net)
    result = SingleHopScheduler().run(model, requests, budget)
    assert sorted(result.delivered + result.remaining) == sorted(
        range(len(requests))
    )
    if requests:
        congestion = max(requests.count(e) for e in set(requests))
        if budget >= congestion:
            assert result.all_delivered
            assert result.slots_used == congestion


# ----------------------------------------------------------------------
# Conflict graphs
# ----------------------------------------------------------------------


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_conflict_success_iff_independent(data):
    size = data.draw(st.integers(min_value=2, max_value=6))
    net = mac_network(size)
    pairs = data.draw(
        st.lists(
            st.tuples(st.integers(0, size - 1), st.integers(0, size - 1)),
            max_size=8,
        )
    )
    conflicts = {e: set() for e in range(size)}
    for a, b in pairs:
        if a != b:
            conflicts[a].add(b)
    model = ConflictGraphModel(net, conflicts)
    subset = data.draw(
        st.lists(st.integers(0, size - 1), max_size=size, unique=True)
    )
    winners = model.successes(subset)
    for link in subset:
        neighbours = model.conflicts[link]
        expected = not (neighbours & set(subset))
        assert (link in winners) == expected
