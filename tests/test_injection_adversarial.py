"""Window adversaries and the sliding-window audit."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, InjectionError
from repro.injection.adversarial import (
    BurstyAdversary,
    SawtoothAdversary,
    SmoothAdversary,
    TargetedAdversary,
    WindowAudit,
)
from repro.injection.packet import Packet


def paths_for(model, routing):
    return [routing.path(s, d) for s, d in routing.pairs()]


ADVERSARIES = [SmoothAdversary, BurstyAdversary, SawtoothAdversary, TargetedAdversary]


@pytest.mark.parametrize("adversary_cls", ADVERSARIES)
def test_adversaries_pass_the_window_audit(
    adversary_cls, sinr_model, sinr_routing
):
    window, rate = 20, 0.4
    adversary = adversary_cls(
        sinr_model, paths_for(sinr_model, sinr_routing), window, rate, rng=5
    )
    audit = WindowAudit(sinr_model, window, rate)
    for slot in range(3 * window):
        audit.observe(slot, adversary.packets_for_slot(slot))
    # Some load must actually arrive for the test to be meaningful.
    assert audit.worst_window_measure > 0


@pytest.mark.parametrize("adversary_cls", ADVERSARIES)
def test_adversaries_respect_budget_per_window(
    adversary_cls, sinr_model, sinr_routing
):
    window, rate = 10, 0.5
    adversary = adversary_cls(
        sinr_model, paths_for(sinr_model, sinr_routing), window, rate, rng=7
    )
    for w in range(3):
        links = []
        for slot in range(w * window, (w + 1) * window):
            for packet in adversary.packets_for_slot(slot):
                links.extend(packet.path)
        measure = sinr_model.interference_measure(links)
        assert measure <= window * rate + 1e-6


def test_bursty_injects_only_first_slot(sinr_model, sinr_routing):
    window, rate = 8, 0.5
    adversary = BurstyAdversary(
        sinr_model, paths_for(sinr_model, sinr_routing), window, rate, rng=1
    )
    assert len(adversary.packets_for_slot(0)) > 0
    for offset in range(1, window):
        assert adversary.packets_for_slot(offset) == []


def test_smooth_spreads_over_window(sinr_model, sinr_routing):
    window, rate = 16, 1.0
    adversary = SmoothAdversary(
        sinr_model, paths_for(sinr_model, sinr_routing), window, rate, rng=2
    )
    occupied = sum(
        1 for slot in range(window) if adversary.packets_for_slot(slot)
    )
    assert occupied >= 2  # not everything in one slot


def test_targeted_adversary_hits_victim(sinr_model, sinr_routing):
    window, rate = 10, 0.8
    adversary = TargetedAdversary(
        sinr_model, paths_for(sinr_model, sinr_routing), window, rate, rng=3
    )
    packets = adversary.packets_for_slot(0)
    assert packets, "targeted adversary should inject something"
    assert all(adversary.victim in p.path for p in packets)


def test_window_audit_rejects_violation(sinr_model):
    audit = WindowAudit(sinr_model, window=4, rate=0.01)
    heavy = [
        Packet(id=i, path=(0,), injected_at=0) for i in range(50)
    ]
    with pytest.raises(InjectionError, match="bounded"):
        audit.observe(0, heavy)


def test_window_audit_sliding(sinr_model):
    """Two half-budget batches within one sliding window must trip it."""
    audit = WindowAudit(sinr_model, window=4, rate=1.0)
    batch = [Packet(id=i, path=(0,), injected_at=0) for i in range(3)]
    audit.observe(0, batch)  # measure 3 <= 4: fine
    more = [Packet(id=10 + i, path=(0,), injected_at=2) for i in range(3)]
    with pytest.raises(InjectionError):
        audit.observe(2, more)  # window now holds 6 > 4


def test_adversary_parameter_validation(sinr_model, sinr_routing):
    paths = paths_for(sinr_model, sinr_routing)
    with pytest.raises(ConfigurationError):
        SmoothAdversary(sinr_model, paths, window=0, rate=0.5)
    with pytest.raises(ConfigurationError):
        SmoothAdversary(sinr_model, paths, window=5, rate=-0.5)
    with pytest.raises(ConfigurationError):
        SmoothAdversary(sinr_model, [], window=5, rate=0.5)


def test_adversary_deterministic_under_seed(sinr_model, sinr_routing):
    paths = paths_for(sinr_model, sinr_routing)

    def trace(seed):
        adversary = BurstyAdversary(sinr_model, paths, 6, 0.5, rng=seed)
        return [
            tuple(p.path)
            for slot in range(12)
            for p in adversary.packets_for_slot(slot)
        ]

    assert trace(9) == trace(9)
