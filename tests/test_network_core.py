"""Links and the Network container."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.geometry.point import Point
from repro.network.link import Link
from repro.network.network import Network


def test_link_rejects_self_loop():
    with pytest.raises(TopologyError):
        Link(0, 1, 1)


def test_link_rejects_negative_id():
    with pytest.raises(TopologyError):
        Link(-1, 0, 1)


def test_link_endpoints_and_reverse():
    link = Link(0, 1, 2)
    assert link.endpoints == frozenset({1, 2})
    rev = link.reversed(5)
    assert (rev.id, rev.sender, rev.receiver) == (5, 2, 1)


def test_link_shares_endpoint():
    a = Link(0, 1, 2)
    assert a.shares_endpoint(Link(1, 2, 3))
    assert a.shares_endpoint(Link(2, 0, 1))
    assert not a.shares_endpoint(Link(3, 3, 4))


def simple_network(**kwargs):
    return Network(4, [(0, 1), (1, 2), (2, 3), (3, 0)], **kwargs)


def test_network_basic_counts():
    net = simple_network()
    assert net.num_nodes == 4
    assert net.num_links == 4
    assert net.max_path_length == 4
    assert net.size_m == 4


def test_size_m_uses_max_of_links_and_depth():
    net = Network(4, [(0, 1)], max_path_length=9)
    assert net.size_m == 9
    net2 = Network(4, [(0, 1), (1, 2), (2, 3)], max_path_length=1)
    assert net2.size_m == 3


def test_network_rejects_duplicate_links():
    with pytest.raises(TopologyError, match="duplicate"):
        Network(3, [(0, 1), (0, 1)])


def test_network_rejects_out_of_range_endpoints():
    with pytest.raises(TopologyError):
        Network(2, [(0, 2)])


def test_network_adjacency():
    net = simple_network()
    assert net.links_from(0) == [0]
    assert net.links_into(0) == [3]
    assert net.link_between(1, 2) == 1
    assert net.link_between(2, 1) is None


def test_network_geometry_requires_positions():
    net = simple_network()
    assert not net.is_geometric
    with pytest.raises(TopologyError):
        net.positions
    with pytest.raises(TopologyError):
        net.link_lengths()


def test_network_with_positions():
    points = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
    net = simple_network(positions=points)
    assert net.is_geometric
    assert np.allclose(net.link_lengths(), 1.0)
    assert net.length_diversity() == pytest.approx(1.0)


def test_network_rejects_mismatched_positions():
    with pytest.raises(ConfigurationError):
        simple_network(positions=[Point(0, 0)])


def test_validate_path_accepts_chain():
    net = simple_network()
    assert net.validate_path([0, 1, 2]) == (0, 1, 2)


def test_validate_path_rejects_break():
    net = simple_network()
    with pytest.raises(TopologyError, match="breaks"):
        net.validate_path([0, 2])


def test_validate_path_rejects_empty_and_too_long():
    net = Network(3, [(0, 1), (1, 2), (2, 0)], max_path_length=2)
    with pytest.raises(TopologyError, match="empty"):
        net.validate_path([])
    with pytest.raises(TopologyError, match="exceeds"):
        net.validate_path([0, 1, 2])


def test_validate_path_allows_revisits():
    net = Network(2, [(0, 1), (1, 0)], max_path_length=4)
    # 0 -> 1 -> 0 -> 1: revisits both nodes, legal per the paper.
    assert net.validate_path([0, 1, 0]) == (0, 1, 0)


def test_validate_path_rejects_unknown_link():
    net = simple_network()
    with pytest.raises(TopologyError, match="unknown"):
        net.validate_path([0, 9])


def test_repr_mentions_size():
    assert "nodes=4" in repr(simple_network())
