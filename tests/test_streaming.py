"""Unit contracts for the O(1) streaming accumulators.

The exactness claims the parity soak relies on are pinned here at the
primitive level: compensated sums are bit-exact for integer-valued
series, the ring buffer reproduces the newest-window slice, and the
quantile sketch honours its documented relative-error bound against
the nearest-rank order statistic.
"""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.streaming import (
    QuantileSketch,
    RingBuffer,
    StreamingLatency,
    StreamingMoments,
    StreamingSeries,
)


# ----------------------------------------------------------------------
# StreamingMoments
# ----------------------------------------------------------------------


def test_moments_exact_on_integer_series():
    rng = np.random.default_rng(0)
    values = rng.integers(0, 10**9, size=5000)
    moments = StreamingMoments()
    for value in values.tolist():
        moments.push(value)
    assert moments.count == values.size
    # Integer sums below 2**53 are exact under compensation, so the
    # streaming mean bit-equals the batch recompute.
    assert moments.total == float(values.sum())
    assert moments.mean == float(values.sum()) / values.size
    assert moments.minimum == float(values.min())
    assert moments.maximum == float(values.max())
    assert moments.variance == pytest.approx(float(np.var(values)), rel=1e-9)


def test_moments_push_many_matches_push_loop():
    rng = np.random.default_rng(1)
    values = rng.integers(0, 1000, size=777)
    one_by_one = StreamingMoments()
    for value in values.tolist():
        one_by_one.push(value)
    batched = StreamingMoments()
    for chunk in np.array_split(values, 13):
        batched.push_many(chunk.astype(np.float64))
    assert batched.count == one_by_one.count
    assert batched.total == one_by_one.total
    assert batched.minimum == one_by_one.minimum
    assert batched.maximum == one_by_one.maximum
    assert batched.variance == pytest.approx(one_by_one.variance, rel=1e-9)


def test_moments_empty_and_roundtrip():
    moments = StreamingMoments()
    assert moments.count == 0
    assert math.isnan(moments.mean)
    moments.push(3.5)
    moments.push(-1.5)
    other = StreamingMoments()
    other.load_state_dict(moments.state_dict())
    assert other.count == 2
    assert other.total == moments.total
    assert other.minimum == -1.5 and other.maximum == 3.5


def test_moments_state_rejects_bool_and_negative_count():
    moments = StreamingMoments()
    moments.push(1.0)
    state = moments.state_dict()
    for bad in (True, -1, 1.5):
        broken = dict(state)
        broken["count"] = bad
        with pytest.raises(ConfigurationError, match="count"):
            StreamingMoments().load_state_dict(broken)


# ----------------------------------------------------------------------
# RingBuffer
# ----------------------------------------------------------------------


def test_ring_keeps_newest_window():
    ring = RingBuffer(8)
    for value in range(20):
        ring.push(value)
    assert ring.count == 20
    assert len(ring) == 8
    assert ring.values().tolist() == list(range(12, 20))
    assert ring.last() == 19


def test_ring_partial_fill_and_roundtrip():
    ring = RingBuffer(8)
    for value in (5, 6, 7):
        ring.push(value)
    assert ring.values().tolist() == [5, 6, 7]
    state = ring.state_dict()
    other = RingBuffer(8)
    other.load_state_dict(state)
    assert other.values().tolist() == [5, 6, 7]
    other.push(8)
    assert other.values().tolist() == [5, 6, 7, 8]


def test_ring_roundtrip_mid_wrap():
    ring = RingBuffer(4)
    for value in range(11):
        ring.push(value)
    other = RingBuffer(4)
    other.load_state_dict(ring.state_dict())
    assert other.values().tolist() == ring.values().tolist()
    other.push(11)
    ring.push(11)
    assert other.values().tolist() == ring.values().tolist()


def test_ring_capacity_mismatch_raises():
    ring = RingBuffer(4)
    ring.push(1)
    with pytest.raises(ConfigurationError, match="capacity"):
        RingBuffer(8).load_state_dict(ring.state_dict())


# ----------------------------------------------------------------------
# QuantileSketch
# ----------------------------------------------------------------------


def _nearest_rank(sorted_values, q):
    rank = max(0, math.ceil(q * len(sorted_values)) - 1)
    return float(sorted_values[rank])


@pytest.mark.parametrize("q", [0.5, 0.9, 0.95, 0.99])
def test_sketch_respects_relative_error_bound(q):
    rng = np.random.default_rng(2)
    values = np.exp(rng.normal(5.0, 2.0, size=20000))
    alpha = 0.01
    sketch = QuantileSketch(alpha)
    sketch.push_many(values)
    truth = _nearest_rank(np.sort(values), q)
    estimate = sketch.quantile(q)
    # Documented bound: relative error <= alpha against the
    # nearest-rank order statistic (plus float slack at bucket edges).
    assert abs(estimate - truth) <= alpha * truth * (1.0 + 1e-9)


def test_sketch_counts_sub_one_values_exactly_as_zero():
    sketch = QuantileSketch()
    sketch.push_many(np.asarray([0.0, 0.5, 0.9, 10.0]))
    assert sketch.quantile(0.5) == 0.0
    assert sketch.quantile(1.0) == pytest.approx(10.0, rel=0.01)


def test_sketch_rejects_negative_values():
    with pytest.raises(ConfigurationError):
        QuantileSketch().push(-1.0)


def test_sketch_push_matches_push_many():
    rng = np.random.default_rng(3)
    values = rng.uniform(1.0, 1e6, size=500)
    a = QuantileSketch()
    b = QuantileSketch()
    for value in values.tolist():
        a.push(value)
    b.push_many(values)
    assert a.state_dict()["low"] == b.state_dict()["low"]
    assert np.array_equal(a.state_dict()["keys"], b.state_dict()["keys"])
    assert np.array_equal(a.state_dict()["counts"], b.state_dict()["counts"])


def test_sketch_roundtrip_and_alpha_mismatch():
    sketch = QuantileSketch(0.01)
    sketch.push_many(np.asarray([1.0, 10.0, 100.0]))
    other = QuantileSketch(0.01)
    other.load_state_dict(sketch.state_dict())
    assert other.quantile(0.5) == sketch.quantile(0.5)
    with pytest.raises(ConfigurationError, match="alpha"):
        QuantileSketch(0.02).load_state_dict(sketch.state_dict())


# ----------------------------------------------------------------------
# StreamingSeries
# ----------------------------------------------------------------------


def test_series_tail_mean_exact_within_window():
    values = list(range(100))
    series = StreamingSeries(window=128)
    for value in values:
        series.push(value)
    start = int(len(values) * 0.5)
    assert series.tail_mean(0.5) == float(np.mean(values[start:]))
    assert series.values().tolist() == values
    assert series.last == 99
    assert series.maximum == 99


def test_series_head_is_exact_prefix():
    series = StreamingSeries(window=16, head_frames=4)
    for value in (3, 1, 4, 1, 5, 9, 2, 6):
        series.push(value)
    assert series.head.count == 4
    assert series.head.mean == (3 + 1 + 4 + 1) / 4


def test_series_roundtrip_beyond_window():
    series = StreamingSeries(window=16)
    for value in range(50):
        series.push(value)
    other = StreamingSeries(window=16)
    other.load_state_dict(series.state_dict())
    assert other.count == 50
    assert other.values().tolist() == series.values().tolist()
    assert other.head.mean == series.head.mean
    with pytest.raises(ConfigurationError, match="window"):
        StreamingSeries(window=32).load_state_dict(series.state_dict())


def test_series_validates_window_and_head():
    with pytest.raises(ConfigurationError):
        StreamingSeries(window=4)
    with pytest.raises(ConfigurationError):
        StreamingSeries(window=32, head_frames=1)
    with pytest.raises(ConfigurationError):
        StreamingSeries(window=32, head_frames=32)


# ----------------------------------------------------------------------
# StreamingLatency
# ----------------------------------------------------------------------


def test_latency_merged_stats_match_batch():
    rng = np.random.default_rng(4)
    latencies = rng.integers(1, 10**6, size=4000)
    lengths = rng.integers(1, 4, size=4000)
    tracker = StreamingLatency(alpha=0.01)
    half = 2000
    tracker.absorb(
        latencies[:half].astype(np.int64), lengths[:half].astype(np.int64)
    )
    pending = latencies[half:].astype(np.int64)
    stats = tracker.merged_stats(pending)
    count, mean, median, p95, maximum = stats
    assert count == 4000
    assert mean == float(latencies.sum()) / 4000
    assert maximum == float(latencies.max())
    sorted_all = np.sort(latencies)
    for q, estimate in ((0.5, median), (0.95, p95)):
        truth = _nearest_rank(sorted_all, q)
        assert abs(estimate - truth) <= 0.01 * truth * (1.0 + 1e-9)
    # Merging must not mutate the absorbed state.
    assert tracker.merged_stats(pending) == stats
    assert tracker.count == half


def test_latency_by_length_union_and_roundtrip():
    tracker = StreamingLatency()
    tracker.absorb(
        np.asarray([10, 20], dtype=np.int64), np.asarray([1, 2], dtype=np.int64)
    )
    merged = tracker.merged_stats_by_length(
        np.asarray([30], dtype=np.int64), np.asarray([3], dtype=np.int64)
    )
    assert sorted(merged) == [1, 2, 3]
    assert merged[3][0] == 1 and merged[3][4] == 30.0
    other = StreamingLatency()
    other.load_state_dict(tracker.state_dict())
    assert other.merged_stats(np.empty(0, dtype=np.int64)) == (
        tracker.merged_stats(np.empty(0, dtype=np.int64))
    )


def test_latency_empty_merged_stats_is_none():
    tracker = StreamingLatency()
    assert tracker.merged_stats(np.empty(0, dtype=np.int64)) is None
    assert tracker.merged_stats_by_length(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    ) == {}


def test_latency_state_rejects_bad_length_keys():
    tracker = StreamingLatency()
    tracker.absorb(
        np.asarray([10], dtype=np.int64), np.asarray([1], dtype=np.int64)
    )
    state = tracker.state_dict()
    # Checkpoint JSON stringifies dict keys; integral strings load.
    assert "1" in state["by_length"]
    other = StreamingLatency()
    other.load_state_dict(state)
    assert 1 in other.merged_stats_by_length(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    )
    state["by_length"]["not-a-length"] = state["by_length"]["1"]
    with pytest.raises(ConfigurationError, match="path length"):
        StreamingLatency().load_state_dict(state)
