"""Stability detector calibration."""

import numpy as np
import pytest

from repro.errors import StabilityError
from repro.sim.stability import assess_stability


def test_flat_series_is_stable():
    series = [50] * 100
    verdict = assess_stability(series, load_per_frame=10)
    assert verdict.stable
    assert verdict.slope_per_frame == pytest.approx(0.0)


def test_noisy_plateau_is_stable(rng):
    series = 40 + rng.integers(-5, 6, size=200)
    verdict = assess_stability(series.tolist(), load_per_frame=10)
    assert verdict.stable


def test_linear_growth_is_unstable():
    series = [5 * frame for frame in range(100)]
    verdict = assess_stability(series, load_per_frame=10)
    assert not verdict.stable
    assert verdict.normalised_slope > 0.02


def test_slow_steady_growth_detected():
    # Growth of 10% of the load per frame: unstable.
    load = 20
    series = [int(2.0 * frame) for frame in range(300)]
    verdict = assess_stability(series, load_per_frame=load)
    assert not verdict.stable


def test_initial_transient_tolerated():
    # Big warm-up spike that drains: stable.
    series = [200 - frame for frame in range(100)] + [100] * 100
    verdict = assess_stability(series, load_per_frame=50)
    assert verdict.stable


def test_blowup_without_slope_detected():
    # A queue that stepped up far beyond its early level and kept rising
    # slowly: the blow-up ratio triggers even at a modest tail slope.
    series = [1] * 50 + [
        400 + int(0.4 * 10 * frame) for frame in range(150)
    ]
    verdict = assess_stability(series, load_per_frame=10)
    assert not verdict.stable
    assert verdict.blowup_ratio > 3.0


def test_too_short_series_raises():
    with pytest.raises(StabilityError):
        assess_stability([1, 2, 3], load_per_frame=1)


def test_verdict_is_truthy():
    verdict = assess_stability([10] * 50, load_per_frame=5)
    assert bool(verdict) is True
