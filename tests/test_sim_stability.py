"""Stability detector calibration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, StabilityError
from repro.sim.stability import assess_stability


def test_flat_series_is_stable():
    series = [50] * 100
    verdict = assess_stability(series, load_per_frame=10)
    assert verdict.stable
    assert verdict.slope_per_frame == pytest.approx(0.0)


def test_noisy_plateau_is_stable(rng):
    series = 40 + rng.integers(-5, 6, size=200)
    verdict = assess_stability(series.tolist(), load_per_frame=10)
    assert verdict.stable


def test_linear_growth_is_unstable():
    series = [5 * frame for frame in range(100)]
    verdict = assess_stability(series, load_per_frame=10)
    assert not verdict.stable
    assert verdict.normalised_slope > 0.02


def test_slow_steady_growth_detected():
    # Growth of 10% of the load per frame: unstable.
    load = 20
    series = [int(2.0 * frame) for frame in range(300)]
    verdict = assess_stability(series, load_per_frame=load)
    assert not verdict.stable


def test_initial_transient_tolerated():
    # Big warm-up spike that drains: stable.
    series = [200 - frame for frame in range(100)] + [100] * 100
    verdict = assess_stability(series, load_per_frame=50)
    assert verdict.stable


def test_blowup_without_slope_detected():
    # A queue that stepped up far beyond its early level and kept rising
    # slowly: the blow-up ratio triggers even at a modest tail slope.
    series = [1] * 50 + [
        400 + int(0.4 * 10 * frame) for frame in range(150)
    ]
    verdict = assess_stability(series, load_per_frame=10)
    assert not verdict.stable
    assert verdict.blowup_ratio > 3.0


def test_too_short_series_raises():
    with pytest.raises(StabilityError):
        assess_stability([1, 2, 3], load_per_frame=1)


def test_verdict_is_truthy():
    verdict = assess_stability([10] * 50, load_per_frame=5)
    assert bool(verdict) is True


# ----------------------------------------------------------------------
# Calibration across horizon lengths
#
# The sharded sweep aggregates verdicts computed in worker processes;
# a drifting or loosely-calibrated detector could mask aggregation
# regressions (every cell reads "stable" either way). These
# property-style grids pin the verdict on synthetic known-stable and
# known-unstable series across horizons, seeds, and load scales, so
# the detector cannot silently go soft on either side.
# ----------------------------------------------------------------------

HORIZONS = [40, 80, 160, 320]


@pytest.mark.parametrize("horizon", HORIZONS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_noisy_plateau_is_stable_across_horizons(horizon, seed):
    rng = np.random.default_rng(seed)
    load = 12.0
    series = 60 + rng.integers(-5, 6, size=horizon)
    verdict = assess_stability(series.tolist(), load_per_frame=load)
    assert verdict.stable, (
        f"plateau misread as unstable at horizon {horizon}, seed {seed}: "
        f"{verdict}"
    )
    # Zero-mean noise: the fitted drift stays a small fraction of the
    # load no matter how long the series runs.
    assert abs(verdict.normalised_slope) < 0.02


@pytest.mark.parametrize("horizon", HORIZONS)
@pytest.mark.parametrize("load", [2.0, 20.0, 200.0])
def test_plateau_level_scales_with_load(horizon, load):
    # A queue hovering at ~5x the per-frame load is the steady state of
    # a healthy pipeline at any provisioning scale.
    series = [5.0 * load] * horizon
    assert assess_stability(series, load_per_frame=load).stable


@pytest.mark.parametrize("horizon", HORIZONS)
@pytest.mark.parametrize("slope_fraction", [0.1, 0.3, 1.0])
def test_linear_growth_is_unstable_across_horizons(horizon, slope_fraction):
    load = 10.0
    series = [slope_fraction * load * frame for frame in range(horizon)]
    verdict = assess_stability(series, load_per_frame=load)
    assert not verdict.stable, (
        f"linear growth misread as stable at horizon {horizon}, "
        f"slope {slope_fraction} load/frame: {verdict}"
    )
    assert verdict.normalised_slope > 0.02


@pytest.mark.parametrize("horizon", HORIZONS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_noisy_linear_growth_is_unstable_across_horizons(horizon, seed):
    rng = np.random.default_rng(seed)
    load = 10.0
    ramp = 0.3 * load * np.arange(horizon)
    series = ramp + rng.integers(-5, 6, size=horizon)
    verdict = assess_stability(series.tolist(), load_per_frame=load)
    assert not verdict.stable


@pytest.mark.parametrize("horizon", [120, 240, 480])
def test_plateau_then_takeoff_is_unstable(horizon):
    # Stable early life then a blow-up: the detector must not let the
    # quiet prefix average the verdict back to stable.
    load = 10.0
    flat = [8.0] * (horizon // 3)
    takeoff = [
        8.0 + 0.5 * load * frame for frame in range(horizon - len(flat))
    ]
    verdict = assess_stability(flat + takeoff, load_per_frame=load)
    assert not verdict.stable


@pytest.mark.parametrize("horizon", [100, 200, 400])
def test_draining_transient_is_stable(horizon):
    # A large warm-up spike that drains to a plateau is stable at every
    # horizon: the tail, not the transient, decides.
    spike = [300.0 - 2.0 * frame for frame in range(horizon // 2)]
    plateau = [max(spike[-1], 0.0)] * (horizon - len(spike))
    verdict = assess_stability(spike + plateau, load_per_frame=40.0)
    assert verdict.stable


# ----------------------------------------------------------------------
# No-copy array intake (the asarray(list(...)) cleanup)
# ----------------------------------------------------------------------


class _NoIter(np.ndarray):
    """Float64 array that refuses Python-level iteration.

    `np.asarray(series, dtype=float)` on a float64 ndarray neither
    copies nor iterates; the old `list(queue_series)` round-trip did
    both, and would trip this guard.
    """

    def __iter__(self):  # pragma: no cover - the assertion is the test
        raise AssertionError("queue series was iterated element-wise")


def _no_iter(values) -> np.ndarray:
    return np.asarray(values, dtype=float).view(_NoIter)


def test_assess_stability_takes_ndarray_without_copy_or_iteration():
    base = np.linspace(10.0, 10.0, 200)
    guarded = _no_iter(base)
    verdict = assess_stability(guarded)
    assert verdict.stable
    # And no copy either: a plain float64 array passes straight through.
    plain = np.asarray(base, dtype=float)
    assert np.asarray(plain, dtype=float) is plain


# ----------------------------------------------------------------------
# Windowed / streaming variants
# ----------------------------------------------------------------------


def _streaming_series(values, window=64, head_frames=None):
    from repro.sim.streaming import StreamingSeries

    series = StreamingSeries(window=window, head_frames=head_frames)
    for value in values:
        series.push(int(value))
    return series


def test_streaming_verdict_delegates_exactly_within_window():
    from repro.sim.stability import assess_stability_streaming

    rng = np.random.default_rng(0)
    values = (50 + rng.integers(0, 10, size=60)).tolist()
    batch = assess_stability(values, load_per_frame=2.0)
    stream = assess_stability_streaming(
        _streaming_series(values, window=64), load_per_frame=2.0
    )
    assert repr(stream) == repr(batch)


@pytest.mark.parametrize("n", [200, 500, 1333])
def test_streaming_verdict_matches_windowed_batch_recompute(n):
    from repro.sim.stability import (
        assess_stability_streaming,
        assess_stability_windowed,
    )

    rng = np.random.default_rng(n)
    values = (100 + rng.integers(0, 20, size=n)).tolist()
    window, head = 64, 16
    stream = assess_stability_streaming(
        _streaming_series(values, window=window, head_frames=head),
        load_per_frame=3.0,
    )
    batch = assess_stability_windowed(
        values, window=window, head_frames=head, load_per_frame=3.0
    )
    assert repr(stream) == repr(batch)


def test_streaming_windowed_detector_flags_growth():
    from repro.sim.stability import assess_stability_streaming

    values = [int(5 * k) for k in range(2000)]
    verdict = assess_stability_streaming(
        _streaming_series(values, window=256), load_per_frame=1.0
    )
    assert not verdict.stable


def test_streaming_too_short_raises():
    from repro.sim.stability import assess_stability_streaming

    with pytest.raises(StabilityError):
        assess_stability_streaming(_streaming_series([1] * 5))


# ----------------------------------------------------------------------
# Parameter validation (the silent-NaN / vacuous-fit regressions)
#
# An out-of-range tail_fraction used to produce an empty tail whose
# mean() emitted a RuntimeWarning and returned NaN — and every NaN
# comparison in the verdict is False, so the run was silently
# classified unstable. A frontier bisection sits directly on these
# verdicts, so misconfiguration must raise, never misclassify.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("tail_fraction", [0.0, -0.5, 1.0001, 2.0])
def test_out_of_range_tail_fraction_raises_not_nan(tail_fraction):
    import warnings

    with warnings.catch_warnings():
        # The old path emitted "mean of empty slice"; any warning fails.
        warnings.simplefilter("error")
        with pytest.raises(ConfigurationError, match="tail_fraction"):
            assess_stability([10] * 50, tail_fraction=tail_fraction)


def test_tail_fraction_of_one_is_legal():
    assert assess_stability([10.0] * 50, tail_fraction=1.0).stable


def test_windowed_validates_tail_fraction_and_head_frames():
    from repro.sim.stability import assess_stability_windowed

    values = [10] * 200
    with pytest.raises(ConfigurationError, match="tail_fraction"):
        assess_stability_windowed(
            values, window=64, head_frames=16, tail_fraction=0.0
        )
    with pytest.raises(ConfigurationError, match="head_frames"):
        assess_stability_windowed(values, window=64, head_frames=0)


def test_streaming_validates_tail_fraction():
    from repro.sim.stability import assess_stability_streaming

    with pytest.raises(ConfigurationError, match="tail_fraction"):
        assess_stability_streaming(
            _streaming_series([10] * 50), tail_fraction=1.5
        )


def test_windowed_min_frames_checked_beyond_window():
    # window < min_frames <= n: the delegation to assess_stability is
    # skipped, and the batch recompute used to return a verdict the
    # streaming assessor refuses for the same series. Both paths must
    # raise identically or the bit-parity contract is broken.
    from repro.sim.stability import (
        assess_stability_streaming,
        assess_stability_windowed,
    )

    values = [10] * 15  # n=15 > window=8, but < min_frames=20
    with pytest.raises(StabilityError, match="at least 20 frames"):
        assess_stability_windowed(values, window=8, head_frames=2)
    with pytest.raises(StabilityError, match="at least 20 frames"):
        assess_stability_streaming(
            _streaming_series(values, window=8, head_frames=2)
        )


def test_one_frame_tail_refused_not_vacuously_stable():
    # A violently growing series whose tail slice is a single frame:
    # the one-point least-squares fit has slope 0.0 by construction,
    # so the old code passed the drift check vacuously.
    series = [float(30 * k) for k in range(20)]
    with pytest.raises(StabilityError, match="tail frames"):
        assess_stability(series, tail_fraction=0.05)


def test_windowed_tail_clamp_keeps_two_frames_and_parity():
    # Beyond the window with a tiny tail_fraction the tail target is a
    # single frame; the clamp must hand the fit two frames (not one),
    # identically in the batch recompute and the streaming path.
    from repro.sim.stability import (
        assess_stability_streaming,
        assess_stability_windowed,
    )

    values = [float(5 * k) for k in range(200)]
    batch = assess_stability_windowed(
        values, window=64, head_frames=16,
        tail_fraction=0.004, load_per_frame=1.0,
    )
    assert not batch.stable  # a 2-frame tail of linear growth drifts
    stream = assess_stability_streaming(
        _streaming_series(values, window=64, head_frames=16),
        tail_fraction=0.004, load_per_frame=1.0,
    )
    assert repr(stream) == repr(batch)
