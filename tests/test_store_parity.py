"""Store-path vs object-path protocol parity.

One layer above ``test_kernel_parity.py``: the struct-of-arrays packet
layer (:class:`~repro.injection.store.PacketStore` + the store-mode
:class:`~repro.core.protocol.DynamicProtocol`) must replay the
object-per-packet path bit-for-bit. Every run here is executed twice
from one seed — once with ``run_frame`` fed ``Packet`` views (object
mode) and once fed store index arrays (store mode) — and the two
:class:`~repro.core.protocol.FrameReport` streams, delivery records,
failed-buffer layouts, and potential series must be identical, across
scheduler × model pairs, both injection models, the shifted wrapper,
and the tracer event stream.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.frames import FrameParameters
from repro.interference.builders import node_constraint_conflicts
from repro.interference.conflict import ConflictGraphModel
from repro.interference.matrix_model import AffectanceThresholdModel
from repro.interference.packet_routing import PacketRoutingModel
from repro.network.topology import grid_network, random_sinr_network
from repro.sinr.weights import linear_power_model


def _random_weights(m: int, seed: int, scale: float = 0.3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    matrix = rng.random((m, m)) * scale
    np.fill_diagonal(matrix, 1.0)
    return matrix


def _grid_routing_model():
    net = grid_network(3, 3)
    return PacketRoutingModel(net)


def _grid_conflict_model():
    net = grid_network(3, 3)
    return ConflictGraphModel(net, node_constraint_conflicts(net))


def _grid_affectance_model():
    net = grid_network(3, 3)
    return AffectanceThresholdModel(
        net, _random_weights(net.num_links, seed=7)
    )


def _sinr_model():
    net = random_sinr_network(10, rng=5)
    return linear_power_model(net, alpha=3.0, beta=1.0, noise=0.02)


MODEL_FACTORIES = {
    "packet-routing": _grid_routing_model,
    "conflict": _grid_conflict_model,
    "affectance": _grid_affectance_model,
    "sinr": _sinr_model,
}

SCHEDULER_FACTORIES = {
    "kv": lambda: repro.KvScheduler(),
    "decay": lambda: repro.DecayScheduler(),
    "single-hop": lambda: repro.SingleHopScheduler(),
    "hm": lambda: repro.HmScheduler(),
}


def _params(m: int) -> FrameParameters:
    # Deliberately tight phase-1 budget: overload failures feed the
    # clean-up lottery, so both buffer paths (plain appends and the
    # clean-up refile) execute.
    return FrameParameters(
        frame_length=60,
        phase1_budget=8,
        cleanup_budget=12,
        measure_budget=8.0,
        epsilon=0.5,
        rate=0.2,
        f_m=1.0,
        m=m,
    )


def _run(
    store_mode: bool,
    model_factory,
    scheduler_factory,
    frames: int = 25,
    seed: int = 3,
    tracer=None,
):
    model = model_factory()
    routing = repro.build_routing_table(model.network)
    injection = repro.uniform_pair_injection(
        routing, model, 0.25, num_generators=5, rng=seed + 1000
    )
    protocol = repro.DynamicProtocol(
        model,
        scheduler_factory(),
        0.2,
        params=_params(model.network.size_m),
        cleanup_probability=0.5,
        rng=seed,
        tracer=tracer,
        store=injection.store if store_mode else None,
    )
    frame_length = protocol.frame_length
    reports = []
    for frame in range(frames):
        start = frame * frame_length
        if store_mode:
            batch = injection.indices_for_range(start, start + frame_length)
        else:
            batch = injection.packets_for_range(start, start + frame_length)
        reports.append(protocol.run_frame(batch))
    return reports, protocol


def _assert_same_outcome(object_run, store_run):
    object_reports, object_protocol = object_run
    store_reports, store_protocol = store_run
    assert object_reports == store_reports
    assert (
        [p.id for p in object_protocol.delivered]
        == [p.id for p in store_protocol.delivered]
    )
    assert (
        [p.delivered_at for p in object_protocol.delivered]
        == [p.delivered_at for p in store_protocol.delivered]
    )
    assert (
        object_protocol.failed_buffer_sizes()
        == store_protocol.failed_buffer_sizes()
    )
    assert object_protocol.potential.series == store_protocol.potential.series
    assert (
        object_protocol.potential.total_failures
        == store_protocol.potential.total_failures
    )
    assert (
        object_protocol.potential.total_cleanup_hops
        == store_protocol.potential.total_cleanup_hops
    )


@pytest.mark.parametrize("model_name", sorted(MODEL_FACTORIES))
@pytest.mark.parametrize("sched_name", sorted(SCHEDULER_FACTORIES))
def test_frame_report_parity(sched_name, model_name):
    model_factory = MODEL_FACTORIES[model_name]
    scheduler_factory = SCHEDULER_FACTORIES[sched_name]
    object_run = _run(False, model_factory, scheduler_factory)
    store_run = _run(True, model_factory, scheduler_factory)
    _assert_same_outcome(object_run, store_run)


def test_tracer_stream_parity():
    """Per-packet event streams must also match, event for event."""
    object_tracer = repro.Tracer()
    store_tracer = repro.Tracer()
    _run(
        False,
        _grid_routing_model,
        SCHEDULER_FACTORIES["single-hop"],
        tracer=object_tracer,
    )
    _run(
        True,
        _grid_routing_model,
        SCHEDULER_FACTORIES["single-hop"],
        tracer=store_tracer,
    )
    assert len(object_tracer) == len(store_tracer)
    assert object_tracer.to_dicts() == store_tracer.to_dicts()


def test_store_mode_accepts_views_and_index_lists():
    """run_frame coerces views / plain int lists in store mode."""
    model = _grid_routing_model()
    routing = repro.build_routing_table(model.network)
    injection = repro.uniform_pair_injection(
        routing, model, 0.25, num_generators=5, rng=11
    )
    protocols = [
        repro.DynamicProtocol(
            model,
            repro.SingleHopScheduler(),
            0.2,
            params=_params(model.network.size_m),
            rng=4,
            store=injection.store,
        )
        for _ in range(3)
    ]
    frame_length = protocols[0].frame_length
    batch = injection.indices_for_range(0, frame_length)
    reports = [
        protocols[0].run_frame(batch),
        protocols[1].run_frame(batch.tolist()),
        protocols[2].run_frame(injection.store.views(batch)),
    ]
    assert reports[0] == reports[1] == reports[2]


def test_shifted_protocol_store_parity():
    net = grid_network(3, 3)

    def run(store_mode: bool):
        model = PacketRoutingModel(net)
        routing = repro.build_routing_table(net)
        paths = [routing.path(s, d) for s, d in routing.pairs() if s == 0]
        adversary = repro.BurstyAdversary(
            model, paths, window=120, rate=0.2, rng=5
        )
        protocol = repro.ShiftedDynamicProtocol(
            model,
            repro.SingleHopScheduler(),
            0.2,
            window=120,
            params=_params(net.size_m),
            rng=4,
            store=adversary.store if store_mode else None,
        )
        simulation = repro.FrameSimulation(protocol, adversary)
        simulation.run(50)
        return (
            tuple(simulation.metrics.queue_series),
            protocol.inner.potential.total_failures,
            [p.id for p in protocol.delivered],
            protocol.held_count,
        )

    assert run(False) == run(True)


def test_markov_injection_store_parity():
    net = grid_network(3, 3)

    def run(store_mode: bool):
        model = PacketRoutingModel(net)
        routing = repro.build_routing_table(net)
        paths = [routing.path(s, d) for s, d in routing.pairs()[:8]]
        generators = [
            repro.PathGenerator([(path, 0.25)]) for path in paths[:4]
        ]
        injection = repro.MarkovModulatedInjection(
            generators, 0.3, 0.3, rng=21
        )
        protocol = repro.DynamicProtocol(
            model,
            repro.SingleHopScheduler(),
            0.2,
            params=_params(net.size_m),
            cleanup_probability=0.5,
            rng=8,
            store=injection.store if store_mode else None,
        )
        simulation = repro.FrameSimulation(protocol, injection)
        simulation.run(40)
        return (
            tuple(simulation.metrics.queue_series),
            tuple(simulation.metrics.delivered_series),
            [p.id for p in protocol.delivered],
            protocol.potential.series,
        )

    assert run(False) == run(True)


def test_legacy_packets_for_slot_subclass_still_works():
    """Object-mode subclasses overriding only packets_for_slot keep the
    old fallback chain (packets_for_range iterates slots) and drive the
    engine in object mode."""
    from repro.injection.base import InjectionProcess
    from repro.injection.packet import Packet

    class Legacy(InjectionProcess):
        def packets_for_slot(self, slot):
            if slot % 7:
                return []
            return [Packet(id=slot, path=(0, 1), injected_at=slot)]

    legacy = Legacy()
    batch = legacy.packets_for_range(0, 15)
    assert [p.id for p in batch] == [0, 7, 14]
    assert all(isinstance(p, Packet) for p in batch)

    model = _grid_routing_model()
    protocol = repro.DynamicProtocol(
        model,
        repro.SingleHopScheduler(),
        0.2,
        params=_params(model.network.size_m),
        rng=4,
    )
    simulation = repro.FrameSimulation(protocol, Legacy())
    simulation.run(5)
    assert simulation.metrics.injected_total == len(
        [s for s in range(5 * protocol.frame_length) if s % 7 == 0]
    )


def test_store_mode_rejects_foreign_packets():
    """Views from another store, or out-of-store indices, fail loudly
    instead of being reinterpreted against the protocol's arrays."""
    from repro.errors import SchedulingError

    model = _grid_routing_model()
    own_store = repro.PacketStore()
    protocol = repro.DynamicProtocol(
        model,
        repro.SingleHopScheduler(),
        0.2,
        params=_params(model.network.size_m),
        rng=4,
        store=own_store,
    )
    foreign = repro.PacketStore()
    foreign.allocate((0, 1), 0)
    with pytest.raises(SchedulingError, match="different"):
        protocol.run_frame(foreign.views([0]))
    with pytest.raises(SchedulingError, match="outside"):
        protocol.run_frame([3])  # own_store is empty


def test_injection_subclass_without_emission_hook_fails_at_construction():
    from repro.injection.base import InjectionProcess

    class Hollow(InjectionProcess):
        pass

    with pytest.raises(TypeError, match="indices_for_slot"):
        Hollow()


def test_engine_auto_detects_shared_store():
    """FrameSimulation must feed indices exactly when the stores match."""
    model = _grid_routing_model()
    routing = repro.build_routing_table(model.network)
    injection = repro.uniform_pair_injection(
        routing, model, 0.25, num_generators=5, rng=11
    )
    store_protocol = repro.DynamicProtocol(
        model,
        repro.SingleHopScheduler(),
        0.2,
        params=_params(model.network.size_m),
        rng=4,
        store=injection.store,
    )
    object_protocol = repro.DynamicProtocol(
        model,
        repro.SingleHopScheduler(),
        0.2,
        params=_params(model.network.size_m),
        rng=4,
    )
    assert repro.FrameSimulation(store_protocol, injection)._use_indices
    assert not repro.FrameSimulation(object_protocol, injection)._use_indices

    # A store-mode protocol with a non-matching injection store is a
    # configuration error, caught at construction rather than mid-run.
    from repro.errors import ConfigurationError

    mismatched = repro.DynamicProtocol(
        model,
        repro.SingleHopScheduler(),
        0.2,
        params=_params(model.network.size_m),
        rng=4,
        store=repro.PacketStore(),
    )
    with pytest.raises(ConfigurationError, match="share"):
        repro.FrameSimulation(mismatched, injection)


def test_new_packet_helper_returns_packet_view():
    """The legacy _new_packet helper keeps the Packet surface."""
    from repro.injection.base import InjectionProcess

    class Legacy(InjectionProcess):
        def packets_for_slot(self, slot):
            return [self._new_packet((0, 1), slot)]

    legacy = Legacy()
    (packet,) = legacy.packets_for_slot(3)
    assert packet.id == 0
    assert packet.path == (0, 1)
    assert packet.injected_at == 3
    assert packet.current_link == 0
    assert not packet.advance(10)
    assert packet.advance(11)
    assert packet.latency() == 8
