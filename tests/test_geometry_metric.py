"""Metric spaces: Euclidean, explicit, doubling dimension."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.metric import (
    EuclideanMetric,
    FiniteMetric,
    estimate_doubling_dimension,
)
from repro.geometry.point import Point


def unit_square_metric():
    return EuclideanMetric(
        [Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1)]
    )


def test_euclidean_distances():
    metric = unit_square_metric()
    assert metric.distance(0, 1) == 1.0
    assert metric.distance(0, 3) == pytest.approx(math.sqrt(2))


def test_euclidean_pairwise_symmetric_zero_diagonal():
    pairwise = unit_square_metric().pairwise()
    assert np.allclose(pairwise, pairwise.T)
    assert np.allclose(np.diag(pairwise), 0.0)


def test_euclidean_pairwise_matches_pointwise():
    metric = unit_square_metric()
    pairwise = metric.pairwise()
    for i in range(metric.size):
        for j in range(metric.size):
            assert pairwise[i, j] == pytest.approx(metric.distance(i, j))


def test_euclidean_requires_points():
    with pytest.raises(ConfigurationError):
        EuclideanMetric([])


def test_ball_inclusive():
    metric = unit_square_metric()
    assert metric.ball(0, 1.0) == [0, 1, 2]
    assert metric.ball(0, 1.5) == [0, 1, 2, 3]
    assert metric.ball(0, 0.0) == [0]


def test_finite_metric_accepts_valid():
    matrix = np.array([[0, 1, 2], [1, 0, 1], [2, 1, 0]], dtype=float)
    metric = FiniteMetric(matrix)
    assert metric.size == 3
    assert metric.distance(0, 2) == 2.0


def test_finite_metric_rejects_asymmetry():
    bad = np.array([[0, 1], [2, 0]], dtype=float)
    with pytest.raises(ConfigurationError, match="symmetric"):
        FiniteMetric(bad)


def test_finite_metric_rejects_nonzero_diagonal():
    bad = np.array([[1, 1], [1, 0]], dtype=float)
    with pytest.raises(ConfigurationError, match="diagonal"):
        FiniteMetric(bad)


def test_finite_metric_rejects_triangle_violation():
    bad = np.array(
        [[0, 1, 10], [1, 0, 1], [10, 1, 0]], dtype=float
    )
    with pytest.raises(ConfigurationError, match="triangle"):
        FiniteMetric(bad)


def test_finite_metric_rejects_negative():
    bad = np.array([[0, -1], [-1, 0]], dtype=float)
    with pytest.raises(ConfigurationError, match="non-negative"):
        FiniteMetric(bad)


def test_finite_metric_rejects_nonsquare():
    with pytest.raises(ConfigurationError, match="square"):
        FiniteMetric(np.zeros((2, 3)))


def test_finite_metric_skip_validation():
    # validate=False lets intentionally non-metric matrices through
    # (documented escape hatch for adversarial-geometry experiments).
    bad = np.array([[0, 1, 10], [1, 0, 1], [10, 1, 0]], dtype=float)
    metric = FiniteMetric(bad, validate=False)
    assert metric.distance(0, 2) == 10.0


def test_doubling_dimension_of_line_is_small():
    points = [Point(float(i), 0.0) for i in range(16)]
    dim = estimate_doubling_dimension(EuclideanMetric(points))
    assert 0.5 <= dim <= 3.0  # a line has doubling dimension 1


def test_doubling_dimension_singleton_zero():
    assert estimate_doubling_dimension(EuclideanMetric([Point(0, 0)])) == 0.0


def test_doubling_dimension_grid_close_to_two(rng):
    points = [Point(float(i), float(j)) for i in range(5) for j in range(5)]
    dim = estimate_doubling_dimension(EuclideanMetric(points))
    assert 1.0 <= dim <= 4.0  # the plane has doubling dimension 2
