"""The Tassiulas-Ephremides max-weight comparator."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.interference.mac import MultipleAccessChannel
from repro.network.topology import mac_network
from repro.staticsched.base import LinkQueues
from repro.staticsched.decay import DecayScheduler
from repro.staticsched.max_weight import MaxWeightScheduler


def test_exact_limit_validation():
    with pytest.raises(SchedulingError):
        MaxWeightScheduler(exact_limit=0)


def test_mac_picks_longest_queue(mac_model):
    scheduler = MaxWeightScheduler()
    queues = LinkQueues([0, 2, 2, 2, 4], num_links=mac_model.num_links)
    chosen = scheduler.best_feasible_set(mac_model, queues)
    # Only singletons are feasible on the MAC; the heaviest queue wins.
    assert chosen == [2]


def test_exact_search_beats_greedy_when_greedy_traps():
    """A case where greedy-by-weight picks a blocking link."""
    from repro.interference.conflict import ConflictGraphModel
    from repro.network.network import Network

    net = Network(4, [(0, 1), (1, 2), (2, 3)])
    # Link 1 conflicts with both 0 and 2; 0 and 2 are independent.
    model = ConflictGraphModel(net, {1: {0, 2}})
    scheduler = MaxWeightScheduler()
    # Weights: link 1 has 3 packets; links 0 and 2 have 2 each.
    queues = LinkQueues([1, 1, 1, 0, 0, 2, 2], num_links=3)
    chosen = scheduler.best_feasible_set(model, queues)
    # Exact search must find {0, 2} (weight 4) over {1} (weight 3).
    assert sorted(chosen) == [0, 2]


def test_greedy_fallback_beyond_limit(sinr_model):
    scheduler = MaxWeightScheduler(exact_limit=2)
    requests = list(np.random.default_rng(0).integers(
        0, sinr_model.num_links, size=30
    ))
    queues = LinkQueues(requests, sinr_model.num_links)
    chosen = scheduler.best_feasible_set(sinr_model, queues)
    assert chosen
    assert sinr_model.feasible_set(chosen)


def test_run_conserves_and_delivers(mac_model):
    scheduler = MaxWeightScheduler()
    requests = [0, 1, 2, 3, 4, 0, 1]
    result = scheduler.run(mac_model, requests, 100, rng=0)
    assert result.all_delivered
    # MAC serves exactly one per slot: optimal length = n.
    assert result.slots_used == len(requests)


def test_run_respects_budget(mac_model):
    scheduler = MaxWeightScheduler()
    result = scheduler.run(mac_model, [0, 1, 2], 2, rng=0)
    assert len(result.delivered) == 2
    assert len(result.remaining) == 1


def test_max_weight_at_least_as_good_as_decay(sinr_model):
    requests = list(np.random.default_rng(3).integers(
        0, sinr_model.num_links, size=40
    ))
    measure = sinr_model.interference_measure(requests)
    budget = DecayScheduler().budget_for(measure, len(requests))
    mw = MaxWeightScheduler(exact_limit=8).run(
        sinr_model, requests, budget, rng=1
    )
    decay = DecayScheduler().run(sinr_model, requests, budget, rng=1)
    assert mw.all_delivered
    assert mw.slots_used <= decay.slots_used


def test_network_bound_exists():
    bound = MaxWeightScheduler().network_bound(10)
    assert bound.f(10) == 2.0
