"""Injection-rate arithmetic."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.injection.rates import (
    injection_rate_of_distribution,
    paths_mean_usage,
    scale_to_rate,
)


def test_rate_of_distribution(mac_model):
    usage = np.array([0.1, 0.2, 0.0, 0.0, 0.0])
    # MAC: W all ones -> rate = sum of usage.
    assert injection_rate_of_distribution(mac_model, usage) == pytest.approx(0.3)


def test_scale_to_rate_exact(mac_model):
    usage = np.array([0.1, 0.1, 0.0, 0.0, 0.0])
    scaled, factor = scale_to_rate(mac_model, usage, 0.5)
    assert injection_rate_of_distribution(mac_model, scaled) == pytest.approx(0.5)
    assert factor == pytest.approx(2.5)


def test_scale_to_rate_rejects_zero_usage(mac_model):
    with pytest.raises(ConfigurationError):
        scale_to_rate(mac_model, np.zeros(5), 0.5)
    with pytest.raises(ConfigurationError):
        scale_to_rate(mac_model, np.ones(5), -1.0)


def test_paths_mean_usage_uniform():
    usage = paths_mean_usage(4, [(0, 1), (1, 2)])
    assert usage.tolist() == [0.5, 1.0, 0.5, 0.0]
    assert paths_mean_usage(3, []).tolist() == [0.0, 0.0, 0.0]
