"""Tests for the event-tracing subsystem and its protocol integration."""

from __future__ import annotations

import pytest

from repro.core.adversarial import ShiftedDynamicProtocol
from repro.core.frames import FrameParameters
from repro.core.protocol import DynamicProtocol
from repro.errors import ConfigurationError
from repro.injection.packet import Packet
from repro.interference.packet_routing import PacketRoutingModel
from repro.network.topology import line_network
from repro.sim.trace import (
    EventKind,
    TraceEvent,
    Tracer,
    format_journey,
    packet_journey,
)
from repro.staticsched.single_hop import SingleHopScheduler


def make_event(frame=0, kind=EventKind.FAILED, packet_id=0, link=None):
    return TraceEvent(frame, kind, packet_id, link)


class TestTracerBasics:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            Tracer(capacity=0)

    def test_record_and_len(self):
        tracer = Tracer()
        tracer.record(0, EventKind.ACTIVATED, 1, 0)
        tracer.record(1, EventKind.DELIVERED, 1, 0)
        assert len(tracer) == 2
        assert tracer.recorded_total == 2
        assert tracer.dropped == 0

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for frame in range(5):
            tracer.record(frame, EventKind.FAILED, frame, 0)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        frames = [event.frame for event in tracer.events()]
        assert frames == [2, 3, 4]

    def test_unbounded_capacity(self):
        tracer = Tracer(capacity=None)
        for frame in range(1000):
            tracer.record(frame, EventKind.FAILED, 0, 0)
        assert len(tracer) == 1000
        assert tracer.dropped == 0


class TestQueries:
    @pytest.fixture()
    def tracer(self):
        tracer = Tracer()
        tracer.record(0, EventKind.ACTIVATED, 1, 0)
        tracer.record(0, EventKind.ACTIVATED, 2, 1)
        tracer.record(1, EventKind.PHASE1_HOP, 1, 0)
        tracer.record(1, EventKind.FAILED, 2, 1)
        tracer.record(2, EventKind.CLEANUP_HOP, 2, 1)
        tracer.record(2, EventKind.DELIVERED, 2, 1)
        return tracer

    def test_filter_by_kind(self, tracer):
        failed = tracer.events(kind=EventKind.FAILED)
        assert len(failed) == 1
        assert failed[0].packet_id == 2

    def test_filter_by_packet(self, tracer):
        events = tracer.events(packet_id=1)
        assert [event.kind for event in events] == [
            EventKind.ACTIVATED,
            EventKind.PHASE1_HOP,
        ]

    def test_filter_by_frame_range(self, tracer):
        events = tracer.events(frame_range=(1, 2))
        assert all(event.frame == 1 for event in events)
        assert len(events) == 2

    def test_filters_compose(self, tracer):
        events = tracer.events(kind=EventKind.ACTIVATED, frame_range=(0, 1))
        assert len(events) == 2

    def test_bad_frame_range(self, tracer):
        with pytest.raises(ConfigurationError):
            tracer.events(frame_range=(5, 2))

    def test_counts(self, tracer):
        counts = tracer.counts()
        assert counts[EventKind.ACTIVATED] == 2
        assert counts[EventKind.DELIVERED] == 1
        assert EventKind.HELD not in counts

    def test_failure_hotspots(self, tracer):
        tracer.record(3, EventKind.FAILED, 7, 1)
        tracer.record(3, EventKind.FAILED, 8, 0)
        hotspots = tracer.failure_hotspots(top=2)
        assert hotspots[0] == (1, 2)

    def test_failure_hotspots_validates_top(self, tracer):
        with pytest.raises(ConfigurationError):
            tracer.failure_hotspots(top=0)

    def test_to_dicts(self, tracer):
        dicts = tracer.to_dicts()
        assert dicts[0] == {
            "frame": 0,
            "kind": "activated",
            "packet_id": 1,
            "link": 0,
        }

    def test_journey_and_format(self, tracer):
        journey = packet_journey(tracer, 2)
        assert [event.kind for event in journey] == [
            EventKind.ACTIVATED,
            EventKind.FAILED,
            EventKind.CLEANUP_HOP,
            EventKind.DELIVERED,
        ]
        text = format_journey(tracer, 2)
        assert "packet 2 failed on link 1" in text
        assert text.count("\n") == 3

    def test_journey_of_unknown_packet_is_empty(self, tracer):
        assert packet_journey(tracer, 99) == []
        assert format_journey(tracer, 99) == ""


class TestEventDescribe:
    def test_with_link(self):
        event = make_event(frame=3, kind=EventKind.FAILED, packet_id=9, link=2)
        assert event.describe() == "frame     3: packet 9 failed on link 2"

    def test_without_link(self):
        event = make_event(frame=1, kind=EventKind.HELD, packet_id=4)
        assert "held" in event.describe()
        assert "link" not in event.describe()


def tight_params(m, frame_length=10, phase1=6, cleanup=3):
    return FrameParameters(
        frame_length=frame_length,
        phase1_budget=phase1,
        cleanup_budget=cleanup,
        measure_budget=1.0,
        epsilon=0.5,
        rate=0.1,
        f_m=1.0,
        m=m,
    )


class TestProtocolIntegration:
    def test_untraced_protocol_has_no_tracer_cost(self):
        net = line_network(4)
        protocol = DynamicProtocol(
            PacketRoutingModel(net),
            SingleHopScheduler(),
            rate=0.1,
            params=tight_params(net.size_m),
            rng=0,
        )
        protocol.run_frame([Packet(id=0, path=(0,), injected_at=0)])
        protocol.run_frame([])  # no tracer: nothing to assert, must not crash

    def test_full_lifecycle_events(self):
        net = line_network(4)
        tracer = Tracer()
        protocol = DynamicProtocol(
            PacketRoutingModel(net),
            SingleHopScheduler(),
            rate=0.1,
            params=tight_params(net.size_m, phase1=6),
            rng=0,
            tracer=tracer,
        )
        protocol.run_frame([Packet(id=0, path=(0, 1), injected_at=0)])
        protocol.run_frame([])
        protocol.run_frame([])
        journey = packet_journey(tracer, 0)
        kinds = [event.kind for event in journey]
        assert kinds == [
            EventKind.ACTIVATED,
            EventKind.PHASE1_HOP,
            EventKind.PHASE1_HOP,
            EventKind.DELIVERED,
        ]
        # The two hops are on consecutive links of the path.
        assert journey[1].link == 0
        assert journey[2].link == 1

    def test_failure_and_cleanup_events(self):
        net = line_network(4)
        tracer = Tracer()
        protocol = DynamicProtocol(
            PacketRoutingModel(net),
            SingleHopScheduler(),
            rate=0.1,
            params=tight_params(net.size_m, phase1=0, cleanup=6),
            cleanup_probability=1.0,
            rng=0,
            tracer=tracer,
        )
        protocol.run_frame([Packet(id=0, path=(0,), injected_at=0)])
        protocol.run_frame([])
        kinds = [event.kind for event in packet_journey(tracer, 0)]
        assert kinds == [
            EventKind.ACTIVATED,
            EventKind.FAILED,
            EventKind.CLEANUP_OFFERED,
            EventKind.CLEANUP_HOP,
            EventKind.DELIVERED,
        ]

    def test_shifted_protocol_emits_held_released(self):
        net = line_network(4)
        tracer = Tracer()
        protocol = ShiftedDynamicProtocol(
            PacketRoutingModel(net),
            SingleHopScheduler(),
            rate=0.05,
            window=20,
            t_scale=0.01,
            rng=3,
            tracer=tracer,
        )
        for frame in range(protocol.delta_max + 5):
            injected = (
                [Packet(id=0, path=(0,), injected_at=0)] if frame == 0 else []
            )
            protocol.run_frame(injected)
        kinds = [event.kind for event in packet_journey(tracer, 0)]
        assert EventKind.RELEASED in kinds
        # The packet either waited (HELD first) or released immediately.
        assert kinds.index(EventKind.RELEASED) <= 1
        assert kinds[-1] == EventKind.DELIVERED

    def test_counts_track_delivery_totals(self):
        net = line_network(4)
        tracer = Tracer()
        protocol = DynamicProtocol(
            PacketRoutingModel(net),
            SingleHopScheduler(),
            rate=0.1,
            params=tight_params(net.size_m, frame_length=12, phase1=8),
            rng=0,
            tracer=tracer,
        )
        packets = [
            Packet(id=i, path=(i % 3,), injected_at=0) for i in range(6)
        ]
        protocol.run_frame(packets)
        protocol.run_frame([])
        counts = tracer.counts()
        assert counts[EventKind.ACTIVATED] == 6
        assert counts[EventKind.DELIVERED] == len(protocol.delivered) == 6
