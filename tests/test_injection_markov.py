"""Tests for the Markov-modulated and Poisson-batch injection extensions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InjectionError
from repro.injection.markov import (
    MarkovModulatedInjection,
    PoissonBatchInjection,
    empirical_usage,
)
from repro.injection.stochastic import PathGenerator


def two_generators():
    return [
        PathGenerator([((0,), 0.4), ((0, 1), 0.3)]),
        PathGenerator([((1,), 0.5)]),
    ]


class TestMarkovModulatedConstruction:
    def test_requires_generators(self):
        with pytest.raises(InjectionError):
            MarkovModulatedInjection([], 0.5, 0.5, rng=0)

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_rejects_bad_p_on_off(self, bad):
        with pytest.raises(ConfigurationError):
            MarkovModulatedInjection(two_generators(), bad, 0.5, rng=0)

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_rejects_bad_p_off_on(self, bad):
        with pytest.raises(ConfigurationError):
            MarkovModulatedInjection(two_generators(), 0.5, bad, rng=0)

    def test_stationary_probability(self):
        process = MarkovModulatedInjection(two_generators(), 0.25, 0.75, rng=0)
        assert process.stationary_on_probability == pytest.approx(0.75)

    def test_mean_burst_length(self):
        process = MarkovModulatedInjection(two_generators(), 0.1, 0.5, rng=0)
        assert process.mean_burst_length == pytest.approx(10.0)


class TestMarkovModulatedBehaviour:
    def test_mean_usage_scales_by_stationary_on(self):
        generators = two_generators()
        process = MarkovModulatedInjection(generators, 0.5, 0.5, rng=0)
        always_on = sum(g.mean_usage(2) for g in generators)
        np.testing.assert_allclose(process.mean_usage(2), 0.5 * always_on)

    def test_slots_must_be_queried_in_order(self):
        process = MarkovModulatedInjection(two_generators(), 0.5, 0.5, rng=0)
        process.packets_for_slot(0)
        with pytest.raises(InjectionError):
            process.packets_for_slot(5)

    def test_deterministic_under_seed(self):
        runs = []
        for _ in range(2):
            process = MarkovModulatedInjection(two_generators(), 0.3, 0.3, rng=11)
            runs.append(
                [
                    tuple(p.path)
                    for slot in range(50)
                    for p in process.packets_for_slot(slot)
                ]
            )
        assert runs[0] == runs[1]

    def test_empirical_usage_matches_stationary_mean(self):
        generators = two_generators()
        process = MarkovModulatedInjection(generators, 0.4, 0.4, rng=3)
        measured = empirical_usage(process, 2, horizon=20000)
        expected = MarkovModulatedInjection(
            generators, 0.4, 0.4, rng=3
        ).mean_usage(2)
        np.testing.assert_allclose(measured, expected, atol=0.05)

    def test_injection_rate_uses_model_norm(self, mac_model):
        generators = [PathGenerator([((0,), 0.2)]), PathGenerator([((1,), 0.2)])]
        process = MarkovModulatedInjection(generators, 0.5, 0.5, rng=0)
        # MAC: W is all-ones, so lambda = total mean usage = 0.5 * 0.4.
        assert process.injection_rate(mac_model) == pytest.approx(0.2)

    def test_burstiness_shows_in_autocovariance(self):
        """Long ON bursts: arrivals in adjacent slots correlate positively."""
        generators = [PathGenerator([((0,), 1.0)])]
        process = MarkovModulatedInjection(generators, 0.02, 0.02, rng=5)
        counts = np.array(
            [len(process.packets_for_slot(t)) for t in range(20000)], dtype=float
        )
        centred = counts - counts.mean()
        autocov = float(np.mean(centred[:-1] * centred[1:]))
        assert autocov > 0.1

    def test_iid_limit_has_no_autocovariance(self):
        """p_on_off = p_off_on = 1 flips every slot: near-zero correlation."""
        generators = [PathGenerator([((0,), 1.0)])]
        process = MarkovModulatedInjection(generators, 1.0, 1.0, rng=5)
        counts = np.array(
            [len(process.packets_for_slot(t)) for t in range(20000)], dtype=float
        )
        centred = counts - counts.mean()
        autocov = float(np.mean(centred[:-1] * centred[1:]))
        # Deterministic alternation gives *negative* correlation; the
        # point is only that there is no bursty positive clustering.
        assert autocov < 0.05

    def test_at_most_one_packet_per_generator_per_slot(self):
        process = MarkovModulatedInjection(two_generators(), 0.5, 0.5, rng=9)
        for slot in range(500):
            packets = process.packets_for_slot(slot)
            assert len(packets) <= 2


class TestPoissonBatchConstruction:
    def test_rejects_negative_mean(self):
        with pytest.raises(ConfigurationError):
            PoissonBatchInjection([((0,), 1.0)], -1.0, rng=0)

    def test_rejects_non_normalised_distribution(self):
        with pytest.raises(InjectionError):
            PoissonBatchInjection([((0,), 0.4)], 1.0, rng=0)

    def test_rejects_negative_probability(self):
        with pytest.raises(InjectionError):
            PoissonBatchInjection([((0,), 1.5), ((1,), -0.5)], 1.0, rng=0)

    def test_rejects_empty_path(self):
        with pytest.raises(InjectionError):
            PoissonBatchInjection([((), 1.0)], 1.0, rng=0)

    def test_empty_distribution_injects_nothing(self):
        process = PoissonBatchInjection([], 0.0, rng=0)
        assert process.packets_for_slot(0) == []


class TestPoissonBatchBehaviour:
    def test_mean_usage(self):
        process = PoissonBatchInjection(
            [((0,), 0.5), ((0, 1), 0.5)], batch_mean=2.0, rng=0
        )
        np.testing.assert_allclose(process.mean_usage(2), [2.0, 1.0])

    def test_zero_mean_injects_nothing(self):
        process = PoissonBatchInjection([((0,), 1.0)], 0.0, rng=0)
        assert all(process.packets_for_slot(t) == [] for t in range(20))

    def test_batches_can_exceed_one(self):
        process = PoissonBatchInjection([((0,), 1.0)], batch_mean=4.0, rng=1)
        sizes = [len(process.packets_for_slot(t)) for t in range(200)]
        assert max(sizes) > 1

    def test_empirical_usage_matches_mean(self):
        distribution = [((0,), 0.25), ((1,), 0.75)]
        process = PoissonBatchInjection(distribution, batch_mean=1.5, rng=2)
        measured = empirical_usage(process, 2, horizon=20000)
        expected = PoissonBatchInjection(
            distribution, batch_mean=1.5, rng=2
        ).mean_usage(2)
        np.testing.assert_allclose(measured, expected, rtol=0.1)

    def test_deterministic_under_seed(self):
        runs = []
        for _ in range(2):
            process = PoissonBatchInjection([((0,), 1.0)], 1.0, rng=13)
            runs.append(
                [len(process.packets_for_slot(t)) for t in range(100)]
            )
        assert runs[0] == runs[1]

    def test_paths_drawn_from_distribution(self):
        process = PoissonBatchInjection(
            [((0,), 0.5), ((1,), 0.5)], batch_mean=1.0, rng=3
        )
        seen = set()
        for slot in range(500):
            for packet in process.packets_for_slot(slot):
                seen.add(tuple(packet.path))
        assert seen == {(0,), (1,)}


class TestEmpiricalUsage:
    def test_requires_positive_horizon(self):
        process = PoissonBatchInjection([((0,), 1.0)], 1.0, rng=0)
        with pytest.raises(ConfigurationError):
            empirical_usage(process, 1, horizon=0)

    @given(
        batch_mean=st.floats(min_value=0.1, max_value=3.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_poisson_rate_concentrates(self, batch_mean, seed):
        process = PoissonBatchInjection([((0,), 1.0)], batch_mean, rng=seed)
        measured = empirical_usage(process, 1, horizon=4000)[0]
        # 4000 iid Poisson draws: the mean is within ~5 sigma.
        sigma = np.sqrt(batch_mean / 4000)
        assert abs(measured - batch_mean) < 6 * sigma + 0.01
