"""Property-based tests for routing, frames, and the wrapper models.

Complements ``test_properties.py`` (measure/affectance/scheduler
invariants) with invariants of the routing substrate, the frame-sizing
arithmetic, and the unreliability wrappers added for the Section-9
extensions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

import repro
from repro.core.frames import compute_frame_parameters, epsilon_for_rate
from repro.errors import ConfigurationError
from repro.interference.jamming import (
    FrontLoadedPattern,
    JammedModel,
    PeriodicBurstPattern,
)
from repro.interference.packet_routing import PacketRoutingModel
from repro.interference.unreliable import UnreliableModel
from repro.network.routing import build_routing_table
from repro.network.topology import grid_network, random_sinr_network
from repro.staticsched.single_hop import SingleHopScheduler


# ----------------------------------------------------------------------
# Routing invariants
# ----------------------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=25, deadline=None)
def test_routing_paths_are_connected_and_minimal(seed):
    net = random_sinr_network(10, rng=seed)
    routing = build_routing_table(net)
    for source, destination in routing.pairs():
        path = routing.path(source, destination)
        assert len(path) >= 1
        # Links chain: each link's receiver is the next link's sender.
        first = net.link(path[0])
        assert first.sender == source
        last = net.link(path[-1])
        assert last.receiver == destination
        for a, b in zip(path, path[1:]):
            assert net.link(a).receiver == net.link(b).sender
        # BFS paths respect the global depth bound.
        assert len(path) <= net.max_path_length


@given(
    rows=st.integers(min_value=2, max_value=4),
    cols=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=15, deadline=None)
def test_grid_routing_matches_manhattan_distance(rows, cols):
    net = grid_network(rows, cols)
    routing = build_routing_table(net)
    for source, destination in routing.pairs():
        sr, sc = divmod(source, cols)
        dr, dc = divmod(destination, cols)
        manhattan = abs(sr - dr) + abs(sc - dc)
        assert len(routing.path(source, destination)) == manhattan


# ----------------------------------------------------------------------
# Frame-sizing arithmetic
# ----------------------------------------------------------------------


@given(
    rate_fraction=st.floats(min_value=0.05, max_value=0.95),
    f_m=st.floats(min_value=1.0, max_value=50.0),
)
@settings(max_examples=50, deadline=None)
def test_epsilon_for_rate_in_range(rate_fraction, f_m):
    rate = rate_fraction / f_m
    eps = epsilon_for_rate(rate, f_m)
    assert 0.0 < eps <= 0.5
    # eps is the head-room: lambda = (1 - eps)/f(m) up to the clamp.
    assert eps == pytest.approx(min(1.0 - rate * f_m, 0.5))


def test_epsilon_for_rate_rejects_overload():
    with pytest.raises(ConfigurationError):
        epsilon_for_rate(1.0, 1.0)


@given(
    m_exp=st.integers(min_value=2, max_value=8),
    rate_fraction=st.floats(min_value=0.1, max_value=0.9),
    t_scale=st.floats(min_value=1e-4, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_frame_parameters_always_fit(m_exp, rate_fraction, t_scale):
    m = 2 ** m_exp
    algorithm = SingleHopScheduler()
    rate = rate_fraction * repro.certified_rate(algorithm, m)
    params = compute_frame_parameters(algorithm, m, rate, t_scale=t_scale)
    assert params.phase1_budget + params.cleanup_budget <= params.frame_length
    assert params.phase1_budget >= 1
    assert params.measure_budget > 0
    # J = (1 + eps) * lambda * T within rounding, floored at 1.
    expected_j = max(
        1.0, (1.0 + params.epsilon) * params.rate * params.frame_length
    )
    assert params.measure_budget == pytest.approx(expected_j, rel=0.02)


# ----------------------------------------------------------------------
# Wrapper-model invariants (loss, jamming)
# ----------------------------------------------------------------------


@given(
    loss=st.floats(min_value=0.0, max_value=0.9),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_unreliable_successes_subset_of_base(loss, seed):
    net = grid_network(3, 3)
    base = PacketRoutingModel(net)
    lossy = UnreliableModel(base, loss, rng=seed)
    transmitting = [0, 3, 5, 7]
    for _ in range(5):
        thinned = lossy.successes(transmitting)
        assert thinned <= base.successes(transmitting)


@given(
    period=st.integers(min_value=1, max_value=20),
    burst=st.integers(min_value=0, max_value=20),
    slots=st.integers(min_value=1, max_value=60),
)
@settings(max_examples=40, deadline=None)
def test_jammed_successes_subset_and_fraction(period, burst, slots):
    assume(burst <= period)
    net = grid_network(3, 3)
    base = PacketRoutingModel(net)
    pattern = PeriodicBurstPattern(period, burst)
    jammed = JammedModel(base, pattern)
    transmitting = [0, 1]
    blocked = 0
    for _ in range(slots):
        winners = jammed.successes(transmitting)
        assert winners <= base.successes(transmitting)
        if not winners:
            blocked += 1
    # Over whole periods the blocked fraction equals burst/period.
    if slots % period == 0:
        assert blocked == (burst * slots) // period


@given(
    window=st.integers(min_value=2, max_value=40),
    sigma=st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=40, deadline=None)
def test_front_loaded_fraction_never_exceeds_sigma(window, sigma):
    pattern = FrontLoadedPattern(window, sigma)
    horizon = window * 10
    jammed = sum(pattern.is_jammed(t) for t in range(horizon))
    assert jammed / horizon <= sigma + 1e-12


# ----------------------------------------------------------------------
# Protocol conservation under random scenarios
# ----------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=50),
    phase1=st.integers(min_value=0, max_value=12),
)
@settings(max_examples=20, deadline=None)
def test_packet_conservation(seed, phase1):
    """injected == delivered + active + failed, always."""
    from repro.core.frames import FrameParameters
    from repro.core.protocol import DynamicProtocol

    net = grid_network(3, 3)
    model = PacketRoutingModel(net)
    params = FrameParameters(
        frame_length=30,
        phase1_budget=phase1,
        cleanup_budget=10,
        measure_budget=4.0,
        epsilon=0.5,
        rate=0.1,
        f_m=1.0,
        m=net.size_m,
    )
    protocol = DynamicProtocol(
        model,
        SingleHopScheduler(),
        rate=0.1,
        params=params,
        cleanup_probability=0.5,
        rng=seed,
    )
    routing = build_routing_table(net)
    injection = repro.uniform_pair_injection(
        routing, model, 0.1, num_generators=4, rng=seed + 500
    )
    total_injected = 0
    for frame in range(25):
        start = frame * params.frame_length
        packets = injection.packets_for_range(
            start, start + params.frame_length
        )
        total_injected += len(packets)
        protocol.run_frame(packets)
        assert (
            len(protocol.delivered) + protocol.packets_in_system
            == total_injected
        )
    # Potential equals the summed remaining hops of failed packets.
    remaining = sum(
        len(p.path) - p.hops_done
        for buffer in protocol._failed_buffers.values()
        for p in buffer
    )
    assert protocol.potential.value == remaining
