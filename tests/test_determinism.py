"""Seed determinism: every stochastic component replays exactly.

The library's reproducibility contract — all randomness flows through
seeded ``numpy`` generators, nothing touches global state — means any
(seed, configuration) pair must produce bit-identical runs. These
tests enforce that end to end for every scenario preset and for each
stochastic component in isolation, and check that *different* seeds
actually diversify outcomes.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cli.builders import build_scenario, scenario_names
from repro.core.frames import FrameParameters


def run_scenario(name, seed, frames=30, use_store=False):
    scenario = build_scenario(name, nodes=9, seed=0)
    rate = 0.4 * scenario.certified
    injection = repro.uniform_pair_injection(
        scenario.routing, scenario.model, rate, num_generators=4,
        rng=seed + 1000,
    )
    protocol = repro.DynamicProtocol(
        scenario.model, scenario.algorithm, rate, t_scale=0.001, rng=seed,
        store=injection.store if use_store else None,
    )
    simulation = repro.FrameSimulation(protocol, injection)
    simulation.run(frames)
    return simulation.metrics, protocol


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_replays_bit_identically(name):
    first_metrics, first_protocol = run_scenario(name, seed=5)
    second_metrics, second_protocol = run_scenario(name, seed=5)
    assert first_metrics.queue_series == second_metrics.queue_series
    assert first_metrics.injected_total == second_metrics.injected_total
    assert (
        [p.id for p in first_protocol.delivered]
        == [p.id for p in second_protocol.delivered]
    )
    assert (
        [p.delivered_at for p in first_protocol.delivered]
        == [p.delivered_at for p in second_protocol.delivered]
    )


@pytest.mark.parametrize("name", scenario_names())
def test_store_scenario_replays_bit_identically(name):
    """Engine-level runs through the PacketStore path replay exactly."""
    first_metrics, first_protocol = run_scenario(name, seed=5, use_store=True)
    second_metrics, second_protocol = run_scenario(
        name, seed=5, use_store=True
    )
    assert first_protocol.store is not None
    assert first_metrics.queue_series == second_metrics.queue_series
    assert first_metrics.injected_total == second_metrics.injected_total
    assert (
        [p.id for p in first_protocol.delivered]
        == [p.id for p in second_protocol.delivered]
    )
    assert (
        [p.delivered_at for p in first_protocol.delivered]
        == [p.delivered_at for p in second_protocol.delivered]
    )


@pytest.mark.parametrize("name", scenario_names())
def test_store_and_object_engine_runs_agree(name):
    """The engine's index fast path equals the object path, per scenario."""
    object_metrics, object_protocol = run_scenario(name, seed=5)
    store_metrics, store_protocol = run_scenario(name, seed=5, use_store=True)
    assert object_metrics.queue_series == store_metrics.queue_series
    assert object_metrics.delivered_series == store_metrics.delivered_series
    assert object_metrics.injected_series == store_metrics.injected_series
    assert (
        [p.id for p in object_protocol.delivered]
        == [p.id for p in store_protocol.delivered]
    )


def test_different_seeds_diversify():
    series = []
    for seed in (1, 2, 3):
        metrics, _ = run_scenario("packet-routing", seed=seed, frames=40)
        series.append(tuple(metrics.queue_series))
    assert len(set(series)) > 1


def test_stochastic_injection_replays():
    paths = [((0,), 0.3), ((1,), 0.3)]
    runs = []
    for _ in range(2):
        injection = repro.StochasticInjection(
            [repro.PathGenerator(paths)] * 3, rng=42
        )
        runs.append(
            [
                (p.id, tuple(p.path))
                for slot in range(200)
                for p in injection.packets_for_slot(slot)
            ]
        )
    assert runs[0] == runs[1]


def test_adversaries_replay():
    net = repro.grid_network(3, 3)
    model = repro.PacketRoutingModel(net)
    routing = repro.build_routing_table(net)
    paths = [routing.path(s, d) for s, d in routing.pairs()[:6]]
    for cls in (repro.SmoothAdversary, repro.BurstyAdversary,
                repro.SawtoothAdversary):
        runs = []
        for _ in range(2):
            adversary = cls(model, paths, window=50, rate=0.3, rng=9)
            runs.append(
                [
                    tuple(p.path)
                    for slot in range(300)
                    for p in adversary.packets_for_slot(slot)
                ]
            )
        assert runs[0] == runs[1], cls.__name__


def test_shifted_protocol_replays():
    net = repro.grid_network(3, 3)
    model = repro.PacketRoutingModel(net)
    params = FrameParameters(
        frame_length=100, phase1_budget=30, cleanup_budget=20,
        measure_budget=30.0, epsilon=0.5, rate=0.2, f_m=1.0, m=net.size_m,
    )
    routing = repro.build_routing_table(net)
    paths = [routing.path(s, d) for s, d in routing.pairs() if s == 0]
    outcomes = []
    for _ in range(2):
        protocol = repro.ShiftedDynamicProtocol(
            model, repro.SingleHopScheduler(), 0.2, window=200,
            params=params, rng=4,
        )
        adversary = repro.BurstyAdversary(model, paths, window=200,
                                          rate=0.2, rng=5)
        simulation = repro.FrameSimulation(protocol, adversary)
        simulation.run(80)
        outcomes.append(
            (
                tuple(simulation.metrics.queue_series),
                protocol.inner.potential.total_failures,
                len(protocol.delivered),
            )
        )
    assert outcomes[0] == outcomes[1]


def test_tracer_streams_replay():
    outcomes = []
    for _ in range(2):
        net = repro.grid_network(3, 3)
        model = repro.PacketRoutingModel(net)
        tracer = repro.Tracer()
        params = FrameParameters(
            frame_length=60, phase1_budget=4, cleanup_budget=20,
            measure_budget=6.0, epsilon=0.5, rate=0.1, f_m=1.0,
            m=net.size_m,
        )
        protocol = repro.DynamicProtocol(
            model, repro.SingleHopScheduler(), 0.1, params=params,
            cleanup_probability=0.5, rng=6, tracer=tracer,
        )
        routing = repro.build_routing_table(net)
        injection = repro.uniform_pair_injection(
            routing, model, 0.1, num_generators=6, rng=7
        )
        simulation = repro.FrameSimulation(protocol, injection)
        simulation.run(60)
        outcomes.append(tuple(tracer.to_dicts()[0].items())
                        if tracer.to_dicts() else None)
        outcomes.append(len(tracer))
    assert outcomes[0] == outcomes[2]
    assert outcomes[1] == outcomes[3]


def test_static_algorithms_replay():
    net = repro.random_sinr_network(10, rng=3)
    model = repro.linear_power_model(net, alpha=3.0, beta=1.0, noise=0.02)
    requests = [i % model.num_links for i in range(30)]
    for algorithm in (repro.DecayScheduler(), repro.KvScheduler()):
        results = []
        for _ in range(2):
            result = algorithm.run(
                model, requests, budget=400,
                rng=np.random.default_rng(11),
            )
            results.append((tuple(result.delivered), result.slots_used))
        assert results[0] == results[1], algorithm.name


def test_fading_and_unreliable_models_replay():
    net = repro.random_sinr_network(8, rng=12)
    runs = []
    for _ in range(2):
        model = repro.RayleighFadingSinrModel(
            net, alpha=3.0, beta=1.0, noise=0.01, rng=3
        )
        runs.append([tuple(sorted(model.successes([0, 1, 2])))
                     for _ in range(40)])
    assert runs[0] == runs[1]

    base = repro.PacketRoutingModel(repro.line_network(4))
    runs = []
    for _ in range(2):
        model = repro.UnreliableModel(base, 0.5, rng=8)
        runs.append([tuple(sorted(model.successes([0, 1])))
                     for _ in range(40)])
    assert runs[0] == runs[1]


def test_markov_injection_replays_and_diversifies():
    generators = [repro.PathGenerator([((0,), 0.5)])]
    seeds_series = {}
    for seed in (1, 1, 2):
        process = repro.MarkovModulatedInjection(
            generators, 0.2, 0.2, rng=seed
        )
        trace = tuple(
            len(process.packets_for_slot(t)) for t in range(300)
        )
        seeds_series.setdefault(seed, []).append(trace)
    assert seeds_series[1][0] == seeds_series[1][1]
    assert seeds_series[1][0] != seeds_series[2][0]


def test_global_numpy_state_untouched():
    """Library calls must not consume numpy's global RNG stream."""
    np.random.seed(1234)
    before = np.random.random()
    np.random.seed(1234)
    run_scenario("packet-routing", seed=0, frames=10)
    net = repro.random_sinr_network(8, rng=1)
    repro.RayleighFadingSinrModel(net, noise=0.01, rng=2).successes([0, 1])
    after = np.random.random()
    assert before == after
