"""Routing tables and shortest link paths."""

import pytest

from repro.errors import TopologyError
from repro.network.network import Network
from repro.network.routing import (
    build_routing_table,
    shortest_link_path,
)
from repro.network.topology import grid_network, line_network


def diamond():
    #    1
    #  /   \
    # 0     3     plus the slow path 0 -> 2 -> 4 -> 3
    #  \   /
    #    2 -> 4
    return Network(5, [(0, 1), (1, 3), (0, 2), (2, 4), (4, 3)])


def test_shortest_path_picks_fewest_hops():
    net = diamond()
    path = shortest_link_path(net, 0, 3)
    assert path == (0, 1)


def test_shortest_path_none_when_unreachable():
    net = Network(3, [(0, 1)])
    assert shortest_link_path(net, 0, 2) is None
    assert shortest_link_path(net, 1, 0) is None


def test_shortest_path_same_node_empty():
    assert shortest_link_path(diamond(), 2, 2) == ()


def test_shortest_path_chains_correctly():
    net = line_network(5)
    path = shortest_link_path(net, 0, 4)
    assert path == (0, 1, 2, 3)
    for prev, nxt in zip(path, path[1:]):
        assert net.link(prev).receiver == net.link(nxt).sender


def test_routing_table_contains_reachable_pairs():
    net = line_network(4)
    table = build_routing_table(net)
    assert table.has_path(0, 3)
    assert not table.has_path(3, 0)  # forward-only chain
    assert len(table) == 6  # 3 + 2 + 1 ordered pairs


def test_routing_table_path_lookup_and_error():
    net = line_network(4)
    table = build_routing_table(net)
    assert table.path(1, 3) == (1, 2)
    with pytest.raises(TopologyError):
        table.path(3, 0)


def test_routing_table_respects_depth_bound():
    net = line_network(6, max_path_length=2)
    table = build_routing_table(net)
    assert table.has_path(0, 2)
    assert not table.has_path(0, 5)  # needs 5 hops > D=2
    assert table.max_hops() == 2


def test_routing_table_restricted_sources():
    net = grid_network(2, 3)
    table = build_routing_table(net, sources=[0])
    assert all(source == 0 for source, _ in table.pairs())


def test_pairs_with_length():
    net = line_network(5)
    table = build_routing_table(net)
    assert table.pairs_with_length(4) == [(0, 4)]
    assert table.pairs_with_length(1) == [(0, 1), (1, 2), (2, 3), (3, 4)]


def test_grid_routing_is_shortest():
    net = grid_network(3, 3)
    table = build_routing_table(net)
    # Manhattan distance from corner to corner is 4.
    assert len(table.path(0, 8)) == 4


def test_empty_table_max_hops():
    net = Network(2, [(0, 1)])
    table = build_routing_table(net, sources=[1])
    assert table.max_hops() == 0
    assert table.pairs() == []
