"""Power-control capacity selection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.topology import random_sinr_network
from repro.sinr.capacity import (
    PowerControlCapacity,
    assign_powers_decreasing,
)
from repro.sinr.model import SinrModel


@pytest.fixture(scope="module")
def model():
    net = random_sinr_network(20, rng=17)
    return SinrModel(net, alpha=3.5, beta=1.0, noise=0.01)


def test_selection_is_sinr_feasible(model):
    capacity = PowerControlCapacity(model)
    selection = capacity.select(list(range(model.num_links)))
    assert selection.links, "selection should be non-empty on a busy network"
    winners = model.successes_with_powers(
        selection.links, selection.power_list()
    )
    assert set(selection.links) <= winners


def test_selection_subset_of_pending(model):
    capacity = PowerControlCapacity(model)
    pending = [0, 1, 2]
    selection = capacity.select(pending)
    assert set(selection.links) <= set(pending)


def test_singleton_always_selected(model):
    capacity = PowerControlCapacity(model)
    selection = capacity.select([3])
    assert selection.links == [3]


def test_empty_pending_empty_selection(model):
    capacity = PowerControlCapacity(model)
    selection = capacity.select([])
    assert selection.links == []
    assert selection.powers == {}


def test_tau_validation(model):
    with pytest.raises(ConfigurationError):
        PowerControlCapacity(model, tau=0.0)


def test_smaller_tau_selects_fewer(model):
    pending = list(range(model.num_links))
    tight = PowerControlCapacity(model, tau=0.01).select(pending)
    loose = PowerControlCapacity(model, tau=0.5).select(pending)
    assert len(tight.links) <= len(loose.links)


def test_assign_powers_positive_and_longest_first(model):
    links = [0, 1, 2, 3]
    powers = assign_powers_decreasing(model, links)
    assert set(powers) == set(links)
    assert all(p > 0 for p in powers.values())


def test_assign_powers_margin_validation(model):
    with pytest.raises(ConfigurationError):
        assign_powers_decreasing(model, [0], margin=1.0)


def test_selection_powers_give_margin(model):
    """Each selected link's SINR should clear beta with the margin."""
    capacity = PowerControlCapacity(model, margin=2.0)
    selection = capacity.select(list(range(model.num_links)))
    for link in selection.links:
        # Re-evaluate with the slot's powers: already verified feasible,
        # here we additionally check the power dict aligns with links.
        assert selection.powers[link] > 0


def test_repeated_selection_drains_all_links(model):
    """Selection can serve every link across a bounded number of rounds."""
    pending = set(range(model.num_links))
    capacity = PowerControlCapacity(model)
    rounds = 0
    while pending and rounds < 10 * model.num_links:
        chosen = capacity.select(sorted(pending))
        assert chosen.links, "no progress"
        pending -= set(chosen.links)
        rounds += 1
    assert not pending
