"""Examples smoke lane: every example must run clean in fast mode.

Examples are executable documentation — the first code a reader runs —
so a refactor that breaks one is a release bug even when the library
suite stays green. Each example honours ``REPRO_EXAMPLES_FAST=1`` by
shrinking its workload (fewer frames / hand-capped frame parameters);
this lane runs them all as subprocesses, exactly like a reader would,
and fails on any exception or non-zero exit.

Marked ``slow``: the fast PR lane (``-m "not slow"``) skips it, the
full tier-1 gate and the CI examples lane run it.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def test_example_inventory_is_nonempty():
    assert len(EXAMPLES) >= 10


@pytest.mark.slow
@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean_in_fast_mode(example):
    env = dict(os.environ)
    env["REPRO_EXAMPLES_FAST"] = "1"
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(example)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{example.name} failed (exit {result.returncode}):\n"
        f"{result.stderr[-2000:]}"
    )
    # Every example prints something; silence means it silently did
    # nothing, which is its own kind of broken.
    assert result.stdout.strip(), f"{example.name} produced no output"
