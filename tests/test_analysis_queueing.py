"""Tests for the queueing-theory cross-checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.queueing import (
    BusyPeriodStats,
    busy_period_stats,
    drift_confidence_interval,
    littles_law_check,
    utilisation,
)
from repro.errors import ConfigurationError, StabilityError


class TestLittlesLaw:
    def test_empty_series_rejected(self):
        with pytest.raises(StabilityError):
            littles_law_check([], [1.0])

    def test_no_deliveries_rejected(self):
        with pytest.raises(StabilityError):
            littles_law_check([1, 2, 3], [])

    def test_bad_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            littles_law_check([1, 2], [1.0], warmup_fraction=1.0)

    def test_exact_on_synthetic_dd1(self):
        # Deterministic system: one packet arrives and departs per
        # frame, each spends exactly 2 frames => L = 2, lambda = 1, W = 2.
        frames = 400
        queue = [2.0] * frames
        sojourns = [2.0] * frames
        report = littles_law_check(queue, sojourns, warmup_fraction=0.0)
        assert report.mean_in_system == pytest.approx(2.0)
        assert report.arrival_rate == pytest.approx(1.0)
        assert report.predicted_in_system == pytest.approx(2.0)
        assert report.relative_gap == pytest.approx(0.0)
        assert report.consistent()

    def test_detects_violation(self):
        # Queue says 10 in system, but sojourns say throughput*W = 1.
        report = littles_law_check([10.0] * 100, [1.0] * 100)
        assert report.relative_gap > 0.5
        assert not report.consistent()

    def test_warmup_trims_transient(self):
        # Ramp then plateau: with warm-up trimming, L is the plateau.
        series = list(np.linspace(0, 4, 50)) + [4.0] * 150
        sojourns = [4.0] * 200
        report = littles_law_check(series, sojourns, warmup_fraction=0.25)
        assert report.mean_in_system == pytest.approx(4.0, rel=0.05)

    @pytest.mark.slow
    def test_on_real_protocol_run(self, chain_net, routing_chain):
        import repro

        model = repro.PacketRoutingModel(chain_net)
        algorithm = repro.SingleHopScheduler()
        rate = 0.3
        protocol = repro.DynamicProtocol(
            model, algorithm, rate, t_scale=1.0, rng=2
        )
        injection = repro.uniform_pair_injection(
            routing_chain, model, rate, num_generators=4, rng=3
        )
        simulation = repro.FrameSimulation(protocol, injection)
        simulation.run(400)
        frame_length = protocol.frame_length
        sojourns = [
            (p.delivered_at - p.injected_at) / frame_length
            for p in protocol.delivered
        ]
        report = littles_law_check(
            simulation.metrics.queue_series, sojourns
        )
        # Stable run: the identity holds within the bookkeeping
        # granularity (injections mid-frame, deliveries at frame ends).
        assert report.consistent(tolerance=0.5)


class TestDriftCI:
    def test_too_short_series(self):
        with pytest.raises(StabilityError):
            drift_confidence_interval([1, 2, 3])

    def test_bad_confidence(self):
        with pytest.raises(ConfigurationError):
            drift_confidence_interval(list(range(20)), confidence=1.0)

    def test_bad_resamples(self):
        with pytest.raises(ConfigurationError):
            drift_confidence_interval(list(range(20)), resamples=0)

    def test_bad_block_length(self):
        with pytest.raises(ConfigurationError):
            drift_confidence_interval(list(range(20)), block_length=0)

    def test_flat_noisy_series_contains_zero(self):
        rng = np.random.default_rng(0)
        series = 5.0 + rng.normal(0, 1, size=300)
        point, lower, upper = drift_confidence_interval(series, rng=1)
        assert lower <= 0.0 <= upper
        assert abs(point) < 0.01

    def test_diverging_series_excludes_zero(self):
        rng = np.random.default_rng(0)
        series = 0.5 * np.arange(300) + rng.normal(0, 1, size=300)
        point, lower, upper = drift_confidence_interval(series, rng=1)
        assert lower > 0.0
        assert point == pytest.approx(0.5, abs=0.05)

    def test_interval_ordering_and_determinism(self):
        rng = np.random.default_rng(3)
        series = rng.normal(0, 1, size=100).cumsum()
        first = drift_confidence_interval(series, rng=7)
        second = drift_confidence_interval(series, rng=7)
        assert first == second
        point, lower, upper = first
        assert lower <= point <= upper

    @given(slope=st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=15, deadline=None)
    def test_point_estimate_tracks_true_slope(self, slope):
        x = np.arange(120, dtype=float)
        series = slope * x + 10.0
        point, lower, upper = drift_confidence_interval(series, rng=0)
        assert point == pytest.approx(slope, abs=1e-6)
        assert lower - 1e-9 <= slope <= upper + 1e-9


class TestBusyPeriods:
    def test_empty_series_rejected(self):
        with pytest.raises(StabilityError):
            busy_period_stats([])

    def test_all_idle(self):
        stats = busy_period_stats([0, 0, 0, 0])
        assert stats == BusyPeriodStats(0, 0.0, 0, 0)

    def test_single_period(self):
        stats = busy_period_stats([0, 1, 2, 1, 0, 0])
        assert stats.count == 1
        assert stats.mean_length == 3
        assert stats.max_length == 3
        assert stats.total_busy_frames == 3

    def test_multiple_periods(self):
        stats = busy_period_stats([1, 0, 2, 2, 0, 3, 3, 3])
        assert stats.count == 3
        assert stats.mean_length == pytest.approx(2.0)
        assert stats.max_length == 3

    def test_open_final_period_counts(self):
        stats = busy_period_stats([0, 1, 1, 1])
        assert stats.count == 1
        assert stats.max_length == 3

    def test_periods_lengthen_with_load(self):
        # Synthetic M/D/1-ish: busy periods blow up near rho = 1.
        rng = np.random.default_rng(5)

        def simulate(rho, frames=4000):
            queue, series = 0, []
            for _ in range(frames):
                queue += rng.poisson(rho)
                queue = max(0, queue - 1)
                series.append(queue)
            return busy_period_stats(series)

        light = simulate(0.3)
        heavy = simulate(0.9)
        assert heavy.mean_length > light.mean_length
        assert heavy.max_length > light.max_length


class TestUtilisation:
    def test_empty_series_rejected(self):
        with pytest.raises(StabilityError):
            utilisation([])

    def test_values(self):
        assert utilisation([0, 1, 2, 0]) == pytest.approx(0.5)
        assert utilisation([0, 0]) == 0.0
        assert utilisation([3, 3]) == 1.0

    @given(
        values=st.lists(
            st.floats(min_value=0, max_value=10), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_and_consistent_with_busy_periods(self, values):
        rho = utilisation(values)
        stats = busy_period_stats(values)
        assert 0.0 <= rho <= 1.0
        assert stats.total_busy_frames == pytest.approx(rho * len(values))


class _NoIterArray(np.ndarray):
    """Refuses Python-level iteration — guards the no-copy intake."""

    def __iter__(self):  # pragma: no cover - the assertion is the test
        raise AssertionError("series was iterated element-wise")


def _guard(values) -> np.ndarray:
    return np.asarray(values, dtype=float).view(_NoIterArray)


class TestArrayIntakeNoCopy:
    def test_littles_law_check_accepts_arrays_directly(self):
        series = _guard([4.0] * 100)
        sojourns = _guard([2.0] * 50)
        report = littles_law_check(series, sojourns, warmup_fraction=0.0)
        assert report.mean_in_system == 4.0

    def test_drift_ci_accepts_arrays_directly(self):
        rng = np.random.default_rng(0)
        series = _guard(10.0 + rng.normal(0, 0.1, size=200))
        point, lower, upper = drift_confidence_interval(series, rng=0)
        assert lower <= point <= upper

    def test_busy_period_stats_accepts_arrays_directly(self):
        series = _guard([0.0, 1.0, 2.0, 0.0, 0.0, 3.0, 0.0])
        stats = busy_period_stats(series)
        assert stats.count == 2

    def test_utilisation_accepts_arrays_directly(self):
        series = _guard([0.0, 1.0, 0.0, 2.0])
        assert utilisation(series) == 0.5
