"""Node-placement generators."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.placement import (
    annulus_placement,
    cluster_placement,
    exponential_chain_placement,
    grid_placement,
    line_placement,
    uniform_placement,
)


def test_uniform_placement_in_square():
    points = uniform_placement(100, side=2.0, rng=0)
    assert len(points) == 100
    assert all(0 <= p.x <= 2.0 and 0 <= p.y <= 2.0 for p in points)


def test_uniform_placement_deterministic():
    assert uniform_placement(10, rng=3) == uniform_placement(10, rng=3)


def test_uniform_placement_rejects_zero_count():
    with pytest.raises(ConfigurationError):
        uniform_placement(0)


def test_grid_placement_shape_and_spacing():
    points = grid_placement(2, 3, spacing=0.5)
    assert len(points) == 6
    assert points[0].as_tuple() == (0.0, 0.0)
    assert points[1].as_tuple() == (0.5, 0.0)  # row-major
    assert points[3].as_tuple() == (0.0, 0.5)


def test_line_placement():
    points = line_placement(4, spacing=2.0)
    assert [p.x for p in points] == [0.0, 2.0, 4.0, 6.0]
    assert all(p.y == 0.0 for p in points)


def test_cluster_placement_count_and_clipping():
    points = cluster_placement(3, 5, side=1.0, cluster_radius=0.5, rng=1)
    assert len(points) == 15
    assert all(0 <= p.x <= 1.0 and 0 <= p.y <= 1.0 for p in points)


def test_annulus_placement_radii():
    points = annulus_placement(200, inner_radius=0.5, outer_radius=1.0, rng=2)
    radii = [math.hypot(p.x, p.y) for p in points]
    assert all(0.5 - 1e-9 <= r <= 1.0 + 1e-9 for r in radii)


def test_annulus_rejects_inverted_radii():
    with pytest.raises(ConfigurationError):
        annulus_placement(10, inner_radius=1.0, outer_radius=0.5)


def test_exponential_chain_gaps_grow():
    points = exponential_chain_placement(5, base=2.0)
    xs = [p.x for p in points]
    gaps = [b - a for a, b in zip(xs, xs[1:])]
    assert gaps == [1.0, 2.0, 4.0, 8.0]


def test_exponential_chain_rejects_base_one():
    with pytest.raises(ConfigurationError):
        exponential_chain_placement(5, base=1.0)
