"""Failure injection: the protocol under hostile components.

These tests replace individual components with pathological ones (an
algorithm that never serves, a channel that loses almost everything, an
adversary that lies about its budget) and assert the system degrades
the way the design says it must: failures are detected, bookkeeping
stays consistent, auditors raise.
"""

from __future__ import annotations

import pytest

from repro.core.frames import FrameParameters
from repro.core.protocol import DynamicProtocol
from repro.errors import InjectionError, SchedulingError
from repro.injection.adversarial import WindowAudit
from repro.injection.packet import Packet
from repro.interference.mac import MultipleAccessChannel
from repro.interference.packet_routing import PacketRoutingModel
from repro.interference.unreliable import UnreliableModel
from repro.network.topology import line_network, mac_network
from repro.staticsched.base import RunResult, StaticAlgorithm
from repro.staticsched.single_hop import SingleHopScheduler


class NeverServes(StaticAlgorithm):
    """Pathological algorithm: consumes budget, serves nothing."""

    name = "never-serves"

    def run(self, model, requests, budget, rng=None, record_history=False):
        return RunResult(
            delivered=[],
            remaining=list(range(len(list(requests)))),
            slots_used=min(budget, len(list(requests))),
        )

    def budget_for(self, measure, n):
        return 1


class OverEagerScheduler(StaticAlgorithm):
    """Transmits every pending link simultaneously, every slot.

    Correct on packet routing; hopeless on a shared channel — used to
    assert collisions are the *model's* verdict, not the scheduler's.
    """

    name = "over-eager"

    def run(self, model, requests, budget, rng=None, record_history=False):
        from repro.staticsched.base import LinkQueues

        queues = LinkQueues(requests, model.num_links)
        delivered = []
        slots = 0
        while slots < budget and queues.pending:
            self._transmit(model, queues, queues.busy_links(), delivered, None)
            slots += 1
            if slots > budget:
                break
        return self._finalise(queues, delivered, slots, None)

    def budget_for(self, measure, n):
        return max(1, int(measure))


def tight_params(m, frame_length=20, phase1=10, cleanup=6):
    return FrameParameters(
        frame_length=frame_length,
        phase1_budget=phase1,
        cleanup_budget=cleanup,
        measure_budget=5.0,
        epsilon=0.5,
        rate=0.1,
        f_m=1.0,
        m=m,
    )


class TestNeverServingAlgorithm:
    def make(self, cleanup_enabled=True):
        net = line_network(4)
        model = PacketRoutingModel(net)
        return DynamicProtocol(
            model,
            NeverServes(),
            rate=0.1,
            params=tight_params(net.size_m),
            cleanup_enabled=cleanup_enabled,
            cleanup_probability=1.0,
            rng=0,
        )

    def test_everything_fails_once_then_sticks(self):
        protocol = self.make()
        packets = [Packet(id=i, path=(0,), injected_at=0) for i in range(5)]
        protocol.run_frame(packets)
        report = protocol.run_frame([])
        # Phase 1 fails all 5; the clean-up offers 1 but the algorithm
        # fails it too, so nothing ever leaves the failed buffers.
        assert report.newly_failed == 5
        assert report.cleanup_hops == 0
        assert protocol.potential.value == 5
        for _ in range(10):
            report = protocol.run_frame([])
        assert protocol.potential.value == 5
        assert len(protocol.delivered) == 0

    def test_potential_grows_linearly_under_sustained_injection(self):
        protocol = self.make()
        series = []
        for frame in range(12):
            protocol.run_frame(
                [Packet(id=frame, path=(0,), injected_at=0)]
            )
            series.append(protocol.potential.value)
        # One new failure per frame after the pipeline fills.
        deltas = [b - a for a, b in zip(series, series[1:])]
        assert deltas[2:] == [1] * len(deltas[2:])

    def test_frame_reports_stay_consistent(self):
        protocol = self.make()
        protocol.run_frame(
            [Packet(id=i, path=(0, 1), injected_at=0) for i in range(3)]
        )
        report = protocol.run_frame([])
        assert report.phase1_hops == 0
        assert report.failed_in_system == 3
        assert report.active_in_system == 0
        assert report.potential == 6  # 3 packets x 2 remaining hops


class TestCollisionsAreTheModelsVerdict:
    def test_over_eager_on_mac_never_delivers_concurrently(self):
        net = mac_network(4)
        model = MultipleAccessChannel(net)
        result = OverEagerScheduler().run(model, [0, 1, 2], budget=50)
        # Three stations always colliding: nothing is ever delivered.
        assert result.delivered == []
        assert len(result.remaining) == 3

    def test_over_eager_on_packet_routing_is_fine(self):
        net = line_network(4)
        model = PacketRoutingModel(net)
        result = OverEagerScheduler().run(model, [0, 1, 2], budget=5)
        assert sorted(result.delivered) == [0, 1, 2]

    def test_mac_singleton_succeeds(self):
        net = mac_network(4)
        model = MultipleAccessChannel(net)
        result = OverEagerScheduler().run(model, [2], budget=5)
        assert result.delivered == [0]


class TestNearTotalLoss:
    def test_heavy_loss_starves_fixed_budget(self):
        net = line_network(3)
        base = PacketRoutingModel(net)
        lossy = UnreliableModel(base, loss_probability=0.95, rng=1)
        result = SingleHopScheduler().run(lossy, [0] * 20, budget=20, rng=2)
        # With 95% loss a 20-slot budget serves only a couple of packets.
        assert len(result.delivered) < 6

    def test_loss_probability_one_rejected(self):
        net = line_network(3)
        base = PacketRoutingModel(net)
        with pytest.raises(Exception):
            UnreliableModel(base, loss_probability=1.0, rng=1)


class TestLyingAdversary:
    def test_audit_catches_over_injection(self):
        net = line_network(4)
        model = PacketRoutingModel(net)
        audit = WindowAudit(model, window=10, rate=0.5)  # budget 5
        packets = [Packet(id=i, path=(0,), injected_at=0) for i in range(6)]
        with pytest.raises(InjectionError):
            audit.observe(0, packets)

    def test_audit_accepts_exactly_at_budget(self):
        net = line_network(4)
        model = PacketRoutingModel(net)
        audit = WindowAudit(model, window=10, rate=0.5)
        packets = [Packet(id=i, path=(0,), injected_at=0) for i in range(5)]
        audit.observe(0, packets)
        assert audit.worst_window_measure == pytest.approx(5.0)

    def test_sliding_eviction_frees_budget(self):
        net = line_network(4)
        model = PacketRoutingModel(net)
        audit = WindowAudit(model, window=3, rate=1.0)  # budget 3
        audit.observe(0, [Packet(id=0, path=(0,), injected_at=0)] * 0)
        # 3 packets in slot 1 fill the budget.
        audit.observe(
            1, [Packet(id=i, path=(0,), injected_at=1) for i in range(3)]
        )
        audit.observe(2, [])
        audit.observe(3, [])
        # Slot 4: the slot-1 burst has left the window; 3 more are legal.
        audit.observe(
            4, [Packet(id=10 + i, path=(0,), injected_at=4) for i in range(3)]
        )
        assert audit.worst_window_measure == pytest.approx(3.0)

    def test_incremental_vector_matches_rebuild(self):
        """The incremental audit equals a from-scratch recomputation."""
        import numpy as np

        net = line_network(4)
        model = PacketRoutingModel(net)
        window = 5
        audit = WindowAudit(model, window, rate=10.0)  # huge budget
        rng = np.random.default_rng(7)
        history = []
        for slot in range(60):
            count = int(rng.integers(0, 4))
            packets = [
                Packet(id=slot * 10 + i, path=(int(rng.integers(0, 3)),),
                       injected_at=slot)
                for i in range(count)
            ]
            history.append(packets)
            audit.observe(slot, packets)
            recent = history[-window:]
            links = [l for batch in recent for p in batch for l in p.path]
            expected = model.interference_measure(links)
            assert audit._measure == pytest.approx(expected)


class TestBadInputsToProtocol:
    def test_packet_with_unknown_link_rejected(self):
        net = line_network(3)
        protocol = DynamicProtocol(
            PacketRoutingModel(net),
            SingleHopScheduler(),
            rate=0.1,
            params=tight_params(net.size_m),
            rng=0,
        )
        with pytest.raises(SchedulingError):
            protocol.run_frame([Packet(id=0, path=(99,), injected_at=0)])

    def test_algorithm_budget_zero_means_all_fail(self):
        net = line_network(3)
        protocol = DynamicProtocol(
            PacketRoutingModel(net),
            SingleHopScheduler(),
            rate=0.1,
            params=tight_params(net.size_m, frame_length=20, phase1=0,
                                cleanup=6),
            cleanup_enabled=False,
            rng=0,
        )
        protocol.run_frame([Packet(id=0, path=(0,), injected_at=0)])
        report = protocol.run_frame([])
        assert report.newly_failed == 1
        assert len(protocol.delivered) == 0
