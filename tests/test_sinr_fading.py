"""Tests for the Rayleigh block-fading SINR extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.topology import random_sinr_network
from repro.sinr.fading import (
    RayleighFadingSinrModel,
    fading_budget_factor,
    worst_singleton_success,
)
from repro.sinr.model import SinrModel


@pytest.fixture(scope="module")
def net():
    return random_sinr_network(10, rng=21)


@pytest.fixture(scope="module")
def faded(net):
    return RayleighFadingSinrModel(net, alpha=3.0, beta=1.0, noise=0.05, rng=4)


@pytest.fixture(scope="module")
def crisp(net):
    return SinrModel(net, alpha=3.0, beta=1.0, noise=0.05)


class TestStructure:
    def test_weight_matrix_is_mean_gain_matrix(self, faded, crisp):
        np.testing.assert_allclose(
            faded.weight_matrix(), crisp.weight_matrix()
        )

    def test_measure_is_deterministic(self, faded, crisp):
        requests = [0, 0, 1, 2]
        assert faded.interference_measure(requests) == pytest.approx(
            crisp.interference_measure(requests)
        )

    def test_sinr_probe_is_mean_not_faded(self, faded, crisp):
        value_faded = faded.sinr(0, [0, 1])
        value_crisp = crisp.sinr(0, [0, 1])
        assert value_faded == pytest.approx(value_crisp)


class TestSuccessPredicate:
    def test_empty_set(self, faded):
        assert faded.successes([]) == set()

    def test_successes_are_subset_of_attempted(self, faded):
        for _ in range(20):
            winners = faded.successes([0, 1, 2])
            assert winners <= {0, 1, 2}

    def test_deterministic_under_seed(self, net):
        runs = []
        for _ in range(2):
            model = RayleighFadingSinrModel(
                net, alpha=3.0, beta=1.0, noise=0.05, rng=9
            )
            runs.append([sorted(model.successes([0, 1, 2])) for _ in range(30)])
        assert runs[0] == runs[1]

    def test_zero_noise_singleton_always_succeeds(self, net):
        model = RayleighFadingSinrModel(net, alpha=3.0, beta=1.0, noise=0.0, rng=0)
        assert all(model.successes([0]) == {0} for _ in range(50))

    def test_noise_makes_singletons_fade_out_sometimes(self, net):
        # Large noise: mean SINR barely clears beta, so a bad fade kills it.
        crisp = SinrModel(net, alpha=3.0, beta=1.0, noise=0.05)
        margin = crisp.sinr(0, [0])  # signal / noise with mean gains
        heavy_noise = 0.05 * margin / 1.2  # mean SINR ~1.2x threshold
        model = RayleighFadingSinrModel(
            net, alpha=3.0, beta=1.0, noise=heavy_noise, rng=1
        )
        outcomes = [bool(model.successes([0])) for _ in range(300)]
        assert any(outcomes) and not all(outcomes)

    def test_successes_with_powers_is_faded_too(self, net):
        crisp = SinrModel(net, alpha=3.0, beta=1.0, noise=0.05)
        margin = crisp.sinr(0, [0])
        heavy_noise = 0.05 * margin / 1.2
        model = RayleighFadingSinrModel(
            net, alpha=3.0, beta=1.0, noise=heavy_noise, rng=2
        )
        power = float(model.powers[0])
        outcomes = [
            bool(model.successes_with_powers([0], [power])) for _ in range(300)
        ]
        assert any(outcomes) and not all(outcomes)


class TestClosedForm:
    def test_singleton_formula(self, faded, crisp):
        # P = exp(-beta * noise / mean_signal).
        signal = float(crisp.signal_strengths()[0])
        expected = np.exp(-1.0 * 0.05 / signal)
        assert faded.singleton_success_probability(0) == pytest.approx(expected)

    def test_probability_order_alignment(self, faded):
        # Output follows sorted link ids regardless of input order.
        forward = faded.success_probability([0, 2])
        backward = faded.success_probability([2, 0])
        assert forward.shape == (2,)
        np.testing.assert_allclose(forward, backward)

    def test_rejects_bad_link(self, faded):
        with pytest.raises(ConfigurationError):
            faded.singleton_success_probability(999)

    def test_empty_probability(self, faded):
        assert faded.success_probability([]).shape == (0,)

    def test_monte_carlo_agrees_with_closed_form(self, net):
        model = RayleighFadingSinrModel(
            net, alpha=3.0, beta=1.0, noise=0.05, rng=7
        )
        transmitting = [0, 1, 2, 3]
        ids = sorted(set(transmitting))
        analytic = model.success_probability(transmitting)
        trials = 4000
        counts = np.zeros(len(ids))
        for _ in range(trials):
            winners = model.successes(transmitting)
            for j, link in enumerate(ids):
                if link in winners:
                    counts[j] += 1
        empirical = counts / trials
        np.testing.assert_allclose(empirical, analytic, atol=0.035)

    def test_interference_lowers_probability(self, faded):
        alone = faded.success_probability([0])[0]
        crowded = faded.success_probability([0, 1, 2, 3])[0]
        assert crowded < alone

    @given(beta=st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=20, deadline=None)
    def test_probability_decreases_in_beta(self, net, beta):
        lo = RayleighFadingSinrModel(net, alpha=3.0, beta=beta, noise=0.05, rng=0)
        hi = RayleighFadingSinrModel(
            net, alpha=3.0, beta=beta * 1.5, noise=0.05, rng=0
        )
        p_lo = lo.success_probability([0, 1])
        p_hi = hi.success_probability([0, 1])
        assert (p_hi <= p_lo + 1e-12).all()


class TestBudgetFactor:
    def test_perfect_channel_is_pure_slack(self):
        assert fading_budget_factor(1.0, slack=1.5) == pytest.approx(1.5)

    def test_half_probability_doubles(self):
        assert fading_budget_factor(0.5, slack=1.0) == pytest.approx(2.0)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_rejects_bad_probability(self, bad):
        with pytest.raises(ConfigurationError):
            fading_budget_factor(bad)

    def test_rejects_bad_slack(self):
        with pytest.raises(ConfigurationError):
            fading_budget_factor(0.5, slack=0.9)


class TestWorstSingleton:
    def test_is_minimum_over_links(self, faded):
        worst = worst_singleton_success(faded)
        per_link = [
            faded.singleton_success_probability(link)
            for link in range(faded.num_links)
        ]
        assert worst == pytest.approx(min(per_link))
        assert 0.0 < worst <= 1.0

    def test_zero_noise_gives_one(self, net):
        model = RayleighFadingSinrModel(net, alpha=3.0, beta=1.0, noise=0.0, rng=0)
        assert worst_singleton_success(model) == pytest.approx(1.0)
