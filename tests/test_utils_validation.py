"""Argument-validation helpers."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_integer,
    check_nonnegative,
    check_positive,
    check_probability,
)


def test_check_positive_accepts_and_returns():
    assert check_positive("x", 2.5) == 2.5


@pytest.mark.parametrize("value", [0, -1, -0.001])
def test_check_positive_rejects(value):
    with pytest.raises(ConfigurationError, match="x"):
        check_positive("x", value)


def test_check_nonnegative_accepts_zero():
    assert check_nonnegative("x", 0) == 0


def test_check_nonnegative_rejects_negative():
    with pytest.raises(ConfigurationError):
        check_nonnegative("x", -1e-9)


@pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
def test_check_probability_accepts(value):
    assert check_probability("p", value) == value


@pytest.mark.parametrize("value", [-0.1, 1.1])
def test_check_probability_rejects(value):
    with pytest.raises(ConfigurationError):
        check_probability("p", value)


def test_check_in_range_inclusive_bounds():
    assert check_in_range("v", 1.0, low=1.0, high=2.0) == 1.0
    assert check_in_range("v", 2.0, low=1.0, high=2.0) == 2.0


def test_check_in_range_exclusive_bounds():
    with pytest.raises(ConfigurationError):
        check_in_range("v", 1.0, low=1.0, low_inclusive=False)
    with pytest.raises(ConfigurationError):
        check_in_range("v", 2.0, high=2.0, high_inclusive=False)


def test_check_in_range_out_of_bounds():
    with pytest.raises(ConfigurationError):
        check_in_range("v", 0.5, low=1.0)
    with pytest.raises(ConfigurationError):
        check_in_range("v", 3.0, high=2.0)


def test_check_integer_accepts_int_and_integral_float():
    assert check_integer("n", 4) == 4
    assert check_integer("n", 4.0) == 4


def test_check_integer_rejects_fraction_and_bool():
    with pytest.raises(ConfigurationError):
        check_integer("n", 4.5)
    with pytest.raises(ConfigurationError):
        check_integer("n", True)


def test_check_finite():
    assert check_finite("x", 1.0) == 1.0
    with pytest.raises(ConfigurationError):
        check_finite("x", math.inf)
    with pytest.raises(ConfigurationError):
        check_finite("x", math.nan)
