"""The compiled SINR lane (PR 10): gain-table runs in the numba driver.

The SINR evaluator joins ``_runloop_numba`` under the same discipline
as affectance/conflict: a relative ±1e-9 borderline band around the
success inequality with exact numpy replay inside it, pairwise
summation wherever sums feed comparisons, and bit-identical results —
delivered/remaining order, slots used, history, RNG end state — versus
the scalar reference. Without numba the driver runs interpreted
through the stub ``njit``, so every test here exercises the exact code
numba compiles on hosts that have it.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.staticsched import _runloop_numba
from repro.staticsched.decay import DecayScheduler
from repro.staticsched.fkv import FkvScheduler
from repro.staticsched.hm import HmScheduler
from repro.staticsched.kernel import scalar_reference
from repro.staticsched.kv import KvScheduler
from repro.staticsched.runloop import (
    DecayPolicy,
    FkvPolicy,
    HmPolicy,
    KvPolicy,
    SingleHopPolicy,
    numba_available,
)
from repro.staticsched.single_hop import SingleHopScheduler

_POLICIES = {
    "kv": (
        KvScheduler,
        lambda s: KvPolicy(s._p0, s._p_min, s._backoff, s._recovery_slots),
    ),
    "decay": (
        DecayScheduler,
        lambda s: DecayPolicy(s._probability_scale, s._measure_floor),
    ),
    "fkv": (
        FkvScheduler,
        lambda s: FkvPolicy(s._probability_scale, s._phase_scale),
    ),
    "hm": (HmScheduler, lambda s: HmPolicy(s._chi)),
    "single-hop": (SingleHopScheduler, lambda s: SingleHopPolicy()),
}


def _sinr_model(nodes: int = 14, seed: int = 3):
    net = repro.random_sinr_network(nodes, rng=seed)
    return repro.linear_power_model(net, alpha=3.0, beta=1.0, noise=0.02)


# ----------------------------------------------------------------------
# Full parity matrix: every compiled scheduler over the SINR evaluator
# ----------------------------------------------------------------------


@pytest.mark.parametrize("sched_name", sorted(_POLICIES))
@pytest.mark.parametrize("record_history", [False, True],
                         ids=["plain", "history"])
def test_compiled_sinr_replays_reference(sched_name, record_history):
    """``run_compiled`` on the gain-table model must replay the scalar
    reference bit for bit — results, history and RNG end state —
    through its full re-entry protocol (refills, borderline slots)."""
    sched_cls, policy_factory = _POLICIES[sched_name]
    model = _sinr_model()
    scheduler = sched_cls()
    rng = np.random.default_rng(5)
    requests = list(rng.integers(0, model.num_links, size=25))
    measure = model.interference_measure(requests)
    budget = min(scheduler.budget_for(measure, len(requests)), 300)

    gen_ref = np.random.default_rng(6)
    with scalar_reference():
        reference = sched_cls().run(
            _sinr_model(), requests, budget,
            rng=gen_ref, record_history=record_history,
        )
    gen = np.random.default_rng(6)
    got = _runloop_numba.run_compiled(
        policy_factory(scheduler), model, requests, budget, gen,
        record_history,
    )
    assert got.delivered == reference.delivered
    assert got.remaining == reference.remaining
    assert got.slots_used == reference.slots_used
    if record_history:
        assert got.history == reference.history
    assert gen.bit_generator.state == gen_ref.bit_generator.state


# ----------------------------------------------------------------------
# Borderline-band re-entry under magnitude-adversarial gain tables
# ----------------------------------------------------------------------


def _counting_exact_slot(monkeypatch):
    """Wrap the exact numpy replay so tests can assert it fired."""
    calls = []
    original = _runloop_numba._exact_python_slot

    def counting(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    monkeypatch.setattr(_runloop_numba, "_exact_python_slot", counting)
    return calls


def test_borderline_gain_table_reenters_exact_path(monkeypatch):
    """A gain table engineered so signal == beta*(interference+noise)
    at magnitude ~1e6 lands inside the *relative* guard band: the
    driver must bail out to the exact numpy slot (an absolute 1e-9
    band would wave a 1e-12 absolute gap straight through at this
    scale) and still match the reference."""
    model = _sinr_model(nodes=8, seed=11)
    m = model.num_links
    powers = model._powers
    gains = np.full((m, m), 1e-9)
    # Links 0 and 1 transmit together under single-hop. Link 1's
    # interference at link 0 is 1e6; link 0's signal is engineered to
    # equal beta*(interference + noise) exactly, so the success margin
    # is the reference's own -1e-12 tie-break epsilon — deep inside
    # the relative band at scale 1e6.
    gains[1, 0] = 1e6 / powers[1]
    gains[0, 0] = (1e6 + model._noise) / powers[0]
    gains[1, 1] = 1e3 / powers[1]  # link 1 succeeds outright
    gains[0, 1] = 1e-9
    model._gains = gains
    requests = [0, 1]

    calls = _counting_exact_slot(monkeypatch)
    gen_ref = np.random.default_rng(2)
    with scalar_reference():
        reference = SingleHopScheduler().run(
            model, requests, 10, rng=gen_ref
        )
    gen = np.random.default_rng(2)
    got = _runloop_numba.run_compiled(
        SingleHopPolicy(), model, requests, 10, gen, False,
    )
    assert calls, "the engineered tie never reached the exact path"
    assert got.delivered == reference.delivered
    assert got.remaining == reference.remaining
    assert got.slots_used == reference.slots_used
    assert gen.bit_generator.state == gen_ref.bit_generator.state


@pytest.mark.parametrize("sched_name", ["kv", "hm"])
def test_magnitude_adversarial_gains_parity(sched_name):
    """Gain entries spread over ~18 decades stress the sequential
    interference accumulation: anywhere the fast sum could disagree
    with the reference's numpy sum falls inside the relative band and
    replays exactly, so results stay bit-identical."""
    sched_cls, policy_factory = _POLICIES[sched_name]
    model = _sinr_model(nodes=10, seed=7)
    m = model.num_links
    spread = np.random.default_rng(41)
    model._gains = 10.0 ** spread.uniform(-9.0, 9.0, size=(m, m))
    requests = list(spread.integers(0, m, size=18))
    scheduler = sched_cls()
    budget = 120

    gen_ref = np.random.default_rng(9)
    with scalar_reference():
        reference = sched_cls().run(
            model, requests, budget, rng=gen_ref,
        )
    gen = np.random.default_rng(9)
    got = _runloop_numba.run_compiled(
        policy_factory(scheduler), model, requests, budget, gen, False,
    )
    assert got.delivered == reference.delivered
    assert got.remaining == reference.remaining
    assert got.slots_used == reference.slots_used
    assert gen.bit_generator.state == gen_ref.bit_generator.state


# ----------------------------------------------------------------------
# Gating: supported() and the live lane matrix
# ----------------------------------------------------------------------


def test_supported_admits_sinr_with_numba(monkeypatch):
    """SINR joins the compiled set exactly when numba is importable
    (HM additionally behind the pairwise self-check)."""
    model = _sinr_model(nodes=6, seed=1)
    kv = KvPolicy(0.125, 1e-4, 0.5, 8)
    assert _runloop_numba.supported(kv, model) == numba_available()
    monkeypatch.setattr(_runloop_numba, "NUMBA_AVAILABLE", True)
    assert _runloop_numba.supported(kv, model)
    assert _runloop_numba.supported(HmPolicy(0.25), model) == (
        _runloop_numba._pairwise_self_check()
    )


def test_lane_matrix_covers_sinr_column():
    """The live matrix spans all compiled (scheduler, evaluator) pairs
    — sinr included — and reports the lane this process would take."""
    matrix = _runloop_numba.lane_matrix()
    assert set(matrix) == {
        (sched, ev)
        for sched in _runloop_numba.COMPILED_SCHEDULERS
        for ev in _runloop_numba.COMPILED_EVALUATORS
    }
    assert "sinr" in _runloop_numba.COMPILED_EVALUATORS
    expected = "numba" if numba_available() else "numpy"
    assert matrix[("kv", "sinr")] == expected
    if not numba_available():
        assert set(matrix.values()) == {"numpy"}
