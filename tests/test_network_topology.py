"""Topology generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.topology import (
    figure1_instance,
    grid_network,
    line_network,
    mac_network,
    random_sinr_network,
    star_network,
)


def test_random_sinr_network_is_geometric_and_connected_enough():
    net = random_sinr_network(30, rng=0)
    assert net.is_geometric
    assert net.num_nodes == 30
    assert net.num_links > 0
    # Links are bidirected pairs.
    for link in net.links:
        assert net.link_between(link.receiver, link.sender) is not None


def test_random_sinr_network_deterministic():
    a = random_sinr_network(20, rng=5)
    b = random_sinr_network(20, rng=5)
    assert [(l.sender, l.receiver) for l in a.links] == [
        (l.sender, l.receiver) for l in b.links
    ]


def test_random_sinr_network_respects_radius():
    net = random_sinr_network(40, max_link_length=0.2, rng=1)
    assert float(net.link_lengths().max()) <= 0.2 + 1e-9


def test_random_sinr_network_needs_two_nodes():
    with pytest.raises(ConfigurationError):
        random_sinr_network(1)


def test_grid_network_link_count():
    net = grid_network(3, 4)
    # Horizontal: 3 rows * 3 gaps, vertical: 2 gaps * 4 cols, both directions.
    assert net.num_links == 2 * (3 * 3 + 2 * 4)
    assert net.is_geometric


def test_line_network_forward_only_and_bidirectional():
    forward = line_network(5)
    assert forward.num_links == 4
    both = line_network(5, bidirectional=True)
    assert both.num_links == 8


def test_line_network_lengths_equal_spacing():
    net = line_network(4, spacing=2.5)
    assert np.allclose(net.link_lengths(), 2.5)


def test_star_network_structure():
    net = star_network(6)
    assert net.num_nodes == 7
    assert net.num_links == 12
    centre_in = net.links_into(0)
    assert len(centre_in) == 6


def test_mac_network_single_hop():
    net = mac_network(4)
    assert net.num_links == 4
    assert net.max_path_length == 1
    assert not net.is_geometric
    # Link id i belongs to station i.
    for i in range(4):
        assert net.link(i).sender == i


def test_figure1_instance_layout():
    m = 6
    net = figure1_instance(m)
    assert net.num_links == m
    assert net.num_nodes == 2 * m
    assert net.max_path_length == 1
    lengths = net.link_lengths()
    # The long link dwarfs the shorts.
    assert lengths[m - 1] > 100 * lengths[: m - 1].max()


def test_figure1_instance_needs_two_links():
    with pytest.raises(ConfigurationError):
        figure1_instance(1)


class TestDegenerateInputsRejected:
    """Non-positive geometry and degenerate node counts must raise with
    messages naming the offending parameter — never produce an empty or
    absurd network silently."""

    @pytest.mark.parametrize("side", [0.0, -1.0])
    def test_random_network_rejects_non_positive_side(self, side):
        with pytest.raises(ConfigurationError, match="side must be positive"):
            random_sinr_network(10, side=side, rng=0)

    @pytest.mark.parametrize("radius", [0.0, -0.5])
    def test_random_network_rejects_non_positive_link_radius(self, radius):
        # Used to fall through to the nearest-neighbour fallback and
        # return a connected-anyway network for an impossible radius.
        with pytest.raises(
            ConfigurationError, match="max_link_length must be positive"
        ):
            random_sinr_network(10, max_link_length=radius, rng=0)

    @pytest.mark.parametrize("rows,cols", [(0, 3), (3, 0), (-1, 2)])
    def test_grid_rejects_non_positive_dimensions(self, rows, cols):
        with pytest.raises(
            ConfigurationError, match="grid dimensions must be >= 1"
        ):
            grid_network(rows, cols)

    def test_grid_rejects_single_node(self):
        # 1x1 used to build a linkless one-node network silently.
        with pytest.raises(
            ConfigurationError, match="grid needs at least 2 nodes"
        ):
            grid_network(1, 1)

    def test_grid_rejects_non_positive_spacing(self):
        with pytest.raises(
            ConfigurationError, match="spacing must be positive"
        ):
            grid_network(2, 2, spacing=0.0)

    def test_line_rejects_non_positive_spacing(self):
        with pytest.raises(
            ConfigurationError, match="spacing must be positive"
        ):
            line_network(3, spacing=-1.0)

    def test_star_rejects_non_positive_radius(self):
        with pytest.raises(
            ConfigurationError, match="radius must be positive"
        ):
            star_network(4, radius=0.0)

    def test_figure1_rejects_non_positive_geometry(self):
        with pytest.raises(
            ConfigurationError, match="short_length must be positive"
        ):
            figure1_instance(3, short_length=0.0)
        with pytest.raises(
            ConfigurationError, match="separation must be positive"
        ):
            figure1_instance(3, separation=-10.0)
