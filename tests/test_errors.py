"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    ConfigurationError,
    InfeasibleLinkError,
    InjectionError,
    ReproError,
    SchedulingError,
    StabilityError,
    TopologyError,
)


def test_all_errors_derive_from_repro_error():
    for exc in (
        ConfigurationError,
        TopologyError,
        InjectionError,
        SchedulingError,
        StabilityError,
        InfeasibleLinkError,
    ):
        assert issubclass(exc, ReproError)


def test_infeasible_link_error_carries_link_id():
    err = InfeasibleLinkError(7)
    assert err.link_id == 7
    assert "7" in str(err)


def test_infeasible_link_error_custom_message():
    err = InfeasibleLinkError(3, "custom")
    assert str(err) == "custom"
    assert err.link_id == 3


def test_infeasible_link_is_configuration_error():
    assert issubclass(InfeasibleLinkError, ConfigurationError)


def test_errors_catchable_as_repro_error():
    with pytest.raises(ReproError):
        raise SchedulingError("boom")
