"""Tests for the HM-style contention-adaptive scheduler (Section 6.1)."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.errors import SchedulingError
from repro.interference.mac import MultipleAccessChannel
from repro.interference.packet_routing import PacketRoutingModel
from repro.network.topology import line_network, mac_network
from repro.staticsched.hm import HmScheduler


class TestInterface:
    def test_rejects_bad_parameters(self):
        with pytest.raises(Exception):
            HmScheduler(chi=0.0)
        with pytest.raises(Exception):
            HmScheduler(budget_scale=-1.0)

    def test_rejects_negative_budget(self, sinr_model):
        with pytest.raises(SchedulingError):
            HmScheduler().run(sinr_model, [0], budget=-1)

    def test_network_bound_has_constant_f(self):
        scheduler = HmScheduler()
        bound = scheduler.network_bound(16)
        # The point of the HM improvement: f is flat in m.
        assert bound.f(16) == bound.f(1024)
        # ... while the additive term grows polylog.
        assert bound.g(1024, 100) > bound.g(16, 100)

    def test_budget_grows_linearly_in_measure(self):
        scheduler = HmScheduler(chi=0.25, budget_scale=3.0)
        small = scheduler.budget_for(10.0, 100)
        large = scheduler.budget_for(20.0, 100)
        # Differencing cancels the additive polylog: the measure part
        # is (budget_scale / chi) * I = 12 * I.
        assert large - small == pytest.approx(12.0 * 10.0, abs=2)

    def test_empty_requests(self, sinr_model):
        result = HmScheduler().run(sinr_model, [], budget=10)
        assert result.all_delivered
        assert result.slots_used == 0


class TestCorrectness:
    def test_delivers_everything_on_packet_routing(self):
        model = PacketRoutingModel(line_network(5))
        requests = [0, 1, 2, 3] * 5
        scheduler = HmScheduler()
        budget = scheduler.budget_for(
            model.interference_measure(requests), len(requests)
        )
        result = scheduler.run(model, requests, budget, rng=0)
        assert result.all_delivered

    def test_delivers_on_mac(self):
        model = MultipleAccessChannel(mac_network(5))
        requests = [0, 1, 2, 3]
        scheduler = HmScheduler()
        budget = scheduler.budget_for(
            model.interference_measure(requests), len(requests)
        )
        result = scheduler.run(model, requests, budget, rng=1)
        assert result.all_delivered

    def test_schedule_is_feasible_per_model(self, sinr_model):
        requests = [i % sinr_model.num_links for i in range(20)]
        result = HmScheduler().run(
            sinr_model, requests, budget=500, rng=2, record_history=True
        )
        for record in result.history:
            assert set(record.succeeded) <= set(record.attempted)
            winners = sinr_model.successes(list(record.attempted))
            assert set(record.succeeded) == winners

    def test_conserves_requests(self, sinr_model):
        requests = [i % sinr_model.num_links for i in range(25)]
        result = HmScheduler().run(sinr_model, requests, budget=100, rng=3)
        assert sorted(result.delivered + result.remaining) == list(
            range(len(requests))
        )

    def test_deterministic_under_seed(self, sinr_model):
        requests = [i % sinr_model.num_links for i in range(15)]
        runs = [
            HmScheduler().run(
                sinr_model, requests, budget=300,
                rng=np.random.default_rng(5),
            )
            for _ in range(2)
        ]
        assert runs[0].delivered == runs[1].delivered
        assert runs[0].slots_used == runs[1].slots_used


class TestAdaptiveAdvantage:
    def test_slots_per_measure_flat_as_instance_densifies(self):
        """The HM claim: slots/I does not grow with n (unlike O(I log n))."""
        model = PacketRoutingModel(line_network(4))
        ratios = []
        for n in (30, 120, 480):
            requests = [i % 3 for i in range(n)]
            measure = model.interference_measure(requests)
            scheduler = HmScheduler()
            result = scheduler.run(
                model, requests, budget=100 * n, rng=7
            )
            assert result.all_delivered
            ratios.append(result.slots_used / measure)
        # Flat within noise: the largest instance is no worse than the
        # smallest by more than 50%.
        assert ratios[-1] <= ratios[0] * 1.5

    def test_adapts_faster_than_fixed_decay_on_drained_instance(self):
        """As the backlog drains, HM speeds up; decay keeps its fixed p."""
        model = PacketRoutingModel(line_network(4))
        requests = [0] * 60  # single busy link: contention falls as it drains
        hm = HmScheduler().run(model, requests, budget=10_000, rng=11)
        decay = repro.DecayScheduler().run(
            model, requests, budget=10_000, rng=11
        )
        assert hm.all_delivered
        assert hm.slots_used < decay.slots_used

    def test_certified_rate_beats_transformed_kv(self):
        """Framework payoff: f(m)=O(1) certifies an Omega(1) rate."""
        m = 256
        hm_rate = repro.certified_rate(HmScheduler(), m)
        kv_rate = repro.certified_rate(
            repro.TransformedAlgorithm(repro.KvScheduler(), m=m,
                                       chi_scale=0.05),
            m,
        )
        assert hm_rate > kv_rate
