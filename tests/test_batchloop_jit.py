"""The batch-JIT wave driver's bit-identity contract (PR 10).

``run_batched_streams_jit`` promises exactly what the numpy wave
engine promises: every record and every stream's RNG end state
bit-identical to driving that stream alone — across the scheduler x
model matrix, both metrics modes, and every batch shape. The container
used for tier-1 CI has no numba, so these tests force the fleet
through the JIT driver *interpreted* (the stub ``njit`` plus a
``NUMBA_AVAILABLE`` monkeypatch): the exact code numba compiles is
what executes, minus the compilation. The CI numba lane runs the same
tests compiled.

Each test takes its serial baseline *before* patching — flipping
``NUMBA_AVAILABLE`` also flips what backend ``auto`` resolves to, and
the baseline must be the genuine serial path.
"""

from __future__ import annotations

import math
import warnings

import pytest

import repro.scenario.batched as batched_mod
from repro.errors import ConfigurationError
from repro.scenario import ScenarioSpec, preset_spec, run_scenario_fleet
from repro.scenario.batched import BatchedExecutor, BatchFallbackWarning
from repro.sim.runner import CellResult
from repro.sim.sharding import SerialExecutor
from repro.staticsched import _runloop_numba
from repro.staticsched._batchloop_numba import (
    jit_group_supported,
    run_batched_streams_jit,
)

# The test_batched_fleet matrix at reduced seed count: every fused
# scheduler, compiled and uncompiled evaluators (kv-unreliable has no
# compiled lane — the driver must decline those calls per-call and
# execute them serially in place, still bit-identically).
MATRIX_SPECS = {
    "kv-linear": ScenarioSpec(
        topology="random",
        topology_kwargs={"num_nodes": 8},
        model="linear-power",
        scheduler="kv",
        transform=True,
        frames=20,
    ),
    "decay-linear-transformed": ScenarioSpec(
        topology="random",
        topology_kwargs={"num_nodes": 8},
        model="linear-power",
        scheduler="decay",
        transform=True,
        frames=20,
    ),
    "fkv-conflict": ScenarioSpec(
        topology="grid",
        topology_kwargs={"rows": 3, "cols": 3},
        model="conflict-node",
        scheduler="fkv",
        transform=True,
        frames=20,
    ),
    "hm-linear": ScenarioSpec(
        topology="random",
        topology_kwargs={"num_nodes": 8},
        model="linear-power",
        scheduler="hm",
        frames=20,
    ),
    "kv-unreliable": ScenarioSpec(
        topology="random",
        topology_kwargs={"num_nodes": 8},
        model="unreliable",
        model_kwargs={"loss_probability": 0.2},
        scheduler="kv",
        transform=True,
        frames=20,
    ),
    "singlehop-routing": ScenarioSpec(
        topology="grid",
        topology_kwargs={"rows": 3, "cols": 3},
        model="packet-routing",
        scheduler="single-hop",
        frames=20,
    ),
}


def records_equal(left, right) -> bool:
    """CellResult equality, NaN-aware on the latency mean."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if (
            math.isnan(a.latency)
            and math.isnan(b.latency)
            and a.rate_index == b.rate_index
        ):
            a = CellResult(**{**a.__dict__, "latency": 0.0})
            b = CellResult(**{**b.__dict__, "latency": 0.0})
        if a != b:
            return False
    return True


def _force_jit(monkeypatch):
    """Route every batch through the JIT driver, interpreted.

    ``NUMBA_AVAILABLE = True`` makes ``auto`` resolve to numba and
    lets the per-call ``supported()`` gate admit compiled evaluators;
    swapping the numpy engine for the JIT driver catches the groups
    ``jit_group_supported`` would steer back (uncompiled models), so
    the driver's decline-and-execute relay is exercised too.
    """
    monkeypatch.setattr(_runloop_numba, "NUMBA_AVAILABLE", True)
    monkeypatch.setattr(
        batched_mod, "run_batched_streams", run_batched_streams_jit
    )


def _assert_jit_matches_serial(specs, monkeypatch, **executor_kwargs):
    serial = run_scenario_fleet(specs, SerialExecutor())
    _force_jit(monkeypatch)
    with warnings.catch_warnings():
        warnings.simplefilter("error", BatchFallbackWarning)
        batched = run_scenario_fleet(
            specs, BatchedExecutor(**executor_kwargs)
        )
    assert records_equal(serial.records, batched.records)
    assert serial.summary == batched.summary
    return serial, batched


# ----------------------------------------------------------------------
# The scheduler x model x metrics parity matrix, through the JIT driver
# ----------------------------------------------------------------------


@pytest.mark.parametrize("metrics", ["full", "streaming"])
@pytest.mark.parametrize("combo", sorted(MATRIX_SPECS))
def test_jit_parity_matrix(combo, metrics, monkeypatch):
    base = MATRIX_SPECS[combo]
    specs = [
        base.replace(seed=seed, metrics=metrics) for seed in (0, 1)
    ]
    _assert_jit_matches_serial(specs, monkeypatch)


def test_jit_batch_of_one(monkeypatch):
    _assert_jit_matches_serial(
        [MATRIX_SPECS["hm-linear"].replace(seed=3)], monkeypatch
    )


def test_jit_mixed_frames_batch_together(monkeypatch):
    """Members that retire early must leave the survivors' private
    RNG streams untouched inside the compiled wave loop."""
    base = MATRIX_SPECS["kv-linear"]
    specs = [
        base.replace(seed=seed, frames=frames)
        for seed, frames in ((0, 20), (1, 40), (2, 25))
    ]
    _assert_jit_matches_serial(specs, monkeypatch)


def test_jit_idle_member_batches_with_busy_peers(monkeypatch):
    """Born-finished sub-runs (idle injection) execute inline without
    perturbing busy group peers."""
    base = MATRIX_SPECS["hm-linear"]
    specs = [
        base.replace(seed=0, rate_mode="absolute", rate=1e-6),
        base.replace(seed=1, rate_mode="absolute", rate=0.5),
    ]
    _assert_jit_matches_serial(specs, monkeypatch)


def test_jit_sinr_preset_group(monkeypatch):
    """The sinr-linear preset — the gain-table evaluator the compiled
    lane just gained — batches through the JIT route bit-identically."""
    specs = [
        preset_spec("sinr-linear", nodes=8, seed=seed, frames=20,
                    scheduler="hm")
        for seed in range(3)
    ]
    _assert_jit_matches_serial(specs, monkeypatch)


def test_jit_forced_group_split(monkeypatch):
    """padding_ratio=1 forces one batch per distinct size; the split
    batches must each take the JIT route and stay bit-identical."""
    base = MATRIX_SPECS["kv-linear"]
    specs = [
        base.replace(seed=0),
        base.replace(seed=1, topology_kwargs={"num_nodes": 14}),
    ]
    serial = run_scenario_fleet(specs, SerialExecutor())
    _force_jit(monkeypatch)

    sizes: list = []
    real = batched_mod.run_batched_streams_jit

    def spy(streams):
        sizes.append(len(streams))
        return real(streams)

    monkeypatch.setattr(batched_mod, "run_batched_streams_jit", spy)
    batched = run_scenario_fleet(
        specs, BatchedExecutor(padding_ratio=1.0)
    )
    assert records_equal(serial.records, batched.records)
    assert len(sizes) >= 2 and all(size >= 1 for size in sizes)


# ----------------------------------------------------------------------
# Routing: which groups take the JIT lane at all
# ----------------------------------------------------------------------


def test_jit_group_supported_gating(monkeypatch):
    """Compiled evaluators route to the JIT driver exactly when numba
    is importable; uncompiled models never do."""
    import repro

    net = repro.random_sinr_network(6, rng=1)
    sinr = repro.linear_power_model(net, alpha=3.0, beta=1.0, noise=0.02)
    from repro.interference.mac import MultipleAccessChannel
    from repro.network.topology import mac_network

    assert jit_group_supported(sinr) == _runloop_numba.NUMBA_AVAILABLE
    monkeypatch.setattr(_runloop_numba, "NUMBA_AVAILABLE", True)
    assert jit_group_supported(sinr)
    assert jit_group_supported(sinr, scheduler="hm") == (
        _runloop_numba._pairwise_self_check()
    )
    assert not jit_group_supported(MultipleAccessChannel(mac_network(4)))


# ----------------------------------------------------------------------
# Aggregated fallback warnings (satellite b)
# ----------------------------------------------------------------------


def _mixed_fleet_specs():
    """4 units, 3 ineligible for 2 distinct reasons, 1 eligible."""
    unbatchable = ScenarioSpec(
        topology="mac",
        topology_kwargs={"num_stations": 4},
        model="mac",
        scheduler="round-robin",
        frames=20,
    )
    scalar = MATRIX_SPECS["kv-linear"].replace(backend="scalar")
    return [
        unbatchable.replace(seed=0),
        scalar.replace(seed=1),
        scalar.replace(seed=2),
        MATRIX_SPECS["kv-linear"].replace(seed=3),
    ]


def test_mixed_fleet_emits_one_aggregated_warning():
    """A fleet with several distinct fallbacks warns ONCE, with every
    reason and its count in the message — not once per unit."""
    specs = _mixed_fleet_specs()
    serial = run_scenario_fleet(specs, SerialExecutor())
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        batched = run_scenario_fleet(specs, BatchedExecutor())
    fallback = [
        w for w in caught if issubclass(w.category, BatchFallbackWarning)
    ]
    assert len(fallback) == 1, (
        f"expected one aggregated warning, got {len(fallback)}"
    )
    message = str(fallback[0].message)
    assert "3 of 4" in message
    assert "no fused policy" in message and "[x1]" in message
    assert "no fused run loop" in message and "[x2]" in message
    assert records_equal(serial.records, batched.records)


def test_mixed_fleet_strict_still_raises_per_unit():
    """strict keeps its precise per-unit contract: the first
    ineligible position raises immediately, reason attached."""
    with pytest.raises(ConfigurationError,
                       match=r"fleet unit 0 cannot batch"):
        run_scenario_fleet(
            _mixed_fleet_specs(), BatchedExecutor(strict=True)
        )
