"""Power assignments and the monotone sub-linear condition."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.topology import line_network
from repro.sinr.power import (
    ExplicitPower,
    LinearPower,
    SquareRootPower,
    UniformPower,
    is_monotone_sublinear,
)


@pytest.fixture(scope="module")
def varied_net():
    """A geometric network with genuinely different link lengths."""
    from repro.geometry.point import Point
    from repro.network.network import Network

    points = [Point(0, 0), Point(1, 0), Point(3, 0), Point(7, 0)]
    return Network(
        4, [(0, 1), (1, 2), (2, 3)], positions=points
    )  # lengths 1, 2, 4


def test_uniform_power_constant(varied_net):
    powers = UniformPower(2.0).powers(varied_net, alpha=3.0)
    assert np.allclose(powers, 2.0)


def test_linear_power_is_length_cubed(varied_net):
    powers = LinearPower().powers(varied_net, alpha=3.0)
    assert np.allclose(powers, [1.0, 8.0, 64.0])


def test_linear_power_received_signal_equal(varied_net):
    alpha = 3.0
    powers = LinearPower(5.0).powers(varied_net, alpha)
    lengths = varied_net.link_lengths()
    received = powers / lengths**alpha
    assert np.allclose(received, received[0])


def test_square_root_power(varied_net):
    powers = SquareRootPower().powers(varied_net, alpha=2.0)
    assert np.allclose(powers, [1.0, 2.0, 4.0])


def test_explicit_power_checks_shape_and_sign(varied_net):
    good = ExplicitPower(np.array([1.0, 2.0, 3.0]))
    assert np.allclose(good.powers(varied_net, 3.0), [1, 2, 3])
    with pytest.raises(ConfigurationError):
        ExplicitPower(np.array([1.0, -2.0]))
    bad_shape = ExplicitPower(np.array([1.0, 2.0]))
    with pytest.raises(ConfigurationError):
        bad_shape.powers(varied_net, 3.0)


def test_scale_must_be_positive():
    with pytest.raises(ConfigurationError):
        LinearPower(0.0)
    with pytest.raises(ConfigurationError):
        UniformPower(-1.0)


@pytest.mark.parametrize(
    "assignment,expected",
    [
        (UniformPower(1.0), False),  # monotone but not sub-linear... see below
        (LinearPower(1.0), True),
        (SquareRootPower(1.0), True),
    ],
)
def test_monotone_sublinear_classification(varied_net, assignment, expected):
    # Uniform power *is* monotone (constant) and p/d^alpha decreasing,
    # so it actually qualifies; fix the expectation accordingly.
    powers = assignment.powers(varied_net, alpha=3.0)
    result = is_monotone_sublinear(varied_net, powers, alpha=3.0)
    if isinstance(assignment, UniformPower):
        assert result is True
    else:
        assert result is expected


def test_monotone_sublinear_rejects_decreasing_power(varied_net):
    powers = np.array([4.0, 2.0, 1.0])  # longer links get LESS power
    assert not is_monotone_sublinear(varied_net, powers, alpha=3.0)


def test_monotone_sublinear_rejects_superlinear(varied_net):
    lengths = varied_net.link_lengths()
    powers = lengths**5.0  # grows faster than d^alpha for alpha=3
    assert not is_monotone_sublinear(varied_net, powers, alpha=3.0)


def test_describe_strings(varied_net):
    assert "uniform" in UniformPower(1.0).describe()
    assert "linear" in LinearPower(1.0).describe()
    assert "sqrt" in SquareRootPower(1.0).describe()
