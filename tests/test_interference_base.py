"""InterferenceModel base-class contracts and the linear measure."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.interference.base import request_vector
from repro.interference.matrix_model import AffectanceThresholdModel
from repro.network.network import Network


def triangle_model(threshold=1.0):
    net = Network(3, [(0, 1), (1, 2), (2, 0)])
    weights = np.array(
        [
            [1.0, 0.5, 0.0],
            [0.5, 1.0, 0.5],
            [0.0, 0.5, 1.0],
        ]
    )
    return AffectanceThresholdModel(net, weights, threshold=threshold)


def test_request_vector_counts_multiplicity():
    vec = request_vector(4, [0, 2, 2, 3])
    assert vec.tolist() == [1.0, 0.0, 2.0, 1.0]


def test_request_vector_rejects_out_of_range():
    with pytest.raises(SchedulingError):
        request_vector(2, [2])


def test_weight_matrix_cached_and_read_only():
    model = triangle_model()
    w1 = model.weight_matrix()
    assert w1 is model.weight_matrix()
    with pytest.raises(ValueError):
        w1[0, 0] = 0.5


def test_weight_accessor():
    model = triangle_model()
    assert model.weight(0, 1) == 0.5
    assert model.weight(0, 2) == 0.0


def test_interference_measure_full_infinity_norm():
    model = triangle_model()
    # Only link 0 requested: column 0 of W is [1, 0.5, 0], max = 1.
    assert model.interference_measure([0]) == 1.0
    # Links 0 and 2: W.[1,0,1] = [1, 1, 1] -> 1 (row 1's exposure counts
    # even though link 1 carries nothing: the paper's norm is over all e).
    assert model.interference_measure([0, 2]) == 1.0
    # All three: row 1 sees 0.5 + 1 + 0.5.
    assert model.interference_measure([0, 1, 2]) == 2.0


def test_interference_measure_accepts_vector():
    model = triangle_model()
    vec = np.array([2.0, 0.0, 0.0])
    assert model.interference_measure(vec) == 2.0


def test_interference_measure_empty_is_zero():
    model = triangle_model()
    assert model.interference_measure([]) == 0.0
    assert model.interference_measure(np.zeros(3)) == 0.0


def test_interference_measure_monotone_in_requests():
    model = triangle_model()
    small = model.interference_measure([0, 1])
    large = model.interference_measure([0, 1, 1, 2])
    assert large >= small


def test_injection_norm_uses_all_rows():
    model = triangle_model()
    usage = np.array([1.0, 0.0, 0.0])
    # Row 1 sees 0.5 even though link 1 itself carries nothing.
    assert model.injection_norm(usage) == 1.0
    usage2 = np.array([0.0, 1.0, 0.0])
    assert model.injection_norm(usage2) == 1.0


def test_bad_vector_shape_rejected():
    model = triangle_model()
    with pytest.raises(SchedulingError):
        model.interference_measure(np.zeros(5))


def test_successes_duplicate_rejected():
    model = triangle_model()
    with pytest.raises(SchedulingError, match="duplicate"):
        model.successes([0, 0])


def test_feasible_set_and_singletons():
    model = triangle_model()
    assert model.singleton_succeeds(0)
    assert model.feasible_set([0, 2])  # no mutual impact
    assert model.feasible_set([0, 1])  # 0.5 <= 1 both ways
    model.check_all_singletons()  # should not raise


def test_weight_matrix_validation_rejects_bad_diagonal():
    net = Network(2, [(0, 1), (1, 0)])
    bad = np.array([[0.5, 0.0], [0.0, 1.0]])
    model = AffectanceThresholdModel(net, bad)
    with pytest.raises(ConfigurationError, match="diagonal"):
        model.weight_matrix()


def test_weight_matrix_validation_rejects_out_of_range():
    net = Network(2, [(0, 1), (1, 0)])
    bad = np.array([[1.0, 1.5], [0.0, 1.0]])
    model = AffectanceThresholdModel(net, bad)
    with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
        model.weight_matrix()


def test_weight_matrix_validation_rejects_wrong_shape():
    net = Network(3, [(0, 1), (1, 2), (2, 0)])
    model = AffectanceThresholdModel(net, np.eye(2))
    with pytest.raises(ConfigurationError, match="shape"):
        model.weight_matrix()
