"""Rayleigh block fading: stochastic channel gains for the SINR model.

The paper's Section-9 discussion motivates unreliable transmissions
("each transmission is lost with some probability even if interference
is small enough"). Rayleigh fading is the standard physical mechanism
behind that abstraction: every channel gain is multiplied by an
independent unit-mean exponential coefficient (the squared magnitude of
a Rayleigh-distributed amplitude), redrawn each slot (block fading).

:class:`RayleighFadingSinrModel` extends the exact
:class:`~repro.sinr.model.SinrModel` predicate with per-slot fading.
The impact matrix ``W`` (and therefore the interference measure, the
injection bounds and the frame sizing) is computed from the *mean*
gains — fading only perturbs the ground-truth success predicate,
mirroring how :class:`~repro.interference.unreliable.UnreliableModel`
thins successes without touching ``W``.

The model is analytically tractable: with unit-mean exponential fades
the success probability of link ``j`` transmitting in set ``S`` has the
classical closed form

.. math::

    P[j \\text{ succeeds}] = e^{-\\beta \\nu / s_j}
        \\prod_{k \\in S, k \\neq j} \\frac{1}{1 + \\beta i_{kj} / s_j}

where ``s_j`` is the mean received signal and ``i_kj`` the mean
interference from ``k`` at ``j``'s receiver.
:meth:`RayleighFadingSinrModel.success_probability` evaluates it
exactly, which both the tests (Monte-Carlo agreement) and the budget
sizing (:func:`fading_budget_factor`) build on.

Slot convention — as with the jamming wrapper, each call to
``successes()`` (or ``successes_with_powers``) consumes one slot of
fading randomness; probes advance the RNG.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.network.network import Network
from repro.sinr.model import SinrModel
from repro.sinr.power import PowerAssignment
from repro.utils.rng import RngLike, ensure_rng


class RayleighFadingSinrModel(SinrModel):
    """SINR with unit-mean exponential (Rayleigh power) block fading.

    Accepts every :class:`~repro.sinr.model.SinrModel` parameter plus a
    fading ``rng``. Mean behaviour (``weight_matrix``, ``sinr``,
    ``interference_measure``) is that of the non-faded model; only the
    slot-by-slot success predicate is stochastic.
    """

    def __init__(
        self,
        network: Network,
        alpha: float = 3.0,
        beta: float = 1.0,
        noise: float = 0.0,
        power: Optional[PowerAssignment] = None,
        weight_matrix: Optional[np.ndarray] = None,
        rng: RngLike = None,
    ):
        super().__init__(
            network,
            alpha=alpha,
            beta=beta,
            noise=noise,
            power=power,
            weight_matrix=weight_matrix,
        )
        self._fading_rng = ensure_rng(rng)

    def state_dict(self) -> dict:
        """Mutable state: the fading RNG."""
        return {"rng": self._fading_rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        from repro.utils.rng import restore_generator_state

        restore_generator_state(self._fading_rng, state["rng"])

    def _evaluate(self, ids: np.ndarray, powers: np.ndarray) -> Set[int]:
        gains = self._gains[np.ix_(ids, ids)]
        fades = self._fading_rng.exponential(1.0, size=gains.shape)
        received = powers[:, None] * gains * fades
        signal = np.diag(received)
        interference = received.sum(axis=0) - signal
        ok = signal >= self.beta * (interference + self.noise) - 1e-12
        return {int(link) for link, good in zip(ids, ok) if good}

    # ------------------------------------------------------------------
    # Closed-form success probabilities
    # ------------------------------------------------------------------

    def success_probability(self, transmitting: Sequence[int]) -> np.ndarray:
        """Exact per-link success probabilities for one faded slot.

        Returns an array aligned with ``sorted(set(transmitting))`` —
        the same order ``successes`` evaluates. Uses the closed form
        for unit-mean exponential fades (see module docstring).
        """
        attempted = self._check_no_duplicates(transmitting)
        if not attempted:
            return np.zeros(0, dtype=float)
        ids = np.fromiter(sorted(attempted), dtype=int)
        powers = self.powers[ids]
        gains = self._gains[np.ix_(ids, ids)]
        received = powers[:, None] * gains  # mean receptions [k, j]
        out = np.empty(len(ids), dtype=float)
        for j in range(len(ids)):
            signal = received[j, j]
            if signal <= 0:
                out[j] = 0.0
                continue
            probability = float(np.exp(-self.beta * self.noise / signal))
            for k in range(len(ids)):
                if k == j:
                    continue
                probability /= 1.0 + self.beta * received[k, j] / signal
            out[j] = probability
        return out

    def singleton_success_probability(self, link_id: int) -> float:
        """``exp(-beta * noise / mean_signal)`` for a lone transmission."""
        if not 0 <= link_id < self.num_links:
            raise ConfigurationError(
                f"link {link_id} is outside 0..{self.num_links - 1}"
            )
        return float(self.success_probability([link_id])[0])


def fading_budget_factor(
    success_probability: float, slack: float = 1.5
) -> float:
    """Budget multiplier for a fading success probability: ``slack / p``.

    A transmission that the non-faded model certifies now succeeds with
    probability ``p``; schedules stretch by ``~1/p`` in expectation,
    the same geometry as :func:`~repro.interference.unreliable.
    reliability_budget_factor` with loss ``1 - p``.
    """
    if not 0.0 < success_probability <= 1.0:
        raise ConfigurationError(
            "success_probability must be in (0, 1], got "
            f"{success_probability}"
        )
    if slack < 1.0:
        raise ConfigurationError(f"slack must be >= 1, got {slack}")
    return slack / success_probability


def worst_singleton_success(model: RayleighFadingSinrModel) -> float:
    """The smallest singleton success probability over all links.

    The conservative per-attempt success floor used to size budgets:
    every schedule's transmissions succeed at least this often
    (interference-free case; interference lowers it further, which the
    ``slack`` in :func:`fading_budget_factor` absorbs for the sparse
    sets the protocol schedules).
    """
    probabilities = [
        model.singleton_success_probability(link)
        for link in range(model.num_links)
    ]
    if not probabilities:
        raise ConfigurationError("model has no links")
    return float(min(probabilities))


__all__ = [
    "RayleighFadingSinrModel",
    "fading_budget_factor",
    "worst_singleton_success",
]
