"""The Section-6 weight-matrix constructions.

Three regimes, three matrices (all with unit diagonal, entries in
``[0, 1]``; convention ``W[l, l'] =`` impact on ``l`` from ``l'``):

* **linear power** (Section 6.1, Corollary 12):
  ``W[l, l'] = a_p(l', l)`` with ``p`` the linear assignment. The
  induced measure matches Fanghaenel-Kesselheim-Voecking up to
  constants, and feasible single-slot sets have measure ``O(1)``.
* **monotone sub-linear power** (Section 6.1, Corollary 13):
  ``W[l, l'] = max{a_p(l, l'), a_p(l', l)}`` when ``d(l) <= d(l')``,
  0 otherwise — each link is only charged against *longer* links.
* **free power control** (Section 6.2, Corollary 14): the power-
  oblivious geometry term
  ``W[l, l'] = min{1, d(l)**alpha/d(s, r')**alpha + d(l)**alpha/d(s', r)**alpha}``
  when ``d(l) <= d(l')``, 0 otherwise, where ``l = (s, r)`` is the
  shorter link. This is the measure Kesselheim's SODA'11 algorithm
  schedules against.

Each helper returns the matrix; ``*_model`` helpers return a ready
:class:`~repro.sinr.model.SinrModel` with matched predicate and weights.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.network.network import Network
from repro.sinr.affectance import affectance_matrix
from repro.sinr.model import SinrModel
from repro.sinr.power import (
    LinearPower,
    PowerAssignment,
    is_monotone_sublinear,
)


def linear_power_weights(
    network: Network,
    alpha: float,
    beta: float,
    noise: float,
    scale: float = 1.0,
) -> np.ndarray:
    """``W[l, l'] = a_p(l', l)`` under the linear power assignment."""
    powers = LinearPower(scale).powers(network, alpha)
    affect = affectance_matrix(network, powers, alpha, beta, noise)
    return affect.T.copy()


def monotone_power_weights(
    network: Network,
    power: PowerAssignment,
    alpha: float,
    beta: float,
    noise: float,
    verify_monotone: bool = True,
) -> np.ndarray:
    """Corollary-13 weights: symmetrised affectance charged to shorter links."""
    powers = power.powers(network, alpha)
    if verify_monotone and not is_monotone_sublinear(network, powers, alpha):
        raise ConfigurationError(
            f"power assignment {power.describe()} is not monotone sub-linear"
        )
    affect = affectance_matrix(network, powers, alpha, beta, noise)
    lengths = network.link_lengths()
    symmetric = np.maximum(affect, affect.T)
    # Charge l only against links l' at least as long; ties resolved by id
    # so that exactly one of each pair carries the weight.
    shorter = _charge_mask(lengths)
    matrix = np.where(shorter, symmetric, 0.0)
    np.fill_diagonal(matrix, 1.0)
    return matrix


def power_control_weights(network: Network, alpha: float) -> np.ndarray:
    """Corollary-14 weights: the power-oblivious geometric interference term.

    For ``l = (s, r)`` shorter than ``l' = (s', r')``:
    ``min{1, d(l)**a / d(s, r')**a + d(l)**a / d(s', r)**a}``.
    """
    if not network.is_geometric:
        raise ConfigurationError("power-control weights require geometry")
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    pairwise = network.metric.pairwise()
    links = network.links
    lengths = network.link_lengths()
    n = len(links)
    senders = np.asarray([link.sender for link in links])
    receivers = np.asarray([link.receiver for link in links])
    # cross_sr[l, l'] = d(s_l, r_{l'}); cross_rs[l, l'] = d(s_{l'}, r_l).
    cross_sr = pairwise[np.ix_(senders, receivers)]
    cross_rs = cross_sr.T
    with np.errstate(divide="ignore"):
        term = np.zeros((n, n), dtype=float)
        own = lengths[:, None] ** alpha
        term_sr = np.where(cross_sr > 0, own / cross_sr**alpha, np.inf)
        term_rs = np.where(cross_rs > 0, own / cross_rs**alpha, np.inf)
        term = term_sr + term_rs
    matrix = np.minimum(1.0, term)
    shorter = _charge_mask(lengths)
    matrix = np.where(shorter, matrix, 0.0)
    np.fill_diagonal(matrix, 1.0)
    return matrix


def _charge_mask(lengths: np.ndarray) -> np.ndarray:
    """``mask[l, l']`` true iff ``l`` is charged against ``l'``.

    True when ``d(l) < d(l')``, with id tie-breaking for equal lengths
    so each unordered pair is charged in exactly one direction.
    """
    n = lengths.shape[0]
    ids = np.arange(n)
    strictly_shorter = lengths[:, None] < lengths[None, :]
    tie = (lengths[:, None] == lengths[None, :]) & (ids[:, None] < ids[None, :])
    return strictly_shorter | tie


def linear_power_model(
    network: Network,
    alpha: float = 3.0,
    beta: float = 1.0,
    noise: float = 0.0,
    scale: float = 1.0,
) -> SinrModel:
    """SINR model with linear powers and the matched Corollary-12 weights."""
    weights = linear_power_weights(network, alpha, beta, noise, scale)
    return SinrModel(
        network,
        alpha=alpha,
        beta=beta,
        noise=noise,
        power=LinearPower(scale),
        weight_matrix=weights,
    )


def monotone_power_model(
    network: Network,
    power: PowerAssignment,
    alpha: float = 3.0,
    beta: float = 1.0,
    noise: float = 0.0,
) -> SinrModel:
    """SINR model with a monotone sub-linear assignment and Cor.-13 weights."""
    weights = monotone_power_weights(network, power, alpha, beta, noise)
    return SinrModel(
        network,
        alpha=alpha,
        beta=beta,
        noise=noise,
        power=power,
        weight_matrix=weights,
    )


__all__ = [
    "linear_power_weights",
    "monotone_power_weights",
    "power_control_weights",
    "linear_power_model",
    "monotone_power_model",
]
