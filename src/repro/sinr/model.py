"""The exact SINR interference model.

:class:`SinrModel` is the ground-truth success predicate for all
Section-6 experiments: given the set of links transmitting in a slot
(and their powers — fixed by the assignment, or supplied per-slot by a
power-control scheduler), it evaluates the SINR inequality exactly with
vectorised numpy.

The model's impact matrix ``W`` is pluggable because the paper chooses
different ``W`` for different power regimes (Section 6.1/6.2); the
factory helpers in :mod:`repro.sinr.weights` build matched
(model, weights) pairs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.interference.base import CachedBatchEvaluator, InterferenceModel
from repro.network.network import Network
from repro.sinr.affectance import affectance_matrix, sender_receiver_gains
from repro.sinr.power import PowerAssignment, UniformPower


class _SinrBatchEvaluator(CachedBatchEvaluator):
    """SINR feasibility on a cached busy-set gain submatrix.

    Slicing the cached submatrix reproduces the scalar ``_evaluate``
    gather exactly (same entries, same reduction order), so the batch
    path is bit-identical to the reference even at SINR boundaries.
    """

    def __init__(self, model: "SinrModel", busy: np.ndarray):
        super().__init__(busy)
        self._gains = model._gains[np.ix_(busy, busy)]
        self._powers = model._powers[busy]
        self._beta = model.beta
        self._noise = model.noise

    def successes_local(self, transmit_local: np.ndarray) -> np.ndarray:
        cache_idx = self._cols[transmit_local]
        gains = self._gains[cache_idx[:, None], cache_idx]
        received = self._powers[cache_idx, None] * gains
        signal = received.diagonal()
        interference = received.sum(axis=0) - signal
        ok = signal >= self._beta * (interference + self._noise) - 1e-12
        mask = np.zeros(transmit_local.size, dtype=bool)
        mask[transmit_local] = ok
        return mask


class SinrModel(InterferenceModel):
    """Exact SINR feasibility over a geometric network.

    Parameters
    ----------
    network:
        A geometric network (positions or metric required).
    alpha:
        Path-loss exponent (typically 2-6; the plane needs ``alpha > 2``
        for bounded interference sums, but the model itself accepts any
        positive value).
    beta:
        SINR threshold.
    noise:
        Ambient noise ``nu >= 0``.
    power:
        Fixed power assignment; defaults to uniform power 1.
    weight_matrix:
        Optional explicit ``W``. Defaults to the affectance-based matrix
        ``W[l, l'] = a_p(l', l)`` for the fixed assignment — the
        Section-6.1 construction.
    """

    def __init__(
        self,
        network: Network,
        alpha: float = 3.0,
        beta: float = 1.0,
        noise: float = 0.0,
        power: Optional[PowerAssignment] = None,
        weight_matrix: Optional[np.ndarray] = None,
    ):
        if not network.is_geometric:
            raise ConfigurationError("SINR model requires a geometric network")
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {alpha}")
        if beta <= 0:
            raise ConfigurationError(f"beta must be positive, got {beta}")
        if noise < 0:
            raise ConfigurationError(f"noise must be non-negative, got {noise}")
        super().__init__(network)
        self._alpha = float(alpha)
        self._beta = float(beta)
        self._noise = float(noise)
        self._power = power if power is not None else UniformPower(1.0)
        self._powers = np.asarray(
            self._power.powers(network, self._alpha), dtype=float
        )
        if self._powers.shape != (network.num_links,):
            raise ConfigurationError("power assignment returned a wrong-sized vector")
        if (self._powers <= 0).any():
            raise ConfigurationError("power assignment returned non-positive powers")
        self._gains = sender_receiver_gains(network, self._alpha)
        self._explicit_weights = weight_matrix

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------

    @property
    def alpha(self) -> float:
        """Path-loss exponent."""
        return self._alpha

    @property
    def beta(self) -> float:
        """SINR threshold."""
        return self._beta

    @property
    def noise(self) -> float:
        """Ambient noise ``nu``."""
        return self._noise

    @property
    def power_assignment(self) -> PowerAssignment:
        """The fixed power assignment."""
        return self._power

    @property
    def powers(self) -> np.ndarray:
        """Per-link fixed powers (read-only view)."""
        view = self._powers.view()
        view.setflags(write=False)
        return view

    def signal_strengths(self) -> np.ndarray:
        """Mean received signal ``p(l) * g(l, l)`` per link.

        The numerator of each link's SINR (and the scale fading is
        relative to); a link is individually feasible iff its entry
        exceeds ``beta * noise``.
        """
        return self._powers * np.diag(self._gains)

    # ------------------------------------------------------------------
    # Measure
    # ------------------------------------------------------------------

    def _build_weight_matrix(self) -> np.ndarray:
        if self._explicit_weights is not None:
            return np.asarray(self._explicit_weights, dtype=float)
        affect = affectance_matrix(
            self.network, self._powers, self._alpha, self._beta, self._noise
        )
        # W[e, e'] = impact ON e FROM e' = a_p(e', e) -> transpose.
        return affect.T.copy()

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------

    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        """Exact SINR evaluation under the fixed power assignment."""
        attempted = self._check_no_duplicates(transmitting)
        if not attempted:
            return set()
        ids = np.fromiter(sorted(attempted), dtype=int)
        return self._evaluate(ids, self._powers[ids])

    def successes_mask(self, active: np.ndarray) -> np.ndarray:
        active = self._as_active_mask(active)
        mask = np.zeros(self.num_links, dtype=bool)
        if not active.any():
            return mask
        ids = np.flatnonzero(active)
        winners = self._evaluate(ids, self._powers[ids])
        if winners:
            mask[np.fromiter(winners, dtype=np.int64)] = True
        return mask

    def batch_evaluator(self, busy: np.ndarray) -> _SinrBatchEvaluator:
        return _SinrBatchEvaluator(self, busy)

    def successes_with_powers(
        self, transmitting: Sequence[int], powers: Sequence[float]
    ) -> Set[int]:
        """Exact SINR evaluation with per-slot powers (power control).

        ``powers[k]`` is the power used by ``transmitting[k]`` in this
        slot. Used by the Corollary-14 machinery where the algorithm
        picks powers per transmission.
        """
        attempted = self._check_no_duplicates(transmitting)
        ids = np.asarray(list(transmitting), dtype=int)
        power_arr = np.asarray(list(powers), dtype=float)
        if power_arr.shape != ids.shape:
            raise ConfigurationError(
                "one power per transmitting link required "
                f"(got {power_arr.shape[0]} powers for {ids.shape[0]} links)"
            )
        if (power_arr <= 0).any():
            raise ConfigurationError("transmission powers must be positive")
        if not attempted:
            return set()
        return self._evaluate(ids, power_arr)

    def _evaluate(self, ids: np.ndarray, powers: np.ndarray) -> Set[int]:
        gains = self._gains[np.ix_(ids, ids)]
        received = powers[:, None] * gains  # [k, j]: from sender k at receiver j
        signal = np.diag(received)
        interference = received.sum(axis=0) - signal
        ok = signal >= self._beta * (interference + self._noise) - 1e-12
        return {int(link) for link, good in zip(ids, ok) if good}

    def sinr(self, link_id: int, transmitting: Sequence[int]) -> float:
        """The SINR experienced by ``link_id`` within the given set.

        ``link_id`` must be one of the transmitting links. Returns
        ``inf`` when there is neither interference nor noise.
        """
        ids = list(transmitting)
        if link_id not in ids:
            raise ConfigurationError(
                f"link {link_id} is not among the transmitting links"
            )
        arr = np.asarray(ids, dtype=int)
        gains = self._gains[np.ix_(arr, arr)]
        received = self._powers[arr][:, None] * gains
        j = ids.index(link_id)
        signal = float(received[j, j])
        interference = float(received[:, j].sum() - received[j, j])
        denominator = interference + self._noise
        if denominator == 0:
            return float("inf")
        return signal / denominator


__all__ = ["SinrModel"]
