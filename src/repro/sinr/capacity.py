"""Power-control capacity selection (Kesselheim, SODA 2011 style).

Corollary 14 relies on a centralized algorithm that, when transmission
powers are free, serves requests of measure ``I`` (under the
power-control weights of Section 6.2) in ``O(I log n)`` slots. The core
per-slot primitive is *capacity selection*: pick a subset of the pending
links plus powers so that the whole subset is simultaneously SINR-
feasible.

Re-implementation of the SODA'11 mechanism:

1. **Selection.** Process pending links in increasing length. Greedily
   admit link ``l`` if its accumulated power-control weight against the
   already admitted set stays below a budget ``tau`` (counted in both
   directions — admitted links must tolerate ``l`` too).
2. **Power assignment.** Process the admitted set in *decreasing*
   length. Each link's power is set to overcome noise plus a factor-2
   margin over the interference from the already-powered (longer)
   links: ``p(l) = 2 * beta * d(l)**alpha * (nu + I_longer(r))``.
   Longer links tolerate the shorter ones because the selection budget
   capped the geometric weight.
3. **Verification.** The exact SINR predicate is evaluated; any violator
   is dropped (with the default budget this is rare — the drop keeps
   the primitive *sound* regardless of constants).

The constants differ from the original analysis (which needs a page of
case distinctions); soundness here is enforced by step 3, and the
O(I log n) scaling is validated empirically in the E7 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.network.network import Network
from repro.sinr.model import SinrModel
from repro.sinr.weights import power_control_weights


@dataclass
class CapacitySelection:
    """Result of one capacity-selection round."""

    links: List[int] = field(default_factory=list)
    powers: Dict[int, float] = field(default_factory=dict)

    def power_list(self) -> List[float]:
        """Powers aligned with :attr:`links`."""
        return [self.powers[link] for link in self.links]


def assign_powers_decreasing(
    model: SinrModel, links: Sequence[int], margin: float = 2.0
) -> Dict[int, float]:
    """Assign powers to ``links`` processing from longest to shortest.

    Each link receives power ``margin * beta * d**alpha * (noise + I)``
    where ``I`` is the interference its receiver gets from the
    already-powered (longer) links. With zero noise the longest link
    gets power ``margin * beta * d**alpha`` (normalised base power 1 per
    unit gain).
    """
    if margin <= 1.0:
        raise ConfigurationError(f"margin must exceed 1, got {margin}")
    network = model.network
    lengths = network.link_lengths()
    pairwise = network.metric.pairwise()
    ordered = sorted(links, key=lambda e: (-lengths[e], e))
    powers: Dict[int, float] = {}
    for link_id in ordered:
        link = network.link(link_id)
        interference = 0.0
        for other_id, p_other in powers.items():
            other = network.link(other_id)
            dist = pairwise[other.sender, link.receiver]
            if dist <= 0:
                interference = float("inf")
                break
            interference += p_other / dist**model.alpha
        base = model.beta * (model.noise + interference)
        # Floor the power so isolated links (zero noise, no interference)
        # still transmit with a strictly positive power.
        powers[link_id] = max(margin * base, 1.0) * lengths[link_id] ** model.alpha
    return powers


class PowerControlCapacity:
    """Per-slot capacity selection with free power control.

    Parameters
    ----------
    model:
        The SINR ground truth (its fixed assignment is ignored; powers
        are chosen per slot).
    tau:
        Admission budget on the accumulated power-control weight within
        a slot. Smaller values admit fewer, safer links. The default
        1/4 keeps the verification drop rate negligible for alpha >= 3.
    margin:
        Power head-room factor passed to :func:`assign_powers_decreasing`.
    """

    def __init__(self, model: SinrModel, tau: float = 0.25, margin: float = 2.0):
        if tau <= 0:
            raise ConfigurationError(f"tau must be positive, got {tau}")
        self._model = model
        self._tau = float(tau)
        self._margin = float(margin)
        self._weights = power_control_weights(model.network, model.alpha)
        self._lengths = model.network.link_lengths()

    @property
    def weights(self) -> np.ndarray:
        """The Section-6.2 power-control weight matrix."""
        return self._weights

    def select(self, pending: Sequence[int]) -> CapacitySelection:
        """Pick a feasible subset of ``pending`` links and their powers."""
        admitted: List[int] = []
        for link_id in sorted(pending, key=lambda e: (self._lengths[e], e)):
            if self._admissible(link_id, admitted):
                admitted.append(link_id)
        if not admitted:
            return CapacitySelection()
        powers = assign_powers_decreasing(self._model, admitted, self._margin)
        surviving = self._model.successes_with_powers(
            admitted, [powers[e] for e in admitted]
        )
        kept = [e for e in admitted if e in surviving]
        return CapacitySelection(kept, {e: powers[e] for e in kept})

    def _admissible(self, link_id: int, admitted: List[int]) -> bool:
        if not admitted:
            return True
        ids = np.asarray(admitted, dtype=int)
        # Weight the candidate suffers from admitted links, and the
        # worst weight any admitted link would suffer with the candidate
        # added (both directions must stay within budget).
        suffered = float(self._weights[link_id, ids].sum())
        inflicted = float(self._weights[ids, link_id].max()) if ids.size else 0.0
        return suffered <= self._tau and inflicted <= self._tau


__all__ = ["PowerControlCapacity", "CapacitySelection", "assign_powers_decreasing"]
