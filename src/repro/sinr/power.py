"""Power assignments for SINR links (paper Section 6).

A power assignment maps every link to a fixed transmission power. The
regimes the paper distinguishes:

* :class:`UniformPower` — every link uses the same power. The baseline
  "no power control" case (and the setting of the Theorem-20 lower
  bound).
* :class:`LinearPower` — ``p(l) proportional to d(l)**alpha``: every
  receiver hears its own sender at the same strength. The paper's best
  case (constant-competitive, Corollary 12).
* :class:`SquareRootPower` — ``p(l) proportional to d(l)**(alpha/2)``,
  the oblivious assignment of Fanghaenel et al. / Halldorsson giving
  ``O(log log Delta)``-type factors (Section 6.2).
* any custom assignment; :func:`is_monotone_sublinear` checks the
  condition Corollary 13 needs (longer links use at least as much power,
  but no more per-distance-gain: ``p`` monotone and ``p/d**alpha``
  non-increasing).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError
from repro.network.network import Network
from repro.utils.validation import check_positive


class PowerAssignment(ABC):
    """Maps each link of a network to a fixed transmission power."""

    @abstractmethod
    def powers(self, network: Network, alpha: float) -> np.ndarray:
        """Per-link powers (array indexed by link id), all positive."""

    def describe(self) -> str:
        """Human-readable name used in experiment tables."""
        return type(self).__name__


class UniformPower(PowerAssignment):
    """Every link transmits at the same power ``level``."""

    def __init__(self, level: float = 1.0):
        self._level = check_positive("level", level)

    def powers(self, network: Network, alpha: float) -> np.ndarray:
        return np.full(network.num_links, self._level, dtype=float)

    def describe(self) -> str:
        return f"uniform({self._level})"


class LinearPower(PowerAssignment):
    """``p(l) = scale * d(l)**alpha`` — equal received signal strength."""

    def __init__(self, scale: float = 1.0):
        self._scale = check_positive("scale", scale)

    def powers(self, network: Network, alpha: float) -> np.ndarray:
        lengths = network.link_lengths()
        if (lengths <= 0).any():
            raise ConfigurationError("linear power requires positive link lengths")
        return self._scale * lengths**alpha

    def describe(self) -> str:
        return f"linear({self._scale})"


class SquareRootPower(PowerAssignment):
    """``p(l) = scale * d(l)**(alpha/2)`` — the oblivious 'mean' assignment."""

    def __init__(self, scale: float = 1.0):
        self._scale = check_positive("scale", scale)

    def powers(self, network: Network, alpha: float) -> np.ndarray:
        lengths = network.link_lengths()
        if (lengths <= 0).any():
            raise ConfigurationError("square-root power requires positive link lengths")
        return self._scale * lengths ** (alpha / 2.0)

    def describe(self) -> str:
        return f"sqrt({self._scale})"


class ExplicitPower(PowerAssignment):
    """An arbitrary per-link power vector supplied by the caller."""

    def __init__(self, powers: np.ndarray):
        powers = np.asarray(powers, dtype=float)
        if (powers <= 0).any():
            raise ConfigurationError("all powers must be positive")
        self._powers = powers

    def powers(self, network: Network, alpha: float) -> np.ndarray:
        if self._powers.shape != (network.num_links,):
            raise ConfigurationError(
                f"power vector has shape {self._powers.shape}, expected "
                f"({network.num_links},)"
            )
        return self._powers

    def describe(self) -> str:
        return "explicit"


def is_monotone_sublinear(
    network: Network, powers: np.ndarray, alpha: float, tolerance: float = 1e-9
) -> bool:
    """Check the Corollary-13 condition on a power vector.

    For links ``l, l'`` with ``d(l) <= d(l')`` we need ``p(l) <= p(l')``
    (monotone) and ``p(l)/d(l)**alpha >= p(l')/d(l')**alpha``
    (sub-linear). Sorting by length reduces both to monotonicity of two
    sequences.
    """
    lengths = network.link_lengths()
    order = np.argsort(lengths, kind="stable")
    p_sorted = np.asarray(powers, dtype=float)[order]
    gain_sorted = p_sorted / lengths[order] ** alpha
    monotone = bool((np.diff(p_sorted) >= -tolerance).all())
    sublinear = bool((np.diff(gain_sorted) <= tolerance).all())
    return monotone and sublinear


__all__ = [
    "PowerAssignment",
    "UniformPower",
    "LinearPower",
    "SquareRootPower",
    "ExplicitPower",
    "is_monotone_sublinear",
]
