"""The SINR (physical) interference model and its Section-6 instantiations.

Signal propagation follows power-law path loss: a transmission at power
``p`` is received at distance ``d`` with strength ``p / d**alpha``. A
transmission on link ``l = (s, r)`` succeeds within a simultaneous set
``S`` iff its signal-to-interference-plus-noise ratio clears the
threshold ``beta``:

    p(l) / d(s, r)**alpha  >=  beta * ( sum_{l' != l} p(l') / d(s', r)**alpha + nu )

This subpackage provides the exact feasibility check (vectorised), the
power assignments of Section 6 (uniform, linear, square-root, general
monotone sub-linear), affectance, the three weight-matrix constructions
(fixed linear power / monotone sub-linear power / free power control),
and a power-control capacity-selection routine in the style of
Kesselheim (SODA 2011) used by Corollary 14.
"""

from repro.sinr.model import SinrModel
from repro.sinr.power import (
    LinearPower,
    PowerAssignment,
    SquareRootPower,
    UniformPower,
    is_monotone_sublinear,
)
from repro.sinr.affectance import affectance, affectance_matrix
from repro.sinr.weights import (
    linear_power_weights,
    monotone_power_weights,
    power_control_weights,
)
from repro.sinr.capacity import PowerControlCapacity, assign_powers_decreasing
from repro.sinr.fading import (
    RayleighFadingSinrModel,
    fading_budget_factor,
    worst_singleton_success,
)

__all__ = [
    "SinrModel",
    "PowerAssignment",
    "UniformPower",
    "LinearPower",
    "SquareRootPower",
    "is_monotone_sublinear",
    "affectance",
    "affectance_matrix",
    "linear_power_weights",
    "monotone_power_weights",
    "power_control_weights",
    "PowerControlCapacity",
    "assign_powers_decreasing",
    "RayleighFadingSinrModel",
    "fading_budget_factor",
    "worst_singleton_success",
]
