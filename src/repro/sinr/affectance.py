"""Affectance: normalised pairwise interference (paper Section 6.1).

For links ``l = (s, r)`` and ``l' = (s', r')`` under power assignment
``p``, the affectance of ``l`` **on** ``l'`` is

    a_p(l, l') = min{ 1,  beta * (p(l) / d(s, r')**alpha)
                          / (p(l') / d(s', r')**alpha - beta * nu) }

i.e. the interference ``l``'s sender creates at ``l'``'s receiver,
normalised by ``l'``'s signal margin over noise, capped at 1. The
normalisation is chosen so that (ignoring the cap) a transmission on
``l'`` meets its SINR constraint within a set ``S`` iff

    sum_{l in S, l != l'} a_p(l, l') <= 1,

which is the bridge between the exact SINR predicate and the paper's
linear measure.

Array convention: ``affectance_matrix(...)[l, l_prime] = a_p(l, l_prime)``
(effect OF the row ON the column). The Section-6 weight matrices
transpose this as needed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, InfeasibleLinkError
from repro.network.network import Network


def sender_receiver_gains(network: Network, alpha: float) -> np.ndarray:
    """``G[l, l'] = 1 / d(s_l, r_{l'})**alpha`` — propagation gain matrix.

    Entry ``[l, l']`` is the channel gain from the *sender* of ``l`` to
    the *receiver* of ``l'``. The diagonal holds each link's own gain.

    Off-diagonal zero distances are legitimate — e.g. the sender of
    ``i -> j`` *is* the receiver of ``j -> i`` — and yield infinite
    gain: such a transmission always drowns the co-located reception
    (affectance caps it at 1; the exact SINR check fails it). A zero
    distance on the *diagonal* (a link's own sender on top of its own
    receiver) is a configuration error.
    """
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    pairwise = network.metric.pairwise()
    senders = np.asarray([link.sender for link in network.links])
    receivers = np.asarray([link.receiver for link in network.links])
    dist = pairwise[np.ix_(senders, receivers)]
    if (np.diag(dist) <= 0).any():
        raise ConfigurationError(
            "some link's sender is co-located with its own receiver; "
            "path loss undefined"
        )
    with np.errstate(divide="ignore"):
        return np.where(dist > 0, dist ** (-float(alpha)), np.inf)


def affectance_matrix(
    network: Network,
    powers: np.ndarray,
    alpha: float,
    beta: float,
    noise: float,
    cap: bool = True,
) -> np.ndarray:
    """The full affectance matrix ``A[l, l'] = a_p(l, l')``.

    Raises :class:`InfeasibleLinkError` if some link's signal does not
    clear ``beta * noise`` even without interference (its margin is
    non-positive, so no schedule could ever serve it).

    With ``cap=False`` the raw (uncapped) ratio is returned — useful for
    the exact additive criterion in tests.
    """
    if beta <= 0:
        raise ConfigurationError(f"beta must be positive, got {beta}")
    if noise < 0:
        raise ConfigurationError(f"noise must be non-negative, got {noise}")
    powers = np.asarray(powers, dtype=float)
    if powers.shape != (network.num_links,):
        raise ConfigurationError(
            f"power vector has shape {powers.shape}, expected "
            f"({network.num_links},)"
        )
    gains = sender_receiver_gains(network, alpha)
    received = powers[:, None] * gains  # received[l, l'] at receiver of l'
    own_signal = np.diag(received)  # signal of each link at its own receiver
    margin = own_signal - beta * noise
    for link_id, value in enumerate(margin):
        if value <= 0:
            raise InfeasibleLinkError(link_id)
    matrix = beta * received / margin[None, :]
    np.fill_diagonal(matrix, 1.0)
    if cap:
        np.minimum(matrix, 1.0, out=matrix)
    return matrix


def affectance(
    network: Network,
    powers: np.ndarray,
    alpha: float,
    beta: float,
    noise: float,
    l: int,
    l_prime: int,
) -> float:
    """Single affectance value ``a_p(l, l')`` (effect of ``l`` on ``l'``)."""
    return float(
        affectance_matrix(network, powers, alpha, beta, noise)[l, l_prime]
    )


def average_affectance(affect: np.ndarray, members: np.ndarray) -> float:
    """The average affectance ``avg_{l' in M} sum_{l in M} a_p(l, l')``.

    The quantity ``A-bar`` from Kesselheim-Voecking (paper Section 6.1):
    for a multiset of requests ``M`` (given as link ids), the average
    over members of the summed affectance from all members. The paper
    observes ``I >= A-bar / 2`` for the Corollary-13 weight matrix.
    """
    if members.size == 0:
        return 0.0
    sub = affect[np.ix_(members, members)]
    return float(sub.sum(axis=0).mean())


__all__ = [
    "sender_receiver_gains",
    "affectance_matrix",
    "affectance",
    "average_affectance",
]
