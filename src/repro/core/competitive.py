"""Empirical competitive-ratio estimation.

The paper's competitive ratio compares the protocol's certified
injection rate against what *any* protocol could sustain. Both sides
are made measurable here:

* :func:`certified_rate` — the rate ``(1 - eps)/f(m)`` the Section-4
  guarantee covers for a given algorithm and network size.
* :func:`feasible_measure_upper_bound` — an estimate of the largest
  interference measure a single slot can serve (randomised greedy
  maximal feasible sets). No protocol can sustain a higher measure
  rate; for linear-power SINR the paper's ``I = O(1)`` single-slot
  bound makes this a constant, which is why Corollary 12 is
  constant-competitive.
* :func:`estimate_max_stable_rate` — a stability bisection: simulate
  the protocol across rates and find where the queue drift flips sign.

Ratio = upper bound / achieved stable rate; the E5-E7 benchmarks track
its growth (or flatness) in ``m``.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.frames import epsilon_for_rate
from repro.errors import ConfigurationError
from repro.interference.base import InterferenceModel
from repro.staticsched.base import StaticAlgorithm
from repro.utils.rng import RngLike, ensure_rng


def certified_rate(
    algorithm: StaticAlgorithm, m: int, epsilon: float = 0.5
) -> float:
    """The injection rate the protocol certifies: ``(1 - eps)/f(m)``."""
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    bound = algorithm.network_bound(m)
    f_m = max(bound.f(m), 1e-9)
    return (1.0 - epsilon) / f_m


def feasible_measure_upper_bound(
    model: InterferenceModel,
    trials: int = 64,
    rng: RngLike = None,
) -> float:
    """Estimate ``max { I(S) : S simultaneously feasible }``.

    Random-order greedy: permute the links, grow a set keeping it fully
    successful, measure it; return the best over ``trials``. A lower
    bound on the true maximum (and therefore a *conservative* numerator
    for competitive ratios), tight in practice for the models here.
    Singleton feasibility guarantees the result is at least 1.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    gen = ensure_rng(rng)
    best = 0.0
    n = model.num_links
    for _ in range(trials):
        order = gen.permutation(n)
        chosen: list = []
        chosen_set: set = set()
        for link_id in order:
            candidate = chosen + [int(link_id)]
            if model.successes(candidate) >= chosen_set | {int(link_id)}:
                chosen = candidate
                chosen_set.add(int(link_id))
        if chosen:
            best = max(best, model.interference_measure(chosen))
    return max(best, 1.0)


def estimate_max_stable_rate(
    evaluate_stability: Callable[[float], bool],
    low: float,
    high: float,
    iterations: int = 6,
) -> Tuple[float, float]:
    """Bisection for the stability threshold.

    ``evaluate_stability(rate)`` must return True when a simulation at
    that rate looks stable. Assumes (approximate) monotonicity. Returns
    ``(largest rate observed stable, smallest rate observed unstable)``;
    when even ``high`` is stable the second component is ``high``.
    """
    if not 0 <= low < high:
        raise ConfigurationError(f"need 0 <= low < high, got ({low}, {high})")
    if not evaluate_stability(low):
        return (0.0, low)
    if evaluate_stability(high):
        return (high, high)
    stable, unstable = low, high
    for _ in range(iterations):
        mid = (stable + unstable) / 2.0
        if evaluate_stability(mid):
            stable = mid
        else:
            unstable = mid
    return (stable, unstable)


def competitive_ratio(
    upper_bound_rate: float, achieved_rate: float
) -> float:
    """``upper / achieved`` with guards."""
    if achieved_rate <= 0:
        return math.inf
    return max(1.0, upper_bound_rate / achieved_rate)


__all__ = [
    "certified_rate",
    "feasible_measure_upper_bound",
    "estimate_max_stable_rate",
    "competitive_ratio",
]
