"""Frame sizing for the dynamic protocol (paper Section 4).

For injection rate ``lambda = (1 - epsilon)/f(m)`` the paper requires a
frame length

    T >= 100 f(m)/eps^3 + 48 f(m) ln m / eps^2        (drift constants)
    T >= (4 f(m)/eps^2) * g(m, (m/f(m)) * T)          (additive term)

and derives ``J = (1 + eps) * lambda * T`` (the measure budget a frame
is provisioned for) and the phase-1 window
``T' = f(m) * J + g(m, m J)``. The clean-up phase gets the rest of the
frame; it must fit ``f(m) * 1 + g(m, m J)`` slots.

``t_scale`` shrinks the proof constants for experiments (the theorems
hold *a fortiori* at the paper's values; the experiments test shapes,
which survive constant scaling — see DESIGN.md). The solver always
enforces the *structural* constraint that both phases fit, growing ``T``
if the scaled constants violate it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.staticsched.base import LengthBound, StaticAlgorithm
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FrameParameters:
    """Everything the protocol needs to know about its frames."""

    frame_length: int  # T
    phase1_budget: int  # T'
    cleanup_budget: int  # slots reserved per clean-up execution
    measure_budget: float  # J
    epsilon: float
    rate: float  # lambda
    f_m: float
    m: int

    def __post_init__(self):
        if self.phase1_budget + self.cleanup_budget > self.frame_length:
            raise ConfigurationError(
                f"phases do not fit: T'={self.phase1_budget} + "
                f"cleanup={self.cleanup_budget} > T={self.frame_length}"
            )


def epsilon_for_rate(rate: float, f_m: float) -> float:
    """``eps`` with ``lambda = (1 - eps)/f(m)``, clamped to (0, 1/2].

    The paper assumes ``eps <= 1/2`` w.l.o.g. (a smaller eps only
    weakens the adversary's budget). A non-positive eps means the rate
    is at or above the protocol's certified capacity.
    """
    eps = 1.0 - rate * f_m
    if eps <= 0:
        raise ConfigurationError(
            f"rate {rate} is not below the certified capacity 1/f(m) = "
            f"{1.0 / f_m:.6g}; the protocol's guarantee does not apply"
        )
    return min(eps, 0.5)


def compute_frame_parameters(
    algorithm: StaticAlgorithm,
    m: int,
    rate: float,
    t_scale: float = 1.0,
    min_frame: int = 4,
) -> FrameParameters:
    """Solve the Section-4 constraints for ``T``, ``T'``, ``J``.

    The ``g`` condition couples ``T`` to itself through ``J``; since
    ``g`` grows sub-linearly in ``n`` the fixed point exists, and a few
    iterations converge. Afterwards ``T`` is bumped (geometrically) until
    both phases structurally fit — the safety net for small ``t_scale``.
    """
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    check_positive("rate", rate)
    check_positive("t_scale", t_scale)
    bound = algorithm.network_bound(m)
    f_m = max(bound.f(m), 1e-9)
    eps = epsilon_for_rate(rate, f_m)

    base_t = t_scale * (
        100.0 * f_m / eps**3 + 48.0 * f_m * math.log(max(m, 2)) / eps**2
    )
    t = max(float(min_frame), base_t)
    for _ in range(32):
        n_for_g = max(1, math.ceil(m / f_m * t))
        g_condition = t_scale * (4.0 * f_m / eps**2) * bound.g(m, n_for_g)
        new_t = max(float(min_frame), base_t, g_condition)
        if new_t <= t * (1.0 + 1e-9):
            t = max(t, new_t)
            break
        t = new_t

    while True:
        frame_length = max(min_frame, math.ceil(t))
        measure_budget = max(1.0, (1.0 + eps) * rate * frame_length)
        n_phase = max(1, math.ceil(m * measure_budget))
        phase1 = max(1, math.ceil(f_m * measure_budget + bound.g(m, n_phase)))
        cleanup = max(1, math.ceil(f_m * 1.0 + bound.g(m, n_phase)))
        if phase1 + cleanup <= frame_length:
            break
        t = t * 1.25 + 1.0

    return FrameParameters(
        frame_length=frame_length,
        phase1_budget=phase1,
        cleanup_budget=cleanup,
        measure_budget=measure_budget,
        epsilon=eps,
        rate=rate,
        f_m=f_m,
        m=m,
    )


__all__ = ["FrameParameters", "compute_frame_parameters", "epsilon_for_rate"]
