"""The stability potential of the Theorem-3 analysis.

``Phi`` = total number of remaining hops over all *failed* packets. It
upper-bounds the failed-buffer sizes, increases when phase-1 executions
fail packets (Lemma 4 bounds the increase's tail), and decreases by one
whenever a clean-up transmission succeeds (Lemma 6 gives the ``1/(2em)``
success floor). The tracker mirrors that bookkeeping so experiments can
plot the very quantity the proof argues about and tests can assert the
drift is negative below capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SchedulingError
from repro.injection.packet import Packet


@dataclass
class PotentialTracker:
    """Tracks ``Phi`` and records one sample per frame."""

    value: int = 0
    series: List[int] = field(default_factory=list)
    total_failures: int = 0
    total_cleanup_hops: int = 0

    def on_failure(self, packet: Packet) -> None:
        """A packet just failed: its remaining hops enter the potential."""
        if packet.remaining_hops <= 0:
            raise SchedulingError(
                f"packet {packet.id} failed with no remaining hops"
            )
        self.value += packet.remaining_hops
        self.total_failures += 1

    def on_failures(self, total_remaining: int, count: int) -> None:
        """Bulk :meth:`on_failure` for the store-mode protocol.

        The caller has already verified every failed packet has
        remaining hops; ``total_remaining`` is their sum.
        """
        self.value += int(total_remaining)
        self.total_failures += int(count)

    def on_cleanup_hop(self, packet: Optional[Packet] = None) -> None:
        """A clean-up transmission succeeded: one hop leaves the potential.

        ``packet`` is accepted for API compatibility but unused.
        """
        if self.value <= 0:
            raise SchedulingError("potential under-flow: cleanup hop at Phi=0")
        self.value -= 1
        self.total_cleanup_hops += 1

    def sample(self) -> None:
        """Record the end-of-frame value."""
        self.series.append(self.value)

    def state_dict(self) -> dict:
        return {
            "value": self.value,
            "series": list(self.series),
            "total_failures": self.total_failures,
            "total_cleanup_hops": self.total_cleanup_hops,
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.errors import ConfigurationError

        try:
            self.value = int(state["value"])
            self.series = [int(v) for v in state["series"]]
            self.total_failures = int(state["total_failures"])
            self.total_cleanup_hops = int(state["total_cleanup_hops"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"invalid potential state: {exc}") from exc

    def drift_estimate(self, window: int = 50) -> float:
        """Mean per-frame change over the last ``window`` samples."""
        if len(self.series) < 2:
            return 0.0
        tail = self.series[-window:]
        if len(tail) < 2:
            return 0.0
        return (tail[-1] - tail[0]) / (len(tail) - 1)


__all__ = ["PotentialTracker"]
