"""Algorithm-invocation steps: the seam the batched fleet kernel hooks.

The dynamic protocol, the Section-3 transformation and the frame
engine all bottom out in the same primitive — "run a static algorithm
on these requests with this budget, consuming this generator" — and
PR 9's batched fleet kernel needs to intercept exactly that primitive
so it can advance many networks' slot loops inside one fused call.

Rather than duplicating frame/transform logic in the batch engine,
each layer exposes a *generator* form of its loop (``run_steps`` /
``run_frame_steps``) that yields :class:`AlgorithmCall` descriptions
and receives the resulting
:class:`~repro.staticsched.base.RunResult` back via ``send``. The
synchronous entry points (``run`` / ``run_frame``) drive the same
generator through :func:`drive_steps`, executing every call in place —
so there is exactly one copy of the bookkeeping logic, and the serial
path's behaviour (RNG order included) is the generator's behaviour by
construction.
"""

from __future__ import annotations

from typing import Any, NamedTuple


class AlgorithmCall(NamedTuple):
    """One pending ``algorithm.run(...)`` invocation, as plain data.

    ``requests`` keeps whatever container the caller built (list or
    int array) so driving the generator reproduces the historical call
    byte for byte. ``rng`` is the live generator the call must consume
    — sharing it between the yielding layer and the executor is the
    whole point (the RNG stream order is part of the physics).
    """

    algorithm: Any
    model: Any
    requests: Any
    budget: int
    rng: Any
    record_history: bool = False

    def execute(self):
        """Run the call exactly as the synchronous path would."""
        return self.algorithm.run(
            self.model,
            self.requests,
            self.budget,
            rng=self.rng,
            record_history=self.record_history,
        )


def drive_steps(steps):
    """Execute a step generator synchronously; return its result.

    ``steps`` yields :class:`AlgorithmCall` items and receives each
    call's ``RunResult`` back; its ``return`` value becomes ours. This
    is the serial executor for the generator seam — bit-identical to
    the historical inline calls because it *is* the same calls in the
    same order.
    """
    try:
        call = next(steps)
        while True:
            call = steps.send(call.execute())
    except StopIteration as stop:
        return stop.value


__all__ = ["AlgorithmCall", "drive_steps"]
