"""The dynamic scheduling protocol (paper Section 4).

Time is divided into frames of length ``T``. Within a frame:

* **Phase 1** (budget ``T' = f(m) J + g(m, mJ)``): the static algorithm
  runs on the *next hop* of every active (never-failed) packet that was
  injected before the frame started. Packets whose hop completes move
  on (one hop per frame — an unfailed packet of path length ``d`` is
  delivered after ``d`` frames). Packets whose hop does not complete —
  whether because the frame was over-loaded (``I > J``) or because the
  algorithm's internal randomness failed — become *failed* and are
  parked in the failed buffer of the link they were about to cross.
* **Clean-up phase** (the remaining ``T - T'`` slots): every link with a
  non-empty failed buffer independently offers, with probability
  ``1/m``, its longest-failed packet; the static algorithm runs once on
  the offered set with the singleton budget ``f(m) + g(m, mJ)``.
  Served packets advance one hop (moving to the next link's buffer, or
  out of the system); unserved ones stay put. Lemma 6's ``1/(2em)``
  drain floor is exactly this lottery.

Packets injected *during* a frame join at the next frame boundary
(the paper's "waits for the next time frame to begin").

Stability (Theorem 3) and the ``O(d T)`` latency bound (Theorem 8) are
properties of this loop; the benchmarks validate both empirically. The
``cleanup_enabled=False`` switch implements the A1 ablation (failed
packets simply retry in later phase-1 executions), demonstrating why
the two-phase design exists.

Two bookkeeping modes share the frame logic:

* **Object mode** (default) — ``run_frame`` takes
  :class:`~repro.injection.packet.Packet`-like objects and walks them
  one by one, exactly the seed implementation.
* **Store mode** (pass a
  :class:`~repro.injection.store.PacketStore`) — ``run_frame`` takes
  store *indices*; the phase-1 request vector is one CSR gather, hop
  advancement / delivery detection / potential updates are array ops,
  and failed buffers hold int indices. Both modes consume the RNG
  stream identically and emit bit-identical :class:`FrameReport`
  streams from one seed (``tests/test_store_parity.py`` pins this).
"""

from __future__ import annotations

import bisect
import itertools
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.frames import FrameParameters, compute_frame_parameters
from repro.core.potential import PotentialTracker
from repro.core.steps import AlgorithmCall, drive_steps
from repro.errors import ConfigurationError, SchedulingError
from repro.injection.packet import Packet
from repro.injection.store import PacketSequence, PacketStore, PacketView
from repro.interference.base import InterferenceModel
from repro.sim.trace import EventKind, Tracer
from repro.staticsched.base import StaticAlgorithm
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class FrameReport:
    """Per-frame accounting emitted by :meth:`DynamicProtocol.run_frame`."""

    frame: int
    injected: int
    phase1_requests: int
    phase1_hops: int
    newly_failed: int
    cleanup_offered: int
    cleanup_hops: int
    delivered_packets: int
    active_in_system: int
    failed_in_system: int
    potential: int


class DynamicProtocol:
    """The Section-4 frame protocol over any interference model.

    Parameters
    ----------
    model:
        Ground-truth interference model (provides ``W`` and successes).
    algorithm:
        A static algorithm exposing an ``f(m) I + g(m, n)`` bound via
        ``network_bound`` (wrap raw algorithms with
        :class:`~repro.core.transform.TransformedAlgorithm` first).
    rate:
        The injection rate ``lambda`` the protocol is provisioned for;
        must be below ``1/f(m)``.
    params:
        Pre-computed :class:`~repro.core.frames.FrameParameters`;
        overrides ``rate``-based sizing when given.
    t_scale:
        Scale on the paper's frame-length constants (see
        :mod:`repro.core.frames`).
    cleanup_enabled:
        Disable for the A1 ablation.
    cleanup_probability:
        The per-link lottery probability; the paper's value is ``1/m``
        (the default).
    tracer:
        Optional :class:`~repro.sim.trace.Tracer`; when given the
        protocol emits per-packet events (activation, hops, failures,
        clean-up, delivery). ``None`` (default) skips all tracing work.
    store:
        Optional :class:`~repro.injection.store.PacketStore`. When
        given the protocol runs in store mode: ``run_frame`` accepts
        index arrays (typically straight from an injection process
        sharing the store) and all per-packet bookkeeping is
        vectorized. ``delivered`` then returns a lazy
        :class:`~repro.injection.store.PacketSequence`.
    """

    def __init__(
        self,
        model: InterferenceModel,
        algorithm: StaticAlgorithm,
        rate: float,
        params: Optional[FrameParameters] = None,
        t_scale: float = 1.0,
        cleanup_enabled: bool = True,
        cleanup_probability: Optional[float] = None,
        rng: RngLike = None,
        tracer: Optional[Tracer] = None,
        store: Optional[PacketStore] = None,
    ):
        self._model = model
        self._algorithm = algorithm
        self._m = model.network.size_m
        if params is None:
            params = compute_frame_parameters(
                algorithm, self._m, rate, t_scale=t_scale
            )
        self._params = params
        if cleanup_probability is None:
            cleanup_probability = 1.0 / self._m
        if not 0.0 < cleanup_probability <= 1.0:
            raise ConfigurationError(
                f"cleanup_probability must be in (0, 1], got {cleanup_probability}"
            )
        self._cleanup_probability = cleanup_probability
        self._cleanup_enabled = bool(cleanup_enabled)
        self._rng = ensure_rng(rng)
        self._tracer = tracer
        self._store = store

        self._frame_index = 0
        # Object mode: Packet-like objects. Store mode: the active set
        # is an id-ordered int64 index array, failed buffers hold int
        # indices, and delivery is a growing index list.
        self._active: List[Packet] = []
        self._active_idx = np.empty(0, dtype=np.int64)
        self._failed_buffers: Dict[int, Deque] = {}
        self._delivered: List[Packet] = []
        self._delivered_ids: List[int] = []
        # Summarize-and-release bookkeeping (streaming metrics): count
        # of delivered packets already handed out via take_delivered,
        # and how many store rows are reclaimable by compact_store.
        self._released_delivered = 0
        self._pending_reclaim = 0
        self.potential = PotentialTracker()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def params(self) -> FrameParameters:
        return self._params

    @property
    def frame_index(self) -> int:
        """Index of the next frame to run."""
        return self._frame_index

    @property
    def frame_length(self) -> int:
        return self._params.frame_length

    @property
    def store(self) -> Optional[PacketStore]:
        """The packet store (``None`` in object mode)."""
        return self._store

    @property
    def active_count(self) -> int:
        """Never-failed packets currently in flight."""
        if self._store is not None:
            return int(self._active_idx.size)
        return len(self._active)

    @property
    def failed_count(self) -> int:
        """Packets sitting in failed buffers."""
        return sum(len(buffer) for buffer in self._failed_buffers.values())

    @property
    def packets_in_system(self) -> int:
        """All undelivered packets the protocol knows about."""
        return self.active_count + self.failed_count

    @property
    def delivered(self) -> Sequence[Packet]:
        """Delivered packets (shared container; treat as read-only).

        A plain list in object mode; a lazy
        :class:`~repro.injection.store.PacketSequence` in store mode.
        """
        if self._store is not None:
            return PacketSequence(self._store, self._delivered_ids)
        return self._delivered

    @property
    def delivered_total(self) -> int:
        """Count of every packet delivered so far, including packets
        already summarised and released via :meth:`take_delivered`.

        Equals ``len(self.delivered)`` unless a streaming-metrics
        engine has been releasing delivered packets.
        """
        if self._store is not None:
            return self._released_delivered + len(self._delivered_ids)
        return self._released_delivered + len(self._delivered)

    def take_delivered(self) -> np.ndarray:
        """Hand out (and forget) the pending delivered packet indices.

        Store mode only. The caller is expected to fold the packets'
        latency statistics into a bounded summary; afterwards
        :meth:`compact_store` may reclaim their store rows.
        ``delivered_total`` keeps counting them; ``delivered`` no
        longer contains them.
        """
        if self._store is None:
            raise ConfigurationError(
                "take_delivered requires store mode; object-mode "
                "protocols keep their delivered list"
            )
        indices = np.asarray(self._delivered_ids, dtype=np.int64)
        self._delivered_ids = []
        self._released_delivered += int(indices.size)
        self._pending_reclaim += int(indices.size)
        return indices

    def compact_store(self) -> None:
        """Drop released packets' rows from the store.

        Keeps exactly the live set — active packets, failed-buffer
        contents, and delivered-but-not-yet-released packets — and
        remaps every retained index. The remap is order-preserving
        (``np.searchsorted`` against the sorted keep set is monotone),
        so the (failed_at_frame, id) buffer keys, the phase-1 filing
        argsort, and the RNG consumption pattern are all unchanged:
        a compacted run's physics is bit-identical to an uncompacted
        one. No-op when nothing was released, or when a tracer is
        attached (trace events refer to packets by store index).
        """
        if self._store is None:
            raise ConfigurationError(
                "compact_store requires store mode"
            )
        if self._tracer is not None or self._pending_reclaim == 0:
            return
        parts = [self._active_idx]
        for buffer in self._failed_buffers.values():
            if buffer:
                parts.append(
                    np.fromiter(buffer, dtype=np.int64, count=len(buffer))
                )
        if self._delivered_ids:
            parts.append(np.asarray(self._delivered_ids, dtype=np.int64))
        keep = np.sort(np.concatenate(parts))
        self._store.compact(keep)
        self._active_idx = np.searchsorted(keep, self._active_idx).astype(
            np.int64
        )
        for link, buffer in self._failed_buffers.items():
            if buffer:
                old = np.fromiter(buffer, dtype=np.int64, count=len(buffer))
                self._failed_buffers[link] = deque(
                    np.searchsorted(keep, old).tolist()
                )
        if self._delivered_ids:
            old = np.asarray(self._delivered_ids, dtype=np.int64)
            self._delivered_ids = np.searchsorted(keep, old).tolist()
        self._pending_reclaim = 0

    def failed_buffer_sizes(self) -> Dict[int, int]:
        """Current per-link failed-buffer occupancy (non-empty links)."""
        return {
            link: len(buffer)
            for link, buffer in self._failed_buffers.items()
            if buffer
        }

    @property
    def model(self) -> InterferenceModel:
        return self._model

    @property
    def algorithm(self) -> StaticAlgorithm:
        return self._algorithm

    # ------------------------------------------------------------------
    # Checkpoint support (store mode only)
    # ------------------------------------------------------------------

    def state_dict(self, copy: bool = True) -> dict:
        """Snapshot of all mutable protocol state at a frame boundary.

        Only store mode is checkpointable — object mode holds live
        ``Packet`` objects whose identity cannot be reconstructed from
        arrays. Failed buffers are flattened CSR-style (sorted link ids,
        offsets, concatenated FIFO contents) so the whole snapshot is
        arrays plus plain scalars. ``copy=False`` lets the snapshot
        alias live arrays (serialize it before the protocol runs again).
        """
        if self._store is None:
            raise ConfigurationError(
                "checkpointing requires store mode; object-mode protocols "
                "hold live Packet objects and cannot be snapshotted"
            )
        buffers = sorted(
            (link, buffer)
            for link, buffer in self._failed_buffers.items()
            if buffer
        )
        counts = [len(buffer) for _, buffer in buffers]
        offsets = np.zeros(len(buffers) + 1, dtype=np.int64)
        if buffers:
            np.cumsum(counts, out=offsets[1:])
            contents = np.fromiter(
                itertools.chain.from_iterable(b for _, b in buffers),
                dtype=np.int64,
                count=int(offsets[-1]),
            )
        else:
            contents = np.empty(0, dtype=np.int64)
        return {
            "frame_index": self._frame_index,
            "rng": self._rng.bit_generator.state,
            "active_idx": (
                self._active_idx.copy() if copy else self._active_idx
            ),
            "failed_links": np.asarray(
                [link for link, _ in buffers], dtype=np.int64
            ),
            "failed_offsets": offsets,
            "failed_contents": contents,
            "delivered_ids": np.asarray(self._delivered_ids, dtype=np.int64),
            "released_delivered": self._released_delivered,
            "potential": self.potential.state_dict(),
            "algorithm": self._algorithm.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        The algorithm entry is a compatibility check (the scheduler is
        stateless, but resuming under different parameters would
        diverge); everything else replaces the protocol's mutable state.
        """
        from repro.utils.rng import restore_generator_state

        if self._store is None:
            raise ConfigurationError(
                "checkpointing requires store mode; object-mode protocols "
                "cannot restore snapshots"
            )
        try:
            frame_index = int(state["frame_index"])
            active_idx = np.asarray(state["active_idx"], dtype=np.int64)
            links = np.asarray(state["failed_links"], dtype=np.int64)
            offsets = np.asarray(state["failed_offsets"], dtype=np.int64)
            contents = np.asarray(state["failed_contents"], dtype=np.int64)
            delivered = np.asarray(state["delivered_ids"], dtype=np.int64)
            # Pre-streaming checkpoints carry no release counter.
            released = int(state.get("released_delivered", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"invalid protocol state: {exc}") from exc
        if released < 0:
            raise ConfigurationError(
                f"protocol state released_delivered must be >= 0, "
                f"got {released}"
            )
        if offsets.size != links.size + 1 or (
            offsets.size and offsets[-1] != contents.size
        ):
            raise ConfigurationError(
                "protocol state failed-buffer CSR is inconsistent: "
                f"{links.size} links, {offsets.size} offsets, "
                f"{contents.size} entries"
            )
        self._algorithm.load_state_dict(state.get("algorithm", {}))
        self._frame_index = frame_index
        restore_generator_state(self._rng, state["rng"])
        self._active_idx = active_idx
        self._failed_buffers = {
            int(link): deque(
                int(p) for p in contents[offsets[k] : offsets[k + 1]]
            )
            for k, link in enumerate(links)
        }
        self._delivered_ids = [int(p) for p in delivered]
        self._delivered = []
        self._released_delivered = released
        # Compaction is a memory optimisation with no physics effect;
        # the next release cycle reclaims whatever is pending.
        self._pending_reclaim = 0
        self.potential.load_state_dict(state["potential"])

    # ------------------------------------------------------------------
    # The frame loop
    # ------------------------------------------------------------------

    def run_frame(
        self, injected: Union[Sequence[Packet], np.ndarray]
    ) -> FrameReport:
        """Execute one frame; ``injected`` arrived during this frame.

        Object mode takes Packet-like objects; store mode takes store
        indices (an int array, or views over the protocol's store).
        """
        if self._store is not None:
            return drive_steps(self._run_frame_store_steps(injected))
        frame = self._frame_index
        frame_end_slot = (frame + 1) * self._params.frame_length

        phase1_hops, newly_failed = self._phase1(frame, frame_end_slot)
        if self._cleanup_enabled:
            offered, cleanup_hops = self._cleanup(frame, frame_end_slot)
        else:
            offered, cleanup_hops = 0, 0

        # Packets injected during this frame activate at the next boundary.
        for packet in injected:
            self._validate_packet(packet)
            self._active.append(packet)
            if self._tracer is not None:
                self._tracer.record(
                    frame, EventKind.ACTIVATED, packet.id, packet.current_link
                )

        self.potential.sample()
        self._frame_index += 1
        return FrameReport(
            frame=frame,
            injected=len(injected),
            phase1_requests=phase1_hops + newly_failed,
            phase1_hops=phase1_hops,
            newly_failed=newly_failed,
            cleanup_offered=offered,
            cleanup_hops=cleanup_hops,
            delivered_packets=self._released_delivered + len(self._delivered),
            active_in_system=self.active_count,
            failed_in_system=self.failed_count,
            potential=self.potential.value,
        )

    # ------------------------------------------------------------------
    # Store mode: index-array bookkeeping
    # ------------------------------------------------------------------

    def _coerce_indices(self, injected) -> np.ndarray:
        if isinstance(injected, np.ndarray):
            indices = injected.astype(np.int64, copy=False)
        elif len(injected) == 0:
            return np.empty(0, dtype=np.int64)
        elif isinstance(injected[0], PacketView):
            for packet in injected:
                if packet.store is not self._store:
                    raise SchedulingError(
                        f"packet {packet.id} belongs to a different "
                        "PacketStore than the protocol's"
                    )
            indices = np.asarray([p.index for p in injected], dtype=np.int64)
        else:
            indices = np.asarray(injected, dtype=np.int64)
        if indices.size and (
            int(indices.min()) < 0 or int(indices.max()) >= len(self._store)
        ):
            raise SchedulingError(
                "injected indices fall outside the protocol's PacketStore "
                f"(size {len(self._store)})"
            )
        return indices

    def run_frame_steps(self, injected):
        """Generator form of :meth:`run_frame` (see :mod:`repro.core.steps`).

        Store mode yields the frame's algorithm invocations (phase 1,
        then — after the clean-up lottery draws — the clean-up run) as
        :class:`~repro.core.steps.AlgorithmCall` items, receiving each
        ``RunResult`` back via ``send``; the generator's return value
        is the :class:`FrameReport`. All protocol-level randomness (the
        lottery) stays in here, in the exact stream position the
        synchronous path draws it. Object mode has no batchable calls
        and runs the frame synchronously.
        """
        if self._store is None:
            # Object mode: per-packet bookkeeping, nothing to intercept.
            return self.run_frame(injected)
        return (yield from self._run_frame_store_steps(injected))

    def _run_frame_store_steps(self, injected):
        frame = self._frame_index
        frame_end_slot = (frame + 1) * self._params.frame_length

        phase1_hops, newly_failed = yield from self._phase1_store(
            frame, frame_end_slot
        )
        if self._cleanup_enabled:
            offered, cleanup_hops = yield from self._cleanup_store(
                frame, frame_end_slot
            )
        else:
            offered, cleanup_hops = 0, 0

        indices = self._coerce_indices(injected)
        if indices.size:
            self._validate_store_links()
            if self._active_idx.size:
                self._active_idx = np.concatenate([self._active_idx, indices])
            else:
                self._active_idx = indices
            if self._tracer is not None:
                store = self._store
                for index in indices.tolist():
                    self._tracer.record(
                        frame,
                        EventKind.ACTIVATED,
                        index,
                        store.current_link_of(index),
                    )

        self.potential.sample()
        self._frame_index += 1
        return FrameReport(
            frame=frame,
            injected=int(indices.size),
            phase1_requests=phase1_hops + newly_failed,
            phase1_hops=phase1_hops,
            newly_failed=newly_failed,
            cleanup_offered=offered,
            cleanup_hops=cleanup_hops,
            delivered_packets=(
                self._released_delivered + len(self._delivered_ids)
            ),
            active_in_system=self.active_count,
            failed_in_system=self.failed_count,
            potential=self.potential.value,
        )

    def _phase1_store(self, frame: int, frame_end_slot: int):
        active = self._active_idx
        if active.size == 0:
            return 0, 0
        store = self._store
        # Phase-1 request vector: one CSR gather over the active set.
        requests = store.current_links(active)
        result = yield AlgorithmCall(
            self._algorithm,
            self._model,
            requests,
            self._params.phase1_budget,
            self._rng,
        )
        served_mask = np.zeros(active.size, dtype=bool)
        if result.delivered:
            served_mask[np.asarray(result.delivered, dtype=np.int64)] = True
        served = active[served_mask]
        failed = active[~served_mask]
        hops = int(served.size)

        done = store.advance_hops(served, frame_end_slot)
        delivered_now = served[done]

        if failed.size:
            remaining = store.remaining_hops(failed)
            if (remaining <= 0).any():
                bad = int(failed[remaining <= 0][0])
                raise SchedulingError(
                    f"packet {bad} failed with no remaining hops"
                )
            store.mark_failed(failed, frame)
            self.potential.on_failures(int(remaining.sum()), int(failed.size))
            # Failed packets park on the link they were about to cross
            # (their hop did not advance, so it is their request link).
            # File in id order: every same-frame key (frame, id) then
            # lands behind the buffer tail (frames ascend across
            # calls), so filing is pure O(1) appends — the same order
            # the object path's sorted insert produces. The active set
            # itself is NOT id-ordered (frame batches sort by
            # (injected_at, id)), hence the explicit argsort.
            failed_links = requests[~served_mask]
            order = np.argsort(failed)
            buffers = self._failed_buffers
            for index, link in zip(
                failed[order].tolist(), failed_links[order].tolist()
            ):
                buffer = buffers.get(link)
                if buffer is None:
                    buffer = buffers[link] = deque()
                buffer.append(index)

        if self._tracer is not None:
            self._emit_phase1_events(
                frame, active, requests, served_mask, served, done
            )

        if delivered_now.size:
            self._delivered_ids.extend(delivered_now.tolist())
        self._active_idx = served[~done]
        return hops, int(failed.size)

    def _emit_phase1_events(
        self, frame, active, requests, served_mask, served, done
    ):
        """Per-packet trace events in the object path's order."""
        delivered_full = np.zeros(active.size, dtype=bool)
        delivered_full[np.flatnonzero(served_mask)[done]] = True
        record = self._tracer.record
        for position in range(active.size):
            index = int(active[position])
            link = int(requests[position])
            if served_mask[position]:
                record(frame, EventKind.PHASE1_HOP, index, link)
                if delivered_full[position]:
                    record(frame, EventKind.DELIVERED, index, link)
            else:
                record(frame, EventKind.FAILED, index, link)

    def _cleanup_store(self, frame: int, frame_end_slot: int):
        store = self._store
        offered: List[int] = []
        for link_id in sorted(self._failed_buffers):
            buffer = self._failed_buffers[link_id]
            if buffer and self._rng.random() < self._cleanup_probability:
                offered.append(buffer[0])
                if self._tracer is not None:
                    self._tracer.record(
                        frame, EventKind.CLEANUP_OFFERED, buffer[0], link_id
                    )
        if not offered:
            return 0, 0
        requests = store.current_links(np.asarray(offered, dtype=np.int64))
        result = yield AlgorithmCall(
            self._algorithm,
            self._model,
            requests,
            self._params.cleanup_budget,
            self._rng,
        )
        served = [(offered[k], int(requests[k])) for k in result.delivered]
        # Pop every served packet before any advances (see _cleanup).
        for index, link in served:
            buffer = self._failed_buffers.get(link)
            if not buffer or buffer[0] != index:
                raise SchedulingError(
                    f"packet {index} is not at the head of its failed buffer"
                )
            buffer.popleft()
        hops = 0
        for index, link in served:
            self.potential.on_cleanup_hop()
            hops += 1
            if self._tracer is not None:
                self._tracer.record(frame, EventKind.CLEANUP_HOP, index, link)
            if store.advance_one(index, frame_end_slot):
                self._delivered_ids.append(index)
                if self._tracer is not None:
                    self._tracer.record(
                        frame, EventKind.DELIVERED, index, link
                    )
            else:
                self._push_failed_index(index)
        return len(offered), hops

    def _push_failed_index(self, index: int) -> None:
        """Store-mode :meth:`_push_failed`: file an int index by
        (failure frame, id), oldest first."""
        store = self._store
        link = store.current_link_of(index)
        buffer = self._failed_buffers.setdefault(link, deque())
        failed_at = store.failed_at_frame

        def key(i: int) -> Tuple[int, int]:
            return (int(failed_at[i]), i)

        if not buffer or key(index) > key(buffer[-1]):
            buffer.append(index)
        elif key(index) < key(buffer[0]):
            buffer.appendleft(index)
        else:
            bisect.insort(buffer, index, key=key)

    def _validate_store_links(self) -> None:
        bounds = self._store.link_id_bounds()
        if bounds is None:
            return
        low, high = bounds
        if low < 0 or high >= self._model.num_links:
            raise SchedulingError(
                f"packet store references link {low if low < 0 else high}, "
                f"outside 0..{self._model.num_links - 1}"
            )

    def _phase1(self, frame: int, frame_end_slot: int):
        if not self._active:
            return 0, 0
        requests = [packet.current_link for packet in self._active]
        result = self._algorithm.run(
            self._model,
            requests,
            self._params.phase1_budget,
            rng=self._rng,
        )
        served = set(result.delivered)
        still_active: List[Packet] = []
        newly_failed: List[Packet] = []
        hops = 0
        for index, packet in enumerate(self._active):
            if index in served:
                hops += 1
                hop_link = packet.current_link
                if self._tracer is not None:
                    self._tracer.record(
                        frame, EventKind.PHASE1_HOP, packet.id, hop_link
                    )
                if packet.advance(frame_end_slot):
                    self._delivered.append(packet)
                    if self._tracer is not None:
                        self._tracer.record(
                            frame, EventKind.DELIVERED, packet.id, hop_link
                        )
                else:
                    still_active.append(packet)
            else:
                packet.failed = True
                packet.failed_at_frame = frame
                self.potential.on_failure(packet)
                newly_failed.append(packet)
                if self._tracer is not None:
                    self._tracer.record(
                        frame, EventKind.FAILED, packet.id, packet.current_link
                    )
        # Push in id order: every same-frame key (frame, id) then lands
        # behind the buffer tail, so filing is pure O(1) appends — and
        # the resulting buffer order equals the sorted-insert order.
        newly_failed.sort(key=lambda p: p.id)
        for packet in newly_failed:
            self._push_failed(packet)
        self._active = still_active
        return hops, len(newly_failed)

    def _cleanup(self, frame: int, frame_end_slot: int):
        offered_packets: List[Packet] = []
        for link_id in sorted(self._failed_buffers):
            buffer = self._failed_buffers[link_id]
            if buffer and self._rng.random() < self._cleanup_probability:
                offered_packets.append(buffer[0])
                if self._tracer is not None:
                    self._tracer.record(
                        frame,
                        EventKind.CLEANUP_OFFERED,
                        buffer[0].id,
                        link_id,
                    )
        if not offered_packets:
            return 0, 0
        requests = [packet.current_link for packet in offered_packets]
        result = self._algorithm.run(
            self._model,
            requests,
            self._params.cleanup_budget,
            rng=self._rng,
        )
        # Pop every served packet before any advances: a packet whose
        # next hop lands on another offered link must not displace that
        # link's (already-served) head between its pop and ours.
        served_packets = [offered_packets[index] for index in result.delivered]
        for packet in served_packets:
            self._pop_failed(packet)
        hops = 0
        for packet in served_packets:
            self.potential.on_cleanup_hop(packet)
            hops += 1
            hop_link = packet.current_link
            if self._tracer is not None:
                self._tracer.record(
                    frame, EventKind.CLEANUP_HOP, packet.id, hop_link
                )
            if packet.advance(frame_end_slot):
                self._delivered.append(packet)
                if self._tracer is not None:
                    self._tracer.record(
                        frame, EventKind.DELIVERED, packet.id, hop_link
                    )
            else:
                self._push_failed(packet)
        return len(offered_packets), hops

    # ------------------------------------------------------------------
    # Failed-buffer bookkeeping (ordered by failure age, then id)
    # ------------------------------------------------------------------

    @staticmethod
    def _failure_key(packet: Packet) -> Tuple[int, int]:
        return (packet.failed_at_frame, packet.id)

    def _push_failed(self, packet: Packet) -> None:
        """File a packet in its link's failed buffer, oldest failure first.

        Phase-1 failures arrive in (frame, id) order — frames ascend
        across calls and ``_active`` is id-ordered within a frame — so
        the overwhelmingly common case is a plain O(1) append (the old
        ``bisect.insort`` into a list was an O(n) append in disguise).
        The one exception is a clean-up hop re-filing a packet under its
        *original* failure frame into a buffer that already holds
        younger failures; that rare case restores sorted order
        explicitly so the head stays the longest-failed packet.
        """
        buffer = self._failed_buffers.setdefault(packet.current_link, deque())
        key = self._failure_key(packet)
        if not buffer or key > self._failure_key(buffer[-1]):
            buffer.append(packet)
        elif key < self._failure_key(buffer[0]):
            # A clean-up survivor older than everything queued here.
            buffer.appendleft(packet)
        else:
            # Rare interleaved age (a clean-up survivor among mixed
            # failure frames): one ordered insert. Keys are unique (ids
            # are), so ordering is total.
            bisect.insort(buffer, packet, key=self._failure_key)

    def _pop_failed(self, packet: Packet) -> None:
        buffer = self._failed_buffers.get(packet.current_link)
        if not buffer or buffer[0] is not packet:
            raise SchedulingError(
                f"packet {packet.id} is not at the head of its failed buffer"
            )
        buffer.popleft()

    def _validate_packet(self, packet: Packet) -> None:
        for link_id in packet.path:
            if not 0 <= link_id < self._model.num_links:
                raise SchedulingError(
                    f"packet {packet.id} path references unknown link {link_id}"
                )


__all__ = ["DynamicProtocol", "FrameReport"]
