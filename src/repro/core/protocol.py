"""The dynamic scheduling protocol (paper Section 4).

Time is divided into frames of length ``T``. Within a frame:

* **Phase 1** (budget ``T' = f(m) J + g(m, mJ)``): the static algorithm
  runs on the *next hop* of every active (never-failed) packet that was
  injected before the frame started. Packets whose hop completes move
  on (one hop per frame — an unfailed packet of path length ``d`` is
  delivered after ``d`` frames). Packets whose hop does not complete —
  whether because the frame was over-loaded (``I > J``) or because the
  algorithm's internal randomness failed — become *failed* and are
  parked in the failed buffer of the link they were about to cross.
* **Clean-up phase** (the remaining ``T - T'`` slots): every link with a
  non-empty failed buffer independently offers, with probability
  ``1/m``, its longest-failed packet; the static algorithm runs once on
  the offered set with the singleton budget ``f(m) + g(m, mJ)``.
  Served packets advance one hop (moving to the next link's buffer, or
  out of the system); unserved ones stay put. Lemma 6's ``1/(2em)``
  drain floor is exactly this lottery.

Packets injected *during* a frame join at the next frame boundary
(the paper's "waits for the next time frame to begin").

Stability (Theorem 3) and the ``O(d T)`` latency bound (Theorem 8) are
properties of this loop; the benchmarks validate both empirically. The
``cleanup_enabled=False`` switch implements the A1 ablation (failed
packets simply retry in later phase-1 executions), demonstrating why
the two-phase design exists.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.frames import FrameParameters, compute_frame_parameters
from repro.core.potential import PotentialTracker
from repro.errors import ConfigurationError, SchedulingError
from repro.injection.packet import Packet
from repro.interference.base import InterferenceModel
from repro.sim.trace import EventKind, Tracer
from repro.staticsched.base import StaticAlgorithm
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class FrameReport:
    """Per-frame accounting emitted by :meth:`DynamicProtocol.run_frame`."""

    frame: int
    injected: int
    phase1_requests: int
    phase1_hops: int
    newly_failed: int
    cleanup_offered: int
    cleanup_hops: int
    delivered_packets: int
    active_in_system: int
    failed_in_system: int
    potential: int


class DynamicProtocol:
    """The Section-4 frame protocol over any interference model.

    Parameters
    ----------
    model:
        Ground-truth interference model (provides ``W`` and successes).
    algorithm:
        A static algorithm exposing an ``f(m) I + g(m, n)`` bound via
        ``network_bound`` (wrap raw algorithms with
        :class:`~repro.core.transform.TransformedAlgorithm` first).
    rate:
        The injection rate ``lambda`` the protocol is provisioned for;
        must be below ``1/f(m)``.
    params:
        Pre-computed :class:`~repro.core.frames.FrameParameters`;
        overrides ``rate``-based sizing when given.
    t_scale:
        Scale on the paper's frame-length constants (see
        :mod:`repro.core.frames`).
    cleanup_enabled:
        Disable for the A1 ablation.
    cleanup_probability:
        The per-link lottery probability; the paper's value is ``1/m``
        (the default).
    tracer:
        Optional :class:`~repro.sim.trace.Tracer`; when given the
        protocol emits per-packet events (activation, hops, failures,
        clean-up, delivery). ``None`` (default) skips all tracing work.
    """

    def __init__(
        self,
        model: InterferenceModel,
        algorithm: StaticAlgorithm,
        rate: float,
        params: Optional[FrameParameters] = None,
        t_scale: float = 1.0,
        cleanup_enabled: bool = True,
        cleanup_probability: Optional[float] = None,
        rng: RngLike = None,
        tracer: Optional[Tracer] = None,
    ):
        self._model = model
        self._algorithm = algorithm
        self._m = model.network.size_m
        if params is None:
            params = compute_frame_parameters(
                algorithm, self._m, rate, t_scale=t_scale
            )
        self._params = params
        if cleanup_probability is None:
            cleanup_probability = 1.0 / self._m
        if not 0.0 < cleanup_probability <= 1.0:
            raise ConfigurationError(
                f"cleanup_probability must be in (0, 1], got {cleanup_probability}"
            )
        self._cleanup_probability = cleanup_probability
        self._cleanup_enabled = bool(cleanup_enabled)
        self._rng = ensure_rng(rng)
        self._tracer = tracer

        self._frame_index = 0
        self._active: List[Packet] = []
        self._failed_buffers: Dict[int, Deque[Packet]] = {}
        self._delivered: List[Packet] = []
        self.potential = PotentialTracker()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def params(self) -> FrameParameters:
        return self._params

    @property
    def frame_index(self) -> int:
        """Index of the next frame to run."""
        return self._frame_index

    @property
    def frame_length(self) -> int:
        return self._params.frame_length

    @property
    def active_count(self) -> int:
        """Never-failed packets currently in flight."""
        return len(self._active)

    @property
    def failed_count(self) -> int:
        """Packets sitting in failed buffers."""
        return sum(len(buffer) for buffer in self._failed_buffers.values())

    @property
    def packets_in_system(self) -> int:
        """All undelivered packets the protocol knows about."""
        return self.active_count + self.failed_count

    @property
    def delivered(self) -> List[Packet]:
        """Delivered packets (shared list; treat as read-only)."""
        return self._delivered

    def failed_buffer_sizes(self) -> Dict[int, int]:
        """Current per-link failed-buffer occupancy (non-empty links)."""
        return {
            link: len(buffer)
            for link, buffer in self._failed_buffers.items()
            if buffer
        }

    # ------------------------------------------------------------------
    # The frame loop
    # ------------------------------------------------------------------

    def run_frame(self, injected: Sequence[Packet]) -> FrameReport:
        """Execute one frame; ``injected`` arrived during this frame."""
        frame = self._frame_index
        frame_end_slot = (frame + 1) * self._params.frame_length

        phase1_hops, newly_failed = self._phase1(frame, frame_end_slot)
        if self._cleanup_enabled:
            offered, cleanup_hops = self._cleanup(frame, frame_end_slot)
        else:
            offered, cleanup_hops = 0, 0

        # Packets injected during this frame activate at the next boundary.
        for packet in injected:
            self._validate_packet(packet)
            self._active.append(packet)
            if self._tracer is not None:
                self._tracer.record(
                    frame, EventKind.ACTIVATED, packet.id, packet.current_link
                )

        self.potential.sample()
        self._frame_index += 1
        return FrameReport(
            frame=frame,
            injected=len(injected),
            phase1_requests=phase1_hops + newly_failed,
            phase1_hops=phase1_hops,
            newly_failed=newly_failed,
            cleanup_offered=offered,
            cleanup_hops=cleanup_hops,
            delivered_packets=len(self._delivered),
            active_in_system=self.active_count,
            failed_in_system=self.failed_count,
            potential=self.potential.value,
        )

    def _phase1(self, frame: int, frame_end_slot: int):
        if not self._active:
            return 0, 0
        requests = [packet.current_link for packet in self._active]
        result = self._algorithm.run(
            self._model,
            requests,
            self._params.phase1_budget,
            rng=self._rng,
        )
        served = set(result.delivered)
        still_active: List[Packet] = []
        newly_failed: List[Packet] = []
        hops = 0
        for index, packet in enumerate(self._active):
            if index in served:
                hops += 1
                hop_link = packet.current_link
                if self._tracer is not None:
                    self._tracer.record(
                        frame, EventKind.PHASE1_HOP, packet.id, hop_link
                    )
                if packet.advance(frame_end_slot):
                    self._delivered.append(packet)
                    if self._tracer is not None:
                        self._tracer.record(
                            frame, EventKind.DELIVERED, packet.id, hop_link
                        )
                else:
                    still_active.append(packet)
            else:
                packet.failed = True
                packet.failed_at_frame = frame
                self.potential.on_failure(packet)
                newly_failed.append(packet)
                if self._tracer is not None:
                    self._tracer.record(
                        frame, EventKind.FAILED, packet.id, packet.current_link
                    )
        # Push in id order: every same-frame key (frame, id) then lands
        # behind the buffer tail, so filing is pure O(1) appends — and
        # the resulting buffer order equals the sorted-insert order.
        newly_failed.sort(key=lambda p: p.id)
        for packet in newly_failed:
            self._push_failed(packet)
        self._active = still_active
        return hops, len(newly_failed)

    def _cleanup(self, frame: int, frame_end_slot: int):
        offered_packets: List[Packet] = []
        for link_id in sorted(self._failed_buffers):
            buffer = self._failed_buffers[link_id]
            if buffer and self._rng.random() < self._cleanup_probability:
                offered_packets.append(buffer[0])
                if self._tracer is not None:
                    self._tracer.record(
                        frame,
                        EventKind.CLEANUP_OFFERED,
                        buffer[0].id,
                        link_id,
                    )
        if not offered_packets:
            return 0, 0
        requests = [packet.current_link for packet in offered_packets]
        result = self._algorithm.run(
            self._model,
            requests,
            self._params.cleanup_budget,
            rng=self._rng,
        )
        # Pop every served packet before any advances: a packet whose
        # next hop lands on another offered link must not displace that
        # link's (already-served) head between its pop and ours.
        served_packets = [offered_packets[index] for index in result.delivered]
        for packet in served_packets:
            self._pop_failed(packet)
        hops = 0
        for packet in served_packets:
            self.potential.on_cleanup_hop(packet)
            hops += 1
            hop_link = packet.current_link
            if self._tracer is not None:
                self._tracer.record(
                    frame, EventKind.CLEANUP_HOP, packet.id, hop_link
                )
            if packet.advance(frame_end_slot):
                self._delivered.append(packet)
                if self._tracer is not None:
                    self._tracer.record(
                        frame, EventKind.DELIVERED, packet.id, hop_link
                    )
            else:
                self._push_failed(packet)
        return len(offered_packets), hops

    # ------------------------------------------------------------------
    # Failed-buffer bookkeeping (ordered by failure age, then id)
    # ------------------------------------------------------------------

    @staticmethod
    def _failure_key(packet: Packet) -> Tuple[int, int]:
        return (packet.failed_at_frame, packet.id)

    def _push_failed(self, packet: Packet) -> None:
        """File a packet in its link's failed buffer, oldest failure first.

        Phase-1 failures arrive in (frame, id) order — frames ascend
        across calls and ``_active`` is id-ordered within a frame — so
        the overwhelmingly common case is a plain O(1) append (the old
        ``bisect.insort`` into a list was an O(n) append in disguise).
        The one exception is a clean-up hop re-filing a packet under its
        *original* failure frame into a buffer that already holds
        younger failures; that rare case restores sorted order
        explicitly so the head stays the longest-failed packet.
        """
        buffer = self._failed_buffers.setdefault(packet.current_link, deque())
        key = self._failure_key(packet)
        if not buffer or key > self._failure_key(buffer[-1]):
            buffer.append(packet)
        elif key < self._failure_key(buffer[0]):
            # A clean-up survivor older than everything queued here.
            buffer.appendleft(packet)
        else:
            # Rare interleaved age (a clean-up survivor among mixed
            # failure frames): one ordered insert. Keys are unique (ids
            # are), so ordering is total.
            bisect.insort(buffer, packet, key=self._failure_key)

    def _pop_failed(self, packet: Packet) -> None:
        buffer = self._failed_buffers.get(packet.current_link)
        if not buffer or buffer[0] is not packet:
            raise SchedulingError(
                f"packet {packet.id} is not at the head of its failed buffer"
            )
        buffer.popleft()

    def _validate_packet(self, packet: Packet) -> None:
        for link_id in packet.path:
            if not 0 <= link_id < self._model.num_links:
                raise SchedulingError(
                    f"packet {packet.id} path references unknown link {link_id}"
                )


__all__ = ["DynamicProtocol", "FrameReport"]
