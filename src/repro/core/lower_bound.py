"""The Theorem-20 lower bound: no global clock, no stability (Figure 1).

The instance: ``m - 1`` *short* links whose transmissions always
succeed regardless of other activity, plus one *long* link that is
received only when every short link is silent. Geometrically this is
uniform-power SINR with the long link threading past all the short
ones (see :func:`repro.network.topology.figure1_instance`); here the
success predicate is implemented directly, as in the proof.

* With a **global clock**, even/odd time-sharing (shorts on even slots,
  long on odd) is stable for every per-link Bernoulli rate
  ``lambda < 1/2``.
* With only **local clocks** and acknowledgement feedback, short links
  learn nothing from the channel (their attempts always succeed), so
  their transmission pattern is injection-driven and unsynchronised.
  Once ``lambda >= ln m / m``, the probability that *all* ``m - 1``
  short links idle in a slot drops below ``lambda`` and the long link's
  queue drifts upward — no protocol can be ``m/(2 ln m)``-competitive.

:func:`simulate_figure1` runs both protocols slot by slot and returns
the queue trajectories the E11 benchmark plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.interference.base import InterferenceModel
from repro.network.network import Network
from repro.network.topology import figure1_instance
from repro.utils.rng import RngLike, ensure_rng


class Figure1Model(InterferenceModel):
    """Success predicate of the Figure-1 instance.

    The last link (id ``m - 1``) is the long link; all others are
    short. Shorts always succeed; the long link succeeds iff it
    transmits alone.
    """

    def __init__(self, network: Network):
        super().__init__(network)
        if network.num_links < 2:
            raise ConfigurationError("Figure-1 model needs at least 2 links")
        self._long = network.num_links - 1

    @property
    def long_link(self) -> int:
        """Id of the long link."""
        return self._long

    def _build_weight_matrix(self) -> np.ndarray:
        n = self.num_links
        matrix = np.eye(n, dtype=float)
        matrix[self._long, :] = 1.0  # the long link suffers from everyone
        return matrix

    def successes(self, transmitting: Sequence[int]) -> Set[int]:
        attempted = self._check_no_duplicates(transmitting)
        result = {e for e in attempted if e != self._long}
        if self._long in attempted and len(attempted) == 1:
            result.add(self._long)
        return result


@dataclass
class Figure1Result:
    """Trajectories from one Figure-1 simulation."""

    protocol: str
    rate: float
    m: int
    long_queue: List[int] = field(default_factory=list)
    max_short_queue: List[int] = field(default_factory=list)
    long_delivered: int = 0
    short_delivered: int = 0

    @property
    def final_long_queue(self) -> int:
        return self.long_queue[-1] if self.long_queue else 0

    def long_queue_slope(self) -> float:
        """Mean per-slot growth of the long link's queue (tail half)."""
        series = self.long_queue
        if len(series) < 4:
            return 0.0
        tail = series[len(series) // 2 :]
        return (tail[-1] - tail[0]) / max(1, len(tail) - 1)


def simulate_figure1(
    m: int,
    rate: float,
    horizon: int,
    protocol: str = "global",
    rng: RngLike = None,
    sample_every: int = 1,
) -> Figure1Result:
    """Slot-level simulation of the Figure-1 instance.

    ``protocol`` is ``"global"`` (even/odd time sharing — needs the
    common clock) or ``"local"`` (acknowledgement-based greedy: every
    link transmits whenever backlogged; shorts always succeed so they
    get no feedback to coordinate on, exactly the situation of the
    proof). Packets arrive per link as independent Bernoulli(``rate``)
    per slot.
    """
    if protocol not in ("global", "local"):
        raise ConfigurationError(f"unknown protocol {protocol!r}")
    if m < 2:
        raise ConfigurationError(f"m must be >= 2, got {m}")
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
    gen = ensure_rng(rng)
    network = figure1_instance(m)
    model = Figure1Model(network)
    long_link = model.long_link
    queues = np.zeros(m, dtype=np.int64)
    result = Figure1Result(protocol=protocol, rate=rate, m=m)

    for slot in range(horizon):
        queues += gen.random(m) < rate

        if protocol == "global":
            if slot % 2 == 0:
                served = queues[:long_link] > 0
                result.short_delivered += int(served.sum())
                queues[:long_link] -= served
            elif queues[long_link] > 0:
                queues[long_link] -= 1
                result.long_delivered += 1
        else:
            busy_shorts = queues[:long_link] > 0
            result.short_delivered += int(busy_shorts.sum())
            queues[:long_link] -= busy_shorts
            if queues[long_link] > 0:
                if not busy_shorts.any():
                    queues[long_link] -= 1
                    result.long_delivered += 1

        if slot % sample_every == 0:
            result.long_queue.append(int(queues[long_link]))
            result.max_short_queue.append(int(queues[:long_link].max()))

    return result


__all__ = ["Figure1Model", "Figure1Result", "simulate_figure1"]
