"""The paper's contribution: static-to-dynamic protocol transformations.

* :mod:`repro.core.transform` — Algorithm 1 (Section 3): repair the
  scaling of ``O(f(n) * I)`` static algorithms so the length becomes
  ``f(m) * I + g(m, n)`` with ``g`` sub-linear in ``n``.
* :mod:`repro.core.frames` — frame sizing (``T``, ``T'``, ``J``) from
  the Section-4 constraints.
* :mod:`repro.core.protocol` — the frame-based dynamic protocol with
  phase-1 executions and clean-up phases (Section 4).
* :mod:`repro.core.adversarial` — the Section-5 random-shift wrapper
  for window adversaries.
* :mod:`repro.core.potential` — the stability potential (total
  remaining hops of failed packets) from the Theorem-3 analysis.
* :mod:`repro.core.lower_bound` — the Theorem-20 / Figure-1
  global-clock lower bound machinery.
* :mod:`repro.core.competitive` — empirical competitive-ratio
  estimation (stability bisection vs feasibility upper bounds).
"""

from repro.core.transform import TransformedAlgorithm
from repro.core.frames import FrameParameters, compute_frame_parameters
from repro.core.protocol import DynamicProtocol, FrameReport
from repro.core.adversarial import ShiftedDynamicProtocol
from repro.core.potential import PotentialTracker
from repro.core.lower_bound import (
    Figure1Model,
    simulate_figure1,
)
from repro.core.competitive import (
    certified_rate,
    estimate_max_stable_rate,
    feasible_measure_upper_bound,
)

__all__ = [
    "TransformedAlgorithm",
    "FrameParameters",
    "compute_frame_parameters",
    "DynamicProtocol",
    "FrameReport",
    "ShiftedDynamicProtocol",
    "PotentialTracker",
    "Figure1Model",
    "simulate_figure1",
    "certified_rate",
    "estimate_max_stable_rate",
    "feasible_measure_upper_bound",
]
