"""Algorithm 1: scaling repair for dense instances (paper Section 3).

The problem: a static algorithm with schedule length ``f(n) * I`` (e.g.
``O(I log n)``) *degrades* as instances get denser — doubling every
request doubles both ``I`` and ``n``, so the length more than doubles
and throughput falls. The repair exploits that there are only ``m``
distinct links:

1. **Sparsification rounds** (``i = 1 .. xi``). Every remaining packet
   draws a uniform delay below ``psi_i = ceil(2^{1-i} I / chi)``. Each
   delay class has expected measure ``<= chi/2`` where
   ``chi = 6 (ln m + 9)``, so the base algorithm — run per class with
   parameters ``(chi, m*chi)`` and budget ``f(m*chi) * chi`` — serves
   almost everything; Claim 2 of the paper shows the *leftover* measure
   halves per round whp (Chernoff + FKG for the class sizes, plus the
   algorithm's own failure probability).
2. **Mop-up**. After ``xi = ceil(log2(I / (2 phi chi log n)))`` rounds
   the leftover measure is ``O(log n log m)``; ``ceil(phi) + 1`` direct
   executions of the base algorithm finish it whp.

Total (Theorem 1): ``2 f(m chi) I + O(f(m chi) log n + f(n) log n log m)``
with probability ``>= 1 - 1/n^phi`` — linear in ``I`` for dense
instances, which is exactly what the Section-4 protocol needs.

``chi_scale`` scales ``chi`` below the paper's proof constant for
experiments (smaller classes, more rounds); the default is faithful.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.steps import AlgorithmCall, drive_steps
from repro.errors import ConfigurationError, SchedulingError
from repro.interference.base import InterferenceModel
from repro.staticsched.base import (
    LengthBound,
    RunResult,
    SlotRecord,
    StaticAlgorithm,
)
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


def paper_chi(m: int, chi_scale: float = 1.0) -> float:
    """The class-measure parameter ``chi = 6 (ln m + 9)`` (scaled)."""
    return chi_scale * 6.0 * (math.log(max(m, 2)) + 9.0)


class TransformedAlgorithm(StaticAlgorithm):
    """Algorithm 1 wrapped around a base static algorithm.

    Parameters
    ----------
    base:
        The algorithm ``A(I, n)`` with length ``f(n) * I`` whp.
    m:
        The network size the transformation is tuned for (``max(|E|, D)``).
    phi:
        Failure exponent: overall success probability ``1 - 1/n^phi``.
    chi_scale:
        Scale on the paper's ``chi``; 1.0 is proof-faithful.
    charge_reserved:
        When True, ``slots_used`` charges every sub-execution its full
        reserved window (the distributed schedule's wall-clock, as in
        the paper's accounting). When False (default), only slots
        actually consumed are counted — the right measure for scaling
        experiments, since early-exiting classes leave idle air.
    """

    name = "transformed"

    def __init__(
        self,
        base: StaticAlgorithm,
        m: int,
        phi: float = 1.0,
        chi_scale: float = 1.0,
        charge_reserved: bool = False,
    ):
        if m < 1:
            raise ConfigurationError(f"m must be >= 1, got {m}")
        self._base = base
        self._m = int(m)
        self._phi = check_positive("phi", phi)
        self._chi_scale = check_positive("chi_scale", chi_scale)
        self._charge_reserved = bool(charge_reserved)
        self.name = f"transformed({base.name})"

    @property
    def base(self) -> StaticAlgorithm:
        return self._base

    def state_dict(self):
        return {
            "name": self.name,
            "m": self._m,
            "phi": self._phi,
            "chi_scale": self._chi_scale,
            "charge_reserved": self._charge_reserved,
            "base": self._base.state_dict(),
        }

    @property
    def chi(self) -> float:
        """The class-measure target ``chi``."""
        return paper_chi(self._m, self._chi_scale)

    # ------------------------------------------------------------------
    # Schedule-length accounting (Theorem 1)
    # ------------------------------------------------------------------

    def _class_budget(self) -> int:
        """Budget per delay-class execution: ``f(m chi) * chi`` slots."""
        chi = self.chi
        return self._base.budget_for(chi, max(1, math.ceil(self._m * chi)))

    def _mopup_measure(self, n: int) -> float:
        """Measure bound for the mop-up runs: ``2 phi chi log n``."""
        return 2.0 * self._phi * self.chi * math.log(n + 2)

    def _rounds(self, measure: float, n: int) -> int:
        """``xi``: sparsification rounds until mop-up takes over."""
        target = self._mopup_measure(n)
        if measure <= target:
            return 0
        return max(0, math.ceil(math.log2(measure / target)))

    def budget_for(self, measure: float, n: int) -> int:
        """The Theorem-1 total, computed exactly round by round."""
        measure = max(measure, 1.0)
        n = max(int(n), 1)
        chi = self.chi
        class_budget = self._class_budget()
        total = 0
        for i in range(1, self._rounds(measure, n) + 1):
            psi = max(1, math.ceil(2.0 ** (1 - i) * measure / chi))
            total += psi * class_budget
        mopup_runs = math.ceil(self._phi) + 1
        total += mopup_runs * self._base.budget_for(self._mopup_measure(n), n)
        return max(1, total)

    def network_bound(self, m: int) -> LengthBound:
        """``f(m) I + g(m, n)`` per Theorem 1.

        ``f(m) = 2 f_base(m chi)`` (the geometric series over rounds);
        ``g`` covers the per-round ceilings (at most ``log2`` of the
        worst measure, itself at most ``n * m``) plus the mop-up.
        """
        chi = paper_chi(m, self._chi_scale)
        class_budget = self._base.budget_for(chi, max(1, math.ceil(m * chi)))
        phi = self._phi
        base = self._base
        mopup_runs = math.ceil(phi) + 1

        def multiplicative(m_: int) -> float:
            return 2.0 * class_budget / chi

        def additive(m_: int, n: int) -> float:
            max_rounds = math.log2(n + 2) + math.log2(m_ + 2)
            mopup_measure = 2.0 * phi * chi * math.log(n + 2)
            return (
                max_rounds * class_budget
                + mopup_runs * base.budget_for(mopup_measure, max(n, 1))
            )

        return LengthBound(
            multiplicative=multiplicative,
            additive=additive,
            description=f"2 f(m chi) I + O~(f(m chi) + f(n) log n) [{self.name}]",
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        return drive_steps(
            self.run_steps(
                model, requests, budget, ensure_rng(rng), record_history
            )
        )

    def run_steps(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        gen,
        record_history: bool = False,
    ):
        """Generator form of :meth:`run` (see :mod:`repro.core.steps`).

        Yields one :class:`~repro.core.steps.AlgorithmCall` per base
        sub-execution and receives its ``RunResult`` back; all
        transformation randomness (the per-round delay draws) stays in
        here, interleaved with the sub-runs exactly as the synchronous
        path draws it. The batched fleet kernel drives this to advance
        many networks' sub-runs inside one fused call.
        """
        if budget < 0:
            raise SchedulingError(f"budget must be >= 0, got {budget}")
        requests = [int(e) for e in requests]
        n = len(requests)
        if n == 0:
            return RunResult(history=[] if record_history else None)

        chi = self.chi
        measure = max(model.interference_measure(requests), 1.0)
        class_budget = self._class_budget()

        delivered: List[int] = []
        history: Optional[List[SlotRecord]] = [] if record_history else None
        remaining = list(range(n))
        slots_used = 0

        def sub_run(indices: List[int], sub_budget: int):
            """Run the base algorithm on a subset; return surviving indices."""
            nonlocal slots_used
            if not indices:
                return []
            sub_requests = [requests[k] for k in indices]
            result = yield AlgorithmCall(
                self._base,
                model,
                sub_requests,
                sub_budget,
                gen,
                record_history,
            )
            slots_used += result.slots_used
            if self._charge_reserved:
                # The distributed schedule reserves the full window.
                slots_used += max(0, sub_budget - result.slots_used)
            for local in result.delivered:
                delivered.append(indices[local])
            if history is not None and result.history is not None:
                history.extend(result.history)
            return [indices[local] for local in result.remaining]

        # Stage 1: sparsification rounds.
        for i in range(1, self._rounds(measure, n) + 1):
            if slots_used >= budget or not remaining:
                break
            psi = max(1, math.ceil(2.0 ** (1 - i) * measure / chi))
            delays = gen.integers(psi, size=len(remaining))
            survivors: List[int] = []
            for j in range(psi):
                if slots_used >= budget:
                    # Out of budget: the unprocessed classes survive as-is.
                    survivors.extend(
                        idx
                        for idx, d in zip(remaining, delays)
                        if d >= j
                    )
                    break
                class_members = [
                    idx for idx, d in zip(remaining, delays) if d == j
                ]
                survivors.extend((yield from sub_run(
                    class_members, class_budget
                )))
            remaining = survivors

        # Stage 2: mop-up executions of the base algorithm.
        mopup_budget = self._base.budget_for(self._mopup_measure(n), n)
        for _ in range(math.ceil(self._phi) + 1):
            if slots_used >= budget or not remaining:
                break
            remaining = yield from sub_run(remaining, mopup_budget)

        return RunResult(
            delivered=delivered,
            remaining=remaining,
            slots_used=min(slots_used, budget) if budget else slots_used,
            history=history,
        )


__all__ = ["TransformedAlgorithm", "paper_chi"]
