"""The Section-5 random-shift wrapper for adversarial injection.

A window adversary can release an entire window budget in one slot; the
stochastic analysis of Section 4 breaks because the per-frame Chernoff
bound (Claim 5) needs independent, spread-out arrivals. The paper's
fix (after Scheideler-Voecking): at injection every packet draws a
uniform delay of ``delta in {0, ..., delta_max - 1}`` frames with
``delta_max = ceil(2 (D + w)/eps)``, waits out the delay at its source,
and is then treated exactly like a stochastically injected packet — by
a protocol provisioned for the slightly higher rate
``lambda' = (1 - eps/2)/f(m)``.

Theorem 11: after the shift, the per-frame arrival measure is a sum of
negatively associated indicators with mean ``<= lambda' T``, so every
bound of Section 4 goes through; queues stay bounded and the expected
latency is ``O(D w T / eps)`` (the protocol latency plus the expected
shift).

``shift_enabled=False`` is the A3 ablation: bursts hit a frame head-on
and phase-1 overload failures spike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.frames import FrameParameters, compute_frame_parameters, epsilon_for_rate
from repro.core.protocol import DynamicProtocol, FrameReport
from repro.errors import ConfigurationError
from repro.injection.packet import Packet
from repro.injection.store import PacketStore
from repro.interference.base import InterferenceModel
from repro.sim.trace import EventKind, Tracer
from repro.staticsched.base import StaticAlgorithm
from repro.utils.rng import RngLike, ensure_rng


class ShiftedDynamicProtocol:
    """Random-delay front-end over :class:`DynamicProtocol`.

    Parameters
    ----------
    model, algorithm:
        As for :class:`DynamicProtocol`.
    rate:
        The adversary's rate ``lambda`` (must satisfy
        ``lambda < 1/f(m)``; the inner protocol is provisioned at
        ``lambda' = (1 - eps/2)/f(m)``).
    window:
        The adversary's window length ``w`` in slots.
    delta_max:
        Override for the shift range (in frames); defaults to the
        paper's ``ceil(2 (D + w_frames)/eps)`` where ``w_frames`` is
        the window expressed in frames (at least 1).
    params:
        Hand-built :class:`~repro.core.frames.FrameParameters` for the
        inner protocol (tight-provisioning experiments); its
        ``epsilon`` then also sizes the shift range.
    shift_enabled:
        Disable for the A3 ablation (packets forward immediately).
    tracer:
        Optional :class:`~repro.sim.trace.Tracer`, shared with the
        inner protocol; the wrapper adds HELD/RELEASED events around
        the inner protocol's packet lifecycle.
    store:
        Optional :class:`~repro.injection.store.PacketStore`; forwarded
        to the inner protocol. In store mode ``run_frame`` takes store
        indices and the held buffers hold int indices.
    """

    def __init__(
        self,
        model: InterferenceModel,
        algorithm: StaticAlgorithm,
        rate: float,
        window: int,
        delta_max: Optional[int] = None,
        params: Optional[FrameParameters] = None,
        t_scale: float = 1.0,
        shift_enabled: bool = True,
        rng: RngLike = None,
        tracer: Optional[Tracer] = None,
        store: Optional[PacketStore] = None,
    ):
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self._rng = ensure_rng(rng)
        m = model.network.size_m
        if params is not None:
            # Hand-built frames (experiments with tight provisioning):
            # reuse their epsilon for the shift range.
            eps = params.epsilon
            inner_rate = params.rate
        else:
            bound = algorithm.network_bound(m)
            f_m = max(bound.f(m), 1e-9)
            eps = epsilon_for_rate(rate, f_m)
            # Inner protocol provisioned for lambda' = (1 - eps/2)/f(m).
            inner_rate = (1.0 - eps / 2.0) / f_m
        self._inner = DynamicProtocol(
            model,
            algorithm,
            inner_rate,
            params=params,
            t_scale=t_scale,
            rng=self._rng,
            tracer=tracer,
            store=store,
        )
        self._store = store
        self._tracer = tracer
        depth = model.network.max_path_length
        window_frames = max(1, math.ceil(window / self._inner.frame_length))
        if delta_max is None:
            delta_max = math.ceil(2.0 * (depth + window_frames) / eps)
        if delta_max < 1:
            raise ConfigurationError(f"delta_max must be >= 1, got {delta_max}")
        self._delta_max = int(delta_max)
        self._shift_enabled = bool(shift_enabled)
        self._held: Dict[int, List[Packet]] = {}
        self._epsilon = eps

    # ------------------------------------------------------------------

    @property
    def inner(self) -> DynamicProtocol:
        """The wrapped stochastic-model protocol."""
        return self._inner

    @property
    def store(self) -> Optional[PacketStore]:
        """The packet store (``None`` in object mode)."""
        return self._store

    @property
    def delta_max(self) -> int:
        """The shift range in frames."""
        return self._delta_max

    @property
    def frame_length(self) -> int:
        return self._inner.frame_length

    @property
    def held_count(self) -> int:
        """Packets still waiting out their shift delay."""
        return sum(len(batch) for batch in self._held.values())

    @property
    def packets_in_system(self) -> int:
        """Held + active + failed."""
        return self.held_count + self._inner.packets_in_system

    @property
    def delivered(self) -> Sequence[Packet]:
        return self._inner.delivered

    @property
    def delivered_total(self) -> int:
        """Delivered count including any released packets.

        The wrapper deliberately exposes no ``take_delivered`` /
        ``compact_store`` — it holds store indices across frames in
        ``_held``, which compaction would invalidate — so streaming
        engines keep the delivered set whole here.
        """
        return self._inner.delivered_total

    def run_frame(self, injected: Sequence[Packet]) -> FrameReport:
        """Delay-shift the new packets, release the due ones, run a frame.

        One body serves both modes — object mode holds Packet-like
        objects, store mode holds int indices — so the shift semantics
        (and the per-packet scalar ``integers`` draws the parity
        contract depends on) cannot drift apart.
        """
        store_mode = self._store is not None
        frame = self._inner.frame_index
        if store_mode:
            items = self._inner._coerce_indices(injected).tolist()
        else:
            items = injected
        for item in items:
            if self._shift_enabled:
                delay = int(self._rng.integers(self._delta_max))
            else:
                delay = 0
            release = frame + delay
            self._held.setdefault(release, []).append(item)
            if self._tracer is not None and delay > 0:
                self._tracer.record(
                    frame, EventKind.HELD, item if store_mode else item.id
                )
        due = self._held.pop(frame, [])
        if self._tracer is not None:
            for item in due:
                self._tracer.record(
                    frame, EventKind.RELEASED, item if store_mode else item.id
                )
        if store_mode:
            return self._inner.run_frame(np.asarray(due, dtype=np.int64))
        return self._inner.run_frame(due)


__all__ = ["ShiftedDynamicProtocol"]
