"""Queueing-theoretic consistency checks for simulation outputs.

The stability experiments (E2, E4, X1-X4) conclude "stable" from a
drift estimate on the queue series. These helpers add the classical
cross-checks a queueing analysis expects:

* :func:`littles_law_check` — for a stationary system, the time-average
  number in system equals arrival rate times mean sojourn time
  (``L = lambda_eff * W``). A large relative gap means the run never
  reached stationarity (or the bookkeeping is wrong) — either way the
  stability verdict should not be trusted.
* :func:`drift_confidence_interval` — a moving-block bootstrap CI on
  the queue-series slope. Queue series are strongly autocorrelated, so
  naive iid resampling is over-confident; block resampling preserves
  the local dependence structure.
* :func:`busy_period_stats` — busy periods (maximal stretches with a
  non-empty system) lengthen dramatically near the stability boundary;
  their distribution is a sensitive load indicator that a plain mean
  queue hides.
* :func:`utilisation` — fraction of frames with a non-empty system
  (the empirical ``rho``).

All functions consume plain sequences so they work on any recorded
series, not just :class:`~repro.sim.metrics.MetricsRecorder` output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, StabilityError
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class LittlesLawReport:
    """Outcome of :func:`littles_law_check`."""

    mean_in_system: float      # L: time-average packets in system
    arrival_rate: float        # lambda_eff: delivered packets per frame
    mean_sojourn_frames: float  # W: mean frames from injection to delivery
    predicted_in_system: float  # lambda_eff * W
    relative_gap: float        # |L - lambda*W| / max(L, tiny)

    def consistent(self, tolerance: float = 0.25) -> bool:
        """Whether the identity holds within ``tolerance`` (relative)."""
        return self.relative_gap <= tolerance


def littles_law_check(
    queue_series: Sequence[float],
    sojourn_frames: Sequence[float],
    warmup_fraction: float = 0.25,
) -> LittlesLawReport:
    """Check ``L = lambda_eff * W`` on a finished run.

    Parameters
    ----------
    queue_series:
        Packets in system at each frame boundary.
    sojourn_frames:
        Per-delivered-packet sojourn times in frames (latency divided
        by the frame length).
    warmup_fraction:
        Leading fraction of the queue series dropped before averaging
        (start-up transient).

    Uses the *delivery* rate as the effective arrival rate — for a
    stable, flow-conserving run they agree; for an unstable run they
    do not, and the reported gap grows, which is the desired signal.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    series = np.asarray(queue_series, dtype=float)
    if series.size == 0:
        raise StabilityError("queue series is empty")
    sojourns = np.asarray(sojourn_frames, dtype=float)
    if sojourns.size == 0:
        raise StabilityError("no delivered packets: Little's law undefined")
    start = int(series.size * warmup_fraction)
    tail = series[start:]
    mean_in_system = float(tail.mean())
    # Deliveries per frame over the whole run (deliveries are dated by
    # completion, so the full horizon is the right denominator).
    arrival_rate = float(sojourns.size) / float(series.size)
    mean_sojourn = float(sojourns.mean())
    predicted = arrival_rate * mean_sojourn
    gap = abs(mean_in_system - predicted) / max(mean_in_system, 1e-9)
    return LittlesLawReport(
        mean_in_system=mean_in_system,
        arrival_rate=arrival_rate,
        mean_sojourn_frames=mean_sojourn,
        predicted_in_system=predicted,
        relative_gap=gap,
    )


def drift_confidence_interval(
    queue_series: Sequence[float],
    block_length: Optional[int] = None,
    resamples: int = 500,
    confidence: float = 0.95,
    rng: RngLike = None,
) -> Tuple[float, float, float]:
    """Moving-block bootstrap CI for the queue-series slope per frame.

    Returns ``(point_estimate, lower, upper)``. A CI strictly above 0
    is statistically significant divergence; a CI containing 0 is
    consistent with stability over the observed horizon.

    ``block_length`` defaults to ``ceil(sqrt(len(series)))`` — the
    standard rate-optimal compromise between preserving dependence
    (long blocks) and resampling diversity (many blocks).
    """
    series = np.asarray(queue_series, dtype=float)
    if series.size < 8:
        raise StabilityError(
            f"series of length {series.size} is too short for a bootstrap CI"
        )
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if resamples <= 0:
        raise ConfigurationError(f"resamples must be positive, got {resamples}")
    if block_length is None:
        block_length = int(np.ceil(np.sqrt(series.size)))
    if not 1 <= block_length <= series.size:
        raise ConfigurationError(
            f"block_length must be in [1, {series.size}], got {block_length}"
        )
    generator = ensure_rng(rng)
    x = np.arange(series.size, dtype=float)
    point = float(np.polyfit(x, series, 1)[0])

    # Resample the *residual* process around the fitted trend, then
    # re-fit: slope uncertainty under dependent noise.
    trend = np.polyval(np.polyfit(x, series, 1), x)
    residuals = series - trend
    num_blocks = int(np.ceil(series.size / block_length))
    max_start = series.size - block_length
    slopes = np.empty(resamples, dtype=float)
    for b in range(resamples):
        starts = generator.integers(0, max_start + 1, size=num_blocks)
        pieces = [residuals[s : s + block_length] for s in starts]
        resampled = np.concatenate(pieces)[: series.size]
        slopes[b] = float(np.polyfit(x, trend + resampled, 1)[0])
    alpha = (1.0 - confidence) / 2.0
    lower = float(np.quantile(slopes, alpha))
    upper = float(np.quantile(slopes, 1.0 - alpha))
    return point, lower, upper


@dataclass(frozen=True)
class BusyPeriodStats:
    """Distribution summary of busy-period lengths (in frames)."""

    count: int
    mean_length: float
    max_length: int
    total_busy_frames: int


def busy_period_stats(queue_series: Sequence[float]) -> BusyPeriodStats:
    """Lengths of maximal non-empty stretches of the queue series.

    An open busy period at the end of the series counts with its
    observed (truncated) length — near instability that final period
    dominates, which is exactly the signal.
    """
    series = np.asarray(queue_series, dtype=float)
    if series.size == 0:
        raise StabilityError("queue series is empty")
    lengths: List[int] = []
    current = 0
    for value in series:
        if value > 0:
            current += 1
        elif current:
            lengths.append(current)
            current = 0
    if current:
        lengths.append(current)
    if not lengths:
        return BusyPeriodStats(
            count=0, mean_length=0.0, max_length=0, total_busy_frames=0
        )
    return BusyPeriodStats(
        count=len(lengths),
        mean_length=float(np.mean(lengths)),
        max_length=int(max(lengths)),
        total_busy_frames=int(sum(lengths)),
    )


def utilisation(queue_series: Sequence[float]) -> float:
    """Fraction of frames with a non-empty system (empirical ``rho``)."""
    series = np.asarray(queue_series, dtype=float)
    if series.size == 0:
        raise StabilityError("queue series is empty")
    return float((series > 0).mean())


__all__ = [
    "LittlesLawReport",
    "littles_law_check",
    "drift_confidence_interval",
    "BusyPeriodStats",
    "busy_period_stats",
    "utilisation",
]
