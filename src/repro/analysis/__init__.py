"""Analysis utilities: scaling-law fits, proof-mirroring bounds,
queueing cross-checks, tables, and ASCII charts."""

from repro.analysis.fitting import (
    FitResult,
    fit_affine,
    fit_power_law,
    growth_exponent,
)
from repro.analysis.bounds import (
    chernoff_upper_tail,
    claim5_overload_probability,
    lemma6_drain_probability,
)
from repro.analysis.queueing import (
    BusyPeriodStats,
    LittlesLawReport,
    busy_period_stats,
    drift_confidence_interval,
    littles_law_check,
    utilisation,
)
from repro.analysis.tables import format_table
from repro.analysis.asciiplot import line_chart, phase_diagram, sparkline

__all__ = [
    "sparkline",
    "line_chart",
    "phase_diagram",
    "FitResult",
    "fit_affine",
    "fit_power_law",
    "growth_exponent",
    "chernoff_upper_tail",
    "claim5_overload_probability",
    "lemma6_drain_probability",
    "LittlesLawReport",
    "littles_law_check",
    "drift_confidence_interval",
    "BusyPeriodStats",
    "busy_period_stats",
    "utilisation",
    "format_table",
]
