"""Least-squares fits for the scaling laws the experiments check.

The benchmarks never compare absolute slot counts against the paper
(different constants, different substrate); they compare *shapes*:
is the transformed schedule length affine in ``I`` with an
``n``-independent slope (E1)? Is latency affine in path length (E3)?
Does the competitive ratio grow like ``log^2 m`` or stay flat (E5-E7)?
These helpers provide the fits and goodness-of-fit numbers the tables
report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FitResult:
    """An affine fit ``y ~ intercept + slope * x`` with quality metrics."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * x


def fit_affine(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Ordinary least squares ``y = a + b x``."""
    x_arr = np.asarray(list(x), dtype=float)
    y_arr = np.asarray(list(y), dtype=float)
    if x_arr.shape != y_arr.shape or x_arr.size < 2:
        raise ConfigurationError(
            "fit_affine needs two equal-length samples of size >= 2"
        )
    x_centered = x_arr - x_arr.mean()
    denominator = float((x_centered**2).sum())
    if denominator == 0:
        raise ConfigurationError("fit_affine: x values are all equal")
    slope = float((x_centered * (y_arr - y_arr.mean())).sum() / denominator)
    intercept = float(y_arr.mean() - slope * x_arr.mean())
    predictions = intercept + slope * x_arr
    ss_res = float(((y_arr - predictions) ** 2).sum())
    ss_tot = float(((y_arr - y_arr.mean()) ** 2).sum())
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return FitResult(slope=slope, intercept=intercept, r_squared=r_squared)


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = c * x^p`` by OLS in log-log space.

    The returned ``slope`` is the exponent ``p``, ``intercept`` is
    ``ln c``.
    """
    x_arr = np.asarray(list(x), dtype=float)
    y_arr = np.asarray(list(y), dtype=float)
    if (x_arr <= 0).any() or (y_arr <= 0).any():
        raise ConfigurationError("power-law fit needs strictly positive data")
    return fit_affine(np.log(x_arr), np.log(y_arr))


def growth_exponent(x: Sequence[float], y: Sequence[float]) -> float:
    """The fitted power-law exponent of ``y`` against ``x``.

    ~0 means flat (constant-competitive shape), ~1 linear, ~2 quadratic.
    """
    return fit_power_law(x, y).slope


def log_growth_exponent(m_values: Sequence[float], y: Sequence[float]) -> float:
    """Exponent ``p`` of the fit ``y ~ c * (log m)^p``.

    The discriminator between ``O(log m)`` and ``O(log^2 m)``
    competitive ratios in E5-E7.
    """
    logs = [math.log(max(v, 2.0)) for v in m_values]
    return fit_power_law(logs, y).slope


__all__ = [
    "FitResult",
    "fit_affine",
    "fit_power_law",
    "growth_exponent",
    "log_growth_exponent",
]
