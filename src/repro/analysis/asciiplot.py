"""Terminal plots for queue trajectories and scaling series.

The repository runs in offline environments, so "figures" are rendered
as text: a block-character sparkline for single series and a
multi-series line chart on a character canvas. Used by the examples
and by EXPERIMENTS.md extracts; precision lives in the tables, the
plots carry the shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(series: Sequence[float], width: int = 60) -> str:
    """A one-line density plot of ``series`` resampled to ``width``."""
    values = [float(v) for v in series]
    if not values:
        return ""
    if len(values) > width:
        # Bucket means keep the trend readable.
        bucket = len(values) / width
        values = [
            sum(values[int(k * bucket): max(int(k * bucket) + 1,
                                            int((k + 1) * bucket))])
            / max(1, len(values[int(k * bucket): max(int(k * bucket) + 1,
                                                     int((k + 1) * bucket))]))
            for k in range(width)
        ]
    low, high = min(values), max(values)
    span = high - low
    if span == 0:
        return _SPARK_LEVELS[1] * len(values)
    chars = []
    for value in values:
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def line_chart(
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 64,
    title: str = "",
) -> str:
    """Plot one or more series on a shared character canvas.

    Each series gets the first letter of its name as the marker; the
    y-axis is annotated with the min/max, the x-axis spans the longest
    series.
    """
    if not series or all(len(v) == 0 for v in series.values()):
        return title
    longest = max(len(v) for v in series.values())
    all_values = [float(v) for vs in series.values() for v in vs]
    low, high = min(all_values), max(all_values)
    span = high - low or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        marker = name[0] if name else "?"
        for index, value in enumerate(values):
            x = int(index / max(1, longest - 1) * (width - 1))
            y = int((float(value) - low) / span * (height - 1))
            canvas[height - 1 - y][x] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{high:>10.3g} +" + "-" * width)
    for row in canvas:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{low:>10.3g} +" + "-" * width)
    legend = "   ".join(f"{name[0]}={name}" for name in series)
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def phase_diagram(
    rows: Sequence[Tuple[str, Optional[float], Optional[float], str]],
    low: float,
    high: float,
    width: int = 44,
    title: str = "",
) -> str:
    """Render stable-rate frontiers as one bar per row over a rate axis.

    Each row is ``(label, lower, upper, status)``: the frontier bracket
    found for one campaign cell. ``#`` marks the certified-stable
    region (rates at or below ``lower``), ``?`` the unresolved bracket
    ``(lower, upper]``, ``.`` the unstable region beyond. ``status``
    ``"below-range"`` (unstable already at ``low``) renders all-``.``
    and ``"above-range"`` (still stable at ``high``) all-``#``, each
    annotated with the one-sided bound, so an out-of-range search is
    visible at a glance instead of masquerading as a frontier.
    """
    if width < 2:
        raise ValueError(f"phase diagram width must be >= 2, got {width}")
    if not high > low:
        raise ValueError(
            f"phase diagram axis needs high > low, got [{low}, {high}]"
        )
    label_width = max([len(str(r[0])) for r in rows] or [0])
    label_width = max(label_width, 4)
    span = high - low

    def column(rate: float) -> int:
        fraction = (rate - low) / span
        return int(round(min(1.0, max(0.0, fraction)) * (width - 1)))

    lines: List[str] = []
    if title:
        lines.append(title)
    left, right = f"{low:.3g}", f"{high:.3g}"
    gap = max(1, width - len(left) - len(right))
    lines.append(" " * (label_width + 2) + left + " " * gap + right)
    lines.append(" " * (label_width + 2) + "+" + "-" * (width - 2) + "+")
    for label, lower, upper, status in rows:
        if status == "below-range":
            bar = "." * width
            note = f"< {low:.3g}"
        elif status == "above-range":
            bar = "#" * width
            note = f"> {high:.3g}"
        else:
            lo_col = column(lower if lower is not None else low)
            hi_col = column(upper if upper is not None else high)
            cells = []
            for index in range(width):
                if index <= lo_col:
                    cells.append("#")
                elif index <= hi_col:
                    cells.append("?")
                else:
                    cells.append(".")
            bar = "".join(cells)
            midpoint = 0.5 * (lower + upper)
            note = f"{midpoint:.3g} +- {0.5 * (upper - lower):.2g}"
        lines.append(f"{str(label):<{label_width}}  {bar}  {note}")
    lines.append(
        " " * (label_width + 2)
        + "# stable   ? frontier bracket   . unstable"
    )
    return "\n".join(lines)


__all__ = ["sparkline", "line_chart", "phase_diagram"]
