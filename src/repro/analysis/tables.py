"""Plain-text table formatting for the benchmark harness.

Every bench prints its reproduced rows through :func:`format_table` so
the EXPERIMENTS.md extracts look uniform. Numbers are formatted
compactly; strings pass through.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    formatted_rows: List[List[str]] = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in formatted_rows)
    return "\n".join(parts)


__all__ = ["format_table"]
