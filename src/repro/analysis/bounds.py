"""Probability bounds mirroring the paper's proofs.

Used in tests to check that simulated tail frequencies respect the
analytic bounds (the simulation should never be *worse* than what
Claim 5 / Lemma 6 promise), and in documentation examples to show
where the frame-length constants come from.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def chernoff_upper_tail(mean: float, threshold: float) -> float:
    """``Pr[X >= threshold]`` bound for a sum of independent [0,1] terms.

    The multiplicative Chernoff form the paper uses:
    ``(e^delta / (1+delta)^(1+delta))^mean`` with
    ``threshold = (1+delta) * mean``. Returns 1.0 when the threshold is
    not above the mean.
    """
    if mean < 0 or threshold < 0:
        raise ConfigurationError("mean and threshold must be non-negative")
    if mean == 0:
        return 0.0 if threshold > 0 else 1.0
    if threshold <= mean:
        return 1.0
    delta = threshold / mean - 1.0
    exponent = mean * (delta - (1.0 + delta) * math.log1p(delta))
    return math.exp(exponent)


def claim5_overload_probability(
    m: int, rate: float, frame_length: int, delta: float
) -> float:
    """Claim 5: ``Pr[I >= (1 + delta) * lambda * T] <= m * Chernoff``.

    The union bound over the ``m`` components of ``W . R`` applied to
    the per-frame arrival measure.
    """
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    if delta <= 0:
        raise ConfigurationError(f"delta must be positive, got {delta}")
    mean = rate * frame_length
    return min(1.0, m * chernoff_upper_tail(mean, (1.0 + delta) * mean))


def lemma6_drain_probability(m: int) -> float:
    """Lemma 6: a non-zero potential drains w.p. at least ``1/(2 e m)``.

    Product of: some buffer offers a packet (``>= 1/m``), nobody else
    does (``>= (1 - 1/m)^(m-1) >= 1/e``), and the singleton run
    succeeds (``>= 1/2``).
    """
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    return 1.0 / (2.0 * math.e * m)


__all__ = [
    "chernoff_upper_tail",
    "claim5_overload_probability",
    "lemma6_drain_probability",
]
