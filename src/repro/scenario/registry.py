"""The unified component registry behind every construction path.

Before this layer existed the repository described scenarios three
different ways: the CLI's preset closures (``cli/builders.py``), the
CLI experiment registry's sharding builders (``cli/registry.py``), and
the sweep executor's protocol/injection/pair registries
(``sim/sharding.py``). Each kept its own name table with its own
resolution rules, so nothing could carry *a whole scenario* across a
process boundary by name.

This module is the one table all of them now share. A component is a
named callable filed under a *kind* — ``topology``, ``model``,
``scheduler``, ``injection`` for the declarative
:class:`~repro.scenario.spec.ScenarioSpec` layer, and the
``cell-protocol`` / ``cell-injection`` / ``cell-pair`` kinds that back
:mod:`repro.sim.sharding`'s builder registries. Resolution falls back
to ``"module:function"`` dotted paths exactly like the sharding
registries always did, so third-party components need no registration
call at all (the importing module registers them as a side effect, or
the spec names them by path).

Registration is idempotent per callable: re-registering the same
function under the same name is a no-op, a *different* callable under
a taken name raises — silently replacing a component would let two
processes resolve the same spec to different code.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError

#: The component kinds specs and cells resolve through. ``topology``
#: builders return a Network, ``model`` builders an InterferenceModel
#: over one, ``scheduler`` builders a StaticAlgorithm, ``injection``
#: builders an InjectionProcess; the ``cell-*`` kinds keep the
#: sharding-cell builder contracts documented in repro.sim.sharding.
KINDS = (
    "topology",
    "model",
    "scheduler",
    "injection",
    "cell-protocol",
    "cell-injection",
    "cell-pair",
)

_TABLES: Dict[str, Dict[str, Callable]] = {kind: {} for kind in KINDS}


def _table(kind: str) -> Dict[str, Callable]:
    try:
        return _TABLES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown component kind '{kind}'; choose from {', '.join(KINDS)}"
        ) from None


def register(kind: str, name: str, builder: Optional[Callable] = None):
    """Register ``builder`` under ``(kind, name)``.

    Usable as a decorator (``builder`` omitted) or a direct call.
    Re-registering the same callable is a no-op; a different callable
    under a taken name raises :class:`ConfigurationError`.
    """
    table = _table(kind)

    def _file(fn: Callable) -> Callable:
        existing = table.get(name)
        if existing is not None and existing is not fn:
            raise ConfigurationError(
                f"{kind} builder '{name}' is already registered to "
                f"{existing!r}"
            )
        table[name] = fn
        return fn

    if builder is not None:
        return _file(builder)
    return _file


def resolve(kind: str, name: str, label: Optional[str] = None) -> Callable:
    """Look ``name`` up under ``kind``, or import a ``module:attr`` path.

    ``label`` only changes the error wording (the sharding wrappers
    pass e.g. ``"protocol builder"`` to keep their historical
    messages).
    """
    table = _table(kind)
    builder = table.get(name)
    if builder is not None:
        return builder
    label = label or kind
    if ":" in name:
        module_name, _, attr = name.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise ConfigurationError(
                f"cannot import module '{module_name}' for {label} "
                f"'{name}': {exc}"
            ) from exc
        builder = getattr(module, attr, None)
        if callable(builder):
            return builder
        raise ConfigurationError(
            f"module '{module_name}' has no callable '{attr}' "
            f"for {label} '{name}'"
        )
    known = ", ".join(sorted(table)) or "(none)"
    raise ConfigurationError(
        f"unknown {label} '{name}'; registered: {known} "
        "(or use a 'module:function' dotted path)"
    )


def names(kind: str) -> List[str]:
    """Registered names under ``kind``, sorted."""
    return sorted(_table(kind))


def signature(kind: str, name: str) -> str:
    """``name(params...)`` for the registered builder — the authoring aid
    behind ``repro scenarios`` (spec files without reading source)."""
    builder = resolve(kind, name)
    try:
        sig = str(inspect.signature(builder))
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        sig = "(...)"
    return f"{name}{sig}"


def describe(kind: str, name: str) -> str:
    """First docstring line of the registered builder ('' if none)."""
    doc = inspect.getdoc(resolve(kind, name)) or ""
    return doc.splitlines()[0] if doc else ""


__all__ = ["KINDS", "describe", "names", "register", "resolve", "signature"]
