"""The declarative scenario layer.

One serializable description — :class:`~repro.scenario.spec.ScenarioSpec`
— from topology to run-loop backend, resolved through the unified
component registry (:mod:`repro.scenario.registry`), executable
anywhere (:meth:`ScenarioSpec.run`), and runnable as multi-network
fleets with one process per network
(:func:`~repro.scenario.fleet.run_scenario_fleet`). On top of the
fleet layer, :mod:`repro.scenario.campaign` surveys cross-product
grids with a stability-frontier bisection per cell
(:func:`~repro.scenario.campaign.run_campaign`).

The CLI's historical presets live on as spec templates in
:mod:`repro.scenario.presets`; ``cli/builders.py`` and the sharding
builder registries are thin adapters over this layer.

Exports resolve lazily (PEP 562): :mod:`repro.sim.sharding` backs its
builder registries with :mod:`repro.scenario.registry`, and the spec
layer in turn builds protocols from :mod:`repro.core` — an eager
package import here would close that loop while ``repro.core`` is
still initialising. Importing any spec-layer name (or the
:mod:`~repro.scenario.components` module itself, as unpickling a
``ScenarioSpec`` does) registers the built-in components.
"""

from __future__ import annotations

import importlib

from repro.scenario.registry import (  # noqa: F401  (cycle-safe: registry has no heavy imports)
    KINDS,
    describe,
    names,
    register,
    resolve,
    signature,
)

#: Lazily-resolved export -> defining submodule.
_EXPORTS = {
    "BuiltScenario": "repro.scenario.spec",
    "ScenarioSpec": "repro.scenario.spec",
    "AxisComponent": "repro.scenario.campaign",
    "CampaignCell": "repro.scenario.campaign",
    "CampaignResult": "repro.scenario.campaign",
    "CampaignSpec": "repro.scenario.campaign",
    "CellFrontier": "repro.scenario.campaign",
    "FrontierSearch": "repro.scenario.campaign",
    "ProbeOutcome": "repro.scenario.campaign",
    "campaign_from_data": "repro.scenario.campaign",
    "load_campaign": "repro.scenario.campaign",
    "run_campaign": "repro.scenario.campaign",
    "PRESETS": "repro.scenario.presets",
    "preset_names": "repro.scenario.presets",
    "preset_spec": "repro.scenario.presets",
    "FleetResult": "repro.scenario.fleet",
    "FleetSummary": "repro.scenario.fleet",
    "FleetUnit": "repro.scenario.fleet",
    "aggregate_fleet": "repro.scenario.fleet",
    "load_specs": "repro.scenario.fleet",
    "run_scenario_fleet": "repro.scenario.fleet",
    "specs_from_data": "repro.scenario.fleet",
    "components": "repro.scenario.components",
}

__all__ = [
    "KINDS",
    "describe",
    "names",
    "register",
    "resolve",
    "signature",
    *sorted(name for name in _EXPORTS if name != "components"),
]


def __getattr__(name: str):
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    module = importlib.import_module(target)
    value = module if name == "components" else getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
