"""The ``batched`` fleet executor: whole networks advanced in waves.

BENCH_p5 measured that process-per-network cannot amortise small
networks (each is too cheap to ship to a worker, and the bench
container has one CPU). This layer instead routes a fleet through
:mod:`repro.staticsched.batchloop`: every eligible
:class:`~repro.scenario.fleet.FleetUnit` becomes a *step generator*
(its whole simulation — engine frame loop, protocol frame, transform
rounds — expressed through the :mod:`repro.core.steps` seam), and one
in-process wave engine advances all of their static-algorithm sub-runs
together. Results are bit-identical to ``unit.run()`` by construction:
the generators execute the same bookkeeping code the serial entry
points drive, and the wave engine's per-network RunResults and RNG end
states are bit-identical to serial fused runs.

Eligibility and grouping
------------------------
A unit batches when its spec resolves to a fused run-loop backend
(``numpy``/``numba`` — both replay the same bit stream), its scheduler
has a fused policy, and it is not checkpointed (resume runs through
its own serial machinery). Ineligible units fall back *loudly* — one
aggregated :class:`BatchFallbackWarning` per run summarising every
fallback (reason → count), or an immediate error under ``strict`` —
and run serially. Eligible units are grouped by compatible signature
(scheduler, model, kwargs, transform, backend, metrics) and, within a
group, by a padding-waste bound: units are sorted by link count and
split greedily so no member has more than ``padding_ratio`` times the
links of its group's smallest member (the wave tensor pads every
network to the group's widest). Networks larger than ``large_links``
skip batching entirely — at that size the slot loop's numpy calls
operate on arrays big enough to amortise themselves, which is exactly
when the process executor starts winning instead.

Mixed ``frames`` counts batch fine (a retired network simply stops
contributing tasks; its RNG streams are private so survivors are
unperturbed), as do batches of one and zero-link networks (their tasks
are born finished and execute inline).

Where numba is installed and a group's ``backend`` resolves to
``numba``, the group routes to the batch-JIT wave driver
(:mod:`repro.staticsched._batchloop_numba`) — one compiled call per
wave round instead of numpy calls per event slot — under the same
bit-exactness contract. Everything else takes the numpy wave engine.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.transform import TransformedAlgorithm
from repro.errors import ConfigurationError
from repro.scenario.fleet import FleetUnit
from repro.sim.engine import FrameSimulation
from repro.sim.runner import summarize_cell
from repro.staticsched._batchloop_numba import (
    jit_group_supported,
    run_batched_streams_jit,
)
from repro.staticsched.batchloop import run_batched_streams
from repro.staticsched.runloop import resolve_backend

#: Schedulers with a ``fused_policy`` factory (kept in sync with the
#: registry; unknown schedulers simply fall back to serial).
BATCHABLE_SCHEDULERS = frozenset(
    {"kv", "decay", "fkv", "hm", "single-hop"}
)


class BatchFallbackWarning(UserWarning):
    """A fleet unit left the batched path for per-unit execution."""


def _ineligible_reason(unit: Any) -> Optional[str]:
    """Why ``unit`` cannot batch, or None when it can."""
    if not isinstance(unit, FleetUnit):
        return (
            f"work unit {type(unit).__name__} is not a FleetUnit "
            "(only scenario fleets batch)"
        )
    if unit.checkpoint_path is not None:
        return "checkpointed units resume through their serial path"
    spec = unit.spec
    try:
        backend = resolve_backend(spec.backend)
    except ConfigurationError:
        return f"backend {spec.backend!r} does not resolve"
    if backend not in ("numpy", "numba"):
        return f"backend {backend!r} has no fused run loop"
    if spec.scheduler not in BATCHABLE_SCHEDULERS:
        return f"scheduler {spec.scheduler!r} has no fused policy"
    return None


def _relay(call):
    """Yield the batchable form of one AlgorithmCall (sub-generator).

    Transformed algorithms are unrolled through their own step
    generator so each base sub-run batches individually; plain fused
    schedulers are yielded directly; anything else (no fused policy, or
    history recording) executes synchronously in place.
    """
    algorithm = call.algorithm
    if isinstance(algorithm, TransformedAlgorithm):
        base = algorithm.base
        if call.record_history or getattr(base, "fused_policy", None) is None:
            return call.execute()
        return (
            yield from algorithm.run_steps(
                call.model,
                call.requests,
                call.budget,
                call.rng,
                call.record_history,
            )
        )
    if call.record_history or getattr(algorithm, "fused_policy", None) is None:
        return call.execute()
    return (yield call)


def _unit_stream(unit: FleetUnit, built):
    """One fleet unit as a step generator returning its CellResult.

    Mirrors ``ScenarioSpec.run`` exactly — same construction, same
    measurement reduction — with the frame loop driven through the
    generator seam. No backend context is entered: the wave engine is
    bit-identical to every fused backend, and a context manager held
    across yields would corrupt the backend override stack for the
    other interleaved networks.
    """
    spec = unit.spec
    simulation = FrameSimulation(
        built.protocol, built.injection, metrics=spec.metrics
    )
    steps = simulation.run_steps(spec.frames)
    try:
        call = next(steps)
        while True:
            result = yield from _relay(call)
            call = steps.send(result)
    except StopIteration:
        pass
    return summarize_cell(
        built.protocol,
        simulation.metrics,
        spec.frames,
        rate=built.rate,
        seed=spec.seed,
        rate_index=unit.index,
        load_per_frame=None,
        load_from_injected=spec.load_from_injected,
    )


def _group_key(spec) -> Tuple:
    """Batch-compatibility signature (frames deliberately excluded)."""

    def frozen(kwargs) -> Tuple:
        return tuple(sorted((str(k), repr(v)) for k, v in kwargs.items()))

    return (
        spec.scheduler,
        frozen(spec.scheduler_kwargs),
        spec.model,
        frozen(spec.model_kwargs),
        spec.transform,
        spec.chi_scale if spec.transform else None,
        resolve_backend(spec.backend),
        spec.metrics,
    )


def run_fleet_batched(
    units: Sequence[Any],
    padding_ratio: float = 4.0,
    large_links: int = 512,
    strict: bool = False,
) -> List:
    """Run fleet units through the wave engine; results in input order.

    Every result is bit-identical to ``unit.run()``. Ineligible units
    warn (:class:`BatchFallbackWarning`) and run serially; under
    ``strict`` they raise instead.
    """
    if not padding_ratio >= 1.0:
        raise ConfigurationError(
            f"padding_ratio must be >= 1, got {padding_ratio}"
        )
    if large_links < 1:
        raise ConfigurationError(
            f"large_links must be >= 1, got {large_links}"
        )
    units = list(units)
    results: List = [None] * len(units)
    serial_positions: List[int] = []
    groups: Dict[Tuple, List[Tuple[int, FleetUnit, Any, int]]] = {}
    # reason -> positions, in first-seen order; emitted as ONE summary
    # warning after the loop so a large fleet with many fallbacks does
    # not flood the warning stream (strict still raises immediately,
    # per unit, with the precise position).
    fallbacks: Dict[str, List[int]] = {}
    for position, unit in enumerate(units):
        reason = _ineligible_reason(unit)
        if reason is not None:
            if strict:
                raise ConfigurationError(
                    f"fleet unit {position} cannot batch ({reason}); "
                    "running it serially"
                )
            fallbacks.setdefault(reason, []).append(position)
            serial_positions.append(position)
            continue
        built = unit.spec.build()
        links = int(built.model.num_links)
        if links > large_links:
            # By design, not a fallback: a network this large amortises
            # its own numpy calls (and suits the process executor).
            serial_positions.append(position)
            continue
        groups.setdefault(_group_key(unit.spec), []).append(
            (position, unit, built, links)
        )

    if fallbacks:
        total = sum(len(positions) for positions in fallbacks.values())
        details = "; ".join(
            f"{reason} [x{len(positions)}]"
            for reason, positions in fallbacks.items()
        )
        warnings.warn(
            f"{total} of {len(units)} fleet unit(s) cannot batch; "
            f"running them serially ({details})",
            BatchFallbackWarning,
            stacklevel=2,
        )

    for key, members in groups.items():
        # Padding-waste bound: greedy split over ascending link counts
        # so no batch member pads beyond ratio x its smallest peer.
        members.sort(key=lambda member: (member[3], member[0]))
        batch: List[Tuple[int, FleetUnit, Any, int]] = []
        batches = []
        for member in members:
            floor_links = max(1, batch[0][3]) if batch else None
            if batch and member[3] > floor_links * padding_ratio:
                batches.append(batch)
                batch = []
            batch.append(member)
        if batch:
            batches.append(batch)
        # The group key pins (scheduler, model, backend) per group, so
        # one member answers for all: backend "numba" routes the batch
        # to the compiled wave driver when its (scheduler, evaluator)
        # pair is compiled, everything else to the numpy wave engine.
        # Both drivers are bit-identical to serial, so routing is pure
        # performance policy.
        use_jit = key[6] == "numba" and jit_group_supported(
            members[0][2].model, scheduler=key[0]
        )
        for batch in batches:
            streams = [
                _unit_stream(unit, built) for _, unit, built, _ in batch
            ]
            if use_jit:
                outputs = run_batched_streams_jit(streams)
            else:
                outputs = run_batched_streams(streams)
            for (position, _, _, _), output in zip(batch, outputs):
                results[position] = output

    for position in serial_positions:
        results[position] = units[position].run()
    return results


class BatchedExecutor:
    """Executor running fleets through the in-process wave engine.

    Drop-in for the serial/process executors anywhere a fleet or
    campaign takes one (``map(units) -> results``, order preserved,
    records bit-identical). ``workers`` is accepted for interface
    parity and ignored — batching is the single-CPU answer to fleet
    throughput.
    """

    name = "batched"

    def __init__(
        self,
        workers: Optional[int] = None,
        padding_ratio: float = 4.0,
        large_links: int = 512,
        strict: bool = False,
    ):
        del workers  # interface parity with the other executors
        self.padding_ratio = float(padding_ratio)
        self.large_links = int(large_links)
        self.strict = bool(strict)

    def map(self, cells: Sequence[Any]) -> List:
        return run_fleet_batched(
            cells,
            padding_ratio=self.padding_ratio,
            large_links=self.large_links,
            strict=self.strict,
        )


__all__ = [
    "BATCHABLE_SCHEDULERS",
    "BatchFallbackWarning",
    "BatchedExecutor",
    "run_fleet_batched",
]
