"""The CLI's model presets, expressed as :class:`ScenarioSpec` data.

These are the same five presets ``cli/builders.py`` has always offered
— the mapping from a preset name and a node budget to concrete
component choices — now produced as declarative specs so they can be
serialized, sharded, and fleet-run like any hand-written spec.
Construction is bit-compatible with the historical imperative path:
same generators, same parameters, same seeds.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List

from repro.errors import ConfigurationError
from repro.scenario.spec import ScenarioSpec


def _grid_side(nodes: int) -> int:
    return max(2, int(round(math.sqrt(nodes))))


def _packet_routing(nodes: int, seed: int) -> ScenarioSpec:
    side = _grid_side(nodes)
    return ScenarioSpec(
        name="packet-routing",
        topology="grid",
        topology_kwargs={"rows": side, "cols": side},
        model="packet-routing",
        scheduler="single-hop",
        seed=seed,
    )


def _sinr_linear(nodes: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="sinr-linear",
        topology="random",
        topology_kwargs={"num_nodes": nodes},
        model="linear-power",
        scheduler="decay",
        transform=True,
        seed=seed,
    )


def _sinr_sqrt(nodes: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="sinr-sqrt",
        topology="random",
        topology_kwargs={"num_nodes": nodes},
        model="sqrt-power",
        scheduler="kv",
        transform=True,
        seed=seed,
    )


def _mac(nodes: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="mac",
        topology="mac",
        topology_kwargs={"num_stations": max(2, nodes)},
        model="mac",
        scheduler="round-robin",
        seed=seed,
    )


def _conflict(nodes: int, seed: int) -> ScenarioSpec:
    side = _grid_side(nodes)
    return ScenarioSpec(
        name="conflict",
        topology="grid",
        topology_kwargs={"rows": side, "cols": side},
        model="conflict-node",
        scheduler="decay",
        transform=True,
        seed=seed,
    )


PRESETS: Dict[str, Callable[[int, int], ScenarioSpec]] = {
    "packet-routing": _packet_routing,
    "sinr-linear": _sinr_linear,
    "sinr-sqrt": _sinr_sqrt,
    "mac": _mac,
    "conflict": _conflict,
}


def preset_names() -> List[str]:
    """The preset names, in presentation order."""
    return list(PRESETS)


def preset_spec(
    name: str, nodes: int = 12, seed: int = 0, **overrides: Any
) -> ScenarioSpec:
    """Build one preset spec; ``overrides`` replace spec fields.

    ``nodes`` is the preset's node budget, mapped onto the topology's
    natural parameters exactly as the CLI always did (grid side =
    ``round(sqrt(nodes))``, MAC stations = ``max(2, nodes)``, ...).
    """
    if name not in PRESETS:
        raise ConfigurationError(
            f"unknown scenario '{name}'; choose from {', '.join(PRESETS)}"
        )
    if nodes < 2:
        raise ConfigurationError(f"nodes must be >= 2, got {nodes}")
    spec = PRESETS[name](nodes, seed)
    return spec.replace(**overrides) if overrides else spec


__all__ = ["PRESETS", "preset_names", "preset_spec"]
