"""Campaign engine: cross-product grids and frontier bisection.

The paper's headline claims are statements about *where the stable-rate
boundary sits* for each scheduler (Kesselheim, PODC 2012) — yet a fixed
rate sweep spends most of its cells far from that boundary. This module
turns the fleet runner into a survey instrument:

* A :class:`CampaignSpec` expresses a cross-product grid — topology x
  model x scheduler x injection — as one JSON document. It expands
  deterministically (axis-listing order, topology-major) into the
  existing declarative :class:`~repro.scenario.spec.ScenarioSpec`
  layer, so every grid cell resolves through the unified component
  registry and crosses process boundaries like any fleet spec.

* A **stability-frontier bisection** brackets each cell's boundary at
  the search range's endpoints, then bisects on injection rate until
  the bracket is narrower than ``tolerance``. Each probe is the
  majority verdict over the campaign's seeds. Probes are dispatched in
  deterministic waves through any executor from
  :mod:`repro.sim.sharding` (serial, process, resilient) — the
  bisection decisions depend only on the (deterministic) verdicts, so
  the frontier document is bit-identical across executors and worker
  counts.

* With a ``manifest_dir`` the campaign journals every completed probe
  into the PR 6 :class:`~repro.sim.resilience.FleetManifest`
  (checksummed, append-only). An interrupted campaign re-invoked with
  ``resume=True`` replays the identical probe sequence, recovering
  completed probes from the journal instead of re-simulating them —
  and produces a document bit-identical to an uninterrupted run.

A bisection resolves a cell's boundary to ``tolerance`` in
``2 + ceil(log2(span / tolerance))`` rate points where a fixed grid at
the same resolution needs ``ceil(span / tolerance) + 1`` — the
campaign result reports both counts (``total_simulations`` vs
``grid_equivalent_simulations``) so the saving is auditable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.asciiplot import phase_diagram
from repro.errors import ConfigurationError
from repro.scenario.fleet import FleetUnit
from repro.scenario.spec import ScenarioSpec, _plain
from repro.sim.runner import CellResult

#: The four grid axes, in expansion (outer-to-inner) order.
AXIS_KINDS = ("topology", "model", "scheduler", "injection")

#: How a finished cell search classifies its boundary.
FRONTIER_STATUSES = ("bracketed", "below-range", "above-range")

#: ScenarioSpec fields a campaign's ``base`` section may set. The
#: campaign owns the component axes, the rate (the search variable),
#: the seed, and the horizon — letting ``base`` override those would
#: make the document lie about what ran.
_BASE_FIELDS = ("t_scale", "backend", "metrics", "load_from_injected",
                "requires")


# ----------------------------------------------------------------------
# Spec: axes, search parameters, the campaign document
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AxisComponent:
    """One point on a grid axis: a named component plus its kwargs.

    In the JSON document an axis entry is either a bare component name
    (``"decay"``) or a mapping with ``name``, optional ``kwargs``,
    optional display ``label``, and — on the scheduler axis only —
    ``transform`` / ``chi_scale`` (the Section-3 wrapper is part of
    *which scheduler* runs, so it rides on this axis).
    """

    kind: str
    name: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = None
    transform: bool = False
    chi_scale: Optional[float] = None

    def __post_init__(self):
        if self.kind not in AXIS_KINDS:
            raise ConfigurationError(
                f"unknown campaign axis '{self.kind}'; choose from "
                f"{', '.join(AXIS_KINDS)}"
            )
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"campaign {self.kind} axis entries need a non-empty "
                f"component name, got {self.name!r}"
            )
        object.__setattr__(self, "kwargs", dict(self.kwargs))
        if self.kind != "scheduler" and (
            self.transform or self.chi_scale is not None
        ):
            raise ConfigurationError(
                "transform/chi_scale belong on the scheduler axis, not "
                f"on {self.kind} entry '{self.name}'"
            )

    @classmethod
    def from_value(cls, kind: str, value: Any) -> "AxisComponent":
        if isinstance(value, str):
            return cls(kind=kind, name=value)
        if isinstance(value, Mapping):
            known = {"name", "kwargs", "label", "transform", "chi_scale"}
            unknown = set(value) - known
            if unknown:
                raise ConfigurationError(
                    f"unknown campaign {kind} axis field(s): "
                    f"{', '.join(sorted(unknown))}"
                )
            if "name" not in value:
                raise ConfigurationError(
                    f"campaign {kind} axis entries need a 'name'"
                )
            return cls(
                kind=kind,
                name=value["name"],
                kwargs=dict(value.get("kwargs") or {}),
                label=value.get("label"),
                transform=bool(value.get("transform", False)),
                chi_scale=value.get("chi_scale"),
            )
        raise ConfigurationError(
            f"a campaign {kind} axis entry is a component name or a "
            f"mapping, got {type(value).__name__}"
        )

    @property
    def display(self) -> str:
        """Label for tables and the phase diagram."""
        if self.label:
            return self.label
        return f"{self.name}+T" if self.transform else self.name

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name}
        if self.kwargs:
            data["kwargs"] = _plain(
                dict(self.kwargs), f"campaign {self.kind} axis kwargs"
            )
        if self.label is not None:
            data["label"] = self.label
        if self.transform:
            data["transform"] = True
        if self.chi_scale is not None:
            data["chi_scale"] = self.chi_scale
        return data


@dataclass(frozen=True)
class FrontierSearch:
    """The bisection axis: rate range, resolution, interpretation.

    ``rate_mode`` follows :class:`~repro.scenario.spec.ScenarioSpec`:
    ``"fraction"`` searches in multiples of each cell's own certified
    rate (the paper-normalised axis — one frontier number is comparable
    across schedulers), ``"absolute"`` in raw injection rate.
    ``max_rounds`` caps the bisection; a cell that hits the cap reports
    ``converged: false`` with its bracket as-is instead of looping.
    """

    rate_low: float = 0.25
    rate_high: float = 1.5
    tolerance: float = 0.1
    rate_mode: str = "fraction"
    max_rounds: int = 32

    def __post_init__(self):
        if not self.rate_low > 0:
            raise ConfigurationError(
                f"search rate_low must be positive, got {self.rate_low}"
            )
        if not self.rate_high > self.rate_low:
            raise ConfigurationError(
                f"search needs rate_high > rate_low, got "
                f"[{self.rate_low}, {self.rate_high}]"
            )
        if not self.tolerance > 0:
            raise ConfigurationError(
                f"search tolerance must be positive, got {self.tolerance}"
            )
        if self.rate_mode not in ("fraction", "absolute"):
            raise ConfigurationError(
                f"search rate_mode must be 'fraction' or 'absolute', "
                f"got {self.rate_mode!r}"
            )
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"search max_rounds must be >= 1, got {self.max_rounds}"
            )

    @property
    def span(self) -> float:
        return self.rate_high - self.rate_low

    def grid_points(self) -> int:
        """Rate points a fixed grid needs for the same resolution."""
        return int(math.ceil(self.span / self.tolerance - 1e-12)) + 1

    def bisection_points(self) -> int:
        """Worst-case rate points the bisection needs (bracket + halvings)."""
        halvings = max(0, int(math.ceil(
            math.log2(self.span / self.tolerance) - 1e-12
        )))
        return 2 + min(halvings, self.max_rounds)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rate_low": self.rate_low,
            "rate_high": self.rate_high,
            "tolerance": self.tolerance,
            "rate_mode": self.rate_mode,
            "max_rounds": self.max_rounds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FrontierSearch":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"campaign search must be a mapping, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown campaign search field(s): "
                f"{', '.join(sorted(unknown))}"
            )
        return cls(**dict(data))


@dataclass(frozen=True)
class CampaignCell:
    """One grid cell: a component choice per axis, pre-expanded to a spec.

    ``base`` is a fully-validated :class:`ScenarioSpec` whose rate is a
    placeholder — :meth:`probe_spec` stamps the probe's (rate, seed)
    onto it, which is all a bisection probe varies.
    """

    index: int
    topology: AxisComponent
    model: AxisComponent
    scheduler: AxisComponent
    injection: AxisComponent
    base: ScenarioSpec

    @property
    def label(self) -> str:
        return "|".join(
            getattr(self, kind).display for kind in AXIS_KINDS
        )

    def axis_labels(self) -> Dict[str, str]:
        return {kind: getattr(self, kind).display for kind in AXIS_KINDS}

    def probe_spec(self, rate: float, seed: int) -> ScenarioSpec:
        return self.base.replace(rate=rate, seed=seed)


@dataclass(frozen=True)
class CampaignSpec:
    """A cross-product scenario grid plus one frontier search, as data.

    The JSON shape (see :func:`campaign_from_data`)::

        {
          "name": "survey-1",
          "axes": {
            "topology":  ["grid", {"name": "random",
                                   "kwargs": {"num_nodes": 14}}],
            "model":     ["packet-routing"],
            "scheduler": ["single-hop",
                          {"name": "decay", "transform": true}],
            "injection": ["uniform-pairs"]
          },
          "seeds": [0, 1, 2],
          "frames": 150,
          "search": {"rate_low": 0.25, "rate_high": 1.5,
                     "tolerance": 0.1},
          "base": {"t_scale": 0.001}
        }

    ``axes.topology`` and ``axes.scheduler`` are required; ``model``
    and ``injection`` default to the ScenarioSpec defaults. ``base``
    may set only the run-environment fields (``t_scale``, ``backend``,
    ``metrics``, ``load_from_injected``, ``requires``) — the campaign
    owns the axes, the rate, the seed and the horizon.
    """

    topologies: Tuple[AxisComponent, ...]
    schedulers: Tuple[AxisComponent, ...]
    models: Tuple[AxisComponent, ...] = ()
    injections: Tuple[AxisComponent, ...] = ()
    seeds: Tuple[int, ...] = (0,)
    frames: int = 150
    search: FrontierSearch = field(default_factory=FrontierSearch)
    base: Mapping[str, Any] = field(default_factory=dict)
    name: Optional[str] = None

    def __post_init__(self):
        if not self.models:
            object.__setattr__(
                self, "models",
                (AxisComponent(kind="model", name="packet-routing"),),
            )
        if not self.injections:
            object.__setattr__(
                self, "injections",
                (AxisComponent(kind="injection", name="uniform-pairs"),),
            )
        for attr, kind in self._AXIS_ATTRS.items():
            entries = tuple(getattr(self, attr))
            if not entries:
                raise ConfigurationError(
                    f"campaign axis '{kind}' must list at least one "
                    "component"
                )
            for entry in entries:
                if not isinstance(entry, AxisComponent):
                    raise ConfigurationError(
                        f"campaign axis '{kind}' entries must be "
                        f"AxisComponent, got {type(entry).__name__}"
                    )
                if entry.kind != kind:
                    raise ConfigurationError(
                        f"axis '{kind}' holds a component of kind "
                        f"'{entry.kind}' ({entry.name})"
                    )
            object.__setattr__(self, attr, entries)
        seeds = tuple(int(seed) for seed in self.seeds)
        if not seeds:
            raise ConfigurationError("campaign seeds must be non-empty")
        if len(set(seeds)) != len(seeds):
            raise ConfigurationError(
                f"campaign seeds must be distinct, got {list(seeds)}"
            )
        object.__setattr__(self, "seeds", seeds)
        if self.frames < 1:
            raise ConfigurationError(
                f"campaign frames must be >= 1, got {self.frames}"
            )
        base = dict(self.base)
        unknown = set(base) - set(_BASE_FIELDS)
        if unknown:
            raise ConfigurationError(
                f"campaign base may set only {', '.join(_BASE_FIELDS)}; "
                f"got {', '.join(sorted(unknown))}"
            )
        object.__setattr__(self, "base", base)

    _AXIS_ATTRS = {
        "topologies": "topology",
        "models": "model",
        "schedulers": "scheduler",
        "injections": "injection",
    }

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "axes": {
                kind: [entry.to_dict() for entry in getattr(self, attr)]
                for attr, kind in self._AXIS_ATTRS.items()
            },
            "seeds": list(self.seeds),
            "frames": self.frames,
            "search": self.search.to_dict(),
        }
        if self.base:
            data["base"] = _plain(dict(self.base), "campaign base")
        if self.name is not None:
            data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a campaign spec must be a mapping, got "
                f"{type(data).__name__}"
            )
        known = {"axes", "seeds", "frames", "search", "base", "name"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown campaign field(s): {', '.join(sorted(unknown))}"
            )
        axes = data.get("axes")
        if not isinstance(axes, Mapping):
            raise ConfigurationError(
                "a campaign needs an 'axes' mapping with at least "
                "'topology' and 'scheduler' entries"
            )
        unknown_axes = set(axes) - set(AXIS_KINDS)
        if unknown_axes:
            raise ConfigurationError(
                f"unknown campaign axes: {', '.join(sorted(unknown_axes))}"
                f"; choose from {', '.join(AXIS_KINDS)}"
            )
        for required in ("topology", "scheduler"):
            if required not in axes:
                raise ConfigurationError(
                    f"campaign axes must include '{required}'"
                )

        def axis(kind: str) -> Tuple[AxisComponent, ...]:
            values = axes.get(kind, [])
            if isinstance(values, (str, Mapping)):
                values = [values]
            if not isinstance(values, Sequence):
                raise ConfigurationError(
                    f"campaign axis '{kind}' must be a list of entries"
                )
            return tuple(
                AxisComponent.from_value(kind, value) for value in values
            )

        kwargs: Dict[str, Any] = {
            "topologies": axis("topology"),
            "models": axis("model"),
            "schedulers": axis("scheduler"),
            "injections": axis("injection"),
        }
        if "seeds" in data:
            kwargs["seeds"] = tuple(data["seeds"])
        if "frames" in data:
            kwargs["frames"] = data["frames"]
        if "search" in data:
            kwargs["search"] = FrontierSearch.from_dict(data["search"])
        if "base" in data:
            base = data["base"]
            if not isinstance(base, Mapping):
                raise ConfigurationError(
                    f"campaign base must be a mapping, got "
                    f"{type(base).__name__}"
                )
            kwargs["base"] = dict(base)
        if "name" in data:
            kwargs["name"] = data["name"]
        return cls(**kwargs)

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    def fingerprint(self) -> str:
        """Stable identity of the whole campaign (grid + search + seeds).

        Stamped into the resume manifest: a manifest directory is only
        reusable by the identical campaign, so editing the spec refuses
        a stale journal instead of silently mixing probe results.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- expansion -----------------------------------------------------

    def expand(self) -> List[CampaignCell]:
        """The deterministic cross product, topology-major.

        Cells come out in ``itertools.product`` order over (topology,
        model, scheduler, injection), each axis in its listed order —
        expansion is a pure function of the document, so two processes
        (or a resumed campaign) agree on every cell index.
        """
        cells: List[CampaignCell] = []
        for index, (topology, model, scheduler, injection) in enumerate(
            itertools.product(
                self.topologies, self.models, self.schedulers,
                self.injections,
            )
        ):
            spec_kwargs: Dict[str, Any] = dict(self.base)
            if scheduler.chi_scale is not None:
                spec_kwargs["chi_scale"] = scheduler.chi_scale
            base = ScenarioSpec(
                topology=topology.name,
                topology_kwargs=dict(topology.kwargs),
                model=model.name,
                model_kwargs=dict(model.kwargs),
                scheduler=scheduler.name,
                scheduler_kwargs=dict(scheduler.kwargs),
                transform=scheduler.transform,
                injection=injection.name,
                injection_kwargs=dict(injection.kwargs),
                rate=self.search.rate_low,
                rate_mode=self.search.rate_mode,
                frames=self.frames,
                seed=self.seeds[0],
                **spec_kwargs,
            )
            cells.append(
                CampaignCell(
                    index=index,
                    topology=topology,
                    model=model,
                    scheduler=scheduler,
                    injection=injection,
                    base=base,
                )
            )
        return cells


def campaign_from_data(data: Any) -> CampaignSpec:
    """Parse campaign-file payloads: the campaign dict, possibly wrapped
    in ``{"campaign": {...}}``."""
    if isinstance(data, Mapping) and "campaign" in data:
        data = data["campaign"]
    return CampaignSpec.from_dict(data)


def load_campaign(path: Union[str, Path]) -> CampaignSpec:
    """Read a JSON campaign file (see :func:`campaign_from_data`)."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read campaign file '{path}': {exc}"
        )
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"campaign file '{path}' is not valid JSON: {exc}"
        )
    return campaign_from_data(data)


# ----------------------------------------------------------------------
# Frontier search results
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ProbeOutcome:
    """One rate probed for one cell: majority verdict over the seeds."""

    rate: float
    stable: bool
    stable_fraction: float
    results: Tuple[CellResult, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "stable": self.stable,
            "stable_fraction": self.stable_fraction,
            "seeds": [
                {
                    "seed": result.seed,
                    "stable": result.verdict.stable,
                    "tail_queue": result.tail_queue,
                    "throughput": result.throughput,
                    "injected": result.injected,
                    "delivered": result.delivered,
                }
                for result in self.results
            ],
        }


@dataclass(frozen=True)
class CellFrontier:
    """Where one cell's stable-rate boundary landed.

    ``status``: ``"bracketed"`` (boundary inside the search range,
    ``lower`` the highest rate probed stable and ``upper`` the lowest
    probed unstable), ``"below-range"`` (unstable already at
    ``rate_low``), or ``"above-range"`` (still stable at ``rate_high``).
    ``frontier`` is the bracket midpoint (``None`` out of range);
    ``converged`` is False only when ``max_rounds`` cut the bisection
    short of ``tolerance``.
    """

    index: int
    labels: Mapping[str, str]
    status: str
    lower: Optional[float]
    upper: Optional[float]
    frontier: Optional[float]
    converged: bool
    probes: Tuple[ProbeOutcome, ...]

    @property
    def simulations(self) -> int:
        return sum(len(probe.results) for probe in self.probes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "labels": dict(self.labels),
            "status": self.status,
            "lower": self.lower,
            "upper": self.upper,
            "frontier": self.frontier,
            "converged": self.converged,
            "simulations": self.simulations,
            "probes": [probe.to_dict() for probe in self.probes],
        }


@dataclass
class CampaignResult:
    """The full survey outcome: one frontier per grid cell."""

    spec: CampaignSpec
    cells: List[CellFrontier]

    @property
    def total_simulations(self) -> int:
        return sum(cell.simulations for cell in self.cells)

    @property
    def grid_equivalent_simulations(self) -> int:
        """Simulations a fixed-rate grid needs for the same resolution."""
        return (
            self.spec.search.grid_points()
            * len(self.spec.seeds)
            * len(self.cells)
        )

    def document(self) -> Dict[str, Any]:
        """The JSON result document (deterministic: no timestamps)."""
        return {
            "kind": "campaign-frontier",
            "campaign": self.spec.to_dict(),
            "fingerprint": self.spec.fingerprint(),
            "cells": [cell.to_dict() for cell in self.cells],
            "total_simulations": self.total_simulations,
            "grid_equivalent_simulations": self.grid_equivalent_simulations,
        }

    def to_json(self, **dumps_kwargs) -> str:
        dumps_kwargs.setdefault("indent", 2)
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.document(), **dumps_kwargs)

    def phase_diagram(self, width: int = 44) -> str:
        """Ascii phase diagram: one frontier bar per cell."""
        varying = [
            kind
            for attr, kind in CampaignSpec._AXIS_ATTRS.items()
            if len(getattr(self.spec, attr)) > 1
        ]
        rows = []
        for cell in self.cells:
            if varying:
                label = "|".join(cell.labels[kind] for kind in varying)
            else:
                label = "|".join(
                    cell.labels[kind] for kind in AXIS_KINDS
                )
            rows.append((label, cell.lower, cell.upper, cell.status))
        axis_name = (
            "fraction of certified rate"
            if self.spec.search.rate_mode == "fraction"
            else "absolute injection rate"
        )
        return phase_diagram(
            rows,
            self.spec.search.rate_low,
            self.spec.search.rate_high,
            width=width,
            title=f"stable-rate frontier ({axis_name})",
        )


# ----------------------------------------------------------------------
# The bisection engine
# ----------------------------------------------------------------------


@dataclass
class _CellSearch:
    """Mutable bisection state for one cell."""

    cell: CampaignCell
    lower: Optional[float] = None  # highest rate probed stable
    upper: Optional[float] = None  # lowest rate probed unstable
    status: Optional[str] = None
    converged: bool = True
    rounds: int = 0
    probes: List[ProbeOutcome] = field(default_factory=list)
    wave_outcomes: Dict[float, ProbeOutcome] = field(default_factory=dict)

    def next_rates(self, search: FrontierSearch) -> List[float]:
        """The rates this cell needs probed in the coming wave."""
        if self.status is not None:
            return []
        if not self.probes:
            # Bracket wave: both endpoints at once (they are
            # independent, so one wave covers both).
            return [search.rate_low, search.rate_high]
        assert self.lower is not None and self.upper is not None
        if self.upper - self.lower <= search.tolerance:
            self.status = "bracketed"
            return []
        if self.rounds >= search.max_rounds:
            self.status = "bracketed"
            self.converged = False
            return []
        return [0.5 * (self.lower + self.upper)]

    def fold(self, outcomes: Mapping[float, ProbeOutcome],
             search: FrontierSearch) -> None:
        """Absorb this wave's probe outcomes into the bracket."""
        if self.lower is None and self.upper is None and self.status is None:
            low = outcomes[search.rate_low]
            high = outcomes[search.rate_high]
            self.probes.extend([low, high])
            if not low.stable:
                self.status = "below-range"
            elif high.stable:
                self.status = "above-range"
            else:
                self.lower = search.rate_low
                self.upper = search.rate_high
            return
        (rate,) = outcomes
        outcome = outcomes[rate]
        self.probes.append(outcome)
        self.rounds += 1
        if outcome.stable:
            self.lower = rate
        else:
            self.upper = rate

    def frontier(self, search: FrontierSearch) -> CellFrontier:
        assert self.status is not None
        if self.status == "below-range":
            lower, upper, frontier = None, search.rate_low, None
        elif self.status == "above-range":
            lower, upper, frontier = search.rate_high, None, None
        else:
            lower, upper = self.lower, self.upper
            frontier = 0.5 * (lower + upper)
        return CellFrontier(
            index=self.cell.index,
            labels=self.cell.axis_labels(),
            status=self.status,
            lower=lower,
            upper=upper,
            frontier=frontier,
            converged=self.converged,
            probes=tuple(self.probes),
        )


def run_campaign(
    spec: CampaignSpec,
    executor=None,
    manifest_dir: Optional[str] = None,
    resume: bool = False,
    metrics: Optional[str] = None,
    backend: Optional[str] = None,
) -> CampaignResult:
    """Map every grid cell's stable-rate boundary by bisection.

    Probes advance in lockstep waves: every still-active cell
    contributes its next rate(s), the flattened (cell, rate, seed)
    batch runs through ``executor`` (default
    :class:`~repro.sim.sharding.SerialExecutor`; any order-preserving
    ``map(units)`` executor works), and the verdicts move each cell's
    bracket. The wave contents depend only on earlier (deterministic)
    verdicts, so the executor and worker count cannot change the
    document.

    ``manifest_dir`` journals each completed probe into a
    :class:`~repro.sim.resilience.FleetManifest`; with ``resume=True``
    probes already journalled are recovered instead of re-simulated
    (the manifest refuses a directory stamped by a different
    campaign). ``metrics`` / ``backend`` override every probe's
    retention policy / run-loop backend (``"streaming"`` caps each
    probe's memory at O(window) for long horizons).
    """
    # Imported lazily, mirroring sharding: the resilience module pulls
    # in the scenario layer and the serial path should not pay for it.
    from repro.sim.resilience import FleetManifest, unit_key
    from repro.sim.sharding import SerialExecutor

    if resume and manifest_dir is None:
        raise ConfigurationError(
            "resume=True needs a manifest_dir to resume from"
        )
    if executor is None:
        executor = SerialExecutor()
    cells = spec.expand()
    if metrics is not None or backend is not None:
        overrides = {}
        if metrics is not None:
            overrides["metrics"] = metrics
        if backend is not None:
            overrides["backend"] = backend
        cells = [
            dataclasses.replace(cell, base=cell.base.replace(**overrides))
            for cell in cells
        ]
    manifest = FleetManifest(manifest_dir) if manifest_dir else None
    if manifest is not None:
        # The campaign fingerprint covers any overrides: a manifest is
        # only reusable by the exact probe sequence that wrote it.
        identity = json.dumps(
            {
                "campaign": spec.to_dict(),
                "metrics": metrics,
                "backend": backend,
            },
            sort_keys=True,
        )
        manifest.record_fleet(
            hashlib.sha256(identity.encode("utf-8")).hexdigest(),
            len(cells),
        )

    searches = [_CellSearch(cell=cell) for cell in cells]
    while True:
        wave: List[Tuple[_CellSearch, float]] = []
        for search in searches:
            for rate in search.next_rates(spec.search):
                wave.append((search, rate))
        if not wave:
            break
        units: List[FleetUnit] = []
        for search, rate in wave:
            for seed in spec.seeds:
                units.append(
                    FleetUnit(
                        spec=search.cell.probe_spec(rate, seed),
                        index=search.cell.index,
                    )
                )
        keys = [unit_key(unit) for unit in units]
        results: List[Optional[CellResult]] = [None] * len(units)
        to_run: List[int] = []
        for position, key in enumerate(keys):
            recovered = None
            if resume and manifest is not None:
                recovered = manifest.completed_result(key)
            if recovered is not None:
                results[position] = recovered
            else:
                to_run.append(position)
        if to_run:
            fresh = executor.map([units[position] for position in to_run])
            for position, result in zip(to_run, fresh):
                if result is None:
                    # A non-strict resilient executor leaves holes; a
                    # frontier with missing probes would be silently
                    # wrong, so refuse instead.
                    raise ConfigurationError(
                        f"campaign probe {position} produced no result "
                        "(executor reported a failed cell)"
                    )
                results[position] = result
                if manifest is not None:
                    manifest.record_completed(
                        keys[position],
                        units[position].index,
                        result,
                    )
        position = 0
        for search, rate in wave:
            seed_results = tuple(
                results[position + offset]
                for offset in range(len(spec.seeds))
            )
            position += len(spec.seeds)
            stable_fraction = sum(
                1.0 for result in seed_results if result.verdict.stable
            ) / len(seed_results)
            # Matches RateSweepRecord.stable: majority over seeds.
            search.wave_outcomes[rate] = ProbeOutcome(
                rate=rate,
                stable=stable_fraction >= 0.5,
                stable_fraction=stable_fraction,
                results=seed_results,
            )
        for search in searches:
            if search.wave_outcomes:
                search.fold(search.wave_outcomes, spec.search)
                search.wave_outcomes = {}

    return CampaignResult(
        spec=spec,
        cells=[search.frontier(spec.search) for search in searches],
    )


__all__ = [
    "AXIS_KINDS",
    "AxisComponent",
    "CampaignCell",
    "CampaignResult",
    "CampaignSpec",
    "CellFrontier",
    "FRONTIER_STATUSES",
    "FrontierSearch",
    "ProbeOutcome",
    "campaign_from_data",
    "load_campaign",
    "run_campaign",
]
