"""The multi-network fleet runner: one process per network.

A *fleet* is a list of :class:`~repro.scenario.spec.ScenarioSpec` — a
whole distribution of networks evaluated as one campaign, the workload
back-pressure-style evaluation practice runs for every data point
(many topologies per configuration). Each spec is an independent
simulation of its own network, so the fleet maps over any executor
from :mod:`repro.sim.sharding`: in-process, or one worker process per
network. Workers rebuild their network *inside* the worker from the
spec's seed — nothing random crosses a process boundary, and the fold
is input-ordered, so a process fleet is record-for-record identical to
the serial loop.

Per-network outcomes are the same
:class:`~repro.sim.runner.CellResult` a sweep cell produces;
:func:`aggregate_fleet` folds them into a :class:`FleetResult` with
cross-network summary statistics (nan-aware on latency, like the
sweep aggregation).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.scenario.spec import ScenarioSpec
from repro.sim.runner import CellResult


@dataclass(frozen=True)
class FleetUnit:
    """One picklable fleet work unit: a spec and its position.

    The position doubles as the record's ``rate_index`` so results keep
    their spec order through any executor (the aggregation relies on
    order-preserving maps, exactly like the sweep path).

    With ``checkpoint_path`` set, the unit runs resumably: a crash or
    interruption loses at most ``snapshot_interval`` frames, and a
    retry (or a resumed fleet) picks up from the last snapshot.
    """

    spec: ScenarioSpec
    index: int
    checkpoint_path: Optional[str] = None
    snapshot_interval: Optional[int] = None

    def with_checkpoint(
        self, path: str, interval: Optional[int] = None
    ) -> "FleetUnit":
        """A copy of this unit that checkpoints to ``path``."""
        return FleetUnit(
            spec=self.spec,
            index=self.index,
            checkpoint_path=path,
            snapshot_interval=interval,
        )

    def run(self) -> CellResult:
        return self.spec.run(
            rate_index=self.index,
            checkpoint_path=self.checkpoint_path,
            snapshot_interval=self.snapshot_interval,
        )


@dataclass(frozen=True)
class FleetSummary:
    """Cross-network statistics over one fleet's records."""

    networks: int
    stable_fraction: float
    mean_tail_queue: float
    mean_throughput: float
    mean_latency: float
    total_injected: int
    total_delivered: int


@dataclass
class FleetResult:
    """Per-spec records (spec order) plus the cross-network summary."""

    records: List[CellResult]
    summary: FleetSummary


def aggregate_fleet(results: Sequence[CellResult]) -> FleetResult:
    """Fold per-network results into a :class:`FleetResult`.

    Seeds that delivered nothing report NaN latency; they carry no
    latency information, so the summary averages over the networks
    that did deliver (NaN only if none did) — the same convention as
    :func:`repro.sim.runner.aggregate_rate_sweep`.
    """
    records = list(results)
    if not records:
        raise ConfigurationError("cannot aggregate an empty fleet")
    latencies = [r.latency for r in records if not math.isnan(r.latency)]
    summary = FleetSummary(
        networks=len(records),
        stable_fraction=float(
            np.mean([1.0 if r.verdict.stable else 0.0 for r in records])
        ),
        mean_tail_queue=float(np.mean([r.tail_queue for r in records])),
        mean_throughput=float(np.mean([r.throughput for r in records])),
        mean_latency=(
            float(np.mean(latencies)) if latencies else float("nan")
        ),
        total_injected=int(sum(r.injected for r in records)),
        total_delivered=int(sum(r.delivered for r in records)),
    )
    return FleetResult(records=records, summary=summary)


def run_scenario_fleet(
    specs: Sequence[ScenarioSpec],
    executor=None,
    metrics: Optional[str] = None,
) -> FleetResult:
    """Run every spec and aggregate — the ROADMAP's per-network sharder.

    ``executor`` is anything with ``map(units) -> results`` over
    ``unit.run()`` work units (:class:`~repro.sim.sharding.SerialExecutor`
    by default; pass a :class:`~repro.sim.sharding.ProcessExecutor` for
    one process per network). Any executor produces identical records —
    as does either ``metrics`` retention policy: ``metrics`` (when
    given) overrides every spec's retention, and ``"streaming"`` caps
    each worker's memory at O(window) regardless of the horizon.
    """
    # Imported here, not at module top: sharding's registries live in
    # the unified component registry, so importing this package from
    # sharding must not re-enter sharding mid-import.
    from repro.sim.sharding import SerialExecutor

    if metrics is not None:
        specs = [spec.replace(metrics=metrics) for spec in specs]
    units = [
        FleetUnit(spec=spec, index=index) for index, spec in enumerate(specs)
    ]
    if not units:
        raise ConfigurationError("a fleet needs at least one scenario spec")
    if executor is None:
        executor = SerialExecutor()
    return aggregate_fleet(executor.map(units))


def specs_from_data(data: Any) -> List[ScenarioSpec]:
    """Parse spec-file payloads: one spec dict, a list, or {"specs": [...]}."""
    if isinstance(data, Mapping) and "specs" in data:
        data = data["specs"]
    if isinstance(data, Mapping):
        data = [data]
    if not isinstance(data, Sequence) or isinstance(data, (str, bytes)):
        raise ConfigurationError(
            "a spec file holds one spec object, a list of them, or "
            '{"specs": [...]}'
        )
    return [ScenarioSpec.from_dict(item) for item in data]


def load_specs(path: Union[str, Path]) -> List[ScenarioSpec]:
    """Read a JSON spec file (see :func:`specs_from_data` for shapes)."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file '{path}': {exc}")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"spec file '{path}' is not valid JSON: {exc}")
    return specs_from_data(data)


__all__ = [
    "FleetResult",
    "FleetSummary",
    "FleetUnit",
    "aggregate_fleet",
    "load_specs",
    "run_scenario_fleet",
    "specs_from_data",
]
