"""Built-in scenario components, registered at import.

Each registered callable is one building block of a
:class:`~repro.scenario.spec.ScenarioSpec`:

* ``topology`` builders return a :class:`~repro.network.network.Network`.
  Every one accepts a ``seed`` keyword — the spec's seed is passed in by
  default so random topologies draw their instance from it; the
  deterministic generators simply ignore it (one signature, so a spec
  can switch topologies without special-casing randomness).
* ``model`` builders take the built network first and return the
  :class:`~repro.interference.base.InterferenceModel` over it.
* ``scheduler`` builders construct a fresh
  :class:`~repro.staticsched.base.StaticAlgorithm` (the classes
  themselves are registered — their constructor signature *is* the
  parameter surface). The spec applies the Section-3 transformation on
  top when asked (``transform=True``), so raw schedulers stay raw here.
* ``injection`` builders take ``(routing, model, rate, seed, **kwargs)``
  and return an :class:`~repro.injection.base.InjectionProcess` whose
  aggregate injection rate under ``model`` is exactly ``rate``. Every
  randomness stream derives from ``seed`` (offset by 1000, the
  repository-wide convention separating injection streams from protocol
  streams).

``repro scenarios`` lists all of these with their signatures; custom
components register through :func:`repro.scenario.registry.register` or
are named by ``"module:function"`` path directly in the spec.

(No postponed annotations here on purpose: ``repro scenarios`` renders
each builder's live ``inspect.signature``, and string-ified annotations
would print as ``rows: 'int'``.)
"""

from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.injection.adversarial import (
    BurstyAdversary,
    SawtoothAdversary,
    SmoothAdversary,
    TargetedAdversary,
)
from repro.injection.markov import (
    MarkovModulatedInjection,
    PoissonBatchInjection,
)
from repro.injection.stochastic import PathGenerator, uniform_pair_injection
from repro.interference.builders import (
    distance2_matching_conflicts,
    node_constraint_conflicts,
)
from repro.interference.conflict import ConflictGraphModel
from repro.interference.jamming import (
    FrontLoadedPattern,
    JammedModel,
    PeriodicBurstPattern,
    RandomPattern,
)
from repro.interference.mac import MultipleAccessChannel
from repro.interference.packet_routing import PacketRoutingModel
from repro.interference.unreliable import UnreliableModel
from repro.scenario.registry import resolve
from repro.sinr.fading import RayleighFadingSinrModel
from repro.network.topology import (
    figure1_instance,
    grid_network,
    line_network,
    mac_network,
    random_sinr_network,
    star_network,
)
from repro.scenario.registry import register
from repro.sinr.power import SquareRootPower
from repro.sinr.weights import linear_power_model, monotone_power_model
from repro.staticsched.decay import DecayScheduler
from repro.staticsched.fkv import FkvScheduler
from repro.staticsched.hm import HmScheduler
from repro.staticsched.kv import KvScheduler
from repro.staticsched.mac_backoff import MacBackoffScheduler
from repro.staticsched.round_robin import RoundRobinScheduler
from repro.staticsched.single_hop import SingleHopScheduler

# ----------------------------------------------------------------------
# Topologies
# ----------------------------------------------------------------------


@register("topology", "random")
def topology_random(
    num_nodes: int,
    side: float = 1.0,
    max_link_length: Optional[float] = None,
    max_path_length: Optional[int] = None,
    seed: int = 0,
):
    """Random geometric network: uniform nodes, proximity links."""
    return random_sinr_network(
        num_nodes,
        side=side,
        max_link_length=max_link_length,
        max_path_length=max_path_length,
        rng=seed,
    )


@register("topology", "grid")
def topology_grid(
    rows: int,
    cols: int,
    spacing: float = 1.0,
    max_path_length: Optional[int] = None,
    seed: int = 0,
):
    """Rows x cols grid, 4-neighbour links both ways (deterministic)."""
    return grid_network(
        rows, cols, spacing=spacing, max_path_length=max_path_length
    )


@register("topology", "line")
def topology_line(
    num_nodes: int,
    spacing: float = 1.0,
    bidirectional: bool = False,
    max_path_length: Optional[int] = None,
    seed: int = 0,
):
    """Chain 0 -> 1 -> ... -> n-1 (deterministic)."""
    return line_network(
        num_nodes,
        spacing=spacing,
        bidirectional=bidirectional,
        max_path_length=max_path_length,
    )


@register("topology", "star")
def topology_star(leaves: int, radius: float = 1.0, seed: int = 0):
    """Star: centre node 0, leaves on a circle (deterministic)."""
    return star_network(leaves, radius=radius)


@register("topology", "mac")
def topology_mac(num_stations: int, seed: int = 0):
    """Multiple-access channel: stations -> base, no geometry."""
    return mac_network(num_stations)


@register("topology", "figure1")
def topology_figure1(
    m: int, short_length: float = 1.0, separation: float = 1000.0,
    seed: int = 0,
):
    """The Figure-1 lower-bound instance: m-1 short links + 1 long."""
    return figure1_instance(m, short_length=short_length,
                            separation=separation)


# ----------------------------------------------------------------------
# Interference models
# ----------------------------------------------------------------------


@register("model", "packet-routing")
def model_packet_routing(network):
    """Identity W: links interfere only with themselves."""
    return PacketRoutingModel(network)


@register("model", "linear-power")
def model_linear_power(
    network, alpha: float = 3.0, beta: float = 1.0, noise: float = 0.02,
    scale: float = 1.0,
):
    """Corollary-12 SINR model under the linear power assignment."""
    return linear_power_model(
        network, alpha=alpha, beta=beta, noise=noise, scale=scale
    )


@register("model", "sqrt-power")
def model_sqrt_power(
    network, alpha: float = 3.0, beta: float = 1.0, noise: float = 0.02
):
    """Corollary-13 SINR model under square-root (monotone) powers."""
    return monotone_power_model(
        network, SquareRootPower(), alpha=alpha, beta=beta, noise=noise
    )


@register("model", "mac")
def model_mac(network):
    """The all-ones W of Section 7.1: every link pair conflicts."""
    return MultipleAccessChannel(network)


@register("model", "conflict-node")
def model_conflict_node(network):
    """Conflict graph: links sharing an endpoint conflict."""
    return ConflictGraphModel(network, node_constraint_conflicts(network))


@register("model", "conflict-distance2")
def model_conflict_distance2(network, connectivity_radius: float = 1.0):
    """Conflict graph: distance-2 matching in the disk graph."""
    return ConflictGraphModel(
        network, distance2_matching_conflicts(network, connectivity_radius)
    )


@register("model", "fading-sinr")
def model_fading_sinr(
    network, alpha: float = 3.0, beta: float = 1.0, noise: float = 0.02,
    seed: int = 0,
):
    """SINR with Rayleigh block fading; per-slot randomness from ``seed``.

    Stateful-model seeds are offset by 2000 so the fading stream never
    collides with the protocol stream (``seed``) or the injection
    stream (``seed + 1000``).
    """
    return RayleighFadingSinrModel(
        network, alpha=alpha, beta=beta, noise=noise, rng=seed + 2000
    )


@register("model", "unreliable")
def model_unreliable(
    network, loss_probability: float = 0.1, base: str = "packet-routing",
    seed: int = 0,
):
    """Any registered base model thinned by iid per-transmission loss."""
    base_model = resolve("model", base)(network)
    return UnreliableModel(base_model, loss_probability, rng=seed + 2000)


@register("model", "jammed")
def model_jammed(
    network, pattern: str = "periodic", base: str = "packet-routing",
    period: int = 8, burst: int = 2, sigma: float = 0.25, window: int = 16,
    seed: int = 0,
):
    """Any registered base model under a bounded jammer.

    ``pattern`` selects the jamming schedule: ``periodic`` (first
    ``burst`` slots of every ``period``), ``random`` (iid with
    probability ``sigma``), or ``front-loaded`` (whole
    ``(window, sigma)`` budget upfront).
    """
    base_model = resolve("model", base)(network)
    if pattern == "periodic":
        jam = PeriodicBurstPattern(period, burst)
    elif pattern == "random":
        jam = RandomPattern(sigma, rng=seed + 2000)
    elif pattern == "front-loaded":
        jam = FrontLoadedPattern(window, sigma)
    else:
        raise ConfigurationError(
            f"unknown jamming pattern '{pattern}'; choose from periodic, "
            "random, front-loaded"
        )
    return JammedModel(base_model, jam)


# ----------------------------------------------------------------------
# Schedulers — the classes themselves: constructor == parameter surface
# ----------------------------------------------------------------------

register("scheduler", "kv", KvScheduler)
register("scheduler", "decay", DecayScheduler)
register("scheduler", "fkv", FkvScheduler)
register("scheduler", "hm", HmScheduler)
register("scheduler", "round-robin", RoundRobinScheduler)
register("scheduler", "single-hop", SingleHopScheduler)
register("scheduler", "mac-backoff", MacBackoffScheduler)


# ----------------------------------------------------------------------
# Injection processes
# ----------------------------------------------------------------------


def _routed_paths(routing, pairs) -> Sequence[Tuple[int, ...]]:
    if pairs is not None:
        # JSON round-trips pairs as lists; the routing table wants tuples.
        pairs = [tuple(pair) for pair in pairs]
    else:
        pairs = routing.pairs()
    if not pairs:
        raise ConfigurationError("no routed pairs available for injection")
    paths = []
    for source, destination in pairs:
        path = routing.path(source, destination)
        if len(path) == 0:
            raise ConfigurationError(
                f"routing returned an empty path for pair "
                f"({source}, {destination}); injection paths need at "
                "least one link"
            )
        paths.append(path)
    return paths


@register("injection", "uniform-pairs")
def injection_uniform_pairs(
    routing, model, rate, seed, num_generators: int = 6, pairs=None
):
    """Finite generators uniform over routed pairs, scaled to ``rate``."""
    if pairs is not None:
        pairs = [tuple(pair) for pair in pairs]
    return uniform_pair_injection(
        routing,
        model,
        rate,
        num_generators=num_generators,
        pairs=pairs,
        rng=seed + 1000,
    )


@register("injection", "poisson-batch")
def injection_poisson_batch(routing, model, rate, seed, pairs=None):
    """Poisson batches, uniform path draw per packet, scaled to ``rate``."""
    paths = _routed_paths(routing, pairs)
    probability = 1.0 / len(paths)
    per_packet = PathGenerator([(path, probability) for path in paths])
    per_packet_rate = model.injection_norm(
        per_packet.mean_usage(model.num_links)
    )
    if per_packet_rate <= 0:
        raise ConfigurationError("per-packet injection rate is zero; "
                                 "cannot scale to the target rate")
    return PoissonBatchInjection(
        per_packet.distribution, rate / per_packet_rate, rng=seed + 1000
    )


@register("injection", "markov")
def injection_markov(
    routing, model, rate, seed, p_on_off: float = 0.2,
    p_off_on: float = 0.2, num_generators: int = 6, pairs=None,
):
    """Markov-modulated ON/OFF generators, long-run rate exactly ``rate``.

    Each generator is uniform over the routed pairs while ON; the
    conditional (ON) probabilities are scaled so the *stationary* rate
    ``pi_on * ||W . F_on||_inf`` hits the target.
    """
    if num_generators < 1:
        raise ConfigurationError(
            f"num_generators must be >= 1, got {num_generators}"
        )
    paths = _routed_paths(routing, pairs)
    probability = 1.0 / len(paths)
    base = PathGenerator([(path, probability) for path in paths])
    pi_on = p_off_on / (p_on_off + p_off_on)
    stationary = pi_on * num_generators * model.injection_norm(
        base.mean_usage(model.num_links)
    )
    if stationary <= 0:
        raise ConfigurationError(
            "stationary injection rate is zero; cannot scale to the target"
        )
    generators = [
        base.scaled(rate / stationary) for _ in range(num_generators)
    ]
    return MarkovModulatedInjection(
        generators, p_on_off, p_off_on, rng=seed + 1000
    )


_ADVERSARIES = {
    "smooth": SmoothAdversary,
    "bursty": BurstyAdversary,
    "sawtooth": SawtoothAdversary,
    "targeted": TargetedAdversary,
}


@register("injection", "adversarial")
def injection_adversarial(
    routing, model, rate, seed, kind: str = "smooth", window: int = 32,
    pairs=None,
):
    """A ``(window, rate)``-bounded adversary over the routed paths."""
    if kind not in _ADVERSARIES:
        raise ConfigurationError(
            f"unknown adversary kind '{kind}'; choose from "
            f"{', '.join(sorted(_ADVERSARIES))}"
        )
    paths = _routed_paths(routing, pairs)
    return _ADVERSARIES[kind](model, paths, window, rate, rng=seed + 1000)


__all__ = [
    "injection_adversarial",
    "injection_markov",
    "injection_poisson_batch",
    "injection_uniform_pairs",
    "model_conflict_distance2",
    "model_conflict_node",
    "model_fading_sinr",
    "model_jammed",
    "model_linear_power",
    "model_mac",
    "model_packet_routing",
    "model_sqrt_power",
    "model_unreliable",
    "topology_figure1",
    "topology_grid",
    "topology_line",
    "topology_mac",
    "topology_random",
    "topology_star",
]
