"""`ScenarioSpec` — one serializable description of a whole experiment.

Kesselheim's results are statements about *distributions of networks*:
a random geometric instance is drawn, a power scheme fixes the weight
matrix, a scheduler runs under some injection regime. A
:class:`ScenarioSpec` captures that entire pipeline as plain data —
topology generator + params, interference model, scheduler (optionally
transformed), injection process, backend, horizon, seed — so an
experiment can be

* **serialized**: ``to_dict``/``from_dict`` round-trip through JSON
  (numpy scalars and arrays are normalised on the way out), and the
  round-tripped spec produces bit-identical records;
* **shipped across a process boundary**: the spec is picklable under
  any start method; workers rebuild the network *inside* the worker,
  topology RNG derived from the spec's own seed, so nothing random
  ever crosses the boundary (the CellSpec discipline, lifted from one
  (rate, seed) cell to a whole network);
* **resolved late**: components are named through the unified registry
  (:mod:`repro.scenario.registry`) or by ``"module:function"`` path,
  with ``requires`` listing modules whose import registers custom
  components (spawn workers do not inherit the parent's registry).

Seeding convention (shared with the CLI and the sharding builders):
the topology and protocol draw from ``seed`` itself, the injection
process from ``seed + 1000``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import inspect
import json
import os
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.competitive import certified_rate
from repro.core.protocol import DynamicProtocol
from repro.core.transform import TransformedAlgorithm
from repro.errors import ConfigurationError
from repro.network.routing import build_routing_table
import repro.scenario.components  # noqa: F401  (registers the built-ins)
from repro.scenario.registry import resolve
from repro.sim.metrics import RETENTIONS
from repro.sim.runner import CellResult, measure_cell
from repro.staticsched.runloop import BACKENDS, use_backend

#: Backend names a spec may pin; ``kernel`` (the P1 per-slot baseline)
#: is accepted for benchmarks even though it is not a CLI choice.
_SPEC_BACKENDS = frozenset(BACKENDS) | {"kernel"}

_RATE_MODES = ("fraction", "absolute")


def _accepts_seed(builder: Any) -> bool:
    """Whether ``builder`` takes a ``seed`` kwarg (directly or **kwargs).

    Registered topology components all do; dotted-path third-party
    callables may not, and handing them an unexpected kwarg would be a
    raw TypeError from a documented path. When in doubt (uninspectable
    builtins), don't inject.
    """
    try:
        parameters = inspect.signature(builder).parameters.values()
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return False
    return any(
        param.name == "seed" or param.kind is inspect.Parameter.VAR_KEYWORD
        for param in parameters
    )


def _plain(value: Any, where: str) -> Any:
    """Normalise ``value`` to plain JSON-serialisable Python data.

    Numpy scalars become Python scalars, numpy arrays nested lists,
    tuples lists. Anything else non-JSON raises — a spec that cannot
    round-trip must fail at serialisation time, not in a worker.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_plain(item, where) for item in value]
    if isinstance(value, dict):
        return {str(key): _plain(item, where) for key, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"cannot serialise {type(value).__name__} value {value!r} "
        f"in {where}; specs carry plain data only"
    )


@dataclass(frozen=True)
class BuiltScenario:
    """Everything :meth:`ScenarioSpec.build` constructed, pre-wired.

    ``rate`` is the resolved absolute injection rate (fraction specs
    are multiplied out against ``certified``). ``protocol`` and
    ``injection`` are ``None`` when built with ``with_protocol=False``
    (component-only builds, e.g. the CLI preset adapter).
    """

    spec: "ScenarioSpec"
    network: Any
    model: Any
    algorithm: Any
    routing: Any
    certified: float
    rate: float
    protocol: Any = None
    injection: Any = None


@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment as plain data; see the module docstring.

    ``rate`` is interpreted per ``rate_mode``: a *fraction* of the
    built algorithm's certified rate (the CLI convention), or an
    *absolute* injection rate. The protocol is always provisioned at
    ``min(rate, certified)`` — the sweep convention, so overload specs
    push injection past provisioning instead of inflating frames.
    """

    topology: str
    scheduler: str
    model: str = "packet-routing"
    injection: str = "uniform-pairs"
    topology_kwargs: Mapping[str, Any] = field(default_factory=dict)
    model_kwargs: Mapping[str, Any] = field(default_factory=dict)
    scheduler_kwargs: Mapping[str, Any] = field(default_factory=dict)
    injection_kwargs: Mapping[str, Any] = field(default_factory=dict)
    transform: bool = False
    chi_scale: float = 0.05
    rate: float = 0.5
    rate_mode: str = "fraction"
    t_scale: float = 0.001
    frames: int = 100
    seed: int = 0
    backend: Optional[str] = None
    load_from_injected: bool = False
    metrics: str = "full"
    name: Optional[str] = None
    requires: Tuple[str, ...] = ()

    def __post_init__(self):
        for kind in ("topology", "scheduler", "model", "injection"):
            value = getattr(self, kind)
            if not isinstance(value, str) or not value:
                raise ConfigurationError(
                    f"scenario {kind} must be a non-empty component name, "
                    f"got {value!r}"
                )
        for kwargs_field in ("topology_kwargs", "model_kwargs",
                             "scheduler_kwargs", "injection_kwargs"):
            object.__setattr__(
                self, kwargs_field, dict(getattr(self, kwargs_field))
            )
        object.__setattr__(
            self, "requires", tuple(str(m) for m in self.requires)
        )
        if self.frames < 1:
            raise ConfigurationError(
                f"scenario frames must be >= 1, got {self.frames}"
            )
        if not self.rate > 0:
            raise ConfigurationError(
                f"scenario rate must be positive, got {self.rate}"
            )
        if self.rate_mode not in _RATE_MODES:
            raise ConfigurationError(
                f"rate_mode must be one of {', '.join(_RATE_MODES)}, "
                f"got {self.rate_mode!r}"
            )
        if not self.t_scale > 0:
            raise ConfigurationError(
                f"t_scale must be positive, got {self.t_scale}"
            )
        if not self.chi_scale > 0:
            raise ConfigurationError(
                f"chi_scale must be positive, got {self.chi_scale}"
            )
        if self.backend is not None and self.backend not in _SPEC_BACKENDS:
            raise ConfigurationError(
                f"unknown run-loop backend '{self.backend}'; choose from "
                f"{', '.join(sorted(_SPEC_BACKENDS))}"
            )
        if self.metrics not in RETENTIONS:
            raise ConfigurationError(
                f"scenario metrics must be one of {', '.join(RETENTIONS)}, "
                f"got {self.metrics!r}"
            )

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data dict; JSON-safe (numpy scalars/arrays normalised)."""
        data: Dict[str, Any] = {}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "requires":
                value = list(value)
            data[spec_field.name] = _plain(
                value, f"ScenarioSpec.{spec_field.name}"
            )
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a scenario spec must be a mapping, got "
                f"{type(data).__name__}"
            )
        known = {spec_field.name for spec_field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario spec field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**dict(data))

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def replace(self, **changes) -> "ScenarioSpec":
        """A copy with ``changes`` applied (fields re-validated)."""
        return dataclasses.replace(self, **changes)

    def fingerprint(self) -> str:
        """Stable hash of the run-defining configuration.

        Stored in checkpoints as a compatibility check: a checkpoint is
        resumable only by a spec with the same fingerprint. ``frames``
        is excluded (the horizon is exactly what resume extends) and so
        is ``backend`` (all backends replay the same bit stream —
        resuming under a different backend is supported and identical).
        ``metrics`` stays *in* the fingerprint: the two retention
        policies write different metrics/store snapshots, so cross-mode
        resume is refused rather than half-restored.
        """
        data = self.to_dict()
        data.pop("frames", None)
        data.pop("backend", None)
        if data.get("metrics") == "full":
            # The default drops out so full-mode fingerprints (and the
            # checkpoints carrying them) predating the metrics field
            # remain valid.
            data.pop("metrics")
        canonical = json.dumps(data, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- construction and execution ------------------------------------

    def build(self, with_protocol: bool = True) -> BuiltScenario:
        """Resolve components and construct the scenario.

        The topology builder receives ``seed=self.seed`` unless the
        spec's ``topology_kwargs`` pin one explicitly (or the builder —
        e.g. a dotted-path third-party callable — takes no ``seed``
        parameter at all); deterministic generators ignore it. With
        ``with_protocol`` the injection process is built first and the
        protocol shares its ``PacketStore`` (store mode), exactly like
        the CLI commands.
        """
        for module in self.requires:
            importlib.import_module(module)
        topology_builder = resolve("topology", self.topology)
        topology_kwargs = dict(self.topology_kwargs)
        if "seed" not in topology_kwargs and _accepts_seed(topology_builder):
            topology_kwargs["seed"] = self.seed
        network = topology_builder(**topology_kwargs)
        model_builder = resolve("model", self.model)
        model_kwargs = dict(self.model_kwargs)
        if "seed" not in model_kwargs and _accepts_seed(model_builder):
            # Stateful models (fading, unreliable, jammed) draw their
            # own randomness; the spec's seed keeps them replayable.
            model_kwargs["seed"] = self.seed
        model = model_builder(network, **model_kwargs)
        algorithm = resolve("scheduler", self.scheduler)(
            **self.scheduler_kwargs
        )
        if self.transform:
            algorithm = TransformedAlgorithm(
                algorithm, m=network.size_m, chi_scale=self.chi_scale
            )
        certified = certified_rate(algorithm, network.size_m)
        rate = (
            self.rate * certified
            if self.rate_mode == "fraction"
            else self.rate
        )
        routing = build_routing_table(network)
        protocol = injection = None
        if with_protocol:
            injection = resolve("injection", self.injection)(
                routing, model, rate, self.seed, **self.injection_kwargs
            )
            protocol = DynamicProtocol(
                model,
                algorithm,
                min(rate, certified),
                t_scale=self.t_scale,
                rng=self.seed,
                store=getattr(injection, "store", None),
            )
        return BuiltScenario(
            spec=self,
            network=network,
            model=model,
            algorithm=algorithm,
            routing=routing,
            certified=certified,
            rate=rate,
            protocol=protocol,
            injection=injection,
        )

    def run(
        self,
        rate_index: int = 0,
        load_per_frame: Optional[float] = None,
        checkpoint_path: Optional[str] = None,
        snapshot_interval: Optional[int] = None,
    ) -> CellResult:
        """Build and measure the scenario in whichever process this runs.

        Returns the same :class:`~repro.sim.runner.CellResult` a sweep
        cell produces, so fleet results fold through the shared
        aggregation machinery. ``backend`` (when set) is pinned for the
        duration of the run only.

        With ``checkpoint_path`` the run is resumable: a valid existing
        checkpoint (matching this spec's :meth:`fingerprint`) is
        restored and only the remaining frames run, with a snapshot
        written every ``snapshot_interval`` frames and at the end. An
        invalid, corrupt, or foreign checkpoint is discarded and the
        run restarts from frame 0 — the run is deterministic, so the
        result is bit-identical either way.
        """
        built = self.build()
        context = (
            use_backend(self.backend) if self.backend else nullcontext()
        )
        with context:
            if checkpoint_path is None:
                return measure_cell(
                    built.protocol,
                    built.injection,
                    self.frames,
                    rate=built.rate,
                    seed=self.seed,
                    rate_index=rate_index,
                    load_per_frame=load_per_frame,
                    load_from_injected=self.load_from_injected,
                    metrics=self.metrics,
                )
            from repro.sim import checkpoint as ckpt
            from repro.sim.engine import FrameSimulation
            from repro.sim.runner import summarize_cell

            fingerprint = self.fingerprint()
            simulation = FrameSimulation(
                built.protocol, built.injection, metrics=self.metrics
            )
            if os.path.exists(checkpoint_path):
                try:
                    ckpt.load_checkpoint_into(
                        simulation, checkpoint_path, fingerprint=fingerprint
                    )
                    if simulation.frames_run > self.frames:
                        raise ConfigurationError(
                            "checkpoint is past the requested horizon"
                        )
                except ConfigurationError:
                    # A restore can fail mid-way, leaving mixed state:
                    # rebuild from scratch and start at frame 0.
                    built = self.build()
                    simulation = FrameSimulation(
                        built.protocol, built.injection, metrics=self.metrics
                    )
            ckpt.run_with_checkpoints(
                simulation,
                self.frames,
                checkpoint_path,
                interval=snapshot_interval,
                fingerprint=fingerprint,
            )
            return summarize_cell(
                built.protocol,
                simulation.metrics,
                self.frames,
                rate=built.rate,
                seed=self.seed,
                rate_index=rate_index,
                load_per_frame=load_per_frame,
                load_from_injected=self.load_from_injected,
            )


__all__ = ["BuiltScenario", "ScenarioSpec"]
