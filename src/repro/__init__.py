"""repro — dynamic packet scheduling in wireless networks.

A full reproduction of Thomas Kesselheim, *Dynamic Packet Scheduling in
Wireless Networks* (PODC 2012): the linear interference abstraction,
the Section-3 static-algorithm transformation, the Section-4/5 dynamic
protocols for stochastic and adversarial injection, the SINR
instantiations of Section 6, the multiple-access-channel and
conflict-graph applications of Section 7, and the Theorem-20 global-
clock lower bound — plus the simulation substrate to exercise them.

Quickstart::

    import repro

    net = repro.random_sinr_network(40, rng=0)
    model = repro.linear_power_model(net, alpha=3.0, beta=1.0, noise=0.01)
    algorithm = repro.TransformedAlgorithm(
        repro.DecayScheduler(), m=net.size_m, chi_scale=0.05
    )
    rate = 0.5 * repro.certified_rate(algorithm, net.size_m)
    protocol = repro.DynamicProtocol(model, algorithm, rate, t_scale=0.001, rng=1)
    routing = repro.build_routing_table(net)
    injection = repro.uniform_pair_injection(routing, model, rate, rng=2)
    sim = repro.FrameSimulation(protocol, injection)
    sim.run(200)
    print(sim.metrics.queue_series[-5:], sim.metrics.throughput())

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-claim-by-claim reproduction results.
"""

from repro.errors import (
    ConfigurationError,
    InfeasibleLinkError,
    InjectionError,
    ReproError,
    SchedulingError,
    StabilityError,
    TopologyError,
)
from repro.geometry import (
    EuclideanMetric,
    FiniteMetric,
    Point,
    estimate_doubling_dimension,
)
from repro.network import (
    Link,
    Network,
    RoutingTable,
    build_routing_table,
    figure1_instance,
    grid_network,
    line_network,
    mac_network,
    random_sinr_network,
    star_network,
)
from repro.interference import (
    AffectanceThresholdModel,
    ConflictGraphModel,
    ExplicitMatrixModel,
    FrontLoadedPattern,
    InterferenceModel,
    JammedModel,
    JammingPattern,
    MultipleAccessChannel,
    PacketRoutingModel,
    PeriodicBurstPattern,
    RandomPattern,
    UnreliableModel,
    degree_ordering,
    distance2_matching_conflicts,
    inductive_independence_for_ordering,
    jamming_budget_factor,
    length_ordering,
    node_constraint_conflicts,
    protocol_model_conflicts,
    radio_network_conflicts,
    reliability_budget_factor,
    request_vector,
    worst_window_fraction,
)
from repro.sinr import (
    LinearPower,
    PowerAssignment,
    PowerControlCapacity,
    RayleighFadingSinrModel,
    SinrModel,
    SquareRootPower,
    UniformPower,
    affectance_matrix,
    fading_budget_factor,
    linear_power_weights,
    monotone_power_weights,
    power_control_weights,
    worst_singleton_success,
)
from repro.sinr.weights import linear_power_model, monotone_power_model
from repro.injection import (
    BurstyAdversary,
    InjectionProcess,
    MarkovModulatedInjection,
    Packet,
    PacketSequence,
    PacketStore,
    PacketView,
    PathGenerator,
    PoissonBatchInjection,
    SawtoothAdversary,
    SmoothAdversary,
    StochasticInjection,
    TargetedAdversary,
    WindowAudit,
    empirical_usage,
    uniform_pair_injection,
)
from repro.staticsched import (
    DecayScheduler,
    FkvScheduler,
    HmScheduler,
    KvScheduler,
    LengthBound,
    MacBackoffScheduler,
    MaxWeightScheduler,
    OracleScheduler,
    PowerControlScheduler,
    RoundRobinScheduler,
    RunResult,
    SingleHopScheduler,
    StaticAlgorithm,
)
from repro.core import (
    DynamicProtocol,
    Figure1Model,
    FrameParameters,
    PotentialTracker,
    ShiftedDynamicProtocol,
    TransformedAlgorithm,
    certified_rate,
    compute_frame_parameters,
    estimate_max_stable_rate,
    feasible_measure_upper_bound,
    simulate_figure1,
)
from repro.sim import (
    CellResult,
    CellSpec,
    EventKind,
    FrameSimulation,
    MetricsRecorder,
    ProcessExecutor,
    RateSweepRecord,
    SerialExecutor,
    StabilityVerdict,
    TraceEvent,
    Tracer,
    aggregate_rate_sweep,
    assess_stability,
    format_journey,
    make_executor,
    measure_cell,
    packet_journey,
    run_rate_sweep,
    run_sharded_sweep,
    sweep_specs,
)
from repro.scenario import (
    FleetResult,
    FleetSummary,
    ScenarioSpec,
    aggregate_fleet,
    preset_spec,
    run_scenario_fleet,
)
from repro.analysis import (
    busy_period_stats,
    drift_confidence_interval,
    format_table,
    line_chart,
    littles_law_check,
    sparkline,
    utilisation,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "InjectionError",
    "SchedulingError",
    "InfeasibleLinkError",
    "StabilityError",
    # geometry / network
    "Point",
    "EuclideanMetric",
    "FiniteMetric",
    "estimate_doubling_dimension",
    "Link",
    "Network",
    "RoutingTable",
    "build_routing_table",
    "random_sinr_network",
    "grid_network",
    "line_network",
    "star_network",
    "mac_network",
    "figure1_instance",
    # interference
    "InterferenceModel",
    "request_vector",
    "ExplicitMatrixModel",
    "AffectanceThresholdModel",
    "MultipleAccessChannel",
    "PacketRoutingModel",
    "ConflictGraphModel",
    "inductive_independence_for_ordering",
    "length_ordering",
    "degree_ordering",
    "node_constraint_conflicts",
    "protocol_model_conflicts",
    "radio_network_conflicts",
    "distance2_matching_conflicts",
    "UnreliableModel",
    "reliability_budget_factor",
    "JammingPattern",
    "PeriodicBurstPattern",
    "RandomPattern",
    "FrontLoadedPattern",
    "JammedModel",
    "jamming_budget_factor",
    "worst_window_fraction",
    # sinr
    "SinrModel",
    "PowerAssignment",
    "UniformPower",
    "LinearPower",
    "SquareRootPower",
    "affectance_matrix",
    "linear_power_weights",
    "monotone_power_weights",
    "power_control_weights",
    "linear_power_model",
    "monotone_power_model",
    "PowerControlCapacity",
    "RayleighFadingSinrModel",
    "fading_budget_factor",
    "worst_singleton_success",
    # injection
    "Packet",
    "PacketStore",
    "PacketView",
    "PacketSequence",
    "InjectionProcess",
    "StochasticInjection",
    "PathGenerator",
    "uniform_pair_injection",
    "SmoothAdversary",
    "BurstyAdversary",
    "SawtoothAdversary",
    "TargetedAdversary",
    "WindowAudit",
    "MarkovModulatedInjection",
    "PoissonBatchInjection",
    "empirical_usage",
    # static algorithms
    "StaticAlgorithm",
    "RunResult",
    "LengthBound",
    "DecayScheduler",
    "FkvScheduler",
    "HmScheduler",
    "KvScheduler",
    "MacBackoffScheduler",
    "RoundRobinScheduler",
    "PowerControlScheduler",
    "SingleHopScheduler",
    "OracleScheduler",
    "MaxWeightScheduler",
    # core
    "TransformedAlgorithm",
    "FrameParameters",
    "compute_frame_parameters",
    "DynamicProtocol",
    "ShiftedDynamicProtocol",
    "PotentialTracker",
    "Figure1Model",
    "simulate_figure1",
    "certified_rate",
    "estimate_max_stable_rate",
    "feasible_measure_upper_bound",
    # sim / analysis
    "FrameSimulation",
    "MetricsRecorder",
    "StabilityVerdict",
    "assess_stability",
    "run_rate_sweep",
    "RateSweepRecord",
    "CellResult",
    "CellSpec",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "measure_cell",
    "aggregate_rate_sweep",
    "run_sharded_sweep",
    "sweep_specs",
    # scenario layer
    "ScenarioSpec",
    "FleetResult",
    "FleetSummary",
    "aggregate_fleet",
    "preset_spec",
    "run_scenario_fleet",
    "EventKind",
    "TraceEvent",
    "Tracer",
    "packet_journey",
    "format_journey",
    "format_table",
    "sparkline",
    "line_chart",
    "littles_law_check",
    "drift_confidence_interval",
    "busy_period_stats",
    "utilisation",
]
