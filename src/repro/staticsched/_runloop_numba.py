"""The optional numba-compiled run-loop backend.

One JIT "driver" runs a (policy, evaluator) slot loop to completion:
the kv / decay / fkv / hm / single-hop recurrences over the
affectance, conflict and SINR gain-table evaluators, with delivery,
history and compaction done by scalar loops inside the compiled
function. The Python wrapper owns everything the driver cannot:
uniform chunks (drawn from the caller's generator, bit-identical to
per-slot draws), history-array growth, and the rare slots that need
*exact* numpy arithmetic. The driver also retires event-free slots in
closed form: between events every policy's per-link thresholds are
frozen (decay/HM change only on queue drains, FKV only at phase
boundaries, KV only on attempts or idle recovery), so a window of
upcoming slots is scanned for its first coin hit and the miss prefix
is skipped wholesale — the same wave trick
:mod:`repro.staticsched.batchloop` plays in numpy, here at compiled
speed. :mod:`repro.staticsched._batchloop_numba` stacks many of these
drivers into one JIT call per fleet group.

Parity contract
---------------
The compiled loop must replay the scalar reference bit for bit. The
ingredients:

* **Coins** come pre-drawn from the caller's PCG64 stream via
  :class:`~repro.staticsched.runloop.ChunkedUniforms` (same values,
  same order as per-slot draws, generator rewound exactly at run end).
  Skipped slots consume exactly the coins the serial loop would have
  drawn for them; the scan compares the same coins against the same
  thresholds the serial slot body would, so the first event slot — and
  every attempt set — is identical by construction.
* **Recurrences** (backoff, clamps, phase probabilities) are scalar
  IEEE operations identical to the numpy ufunc element operations.
* **Affectance row sums** are one place compiled arithmetic can
  diverge: numpy reduces pairwise, the compiled loop sequentially, and
  the two can differ in the last ulps. Both are within ~1e-11 of the
  exact value on admissible instances, so outside a ±1e-9 band around
  the threshold the success *decision* is identical; a slot whose
  impact lands inside the band is bailed out (``_BORDERLINE``) and
  executed once in Python with the reference's own pairwise reduction,
  then the compiled loop resumes. The conflict evaluator is pure
  boolean algebra and needs no band.
* **SINR interference sums** get the same treatment with a *relative*
  band: the compiled loop gathers received powers fresh each slot
  (``power * gain`` products are single exact multiplies, identical to
  numpy's elementwise ``received`` array) and sums them sequentially;
  numpy's ``received.sum(axis=0)`` reduction order differs in the last
  ulps. Gain tables span orders of magnitude, so the band scales with
  ``max(1, signal, |beta * (interference + noise) - 1e-12|)`` — a slot
  whose signal-vs-threshold margin lands inside ±1e-9 of that scale is
  replayed in Python with the reference's exact expression. There is
  deliberately *no* maintained-row-sum fast path for SINR: incremental
  updates would accumulate compaction drift relative to the subtracted
  magnitudes, which adversarial gain tables could push past any fixed
  band, while fresh gathers keep the divergence reduction-order-sized.

The HM scheduler's transmission probabilities divide by incrementally
maintained contention row sums — a place no guard band can help,
because a last-ulp summation difference changes coin comparisons
directly, not a band-guarded success decision. Its lane therefore
maintains contention with :func:`_pairwise_sum`, a replay of numpy's
own pairwise reduction (8-lane blocks, tree merge, halved recursion),
and :func:`supported` admits HM only after a one-time runtime
self-check that the replay matches ``np.add.reduce`` bit for bit on
the numpy build at hand.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

try:
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised in the no-numba lane
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # pragma: no cover
        def deco(fn):
            return fn

        return deco if not (args and callable(args[0])) else args[0]


from repro.interference.conflict import ConflictGraphModel
from repro.interference.matrix_model import AffectanceThresholdModel
from repro.staticsched.base import LazySlotHistory, LinkQueues, RunResult

# Policy / evaluator codes shared between wrapper and driver.
_KV, _DECAY, _FKV, _SINGLE_HOP, _HM = 0, 1, 2, 3, 4
_AFFECTANCE, _CONFLICT, _SINR = 0, 1, 2
# Driver exit statuses.
_DONE, _NEED_UNIFORMS, _HIST_FULL, _BORDERLINE = 0, 1, 2, 3
# State-vector slots.
_S_SLOTS, _S_PENDING, _S_K, _S_CUR, _S_DN = 0, 1, 2, 3, 4
_S_ATT_LEN, _S_HSLOTS, _S_PHASE, _S_PHASE_LEFT, _S_LP_DIRTY = 5, 6, 7, 8, 9

_GUARD = 1e-9

#: The compiled support matrix's axes, for diagnostics (see
#: :func:`lane_matrix` and the ``repro backends`` CLI command).
COMPILED_SCHEDULERS = ("kv", "decay", "fkv", "hm", "single-hop")
COMPILED_EVALUATORS = ("affectance", "conflict", "sinr")


def supported(policy, model, budget: int = 0,
              record_history: bool = False) -> bool:
    """Whether this (policy, model) run can go through the driver."""
    if not NUMBA_AVAILABLE:
        return False
    from repro.sinr.model import SinrModel
    from repro.staticsched.runloop import (
        DecayPolicy,
        FkvPolicy,
        HmPolicy,
        KvPolicy,
        SingleHopPolicy,
    )

    if type(policy) not in (KvPolicy, DecayPolicy, FkvPolicy,
                            SingleHopPolicy, HmPolicy):
        return False
    if type(model) not in (AffectanceThresholdModel, ConflictGraphModel,
                           SinrModel):
        return False
    if type(policy) is HmPolicy and not _pairwise_self_check():
        # HM's coin probabilities have no guard band; only admit it
        # when the pairwise replay is proven exact on this build.
        return False
    if record_history and budget > 2_000_000:
        # History offsets are preallocated per slot; decline absurd
        # recording budgets rather than over-allocate.
        return False
    return True


def lane_matrix() -> Dict[Tuple[str, str], str]:
    """Live (scheduler, evaluator) -> lane map, as gated *right now*.

    ``"numba"`` means the pair would run through the compiled driver in
    this process (numba importable; for HM, the pairwise self-check
    passed); ``"numpy"`` means it falls back to the fused numpy lane.
    """
    out: Dict[Tuple[str, str], str] = {}
    for sched in COMPILED_SCHEDULERS:
        lane = "numpy"
        if NUMBA_AVAILABLE and (
            sched != "hm" or _pairwise_self_check()
        ):
            lane = "numba"
        for ev in COMPILED_EVALUATORS:
            out[(sched, ev)] = lane
    return out


@njit(cache=False)
def _pairwise_sum(a, lo, n):
    """``np.add.reduce`` over ``a[lo:lo + n]``, replayed bit for bit.

    This is numpy's pairwise reduction verbatim: sequential below 8
    elements; up to 128, eight accumulator lanes over blocks of 8
    merged as ``((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7))`` with a
    sequential tail; above that, recursion on halves rounded down to
    a multiple of 8. :func:`_pairwise_self_check` proves the match at
    runtime before HM is admitted to the compiled lane.
    """
    if n < 8:
        acc = 0.0
        for i in range(n):
            acc += a[lo + i]
        return acc
    if n <= 128:
        r0 = a[lo]
        r1 = a[lo + 1]
        r2 = a[lo + 2]
        r3 = a[lo + 3]
        r4 = a[lo + 4]
        r5 = a[lo + 5]
        r6 = a[lo + 6]
        r7 = a[lo + 7]
        i = 8
        while i + 8 <= n:
            r0 += a[lo + i]
            r1 += a[lo + i + 1]
            r2 += a[lo + i + 2]
            r3 += a[lo + i + 3]
            r4 += a[lo + i + 4]
            r5 += a[lo + i + 5]
            r6 += a[lo + i + 6]
            r7 += a[lo + i + 7]
            i += 8
        acc = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            acc += a[lo + i]
            i += 1
        return acc
    n2 = (n // 2) - ((n // 2) % 8)
    return _pairwise_sum(a, lo, n2) + _pairwise_sum(a, lo + n2, n - n2)


_PAIRWISE_OK: Optional[bool] = None


def _pairwise_self_check() -> bool:
    """One-time gate: the pairwise replay must equal ``np.add.reduce``
    exactly on magnitude-adversarial probes (every size class of the
    algorithm: sequential, single block, blocked + tail, recursive)."""
    global _PAIRWISE_OK
    if _PAIRWISE_OK is None:
        probe = np.random.default_rng(0x5EED)
        ok = True
        for n in (1, 5, 8, 9, 64, 127, 128, 129, 500, 4096):
            a = probe.random(n) * 10.0 ** probe.integers(-12, 12, size=n)
            ok = ok and (_pairwise_sum(a, 0, n) == np.add.reduce(a))
        _PAIRWISE_OK = bool(ok)
    return _PAIRWISE_OK


@njit(cache=False)
def _pow_int(base, exponent):
    # Mirror the exactly-representable exponent fast paths so the
    # result matches numpy's power loop bit for bit even if the libm
    # at hand is not correctly rounded for them.
    if exponent == 0.0:
        return 1.0
    if exponent == 1.0:
        return base
    if exponent == 2.0:
        return base * base
    return base ** exponent


@njit(cache=False)
def _advance(policy, evalk, budget, rec, record_history,
             p0, p_min, backoff, threshold, beta, noise,
             dec_prob, dec_comp,
             fkv_prob, fkv_comp, fkv_len, fkv_n, hm_chi,
             uniforms, ulen, S,
             busy, head_ptr, end_ptr, order,
             probability, last_reset, lp, contention,
             eval_flat, sub_flat, n0, row_sums, diag, adj_flat, cols,
             delivered, att_ids, att_off, succ_off,
             att_loc, ok, fscratch):
    """Advance one run until done or a Python service point.

    All sizes the driver must respect arrive as scalars (``ulen`` for
    the valid uniforms prefix, ``fkv_n`` for the phase-table length,
    ``n0`` for the flat-matrix stride) rather than through ``.size``,
    so the same kernel runs on exact-size arrays (serial) and on
    padded pool rows (:mod:`repro.staticsched._batchloop_numba`).
    """
    slots = S[_S_SLOTS]
    pending = S[_S_PENDING]
    k = S[_S_K]
    cur = S[_S_CUR]
    dn = S[_S_DN]
    att_len = S[_S_ATT_LEN]
    hslots = S[_S_HSLOTS]
    phase = S[_S_PHASE]
    phase_left = S[_S_PHASE_LEFT]
    lp_dirty = S[_S_LP_DIRTY]

    prob_scalar = dec_prob
    comp_scalar = dec_comp
    if policy == _FKV and phase >= 0:
        idx = phase if phase < fkv_n else fkv_n - 1
        prob_scalar = fkv_prob[idx]
        comp_scalar = fkv_comp[idx]

    status = _DONE
    while slots < budget and pending > 0:
        uses_rng = policy != _SINGLE_HOP
        if uses_rng and cur + k > ulen:
            status = _NEED_UNIFORMS
            break
        if record_history and (
            att_len + k > att_ids.size or hslots + 2 > att_off.size
        ):
            status = _HIST_FULL
            break

        # -- phase bookkeeping (fkv) -------------------------------
        if policy == _FKV and phase_left == 0:
            phase += 1
            idx = phase if phase < fkv_n else fkv_n - 1
            prob_scalar = fkv_prob[idx]
            comp_scalar = fkv_comp[idx]
            phase_left = fkv_len[idx]
            lp_dirty = 1

        # -- threshold refresh --------------------------------------
        # The same lazy recompute the slot body used to run, hoisted
        # so the window scan below compares against fresh thresholds
        # (identical inputs, identical scalar ops, identical bits).
        if uses_rng and policy != _KV and lp_dirty == 1:
            if policy == _HM:
                # min(1, chi / max(contention, 1)) — scalar IEEE ops
                # identical to the numpy ufunc elements.
                for i in range(k):
                    c = contention[i]
                    if c < 1.0:
                        c = 1.0
                    p = hm_chi / c
                    lp[i] = p if p < 1.0 else 1.0
            else:
                for i in range(k):
                    depth = np.float64(end_ptr[i] - head_ptr[i])
                    lp[i] = 1.0 - _pow_int(comp_scalar, depth)
            lp_dirty = 0

        # -- window scan: retire event-free slots in closed form ----
        # Thresholds are frozen between events, so scanning coins at
        # the current state finds exactly the slots the serial body
        # would find attempt-free. The horizon caps guarantee nothing
        # but coin consumption happens inside the skipped prefix:
        # KV's idle recovery cannot fire before min(last_reset) + rec,
        # FKV's phase cannot expire before phase_left runs out, and
        # decay/HM thresholds only move on deliveries (events).
        if uses_rng:
            w = budget - slots
            if policy == _KV:
                mn = last_reset[0]
                for i in range(1, k):
                    if last_reset[i] < mn:
                        mn = last_reset[i]
                h = mn + rec - slots
                if h < w:
                    w = h
            elif policy == _FKV:
                if phase_left < w:
                    w = phase_left
            avail = (ulen - cur) // k
            if avail < w:
                w = avail
            if record_history:
                hcap = att_off.size - 1 - hslots
                if hcap < w:
                    w = hcap
            if w > 1:
                skip = 0
                base = cur
                while skip < w:
                    hit = False
                    if policy == _KV:
                        for i in range(k):
                            if uniforms[base + i] < probability[i]:
                                hit = True
                                break
                    else:
                        for i in range(k):
                            if uniforms[base + i] < lp[i]:
                                hit = True
                                break
                    if hit:
                        break
                    skip += 1
                    base += k
                if skip > 0:
                    cur += skip * k
                    slots += skip
                    if policy == _FKV:
                        phase_left -= skip
                    if record_history:
                        for s in range(skip):
                            att_off[hslots + 1] = att_len
                            succ_off[hslots + 1] = dn
                            hslots += 1
                    if skip == w:
                        continue

        if policy == _FKV:
            phase_left -= 1

        # -- draws --------------------------------------------------
        t = 0
        if policy == _KV:
            for i in range(k):
                if uniforms[cur + i] < probability[i]:
                    att_loc[t] = i
                    t += 1
                    last_reset[i] = slots
        elif policy == _SINGLE_HOP:
            for i in range(k):
                att_loc[i] = i
            t = k
        else:
            for i in range(k):
                if uniforms[cur + i] < lp[i]:
                    att_loc[t] = i
                    t += 1
        if uses_rng:
            cur += k

        # -- evaluate -----------------------------------------------
        n_succ = 0
        drained = False
        if t > 0:
            if evalk == _CONFLICT:
                for j in range(t):
                    base = cols[att_loc[j]] * n0
                    collided = False
                    for j2 in range(t):
                        if adj_flat[base + cols[att_loc[j2]]] != 0:
                            collided = True
                            break
                    ok[j] = not collided
            else:
                borderline = False
                if evalk == _AFFECTANCE and t == k:
                    for j in range(k):
                        imp = row_sums[j] - diag[j]
                        d = imp - threshold
                        if -_GUARD < d < _GUARD:
                            borderline = True
                        ok[j] = imp <= threshold
                else:
                    # Fresh gathers every slot (no maintained sums for
                    # SINR: incremental updates would drift relative
                    # to the subtracted magnitudes; fresh sequential
                    # sums stay reduction-order-close to numpy's).
                    for j in range(t):
                        jl = att_loc[j]
                        ci = cols[jl]
                        base = ci * n0
                        acc = 0.0
                        for j2 in range(t):
                            acc += eval_flat[base + cols[att_loc[j2]]]
                        acc -= eval_flat[base + ci]
                        if evalk == _AFFECTANCE:
                            d = acc - threshold
                            if -_GUARD < d < _GUARD:
                                borderline = True
                            ok[j] = acc <= threshold
                        else:
                            # SINR: signal >= beta*(I + noise) - 1e-12
                            # with a relative band (gain tables span
                            # magnitudes, so an absolute band would be
                            # either blind or always-on).
                            sig = diag[jl]
                            rhs = beta * (acc + noise) - 1e-12
                            d = sig - rhs
                            sc = 1.0
                            if sig > sc:
                                sc = sig
                            ar = rhs if rhs >= 0.0 else -rhs
                            if ar > sc:
                                sc = ar
                            if -_GUARD * sc < d < _GUARD * sc:
                                borderline = True
                            ok[j] = sig >= rhs
                if borderline:
                    # Rewind this slot's coins and hand the whole slot
                    # to the Python exact path (the kv idle stamps
                    # above are idempotent re-runs there).
                    if uses_rng:
                        cur -= k
                    status = _BORDERLINE
                    break

            # -- pops -----------------------------------------------
            for j in range(t):
                if ok[j]:
                    i = att_loc[j]
                    hp = head_ptr[i]
                    delivered[dn] = order[hp]
                    dn += 1
                    n_succ += 1
                    head_ptr[i] = hp + 1
                    if hp + 1 == end_ptr[i]:
                        drained = True
            pending -= n_succ

        # -- history ------------------------------------------------
        if record_history:
            for j in range(t):
                att_ids[att_len + j] = busy[att_loc[j]]
            att_len += t
            att_off[hslots + 1] = att_len
            succ_off[hslots + 1] = dn
            hslots += 1

        # -- adaptive updates ---------------------------------------
        if policy == _KV:
            for j in range(t):
                i = att_loc[j]
                if ok[j]:
                    probability[i] = p0
                else:
                    v = probability[i] * backoff
                    probability[i] = v if v > p_min else p_min
            stamp = slots - rec
            for i in range(k):
                if last_reset[i] == stamp:
                    v = probability[i] * 2.0
                    probability[i] = v if v < p0 else p0
                    last_reset[i] = slots
        elif policy != _SINGLE_HOP and n_succ > 0:
            lp_dirty = 1

        # -- compaction ---------------------------------------------
        if drained:
            # Affectance row sums update sequentially (guard-banded);
            # HM contention updates pairwise (no band exists for coin
            # probabilities); everything else just copies down. The
            # gone set is collected once into the att_loc scratch.
            n_gone = 0
            if evalk == _AFFECTANCE or policy == _HM:
                for i in range(k):
                    if head_ptr[i] >= end_ptr[i]:
                        att_loc[n_gone] = cols[i]  # scratch reuse
                        n_gone += 1
            wk = 0
            for i in range(k):
                if head_ptr[i] < end_ptr[i]:
                    if evalk == _AFFECTANCE:
                        acc = row_sums[i]
                        base = cols[i] * n0
                        for g in range(n_gone):
                            acc -= sub_flat[base + att_loc[g]]
                        row_sums[wk] = acc
                    else:
                        row_sums[wk] = row_sums[i]
                    if policy == _HM:
                        # Contention feeds coin probabilities with no
                        # guard band: gather the gone columns and
                        # reduce them pairwise, bit-identical to the
                        # numpy backend's sub[keep, gone].sum(axis=1).
                        base = cols[i] * n0
                        for g in range(n_gone):
                            fscratch[g] = sub_flat[base + att_loc[g]]
                        contention[wk] = contention[i] - _pairwise_sum(
                            fscratch, 0, n_gone
                        )
                    diag[wk] = diag[i]
                    busy[wk] = busy[i]
                    head_ptr[wk] = head_ptr[i]
                    end_ptr[wk] = end_ptr[i]
                    cols[wk] = cols[i]
                    probability[wk] = probability[i]
                    last_reset[wk] = last_reset[i]
                    lp[wk] = lp[i]
                    wk += 1
            k = wk
            lp_dirty = 1

        slots += 1

    S[_S_SLOTS] = slots
    S[_S_PENDING] = pending
    S[_S_K] = k
    S[_S_CUR] = cur
    S[_S_DN] = dn
    S[_S_ATT_LEN] = att_len
    S[_S_HSLOTS] = hslots
    S[_S_PHASE] = phase
    S[_S_PHASE_LEFT] = phase_left
    S[_S_LP_DIRTY] = lp_dirty
    return status


def _fkv_phase_tables(policy, model, requests):
    """Precompute the fkv phase schedule until its fixpoint.

    Once ``measure / 2**phase`` hits the floor of 1.0 the phase
    parameters stop changing, so the driver clamps to the last entry.
    """
    import math

    requests = list(requests)
    n = max(1, len(requests))
    log_n = math.log(n + 2)
    measure = max(model.interference_measure(requests), 1.0)
    probs: List[float] = []
    lens: List[int] = []
    phase = 0
    while True:
        phase_measure = max(measure / 2.0 ** phase, 1.0)
        probs.append(
            min(0.25, 1.0 / (policy.probability_scale * phase_measure))
        )
        lens.append(max(1, math.ceil(
            policy.phase_scale
            * policy.probability_scale
            * max(phase_measure, log_n)
        )))
        if phase_measure == 1.0:
            break
        phase += 1
    prob = np.asarray(probs)
    comp = 1.0 - prob
    return prob, comp, np.asarray(lens, dtype=np.int64)


def _exact_python_slot(policy_code, evalk, rec, p0, p_min, backoff,
                       threshold, beta, noise,
                       record_history, uniforms, S,
                       busy, head_ptr, end_ptr, order,
                       probability, last_reset, lp, contention,
                       sub, gains_sub, powers_sub, row_sums, diag, cols,
                       delivered, att_ids, att_off, succ_off):
    """Execute one borderline slot with the reference's exact numpy
    arithmetic, updating the driver's state in place.

    Only the affectance and SINR evaluators can request this. The
    attempt set is recomputed from the same coins (the driver rewound
    its cursor); the success decision uses the scalar reference's own
    expression — the pairwise submatrix row sums for affectance, the
    ``received.sum(axis=0)`` reduction on the gathered gain submatrix
    for SINR — so the slot is bit-exact by construction.
    """
    slots = int(S[_S_SLOTS])
    k = int(S[_S_K])
    cur = int(S[_S_CUR])
    if policy_code == _KV:
        u = uniforms[cur:cur + k]
        attempt = u < probability[:k]
        att_idx = attempt.nonzero()[0]
        last_reset[att_idx] = slots
        cur += k
    elif policy_code == _SINGLE_HOP:
        att_idx = np.arange(k)
    else:
        u = uniforms[cur:cur + k]
        attempt = u < lp[:k]
        att_idx = attempt.nonzero()[0]
        cur += k
    t = att_idx.size

    n_succ = 0
    drained = False
    heads = np.empty(0, dtype=np.int64)
    if t:
        t_idx = cols[:k][att_idx]
        if evalk == _SINR:
            # Verbatim _SinrBatchEvaluator.successes_local arithmetic
            # on the same cached busy-set submatrices.
            gains = gains_sub[t_idx[:, None], t_idx]
            received = powers_sub[t_idx, None] * gains
            signal = received.diagonal()
            interference = received.sum(axis=0) - signal
            ok = signal >= beta * (interference + noise) - 1e-12
        else:
            sub_t = sub[t_idx[:, None], t_idx]
            impact = sub_t.sum(axis=1) - sub_t.diagonal()
            ok = impact <= threshold
        s_idx = att_idx[ok]
        if s_idx.size:
            hp = head_ptr[:k][s_idx]
            heads = order[hp].copy()
            dn = int(S[_S_DN])
            delivered[dn:dn + heads.size] = heads
            S[_S_DN] = dn + heads.size
            head_ptr[s_idx] = hp + 1
            n_succ = int(heads.size)
            drained = bool((hp + 1 == end_ptr[:k][s_idx]).any())
    else:
        ok = np.empty(0, dtype=bool)

    if record_history:
        att_len = int(S[_S_ATT_LEN])
        hslots = int(S[_S_HSLOTS])
        att_ids[att_len:att_len + t] = busy[:k][att_idx]
        att_off[hslots + 1] = att_len + t
        succ_off[hslots + 1] = int(S[_S_DN])
        S[_S_ATT_LEN] = att_len + t
        S[_S_HSLOTS] = hslots + 1

    if policy_code == _KV:
        if t:
            backed = np.maximum(
                probability[:k][att_idx] * backoff, p_min
            )
            backed[ok] = p0
            probability[att_idx] = backed
        rec_idx = (last_reset[:k] == slots - rec).nonzero()[0]
        if rec_idx.size:
            doubled = probability[:k][rec_idx] * 2.0
            np.minimum(doubled, p0, out=doubled)
            probability[rec_idx] = doubled
            last_reset[rec_idx] = slots
    elif policy_code != _SINGLE_HOP and n_succ:
        S[_S_LP_DIRTY] = 1

    if drained:
        live = head_ptr[:k] < end_ptr[:k]
        surv = live.nonzero()[0]
        gone_cols = cols[:k][~live]
        kept_cols = cols[:k][surv]
        ns = surv.size
        if evalk == _AFFECTANCE:
            gone_impact = sub[kept_cols[:, None], gone_cols].sum(axis=1)
            row_sums[:ns] = row_sums[:k][surv] - gone_impact
            if policy_code == _HM:
                # Same pairwise row reduction HmPolicy.compact does.
                contention[:ns] = contention[:k][surv] - gone_impact
        elif policy_code == _HM:
            gone_w = sub[kept_cols[:, None], gone_cols].sum(axis=1)
            contention[:ns] = contention[:k][surv] - gone_w
        for arr in (busy, head_ptr, end_ptr, cols, diag, probability,
                    last_reset, lp):
            arr[:ns] = arr[:k][surv]
        S[_S_K] = ns
        S[_S_LP_DIRTY] = 1

    S[_S_PENDING] = int(S[_S_PENDING]) - n_succ
    S[_S_CUR] = cur
    S[_S_SLOTS] = slots + 1


class CompiledSetup:
    """Everything one (policy, model, requests) run hands the driver.

    The serial wrapper (:func:`run_compiled`) consumes these arrays in
    place; the batch driver
    (:mod:`repro.staticsched._batchloop_numba`) copies them into its
    padded pool rows instead. Either way the Python-side exact-slot
    replay reads ``sub`` / ``gains_sub`` / ``powers_sub`` — the 2-D
    caches the flat kernel views were built from.
    """

    __slots__ = (
        "policy_code", "eval_code", "uses_rng",
        "p0", "p_min", "backoff", "rec", "threshold", "beta", "noise",
        "dec_prob", "dec_comp", "fkv_prob", "fkv_comp", "fkv_len",
        "hm_chi",
        "order", "starts", "busy", "head_ptr", "end_ptr", "n_pending",
        "k0", "cols", "probability", "last_reset", "lp", "contention",
        "fscratch", "sub", "gains_sub", "powers_sub",
        "eval_flat", "sub_flat", "row_sums", "diag", "adj_flat",
        "delivered", "att_loc", "ok", "S",
    )

    @classmethod
    def prepare(cls, policy, model, requests) -> "CompiledSetup":
        from repro.sinr.model import SinrModel
        from repro.staticsched.runloop import (
            DecayPolicy,
            FkvPolicy,
            HmPolicy,
            KvPolicy,
            SingleHopPolicy,
        )

        st = cls()
        queues = LinkQueues(requests, model.num_links)
        st.order, st.starts = queues.csr_arrays()
        busy = queues.busy_array()
        st.busy = busy
        k0 = busy.size
        st.k0 = k0
        st.head_ptr = st.starts[busy].copy()
        st.end_ptr = st.starts[busy + 1].copy()
        st.n_pending = queues.pending

        policy_code = {
            KvPolicy: _KV,
            DecayPolicy: _DECAY,
            FkvPolicy: _FKV,
            SingleHopPolicy: _SINGLE_HOP,
            HmPolicy: _HM,
        }[type(policy)]
        st.policy_code = policy_code
        st.uses_rng = policy_code != _SINGLE_HOP
        if type(model) is AffectanceThresholdModel:
            eval_code = _AFFECTANCE
        elif type(model) is SinrModel:
            eval_code = _SINR
        else:
            eval_code = _CONFLICT
        st.eval_code = eval_code

        # Policy parameters (unused ones keep benign defaults).
        st.p0 = st.p_min = st.backoff = 0.0
        st.rec = 0
        st.dec_prob = st.dec_comp = 0.0
        st.fkv_prob = np.empty(0)
        st.fkv_comp = np.empty(0)
        st.fkv_len = np.empty(0, dtype=np.int64)
        if policy_code == _KV:
            st.p0, st.p_min = policy.p0, policy.p_min
            st.backoff, st.rec = policy.backoff, policy.recovery_slots
        elif policy_code == _DECAY:
            measure = max(
                model.interference_measure(list(requests)),
                policy.measure_floor,
            )
            st.dec_prob = min(
                1.0, 1.0 / (policy.probability_scale * measure)
            )
            st.dec_comp = 1.0 - st.dec_prob
        elif policy_code == _FKV:
            st.fkv_prob, st.fkv_comp, st.fkv_len = _fkv_phase_tables(
                policy, model, requests
            )
        st.hm_chi = policy.chi if policy_code == _HM else 0.0

        # Evaluator caches (typed consistently across all calls).
        # row_sums/diag are full-size for every evaluator: the unified
        # compaction loop copies them unconditionally, and numba does
        # not bounds-check zero-size placeholders.
        st.threshold = 0.0
        st.beta = st.noise = 0.0
        st.sub = np.empty((0, 0))
        st.gains_sub = np.empty((0, 0))
        st.powers_sub = np.empty(0)
        st.sub_flat = np.empty(0)
        st.eval_flat = np.empty(0)
        st.row_sums = np.zeros(k0)
        st.diag = np.zeros(k0)
        st.adj_flat = np.empty(0, dtype=np.uint8)
        if eval_code == _AFFECTANCE:
            st.threshold = model.threshold
            st.sub = model.weight_matrix()[np.ix_(busy, busy)]
            st.sub_flat = np.ascontiguousarray(st.sub).reshape(-1)
            st.eval_flat = st.sub_flat
            st.row_sums = st.sub.sum(axis=1)
            st.diag = st.sub.diagonal().copy()
        elif eval_code == _SINR:
            st.beta = model.beta
            st.noise = model.noise
            st.gains_sub = model._gains[np.ix_(busy, busy)]
            st.powers_sub = model._powers[busy]
            # recv_t[j, i] = power(i) * gain(i, j): the impact ON
            # receiver j FROM sender i, row-major by receiver so the
            # driver's generic row gather applies unchanged. Each
            # entry is one exact multiply — the same value numpy's
            # elementwise `received` array holds.
            recv_t = np.ascontiguousarray(
                (st.powers_sub[:, None] * st.gains_sub).T
            )
            st.eval_flat = recv_t.reshape(-1)
            st.diag = recv_t.diagonal().copy()
        else:
            adj = model.adjacency_matrix()[np.ix_(busy, busy)]
            st.adj_flat = adj.astype(np.uint8).reshape(-1)
        if policy_code == _HM and eval_code != _AFFECTANCE and k0 > 0:
            # Non-affectance evaluators: HM still needs the weight
            # submatrix for its contention bookkeeping (HmPolicy.bind
            # does the same).
            st.sub = model.weight_matrix()[np.ix_(busy, busy)]
            st.sub_flat = np.ascontiguousarray(st.sub).reshape(-1)
        st.cols = np.arange(k0)

        # Full-size state for every policy: the driver's compaction
        # loop copies all of them unconditionally.
        st.probability = np.full(k0, st.p0)
        st.last_reset = np.full(k0, -1, dtype=np.int64)
        st.lp = np.zeros(k0)
        # HM contention: the exact numpy row sums HmPolicy.bind
        # computes (the driver's pairwise updates keep them
        # bit-identical).
        st.contention = (
            st.sub.sum(axis=1) if policy_code == _HM else np.zeros(0)
        )
        st.fscratch = np.empty(k0 if policy_code == _HM else 0)

        st.delivered = np.empty(st.n_pending, dtype=np.int64)
        st.att_loc = np.empty(k0, dtype=np.int64)
        st.ok = np.empty(k0, dtype=bool)

        S = np.zeros(16, dtype=np.int64)
        S[_S_PENDING] = st.n_pending
        S[_S_K] = k0
        S[_S_PHASE] = -1
        S[_S_LP_DIRTY] = 1
        st.S = S
        return st

    def exact_slot(self, uniforms, att_ids, att_off, succ_off,
                   record_history: bool = False) -> None:
        """One borderline slot through the exact numpy path."""
        _exact_python_slot(
            self.policy_code, self.eval_code, self.rec, self.p0,
            self.p_min, self.backoff, self.threshold, self.beta,
            self.noise, record_history, uniforms, self.S,
            self.busy, self.head_ptr, self.end_ptr, self.order,
            self.probability, self.last_reset, self.lp,
            self.contention,
            self.sub, self.gains_sub, self.powers_sub,
            self.row_sums, self.diag, self.cols,
            self.delivered, att_ids, att_off, succ_off,
        )

    def assemble(self, record_history: bool, requests,
                 att_ids, att_off, succ_off) -> RunResult:
        """Build the RunResult from the driver's final state."""
        dn = int(self.S[_S_DN])
        k = int(self.S[_S_K])
        delivered_list = self.delivered[:dn].tolist()
        remaining: List[int] = []
        for i in range(k):
            remaining.extend(
                self.order[
                    self.head_ptr[i]:self.starts[self.busy[i] + 1]
                ].tolist()
            )
        history: Optional[LazySlotHistory] = None
        if record_history:
            history = LazySlotHistory(
                np.asarray(requests, dtype=np.int64)
            )
            hslots = int(self.S[_S_HSLOTS])
            for s in range(hslots):
                a0, a1 = int(att_off[s]), int(att_off[s + 1])
                d0, d1 = int(succ_off[s]), int(succ_off[s + 1])
                if a1 == a0:
                    history.append_empty()
                else:
                    history.append_ids_heads(
                        att_ids[a0:a1], self.delivered[d0:d1]
                    )
        return RunResult(
            delivered=delivered_list,
            remaining=remaining,
            slots_used=int(self.S[_S_SLOTS]),
            history=history,
        )


def run_compiled(policy, model, requests, budget, gen,
                 record_history) -> RunResult:
    """Run one (policy, model) pair through the compiled driver."""
    from repro.staticsched.runloop import ChunkedUniforms

    st = CompiledSetup.prepare(policy, model, requests)

    if record_history:
        cap_slots = min(int(budget), 4096)
        att_ids = np.empty(max(4 * st.n_pending, 1024), dtype=np.int64)
        att_off = np.zeros(cap_slots + 1, dtype=np.int64)
        succ_off = np.zeros(cap_slots + 1, dtype=np.int64)
    else:
        att_ids = np.empty(0, dtype=np.int64)
        att_off = np.zeros(1, dtype=np.int64)
        succ_off = np.zeros(1, dtype=np.int64)

    chunk = ChunkedUniforms(gen) if st.uses_rng else None
    uniforms = chunk._buf if chunk is not None else np.empty(0)
    # _consumed value at the last refill (= minus the spliced-in
    # leftover); the driver consumes straight off the buffer, so the
    # chunk's consumption ledger is re-synced after every return.
    consumed_base = 0

    while True:
        status = _advance(
            st.policy_code, st.eval_code, budget, st.rec,
            record_history,
            st.p0, st.p_min, st.backoff, st.threshold, st.beta,
            st.noise, st.dec_prob, st.dec_comp,
            st.fkv_prob, st.fkv_comp, st.fkv_len, st.fkv_prob.size,
            st.hm_chi,
            uniforms, uniforms.size, st.S,
            st.busy, st.head_ptr, st.end_ptr, st.order,
            st.probability, st.last_reset, st.lp, st.contention,
            st.eval_flat, st.sub_flat, st.k0, st.row_sums, st.diag,
            st.adj_flat, st.cols,
            st.delivered, att_ids, att_off, succ_off,
            st.att_loc, st.ok, st.fscratch,
        )
        if chunk is not None:
            chunk._cursor = int(st.S[_S_CUR])
            chunk._consumed = consumed_base + int(st.S[_S_CUR])
        if status == _DONE:
            break
        if status == _NEED_UNIFORMS:
            chunk.refill(int(st.S[_S_K]))
            uniforms = chunk._buf
            st.S[_S_CUR] = 0
            consumed_base = chunk._consumed
        elif status == _HIST_FULL:
            att_ids = np.concatenate(
                [att_ids, np.empty(att_ids.size + 1024, dtype=np.int64)]
            )
            grow = np.zeros(att_off.size + 4096, dtype=np.int64)
            grow[:att_off.size] = att_off
            att_off = grow
            grow = np.zeros(succ_off.size + 4096, dtype=np.int64)
            grow[:succ_off.size] = succ_off
            succ_off = grow
        elif status == _BORDERLINE:
            st.exact_slot(
                uniforms, att_ids, att_off, succ_off, record_history
            )
            if chunk is not None:
                chunk._cursor = int(st.S[_S_CUR])
                chunk._consumed = consumed_base + int(st.S[_S_CUR])

    if chunk is not None:
        chunk.finalize()

    return st.assemble(record_history, requests, att_ids, att_off,
                       succ_off)


__all__ = [
    "COMPILED_EVALUATORS",
    "COMPILED_SCHEDULERS",
    "CompiledSetup",
    "NUMBA_AVAILABLE",
    "lane_matrix",
    "run_compiled",
    "supported",
]
