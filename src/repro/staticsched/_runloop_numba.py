"""The optional numba-compiled run-loop backend.

One JIT "driver" runs a (policy, evaluator) slot loop to completion:
the kv / decay / fkv / single-hop recurrences over the affectance and
conflict evaluators, with delivery, history and compaction done by
scalar loops inside the compiled function. The Python wrapper owns
everything the driver cannot: uniform chunks (drawn from the caller's
generator, bit-identical to per-slot draws), history-array growth, and
the rare slots that need *exact* numpy arithmetic.

Parity contract
---------------
The compiled loop must replay the scalar reference bit for bit. Three
ingredients make that work:

* **Coins** come pre-drawn from the caller's PCG64 stream via
  :class:`~repro.staticsched.runloop.ChunkedUniforms` (same values,
  same order as per-slot draws, generator rewound exactly at run end).
* **Recurrences** (backoff, clamps, phase probabilities) are scalar
  IEEE operations identical to the numpy ufunc element operations.
* **Affectance row sums** are the one place compiled arithmetic can
  diverge: numpy reduces pairwise, the compiled loop sequentially, and
  the two can differ in the last ulps. Both are within ~1e-11 of the
  exact value on admissible instances, so outside a ±1e-9 band around
  the threshold the success *decision* is identical; a slot whose
  impact lands inside the band is bailed out (``_BORDERLINE``) and
  executed once in Python with the reference's own pairwise reduction,
  then the compiled loop resumes. The conflict evaluator is pure
  boolean algebra and needs no band.

The HM scheduler's transmission probabilities divide by incrementally
maintained contention row sums — a place no guard band can help,
because a last-ulp summation difference changes coin comparisons
directly, not a band-guarded success decision. Its lane therefore
maintains contention with :func:`_pairwise_sum`, a replay of numpy's
own pairwise reduction (8-lane blocks, tree merge, halved recursion),
and :func:`supported` admits HM only after a one-time runtime
self-check that the replay matches ``np.add.reduce`` bit for bit on
the numpy build at hand.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

try:
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised in the no-numba lane
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # pragma: no cover
        def deco(fn):
            return fn

        return deco if not (args and callable(args[0])) else args[0]


from repro.interference.conflict import ConflictGraphModel
from repro.interference.matrix_model import AffectanceThresholdModel
from repro.staticsched.base import LazySlotHistory, LinkQueues, RunResult

# Policy / evaluator codes shared between wrapper and driver.
_KV, _DECAY, _FKV, _SINGLE_HOP, _HM = 0, 1, 2, 3, 4
_AFFECTANCE, _CONFLICT = 0, 1
# Driver exit statuses.
_DONE, _NEED_UNIFORMS, _HIST_FULL, _BORDERLINE = 0, 1, 2, 3
# State-vector slots.
_S_SLOTS, _S_PENDING, _S_K, _S_CUR, _S_DN = 0, 1, 2, 3, 4
_S_ATT_LEN, _S_HSLOTS, _S_PHASE, _S_PHASE_LEFT, _S_LP_DIRTY = 5, 6, 7, 8, 9

_GUARD = 1e-9


def supported(policy, model, budget: int = 0,
              record_history: bool = False) -> bool:
    """Whether this (policy, model) run can go through the driver."""
    if not NUMBA_AVAILABLE:
        return False
    from repro.staticsched.runloop import (
        DecayPolicy,
        FkvPolicy,
        HmPolicy,
        KvPolicy,
        SingleHopPolicy,
    )

    if type(policy) not in (KvPolicy, DecayPolicy, FkvPolicy,
                            SingleHopPolicy, HmPolicy):
        return False
    if type(model) not in (AffectanceThresholdModel, ConflictGraphModel):
        return False
    if type(policy) is HmPolicy and not _pairwise_self_check():
        # HM's coin probabilities have no guard band; only admit it
        # when the pairwise replay is proven exact on this build.
        return False
    if record_history and budget > 2_000_000:
        # History offsets are preallocated per slot; decline absurd
        # recording budgets rather than over-allocate.
        return False
    return True


@njit(cache=False)
def _pairwise_sum(a, lo, n):
    """``np.add.reduce`` over ``a[lo:lo + n]``, replayed bit for bit.

    This is numpy's pairwise reduction verbatim: sequential below 8
    elements; up to 128, eight accumulator lanes over blocks of 8
    merged as ``((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7))`` with a
    sequential tail; above that, recursion on halves rounded down to
    a multiple of 8. :func:`_pairwise_self_check` proves the match at
    runtime before HM is admitted to the compiled lane.
    """
    if n < 8:
        acc = 0.0
        for i in range(n):
            acc += a[lo + i]
        return acc
    if n <= 128:
        r0 = a[lo]
        r1 = a[lo + 1]
        r2 = a[lo + 2]
        r3 = a[lo + 3]
        r4 = a[lo + 4]
        r5 = a[lo + 5]
        r6 = a[lo + 6]
        r7 = a[lo + 7]
        i = 8
        while i + 8 <= n:
            r0 += a[lo + i]
            r1 += a[lo + i + 1]
            r2 += a[lo + i + 2]
            r3 += a[lo + i + 3]
            r4 += a[lo + i + 4]
            r5 += a[lo + i + 5]
            r6 += a[lo + i + 6]
            r7 += a[lo + i + 7]
            i += 8
        acc = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            acc += a[lo + i]
            i += 1
        return acc
    n2 = (n // 2) - ((n // 2) % 8)
    return _pairwise_sum(a, lo, n2) + _pairwise_sum(a, lo + n2, n - n2)


_PAIRWISE_OK: Optional[bool] = None


def _pairwise_self_check() -> bool:
    """One-time gate: the pairwise replay must equal ``np.add.reduce``
    exactly on magnitude-adversarial probes (every size class of the
    algorithm: sequential, single block, blocked + tail, recursive)."""
    global _PAIRWISE_OK
    if _PAIRWISE_OK is None:
        probe = np.random.default_rng(0x5EED)
        ok = True
        for n in (1, 5, 8, 9, 64, 127, 128, 129, 500, 4096):
            a = probe.random(n) * 10.0 ** probe.integers(-12, 12, size=n)
            ok = ok and (_pairwise_sum(a, 0, n) == np.add.reduce(a))
        _PAIRWISE_OK = bool(ok)
    return _PAIRWISE_OK


@njit(cache=False)
def _pow_int(base, exponent):
    # Mirror the exactly-representable exponent fast paths so the
    # result matches numpy's power loop bit for bit even if the libm
    # at hand is not correctly rounded for them.
    if exponent == 0.0:
        return 1.0
    if exponent == 1.0:
        return base
    if exponent == 2.0:
        return base * base
    return base ** exponent


@njit(cache=False)
def _drive(policy, evalk, budget, rec, record_history,
           p0, p_min, backoff, threshold, dec_prob, dec_comp,
           fkv_prob, fkv_comp, fkv_len, hm_chi,
           uniforms, S,
           busy, head_ptr, end_ptr, order,
           probability, last_reset, lp, contention,
           sub_flat, n0, row_sums, diag, adj_flat, cols,
           delivered, att_ids, att_off, succ_off,
           att_loc, ok, fscratch):
    slots = S[_S_SLOTS]
    pending = S[_S_PENDING]
    k = S[_S_K]
    cur = S[_S_CUR]
    dn = S[_S_DN]
    att_len = S[_S_ATT_LEN]
    hslots = S[_S_HSLOTS]
    phase = S[_S_PHASE]
    phase_left = S[_S_PHASE_LEFT]
    lp_dirty = S[_S_LP_DIRTY]

    prob_scalar = dec_prob
    comp_scalar = dec_comp
    if policy == _FKV and phase >= 0:
        idx = phase if phase < fkv_prob.size else fkv_prob.size - 1
        prob_scalar = fkv_prob[idx]
        comp_scalar = fkv_comp[idx]

    status = _DONE
    while slots < budget and pending > 0:
        uses_rng = policy != _SINGLE_HOP
        if uses_rng and cur + k > uniforms.size:
            status = _NEED_UNIFORMS
            break
        if record_history and (
            att_len + k > att_ids.size or hslots + 2 > att_off.size
        ):
            status = _HIST_FULL
            break

        # -- phase bookkeeping (fkv) -------------------------------
        if policy == _FKV:
            if phase_left == 0:
                phase += 1
                idx = phase if phase < fkv_prob.size else fkv_prob.size - 1
                prob_scalar = fkv_prob[idx]
                comp_scalar = fkv_comp[idx]
                phase_left = fkv_len[idx]
                lp_dirty = 1
            phase_left -= 1

        # -- draws --------------------------------------------------
        t = 0
        if policy == _KV:
            for i in range(k):
                if uniforms[cur + i] < probability[i]:
                    att_loc[t] = i
                    t += 1
                    last_reset[i] = slots
        elif policy == _SINGLE_HOP:
            for i in range(k):
                att_loc[i] = i
            t = k
        else:
            if lp_dirty == 1:
                if policy == _HM:
                    # min(1, chi / max(contention, 1)) — scalar IEEE
                    # ops identical to the numpy ufunc elements.
                    for i in range(k):
                        c = contention[i]
                        if c < 1.0:
                            c = 1.0
                        p = hm_chi / c
                        lp[i] = p if p < 1.0 else 1.0
                else:
                    for i in range(k):
                        depth = np.float64(end_ptr[i] - head_ptr[i])
                        lp[i] = 1.0 - _pow_int(comp_scalar, depth)
                lp_dirty = 0
            for i in range(k):
                if uniforms[cur + i] < lp[i]:
                    att_loc[t] = i
                    t += 1
        if uses_rng:
            cur += k

        # -- evaluate -----------------------------------------------
        n_succ = 0
        drained = False
        if t > 0:
            if evalk == _AFFECTANCE:
                borderline = False
                if t == k:
                    for j in range(k):
                        imp = row_sums[j] - diag[j]
                        d = imp - threshold
                        if -_GUARD < d < _GUARD:
                            borderline = True
                        ok[j] = imp <= threshold
                else:
                    for j in range(t):
                        ci = cols[att_loc[j]]
                        base = ci * n0
                        acc = 0.0
                        for j2 in range(t):
                            acc += sub_flat[base + cols[att_loc[j2]]]
                        acc -= sub_flat[base + ci]
                        d = acc - threshold
                        if -_GUARD < d < _GUARD:
                            borderline = True
                        ok[j] = acc <= threshold
                if borderline:
                    # Rewind this slot's coins and hand the whole slot
                    # to the Python exact path (the kv idle stamps
                    # above are idempotent re-runs there).
                    if uses_rng:
                        cur -= k
                    status = _BORDERLINE
                    break
            else:
                for j in range(t):
                    base = cols[att_loc[j]] * n0
                    collided = False
                    for j2 in range(t):
                        if adj_flat[base + cols[att_loc[j2]]] != 0:
                            collided = True
                            break
                    ok[j] = not collided

            # -- pops -----------------------------------------------
            for j in range(t):
                if ok[j]:
                    i = att_loc[j]
                    hp = head_ptr[i]
                    delivered[dn] = order[hp]
                    dn += 1
                    n_succ += 1
                    head_ptr[i] = hp + 1
                    if hp + 1 == end_ptr[i]:
                        drained = True
            pending -= n_succ

        # -- history ------------------------------------------------
        if record_history:
            for j in range(t):
                att_ids[att_len + j] = busy[att_loc[j]]
            att_len += t
            att_off[hslots + 1] = att_len
            succ_off[hslots + 1] = dn
            hslots += 1

        # -- adaptive updates ---------------------------------------
        if policy == _KV:
            for j in range(t):
                i = att_loc[j]
                if ok[j]:
                    probability[i] = p0
                else:
                    v = probability[i] * backoff
                    probability[i] = v if v > p_min else p_min
            stamp = slots - rec
            for i in range(k):
                if last_reset[i] == stamp:
                    v = probability[i] * 2.0
                    probability[i] = v if v < p0 else p0
                    last_reset[i] = slots
        elif policy != _SINGLE_HOP and n_succ > 0:
            lp_dirty = 1

        # -- compaction ---------------------------------------------
        if drained:
            if evalk == _AFFECTANCE:
                # Subtract every gone link's column from the surviving
                # row sums (sequential; the all-transmit guard band
                # absorbs the reduction-order drift, exactly as it
                # does for the numpy backend's incremental updates).
                n_gone = 0
                for i in range(k):
                    if head_ptr[i] >= end_ptr[i]:
                        att_loc[n_gone] = cols[i]  # scratch reuse
                        n_gone += 1
                w = 0
                for i in range(k):
                    if head_ptr[i] < end_ptr[i]:
                        acc = row_sums[i]
                        base = cols[i] * n0
                        for g in range(n_gone):
                            acc -= sub_flat[base + att_loc[g]]
                        row_sums[w] = acc
                        if policy == _HM:
                            # Contention feeds coin probabilities with
                            # no guard band: gather the gone columns
                            # and reduce them pairwise, bit-identical
                            # to the numpy backend's
                            # sub[keep, gone].sum(axis=1).
                            for g in range(n_gone):
                                fscratch[g] = sub_flat[base + att_loc[g]]
                            contention[w] = contention[i] - _pairwise_sum(
                                fscratch, 0, n_gone
                            )
                        diag[w] = diag[i]
                        busy[w] = busy[i]
                        head_ptr[w] = head_ptr[i]
                        end_ptr[w] = end_ptr[i]
                        cols[w] = cols[i]
                        probability[w] = probability[i]
                        last_reset[w] = last_reset[i]
                        lp[w] = lp[i]
                        w += 1
                k = w
            else:
                n_gone = 0
                if policy == _HM:
                    # HM tracks contention over the *weight* matrix
                    # even under the conflict evaluator.
                    for i in range(k):
                        if head_ptr[i] >= end_ptr[i]:
                            att_loc[n_gone] = cols[i]  # scratch reuse
                            n_gone += 1
                w = 0
                for i in range(k):
                    if head_ptr[i] < end_ptr[i]:
                        if policy == _HM:
                            base = cols[i] * n0
                            for g in range(n_gone):
                                fscratch[g] = sub_flat[base + att_loc[g]]
                            contention[w] = (
                                contention[i]
                                - _pairwise_sum(fscratch, 0, n_gone)
                            )
                        busy[w] = busy[i]
                        head_ptr[w] = head_ptr[i]
                        end_ptr[w] = end_ptr[i]
                        cols[w] = cols[i]
                        probability[w] = probability[i]
                        last_reset[w] = last_reset[i]
                        lp[w] = lp[i]
                        w += 1
                k = w
            lp_dirty = 1

        slots += 1

    S[_S_SLOTS] = slots
    S[_S_PENDING] = pending
    S[_S_K] = k
    S[_S_CUR] = cur
    S[_S_DN] = dn
    S[_S_ATT_LEN] = att_len
    S[_S_HSLOTS] = hslots
    S[_S_PHASE] = phase
    S[_S_PHASE_LEFT] = phase_left
    S[_S_LP_DIRTY] = lp_dirty
    return status


def _fkv_phase_tables(policy, model, requests):
    """Precompute the fkv phase schedule until its fixpoint.

    Once ``measure / 2**phase`` hits the floor of 1.0 the phase
    parameters stop changing, so the driver clamps to the last entry.
    """
    import math

    requests = list(requests)
    n = max(1, len(requests))
    log_n = math.log(n + 2)
    measure = max(model.interference_measure(requests), 1.0)
    probs: List[float] = []
    lens: List[int] = []
    phase = 0
    while True:
        phase_measure = max(measure / 2.0 ** phase, 1.0)
        probs.append(
            min(0.25, 1.0 / (policy.probability_scale * phase_measure))
        )
        lens.append(max(1, math.ceil(
            policy.phase_scale
            * policy.probability_scale
            * max(phase_measure, log_n)
        )))
        if phase_measure == 1.0:
            break
        phase += 1
    prob = np.asarray(probs)
    comp = 1.0 - prob
    return prob, comp, np.asarray(lens, dtype=np.int64)


def _exact_python_slot(policy_code, rec, p0, p_min, backoff, threshold,
                       record_history, uniforms, S,
                       busy, head_ptr, end_ptr, order,
                       probability, last_reset, lp, contention,
                       sub, row_sums, diag, cols,
                       delivered, att_ids, att_off, succ_off):
    """Execute one borderline slot with the reference's exact numpy
    arithmetic, updating the driver's state in place.

    Only the affectance evaluator can request this. The attempt set is
    recomputed from the same coins (the driver rewound its cursor);
    the success decision uses the scalar reference's own pairwise
    submatrix reduction, so the slot is bit-exact by construction.
    """
    slots = int(S[_S_SLOTS])
    k = int(S[_S_K])
    cur = int(S[_S_CUR])
    if policy_code == _KV:
        u = uniforms[cur:cur + k]
        attempt = u < probability[:k]
        att_idx = attempt.nonzero()[0]
        last_reset[att_idx] = slots
        cur += k
    elif policy_code == _SINGLE_HOP:
        att_idx = np.arange(k)
    else:
        u = uniforms[cur:cur + k]
        attempt = u < lp[:k]
        att_idx = attempt.nonzero()[0]
        cur += k
    t = att_idx.size

    n_succ = 0
    drained = False
    heads = np.empty(0, dtype=np.int64)
    if t:
        t_idx = cols[:k][att_idx]
        sub_t = sub[t_idx[:, None], t_idx]
        impact = sub_t.sum(axis=1) - sub_t.diagonal()
        ok = impact <= threshold
        s_idx = att_idx[ok]
        if s_idx.size:
            hp = head_ptr[:k][s_idx]
            heads = order[hp].copy()
            dn = int(S[_S_DN])
            delivered[dn:dn + heads.size] = heads
            S[_S_DN] = dn + heads.size
            head_ptr[s_idx] = hp + 1
            n_succ = int(heads.size)
            drained = bool((hp + 1 == end_ptr[:k][s_idx]).any())
    else:
        ok = np.empty(0, dtype=bool)

    if record_history:
        att_len = int(S[_S_ATT_LEN])
        hslots = int(S[_S_HSLOTS])
        att_ids[att_len:att_len + t] = busy[:k][att_idx]
        att_off[hslots + 1] = att_len + t
        succ_off[hslots + 1] = int(S[_S_DN])
        S[_S_ATT_LEN] = att_len + t
        S[_S_HSLOTS] = hslots + 1

    if policy_code == _KV:
        if t:
            backed = np.maximum(
                probability[:k][att_idx] * backoff, p_min
            )
            backed[ok] = p0
            probability[att_idx] = backed
        rec_idx = (last_reset[:k] == slots - rec).nonzero()[0]
        if rec_idx.size:
            doubled = probability[:k][rec_idx] * 2.0
            np.minimum(doubled, p0, out=doubled)
            probability[rec_idx] = doubled
            last_reset[rec_idx] = slots
    elif policy_code != _SINGLE_HOP and n_succ:
        S[_S_LP_DIRTY] = 1

    if drained:
        live = head_ptr[:k] < end_ptr[:k]
        surv = live.nonzero()[0]
        gone_cols = cols[:k][~live]
        kept_cols = cols[:k][surv]
        ns = surv.size
        gone_impact = sub[kept_cols[:, None], gone_cols].sum(axis=1)
        row_sums[:ns] = row_sums[:k][surv] - gone_impact
        if policy_code == _HM:
            # Same pairwise row reduction HmPolicy.compact performs.
            contention[:ns] = contention[:k][surv] - gone_impact
        for arr in (busy, head_ptr, end_ptr, cols, diag, probability,
                    last_reset, lp):
            arr[:ns] = arr[:k][surv]
        S[_S_K] = ns
        S[_S_LP_DIRTY] = 1

    S[_S_PENDING] = int(S[_S_PENDING]) - n_succ
    S[_S_CUR] = cur
    S[_S_SLOTS] = slots + 1


def run_compiled(policy, model, requests, budget, gen,
                 record_history) -> RunResult:
    """Run one (policy, model) pair through the compiled driver."""
    from repro.staticsched.runloop import (
        ChunkedUniforms,
        DecayPolicy,
        FkvPolicy,
        HmPolicy,
        KvPolicy,
        SingleHopPolicy,
    )

    queues = LinkQueues(requests, model.num_links)
    order, starts = queues.csr_arrays()
    busy = queues.busy_array()
    k0 = busy.size
    head_ptr = starts[busy].copy()
    end_ptr = starts[busy + 1].copy()
    n_pending = queues.pending

    policy_code = {
        KvPolicy: _KV,
        DecayPolicy: _DECAY,
        FkvPolicy: _FKV,
        SingleHopPolicy: _SINGLE_HOP,
        HmPolicy: _HM,
    }[type(policy)]
    eval_code = (
        _AFFECTANCE if type(model) is AffectanceThresholdModel
        else _CONFLICT
    )

    # Policy parameters (unused ones keep benign defaults).
    p0 = p_min = backoff = 0.0
    rec = 0
    dec_prob = dec_comp = 0.0
    fkv_prob = np.empty(0)
    fkv_comp = np.empty(0)
    fkv_len = np.empty(0, dtype=np.int64)
    if policy_code == _KV:
        p0, p_min = policy.p0, policy.p_min
        backoff, rec = policy.backoff, policy.recovery_slots
    elif policy_code == _DECAY:
        measure = max(
            model.interference_measure(list(requests)),
            policy.measure_floor,
        )
        dec_prob = min(1.0, 1.0 / (policy.probability_scale * measure))
        dec_comp = 1.0 - dec_prob
    elif policy_code == _FKV:
        fkv_prob, fkv_comp, fkv_len = _fkv_phase_tables(
            policy, model, requests
        )
    hm_chi = policy.chi if policy_code == _HM else 0.0

    # Evaluator caches (typed consistently across all calls).
    threshold = 0.0
    sub = np.empty((0, 0))
    sub_flat = np.empty(0)
    row_sums = np.empty(0)
    diag = np.empty(0)
    adj_flat = np.empty(0, dtype=np.uint8)
    if eval_code == _AFFECTANCE:
        threshold = model.threshold
        sub = model.weight_matrix()[np.ix_(busy, busy)]
        sub_flat = np.ascontiguousarray(sub).reshape(-1)
        row_sums = sub.sum(axis=1)
        diag = sub.diagonal().copy()
    else:
        adj = model.adjacency_matrix()[np.ix_(busy, busy)]
        adj_flat = adj.astype(np.uint8).reshape(-1)
    if policy_code == _HM and sub_flat.size == 0 and k0 > 0:
        # Conflict evaluator: HM still needs the weight submatrix for
        # its contention bookkeeping (HmPolicy.bind does the same).
        sub = model.weight_matrix()[np.ix_(busy, busy)]
        sub_flat = np.ascontiguousarray(sub).reshape(-1)
    cols = np.arange(k0)

    # Full-size state for every policy: the driver's compaction loop
    # copies all of them unconditionally (numba does not bounds-check,
    # so zero-size placeholders are not an option).
    probability = np.full(k0, p0)
    last_reset = np.full(k0, -1, dtype=np.int64)
    lp = np.zeros(k0)
    # HM contention: the exact numpy row sums HmPolicy.bind computes
    # (the driver's pairwise updates keep them bit-identical).
    contention = sub.sum(axis=1) if policy_code == _HM else np.zeros(0)
    fscratch = np.empty(k0 if policy_code == _HM else 0)

    delivered = np.empty(n_pending, dtype=np.int64)
    if record_history:
        cap_slots = min(int(budget), 4096)
        att_ids = np.empty(max(4 * n_pending, 1024), dtype=np.int64)
        att_off = np.zeros(cap_slots + 1, dtype=np.int64)
        succ_off = np.zeros(cap_slots + 1, dtype=np.int64)
    else:
        att_ids = np.empty(0, dtype=np.int64)
        att_off = np.zeros(1, dtype=np.int64)
        succ_off = np.zeros(1, dtype=np.int64)

    att_loc = np.empty(k0, dtype=np.int64)
    ok = np.empty(k0, dtype=bool)

    S = np.zeros(16, dtype=np.int64)
    S[_S_PENDING] = n_pending
    S[_S_K] = k0
    S[_S_PHASE] = -1
    S[_S_LP_DIRTY] = 1

    chunk = (
        ChunkedUniforms(gen) if policy_code != _SINGLE_HOP else None
    )
    uniforms = chunk._buf if chunk is not None else np.empty(0)
    # _consumed value at the last refill (= minus the spliced-in
    # leftover); the driver consumes straight off the buffer, so the
    # chunk's consumption ledger is re-synced after every return.
    consumed_base = 0

    while True:
        status = _drive(
            policy_code, eval_code, budget, rec, record_history,
            p0, p_min, backoff, threshold, dec_prob, dec_comp,
            fkv_prob, fkv_comp, fkv_len, hm_chi,
            uniforms, S,
            busy, head_ptr, end_ptr, order,
            probability, last_reset, lp, contention,
            sub_flat, k0, row_sums, diag, adj_flat, cols,
            delivered, att_ids, att_off, succ_off,
            att_loc, ok, fscratch,
        )
        if chunk is not None:
            chunk._cursor = int(S[_S_CUR])
            chunk._consumed = consumed_base + int(S[_S_CUR])
        if status == _DONE:
            break
        if status == _NEED_UNIFORMS:
            chunk.refill(int(S[_S_K]))
            uniforms = chunk._buf
            S[_S_CUR] = 0
            consumed_base = chunk._consumed
        elif status == _HIST_FULL:
            att_ids = np.concatenate(
                [att_ids, np.empty(att_ids.size + 1024, dtype=np.int64)]
            )
            grow = np.zeros(att_off.size + 4096, dtype=np.int64)
            grow[:att_off.size] = att_off
            att_off = grow
            grow = np.zeros(succ_off.size + 4096, dtype=np.int64)
            grow[:succ_off.size] = succ_off
            succ_off = grow
        elif status == _BORDERLINE:
            _exact_python_slot(
                policy_code, rec, p0, p_min, backoff, threshold,
                record_history, uniforms, S,
                busy, head_ptr, end_ptr, order,
                probability, last_reset, lp, contention,
                sub, row_sums, diag, cols,
                delivered, att_ids, att_off, succ_off,
            )
            if chunk is not None:
                chunk._cursor = int(S[_S_CUR])
                chunk._consumed = consumed_base + int(S[_S_CUR])

    if chunk is not None:
        chunk.finalize()

    dn = int(S[_S_DN])
    k = int(S[_S_K])
    delivered_list = delivered[:dn].tolist()
    remaining: List[int] = []
    for i in range(k):
        remaining.extend(
            order[head_ptr[i]:starts[busy[i] + 1]].tolist()
        )

    history: Optional[LazySlotHistory] = None
    if record_history:
        history = LazySlotHistory(np.asarray(requests, dtype=np.int64))
        hslots = int(S[_S_HSLOTS])
        for s in range(hslots):
            a0, a1 = int(att_off[s]), int(att_off[s + 1])
            d0, d1 = int(succ_off[s]), int(succ_off[s + 1])
            if a1 == a0:
                history.append_empty()
            else:
                history.append_ids_heads(
                    att_ids[a0:a1], delivered[d0:d1]
                )

    return RunResult(
        delivered=delivered_list,
        remaining=remaining,
        slots_used=int(S[_S_SLOTS]),
        history=history,
    )


__all__ = ["NUMBA_AVAILABLE", "run_compiled", "supported"]
