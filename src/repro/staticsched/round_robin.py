"""Round-Robin-Withholding: the asymmetric MAC scheduler (Lemma 17).

With unique station ids and the ability to distinguish silence from a
successful transmission, a deterministic token-passing scheme serves
``n`` packets in exactly ``n + m`` slots: station 0 transmits its
backlog; one silent slot signals the token handover to station 1; and
so on. Stability for every injection rate ``lambda < 1`` follows
(Corollary 18) — the channel is almost never idle.

The silent slot is burned even by empty stations (they hold the token
for one slot and release it), which is what makes the ``n + m`` bound
exact and the handover detectable by listening alone.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import SchedulingError
from repro.interference.base import InterferenceModel
from repro.interference.mac import MultipleAccessChannel
from repro.staticsched.base import (
    LengthBound,
    LinkQueues,
    RunResult,
    SlotRecord,
    StaticAlgorithm,
)
from repro.utils.rng import RngLike


class RoundRobinScheduler(StaticAlgorithm):
    """Deterministic token passing over the stations (links) in id order."""

    name = "round-robin"

    def budget_for(self, measure: float, n: int) -> int:
        """Exact: ``n`` transmissions plus one handover slot per station.

        The station count is unknown here; callers sizing exactly should
        use ``n + model.num_links``. This recommendation over-provisions
        with ``n`` doubled as a safe upper bound when ``m <= n``.
        """
        return max(1, int(max(measure, n)) * 2 + 1)

    def network_bound(self, m: int) -> LengthBound:
        """``I + m`` exactly: ``f = 1``, ``g(m, n) = m + 1``."""
        return LengthBound(
            multiplicative=lambda m_: 1.0,
            additive=lambda m_, n: float(m_ + 1),
            description="n + m exact [Round-Robin-Withholding]",
        )

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        if budget < 0:
            raise SchedulingError(f"budget must be >= 0, got {budget}")
        if not isinstance(model, MultipleAccessChannel):
            raise SchedulingError(
                "Round-Robin-Withholding is a multiple-access-channel "
                f"algorithm; got {type(model).__name__}"
            )
        queues = LinkQueues(requests, model.num_links)
        delivered: List[int] = []
        history: Optional[List[SlotRecord]] = [] if record_history else None
        slots = 0

        for station in range(model.num_links):
            # Drain this station's backlog in bulk: on the bare channel
            # every singleton slot is received, so the whole run of
            # ``queue_length`` slots resolves without consulting the
            # model per slot.
            serve = min(queues.queue_length(station), budget - slots)
            for _ in range(serve):
                delivered.append(queues.pop(station))
            if history is not None:
                history.extend(
                    SlotRecord((station,), (station,)) for _ in range(serve)
                )
            slots += serve
            if slots >= budget:
                break
            # The handover slot: silence tells the next station to start.
            if history is not None:
                history.append(SlotRecord((), ()))
            slots += 1

        return self._finalise(queues, delivered, slots, history)


__all__ = ["RoundRobinScheduler"]
