"""Batch-JIT wave driver: a fleet group advanced per compiled call.

:mod:`repro.staticsched.batchloop` pools N small networks in one numpy
wave engine, but still crosses the Python/numpy boundary a few times
per *event slot* per network. Where numba is installed the compiled
driver (:func:`repro.staticsched._runloop_numba._advance`) already runs
whole runs — window scan, event slots, compaction — inside one JIT
function, so the batched analogue is simpler than the numpy one: park
every network's run state in padded pool rows and let **one compiled
call** (:func:`_drive_group`) advance every active row to its next
Python service point (chunk refill, borderline slot, or completion).
Python then touches each network once per ~``WINDOW``-slot coin chunk
instead of once per event slot.

Bit-exactness contract — identical to the numpy wave engine's: every
stream's :class:`RunResult` sequence, return value, and generator end
state match driving that stream alone. The ingredients are all
inherited: coins come from each network's own
:class:`~repro.staticsched.runloop.ChunkedUniforms` (whose finalize
rewind makes the end state depend only on the handed-out count, so the
``WINDOW``-slot chunking is legal), the driver consumes them with the
serial loop's own scan/slot code (`_advance` takes its sizes as
scalars precisely so padded pool rows and exact-size serial arrays run
the same kernel), and borderline slots replay through the same exact
numpy path on row views. Per-task parameters all live in per-row
tables (``TB``/``FB``), so a group may mix policies and evaluators
freely — grouping is a routing heuristic, not a correctness
requirement.

Calls the compiled lane cannot take (no fused policy, history
recording, an unsupported (policy, model) pair) are executed
synchronously in stream order via ``call.execute()``, exactly like the
numpy wave driver's relay — correct because each stream owns its
generator and its calls are served strictly in order either way.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import SchedulingError
from repro.staticsched import _runloop_numba as _rn
from repro.staticsched._runloop_numba import (
    _BORDERLINE,
    _DONE,
    _NEED_UNIFORMS,
    _S_CUR,
    _S_K,
    CompiledSetup,
    _advance,
    njit,
    supported,
)
from repro.staticsched.batchloop import WINDOW
from repro.staticsched.runloop import ChunkedUniforms

# Per-row parameter table columns: int64 ...
_T_POLICY, _T_EVALK, _T_BUDGET, _T_REC, _T_FKVN, _T_ULEN, _T_N0 = range(7)
# ... and float64.
(_F_P0, _F_PMIN, _F_BACKOFF, _F_THRESH, _F_BETA, _F_NOISE,
 _F_DECP, _F_DECC, _F_HMCHI) = range(9)

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_OFF1 = np.zeros(1, dtype=np.int64)


def jit_group_supported(model, scheduler: Optional[str] = None) -> bool:
    """Routing heuristic: can this group go batch-JIT?

    Group keys pin (scheduler, model) types per group, so checking one
    member's model covers the group. The per-call :func:`supported`
    gate inside the driver stays authoritative — a call it declines is
    executed serially in place, bit-identically — so this check only
    steers groups the JIT driver could not accelerate at all back to
    the numpy wave engine.
    """
    if not _rn.NUMBA_AVAILABLE:
        return False
    if scheduler == "hm" and not _rn._pairwise_self_check():
        return False
    from repro.interference.conflict import ConflictGraphModel
    from repro.interference.matrix_model import AffectanceThresholdModel
    from repro.sinr.model import SinrModel

    return type(model) in (
        AffectanceThresholdModel, ConflictGraphModel, SinrModel
    )


@njit(cache=False)
def _drive_group(rows, statuses, TB, FB, FKVP, FKVC, FKVL,
                 U, S2, BUSY, HEAD, END, ORDER, PROB, LASTR, LP, CONT,
                 EVALF, SUBF, ROWSUM, DIAG, ADJ, COLS, DLV, ATTL, OKB,
                 FSC):
    """Advance every listed row to its next Python service point.

    One compiled call per wave round: each row runs the full serial
    driver (window scan, event slots, compaction) on its pool-row
    views until it needs Python (coins, a borderline slot) or is done.
    Rows are independent — order cannot affect any row's outcome.
    """
    att_dummy = np.empty(0, dtype=np.int64)
    off_dummy = np.zeros(1, dtype=np.int64)
    for idx in range(rows.size):
        r = rows[idx]
        statuses[r] = _advance(
            TB[r, _T_POLICY], TB[r, _T_EVALK], TB[r, _T_BUDGET],
            TB[r, _T_REC], False,
            FB[r, _F_P0], FB[r, _F_PMIN], FB[r, _F_BACKOFF],
            FB[r, _F_THRESH], FB[r, _F_BETA], FB[r, _F_NOISE],
            FB[r, _F_DECP], FB[r, _F_DECC],
            FKVP[r], FKVC[r], FKVL[r], TB[r, _T_FKVN],
            FB[r, _F_HMCHI],
            U[r], TB[r, _T_ULEN], S2[r],
            BUSY[r], HEAD[r], END[r], ORDER[r],
            PROB[r], LASTR[r], LP[r], CONT[r],
            EVALF[r], SUBF[r], TB[r, _T_N0], ROWSUM[r], DIAG[r],
            ADJ[r], COLS[r],
            DLV[r], att_dummy, off_dummy, off_dummy,
            ATTL[r], OKB[r], FSC[r],
        )


class _JitStreamDriver:
    """Drive N step generators through pooled compiled runs.

    Row ``i`` belongs to stream ``i`` (at most one parked task per
    stream). Pools are padded 2-D arrays grown geometrically; a
    parked task's :class:`CompiledSetup` is re-pointed at its row
    views, so the serial exact-slot replay and result assembly run
    unchanged on pool storage.
    """

    def __init__(self, streams):
        self.streams = list(streams)
        n = len(self.streams)
        self.n = n
        self.results: List = [None] * n
        self.setups: List[Optional[CompiledSetup]] = [None] * n
        self.chunks: List[Optional[ChunkedUniforms]] = [None] * n
        self.consumed_base = np.zeros(n, dtype=np.int64)
        self.statuses = np.zeros(n, dtype=np.int64)
        self.active = np.zeros(n, dtype=bool)
        self.lmax = 0
        self.ucap = 0
        self.ncap = 0
        self.dcap = 0
        self.fcap = 0
        self.TB = np.zeros((n, 7), dtype=np.int64)
        self.FB = np.zeros((n, 9))
        self.FKVP = np.zeros((n, 0))
        self.FKVC = np.zeros((n, 0))
        self.FKVL = np.zeros((n, 0), dtype=np.int64)
        self.U = np.zeros((n, 0))
        self.S2 = np.zeros((n, 16), dtype=np.int64)
        self.BUSY = np.zeros((n, 0), dtype=np.int64)
        self.HEAD = np.zeros((n, 0), dtype=np.int64)
        self.END = np.zeros((n, 0), dtype=np.int64)
        self.ORDER = np.zeros((n, 0), dtype=np.int64)
        self.PROB = np.zeros((n, 0))
        self.LASTR = np.zeros((n, 0), dtype=np.int64)
        self.LP = np.zeros((n, 0))
        self.CONT = np.zeros((n, 0))
        self.EVALF = np.zeros((n, 0))
        self.SUBF = np.zeros((n, 0))
        self.ROWSUM = np.zeros((n, 0))
        self.DIAG = np.zeros((n, 0))
        self.ADJ = np.zeros((n, 0), dtype=np.uint8)
        self.COLS = np.zeros((n, 0), dtype=np.int64)
        self.DLV = np.zeros((n, 0), dtype=np.int64)
        self.ATTL = np.zeros((n, 0), dtype=np.int64)
        self.OKB = np.zeros((n, 0), dtype=bool)
        self.FSC = np.zeros((n, 0))

    # -- pool storage --------------------------------------------------

    @staticmethod
    def _regrow(arr, cap):
        new = np.zeros((arr.shape[0], cap), dtype=arr.dtype)
        new[:, :arr.shape[1]] = arr
        return new

    def _ensure(self, lmax=0, ucap=0, ncap=0, dcap=0, fcap=0) -> None:
        grew = False
        if lmax > self.lmax:
            cap = max(lmax, 2 * self.lmax, 8)
            for name in ("BUSY", "HEAD", "END", "PROB", "LASTR", "LP",
                         "CONT", "ROWSUM", "DIAG", "COLS", "ATTL",
                         "OKB", "FSC"):
                setattr(self, name, self._regrow(getattr(self, name),
                                                 cap))
            # Flat matrix rows keep each task's own n0 stride, so a
            # plain prefix copy preserves every parked layout.
            for name in ("EVALF", "SUBF", "ADJ"):
                setattr(self, name, self._regrow(getattr(self, name),
                                                 cap * cap))
            self.lmax = cap
            grew = True
        if ucap > self.ucap:
            cap = max(ucap, 2 * self.ucap)
            self.U = self._regrow(self.U, cap)
            self.ucap = cap
            grew = True
        if ncap > self.ncap:
            cap = max(ncap, 2 * self.ncap)
            self.ORDER = self._regrow(self.ORDER, cap)
            self.ncap = cap
            grew = True
        if dcap > self.dcap:
            cap = max(dcap, 2 * self.dcap)
            self.DLV = self._regrow(self.DLV, cap)
            self.dcap = cap
            grew = True
        if fcap > self.fcap:
            cap = max(fcap, 2 * self.fcap)
            self.FKVP = self._regrow(self.FKVP, cap)
            self.FKVC = self._regrow(self.FKVC, cap)
            self.FKVL = self._regrow(self.FKVL, cap)
            self.fcap = cap
            grew = True
        if grew:
            for r in np.nonzero(self.active)[0]:
                self._rebind(int(r))

    def _rebind(self, r: int) -> None:
        """Point a parked setup's arrays at its (possibly reallocated)
        pool row views, so exact_slot/assemble mutate pool storage."""
        st = self.setups[r]
        st.S = self.S2[r]
        st.busy = self.BUSY[r]
        st.head_ptr = self.HEAD[r]
        st.end_ptr = self.END[r]
        st.order = self.ORDER[r]
        st.cols = self.COLS[r]
        st.probability = self.PROB[r]
        st.last_reset = self.LASTR[r]
        st.lp = self.LP[r]
        st.contention = self.CONT[r]
        st.row_sums = self.ROWSUM[r]
        st.diag = self.DIAG[r]
        st.delivered = self.DLV[r]

    def _park(self, i: int, setup: CompiledSetup,
              chunk: Optional[ChunkedUniforms], budget: int) -> None:
        k0 = setup.k0
        self._ensure(
            lmax=k0,
            ncap=setup.order.size,
            dcap=max(setup.n_pending, 1),
            fcap=max(setup.fkv_prob.size, 1),
        )
        r = i
        TB, FB = self.TB, self.FB
        TB[r, _T_POLICY] = setup.policy_code
        TB[r, _T_EVALK] = setup.eval_code
        TB[r, _T_BUDGET] = budget
        TB[r, _T_REC] = setup.rec
        TB[r, _T_FKVN] = setup.fkv_prob.size
        TB[r, _T_ULEN] = 0
        TB[r, _T_N0] = k0
        FB[r, _F_P0] = setup.p0
        FB[r, _F_PMIN] = setup.p_min
        FB[r, _F_BACKOFF] = setup.backoff
        FB[r, _F_THRESH] = setup.threshold
        FB[r, _F_BETA] = setup.beta
        FB[r, _F_NOISE] = setup.noise
        FB[r, _F_DECP] = setup.dec_prob
        FB[r, _F_DECC] = setup.dec_comp
        FB[r, _F_HMCHI] = setup.hm_chi
        fn = setup.fkv_prob.size
        self.FKVP[r, :fn] = setup.fkv_prob
        self.FKVC[r, :fn] = setup.fkv_comp
        self.FKVL[r, :fn] = setup.fkv_len
        self.BUSY[r, :k0] = setup.busy
        self.HEAD[r, :k0] = setup.head_ptr
        self.END[r, :k0] = setup.end_ptr
        self.ORDER[r, :setup.order.size] = setup.order
        self.COLS[r, :k0] = setup.cols
        self.PROB[r, :k0] = setup.probability
        self.LASTR[r, :k0] = setup.last_reset
        self.LP[r, :k0] = setup.lp
        if setup.contention.size:
            self.CONT[r, :k0] = setup.contention
        self.ROWSUM[r, :k0] = setup.row_sums
        self.DIAG[r, :k0] = setup.diag
        self.EVALF[r, :setup.eval_flat.size] = setup.eval_flat
        self.SUBF[r, :setup.sub_flat.size] = setup.sub_flat
        self.ADJ[r, :setup.adj_flat.size] = setup.adj_flat
        self.S2[r] = setup.S
        self.setups[i] = setup
        self.chunks[i] = chunk
        self.active[i] = True
        self._rebind(r)
        if chunk is not None:
            self._refill(r)

    # -- service points ------------------------------------------------

    def _refill(self, r: int) -> None:
        chunk = self.chunks[r]
        chunk.refill(int(self.S2[r, _S_K]))
        buf = chunk._buf
        if buf.size > self.ucap:
            self._ensure(ucap=buf.size)
        self.U[r, :buf.size] = buf
        self.TB[r, _T_ULEN] = buf.size
        self.S2[r, _S_CUR] = 0
        self.consumed_base[r] = chunk._consumed

    def _finish(self, r: int) -> None:
        setup = self.setups[r]
        chunk = self.chunks[r]
        if chunk is not None:
            chunk.finalize()
        result = setup.assemble(False, None, _EMPTY_IDS, _OFF1, _OFF1)
        self.active[r] = False
        self.setups[r] = None
        self.chunks[r] = None
        self._drive(r, result)

    def _drive(self, i: int, value, start: bool = False) -> None:
        """Push a result into stream ``i``; park its next compiled run.

        Mirrors the numpy wave driver's relay: calls the compiled lane
        cannot take are executed synchronously in place; runs born
        finished (zero budget or nothing pending) are assembled
        without consuming coins, exactly as the serial wrapper would.
        """
        stream = self.streams[i]
        try:
            call = next(stream) if start else stream.send(value)
            while True:
                fused = getattr(call.algorithm, "fused_policy", None)
                if fused is None or call.record_history:
                    call = stream.send(call.execute())
                    continue
                policy = fused()
                if not supported(policy, call.model, call.budget,
                                 False):
                    call = stream.send(call.execute())
                    continue
                if call.budget < 0:
                    raise SchedulingError(
                        f"budget must be >= 0, got {call.budget}"
                    )
                setup = CompiledSetup.prepare(
                    policy, call.model, call.requests
                )
                chunk = (
                    ChunkedUniforms(call.rng, chunk_slots=WINDOW)
                    if setup.uses_rng else None
                )
                if call.budget == 0 or setup.n_pending == 0:
                    if chunk is not None:
                        chunk.finalize()
                    call = stream.send(setup.assemble(
                        False, None, _EMPTY_IDS, _OFF1, _OFF1
                    ))
                    continue
                self._park(i, setup, chunk, call.budget)
                return
        except StopIteration as stop:
            self.results[i] = stop.value

    # -- main loop -----------------------------------------------------

    def run(self) -> List:
        for i in range(self.n):
            self._drive(i, None, start=True)
        while self.active.any():
            rows = np.nonzero(self.active)[0]
            _drive_group(
                rows, self.statuses, self.TB, self.FB,
                self.FKVP, self.FKVC, self.FKVL,
                self.U, self.S2, self.BUSY, self.HEAD, self.END,
                self.ORDER, self.PROB, self.LASTR, self.LP, self.CONT,
                self.EVALF, self.SUBF, self.ROWSUM, self.DIAG,
                self.ADJ, self.COLS, self.DLV, self.ATTL, self.OKB,
                self.FSC,
            )
            for r in rows:
                r = int(r)
                status = int(self.statuses[r])
                chunk = self.chunks[r]
                if chunk is not None:
                    cur = int(self.S2[r, _S_CUR])
                    chunk._cursor = cur
                    chunk._consumed = int(self.consumed_base[r]) + cur
                if status == _DONE:
                    self._finish(r)
                elif status == _NEED_UNIFORMS:
                    self._refill(r)
                elif status == _BORDERLINE:
                    self.setups[r].exact_slot(
                        self.U[r], _EMPTY_IDS, _OFF1, _OFF1, False
                    )
                    cur = int(self.S2[r, _S_CUR])
                    chunk._cursor = cur
                    chunk._consumed = (
                        int(self.consumed_base[r]) + cur
                    )
        return self.results


def run_batched_streams_jit(streams) -> List:
    """Drive step generators to completion through the batch-JIT
    driver. Same contract as
    :func:`repro.staticsched.batchloop.run_batched_streams`: every
    result and every stream's RNG end state are bit-identical to
    driving that stream alone."""
    return _JitStreamDriver(streams).run()


__all__ = [
    "jit_group_supported",
    "run_batched_streams_jit",
]
