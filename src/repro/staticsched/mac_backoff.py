"""Algorithm 2: the symmetric multiple-access-channel scheduler.

Paper Section 7.1, Lemma 15: a *symmetric* (anonymous, id-free),
acknowledgement-based algorithm transmitting ``n`` packets over a
multiple-access channel in ``(1 + delta) e n + O(phi^2 log^2 n)`` slots
with probability at least ``1 - 1/n^phi``. Feeding it to the dynamic
transformation yields a stable symmetric protocol for every injection
rate ``lambda < 1/e`` (Corollary 16) — matching the classic bound of
Goldberg et al., and extending it to adversarial injection.

Structure (verbatim from the paper's pseudocode, with the loop count
``xi`` solved from the recurrence the proof uses — the printed closed
form in the arXiv version garbles the fraction):

* **Stage 1** (sifting): for ``i = 1 .. xi``, every surviving packet
  picks a uniform delay below ``(1 - 1/(e(1+delta)))^i * n`` and
  transmits in that slot of the round. Each round shrinks the surviving
  population by the factor ``(1 - 1/(e(1+delta)))`` whp (Lemma 2 of
  Goldberg et al.), so round lengths shrink geometrically and sum to
  ``(1 + delta) e n``. Stage 1 ends when the population is down to
  ``s = O(phi log n)``.
* **Stage 2** (polling): for ``s e (phi+1) ln n`` slots every packet
  transmits independently with probability ``1/s`` — each survivor
  succeeds per slot with probability at least ``1/(e s)``, so all
  finish whp.

The channel here is *packet-granular*: each packet is its own
contender, and a slot succeeds iff exactly one packet in the whole
system transmits. (Two packets queued at the same station still
collide — the anonymous model gives stations no way to merge them.)
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SchedulingError
from repro.interference.base import InterferenceModel
from repro.interference.mac import MultipleAccessChannel
from repro.staticsched.base import (
    LengthBound,
    RunResult,
    SlotRecord,
    StaticAlgorithm,
)
from repro.utils.rng import RngLike, ensure_rng


class MacBackoffScheduler(StaticAlgorithm):
    """Paper Algorithm 2: sift-then-poll on a multiple-access channel.

    Parameters
    ----------
    phi:
        Failure-probability exponent (success whp ``1 - 1/n^phi``).
    delta:
        Slack factor; the leading term of the schedule length is
        ``(1 + delta) e n``.
    """

    name = "mac-backoff"

    def __init__(self, phi: float = 1.0, delta: float = 0.5):
        if phi < 1:
            raise SchedulingError(f"phi must be >= 1, got {phi}")
        if delta <= 0:
            raise SchedulingError(f"delta must be positive, got {delta}")
        self._phi = float(phi)
        self._delta = float(delta)

    def state_dict(self):
        return {"name": self.name, "phi": self._phi, "delta": self._delta}

    # ------------------------------------------------------------------
    # Parameters from the paper's proof
    # ------------------------------------------------------------------

    def _survival_factor(self) -> float:
        """Per-round population shrink factor ``1 - 1/(e(1+delta))``."""
        return 1.0 - 1.0 / (math.e * (1.0 + self._delta))

    def _stage2_population(self, n: int) -> float:
        """``s``: the population at which stage 2 takes over."""
        log_n = math.log(n + 2)
        return (
            2.0
            * self._phi
            * math.e**2
            * (1.0 + self._delta) ** 2
            / self._delta**2
            * log_n
        )

    def _stage1_rounds(self, n: int) -> int:
        """``xi``: rounds to shrink ``n`` survivors down to ``s`` whp."""
        s = self._stage2_population(n)
        if n <= s:
            return 0
        return math.ceil(math.log(n / s) / -math.log(self._survival_factor()))

    def _stage2_slots(self, n: int) -> int:
        s = self._stage2_population(n)
        return math.ceil(s * math.e * (self._phi + 1.0) * math.log(n + 2))

    def budget_for(self, measure: float, n: int) -> int:
        """``(1 + delta) e n + O(phi^2 log^2 n)`` — measure on a MAC *is* n."""
        n = max(int(max(measure, n)), 1)
        factor = self._survival_factor()
        stage1 = sum(
            max(1, math.floor(factor**i * n))
            for i in range(1, self._stage1_rounds(n) + 1)
        )
        return max(1, stage1 + self._stage2_slots(n))

    def network_bound(self, m: int) -> LengthBound:
        """Native ``f(m) I + g(m, n)`` form: ``f = (1+delta) e``, ``g = O(log^2 n)``.

        On the MAC the measure of ``n`` packets is exactly ``n``, so
        Algorithm 2's bound is already network-size independent — no
        Section-3 wrapping needed.
        """
        phi, delta = self._phi, self._delta

        def additive(m_: int, n: int) -> float:
            s = (
                2.0 * phi * math.e**2 * (1.0 + delta) ** 2 / delta**2
                * math.log(n + 2)
            )
            return s * math.e * (phi + 1.0) * math.log(n + 2) + 1.0

        return LengthBound(
            multiplicative=lambda m_: (1.0 + delta) * math.e * 1.25,
            additive=additive,
            description="(1+delta)e I + O(phi^2 log^2 n) [Algorithm 2]",
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        model: InterferenceModel,
        requests: Sequence[int],
        budget: int,
        rng: RngLike = None,
        record_history: bool = False,
    ) -> RunResult:
        if budget < 0:
            raise SchedulingError(f"budget must be >= 0, got {budget}")
        if not isinstance(model, MultipleAccessChannel):
            raise SchedulingError(
                "Algorithm 2 is a multiple-access-channel algorithm; got "
                f"{type(model).__name__}"
            )
        gen = ensure_rng(rng)
        requests = list(requests)
        for index, link_id in enumerate(requests):
            if not 0 <= link_id < model.num_links:
                raise SchedulingError(
                    f"request {index} references unknown link {link_id}"
                )
        n = len(requests)
        pending: List[int] = list(range(n))
        delivered: List[int] = []
        history: Optional[List[SlotRecord]] = [] if record_history else None
        slots = 0

        # Stage 1: geometric sifting rounds. Only the per-delay packet
        # *counts* decide who is served (singleton buckets win), so the
        # whole round collapses to one batched delay draw plus a
        # bincount — no Python-level bucket dict on the hot path. The
        # bucket walk is kept only when per-slot history is recorded.
        factor = self._survival_factor()
        for i in range(1, self._stage1_rounds(n) + 1):
            if slots >= budget or not pending:
                break
            round_length = max(1, math.floor(factor**i * n))
            delays = gen.integers(round_length, size=len(pending))
            effective = min(round_length, budget - slots)
            if history is None:
                pending_arr = np.asarray(pending, dtype=np.int64)
                counts = np.bincount(delays, minlength=round_length)
                served = (counts[delays] == 1) & (delays < effective)
                # Stable sort by delay reproduces the slot-order walk:
                # delivered in slot order, survivors by (delay, index).
                order = np.argsort(delays, kind="stable")
                served_ordered = served[order]
                ordered = pending_arr[order]
                delivered.extend(int(p) for p in ordered[served_ordered])
                pending = [int(p) for p in ordered[~served_ordered]]
                slots += effective
                continue
            buckets: dict = {}
            for packet, delay in zip(pending, delays):
                buckets.setdefault(int(delay), []).append(packet)
            survivors: List[int] = []
            for delay in range(effective):
                bucket = buckets.get(delay, ())
                if len(bucket) == 1:
                    delivered.append(bucket[0])
                    link = requests[bucket[0]]
                    history.append(SlotRecord((link,), (link,)))
                else:
                    survivors.extend(bucket)
                    links = tuple(sorted(requests[p] for p in bucket))
                    history.append(SlotRecord(links, ()))
            slots += effective
            # Budget cut the round short: unplayed buckets survive as-is.
            for delay in range(effective, round_length):
                survivors.extend(buckets.get(delay, ()))
            pending = survivors

        # Stage 2: memoryless polling at probability 1/s. Only the
        # *count* of transmitters matters for the channel outcome, so a
        # binomial draw replaces per-packet coins (identical law); the
        # winner of a singleton slot is uniform among the pending.
        s = max(self._stage2_population(n), 1.0)
        probability = min(1.0, 1.0 / s)
        stage2_budget = self._stage2_slots(n)
        stage2_done = 0
        while (
            slots < budget
            and pending
            and stage2_done < max(stage2_budget, budget - slots)
        ):
            transmitter_count = int(gen.binomial(len(pending), probability))
            if transmitter_count == 1:
                index = int(gen.integers(len(pending)))
                winner = pending.pop(index)
                delivered.append(winner)
                if history is not None:
                    link = requests[winner]
                    history.append(SlotRecord((link,), (link,)))
            elif history is not None:
                if transmitter_count == 0:
                    history.append(SlotRecord((), ()))
                else:
                    sample = gen.choice(
                        len(pending), size=transmitter_count, replace=False
                    )
                    links = tuple(
                        sorted(requests[pending[k]] for k in sample)
                    )
                    history.append(SlotRecord(links, ()))
            slots += 1
            stage2_done += 1

        return RunResult(
            delivered=delivered,
            remaining=sorted(pending),
            slots_used=slots,
            history=history,
        )


__all__ = ["MacBackoffScheduler"]
